//! # lotterybus-repro — reproduction of LOTTERYBUS (DAC 2001)
//!
//! Umbrella crate re-exporting every component of the reproduction of
//! *"LOTTERYBUS: A New High-Performance Communication Architecture for
//! System-on-Chip Designs"* (Lahiri, Raghunathan, Lakshminarayana,
//! DAC 2001).
//!
//! * [`socsim`] — cycle-based shared-bus simulation kernel.
//! * [`traffic`] — parameterized stochastic traffic generators.
//! * [`arbiters`] — baseline protocols: static priority, two-level TDMA,
//!   round-robin, token ring.
//! * [`lottery`] — the paper's contribution: static and dynamic lottery
//!   managers.
//! * [`hwmodel`] — standard-cell area/delay estimation of the arbiter
//!   hardware (paper §5.2).
//! * [`atm`] — the 4-port output-queued ATM switch case study (§5.3).
//! * [`experiments`] — the harness regenerating every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use lotterybus_repro::lottery::{StaticLotteryArbiter, TicketAssignment};
//! use lotterybus_repro::socsim::{BusConfig, SystemBuilder};
//! use lotterybus_repro::traffic::{GeneratorSpec, SizeDist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tickets = TicketAssignment::new(vec![1, 2, 3, 4])?;
//! let arbiter = StaticLotteryArbiter::with_seed(tickets, 1)?;
//! let spec = GeneratorSpec::poisson(0.05, SizeDist::fixed(8));
//! let mut system = SystemBuilder::new(BusConfig::default())
//!     .master("c1", spec.clone().build_kind(11))
//!     .master("c2", spec.clone().build_kind(12))
//!     .master("c3", spec.clone().build_kind(13))
//!     .master("c4", spec.build_kind(14))
//!     .arbiter(arbiter)
//!     .build()?;
//! system.run(100_000);
//! # Ok(())
//! # }
//! ```

pub use arbiters;
pub use atm_switch as atm;
pub use experiments;
pub use hwmodel;
pub use lotterybus as lottery;
pub use socsim;
pub use traffic_gen as traffic;
