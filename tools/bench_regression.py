#!/usr/bin/env python3
"""Soft benchmark-regression check for suite --bench reports.

Compares the fresh report (e.g. BENCH_PR4.json) against a committed
baseline (e.g. BENCH_PR3.json) and prints a verdict per metric. The
check is *soft*: CI wall-clock numbers are noisy, so regressions are
reported as warnings and the script always exits 0. The hard gates
(byte-identity of result documents) live in the suite binary itself.

Usage: bench_regression.py CURRENT.json BASELINE.json
"""

import json
import sys

# Wall-clock comparisons tolerate this much slowdown before warning.
NOISE_TOLERANCE = 0.25

# The fast kernel must beat the cycle kernel by at least this factor on
# the mostly-idle workload...
LOWUTIL_MIN_SPEEDUP = 2.0
# ...and must not cost more than 5% at saturation.
SATURATED_MIN_RATIO = 0.95

# Saturated hot-path throughput (cycles/sec per protocol, the `hot`
# section) may drop this far against the baseline before warning.
HOT_NOISE_TOLERANCE = 0.25

# TLM kernel gates. On the forced-outcome low-utilization workload the
# TLM kernel is byte-exact and must deliver at least this speedup over
# the cycle kernel (the PR-7 acceptance target; measured ~24x).
TLM_LOWUTIL_MIN_SPEEDUP = 10.0
# At saturation it is an approximation; it should still be clearly
# faster (measured ~3.5x) ...
TLM_SATURATED_MIN_SPEEDUP = 1.5
# ... and its statistical error must stay inside these ceilings
# (measured ~0.20 utilization, ~0.15 share, ~1.0x quantile shift; the
# ceilings leave headroom for seed/window jitter without letting the
# approximation drift into a different regime).
TLM_MAX_UTILIZATION_ABS_ERROR = 0.30
TLM_MAX_SHARE_ABS_ERROR = 0.25
TLM_MAX_P99_RATIO_ERROR = 1.5

# Fleet gates (the `fleet` section, PR-9). The SoA lockstep fleet must
# beat the summed scalar cycle-kernel runs of the same lanes by at
# least this factor on the saturated long-burst probe (the PR-9
# acceptance target; measured ~12x), with every lane hard-asserted
# byte-identical to its scalar run inside the suite binary.
FLEET_MIN_SPEEDUP = 5.0
# Aggregate lane throughput may drop this far against the baseline
# before warning (same noise budget as the hot lineup).
FLEET_NOISE_TOLERANCE = 0.25

# Fleet grouped-arbitration gates (the `fleet_arb` section, PR-10).
# The flagship 5-protocol 64-word probe, now with every lane lowered
# into an SoA decision kernel and back-to-back tenures fused inside one
# poll-legality window, must beat the PR-9 baseline's aggregate fleet
# speedup by this factor (target ≈16.8x over the recorded 11.2x).
FLEET_ARB_MIN_GAIN_OVER_BASELINE = 1.5
# The TDMA lane pack — identically-configured wheels sharing one SoA
# table, replayed by the arithmetic slot-position walk — must beat its
# summed scalar runs at all (measured ~9x; the floor only asserts the
# pack is a win, since single-word grants cap the batching payoff).
FLEET_ARB_TDMA_MIN_SPEEDUP = 1.0

# Analytic-model gates (the `analytic` section, PR-8). Validation-grid
# error ceilings leave headroom over the measured quick-suite numbers
# (share max ~0.014 / mean ~0.003; latency rel max ~0.51 / mean ~0.16 —
# the worst latency cells are TDMA, whose slot-alignment wait is an
# upper bound) without letting the model drift into a different regime.
#
# The share-max ceiling is deliberately tight: the committed quick
# (60k-cycle) window measures 0.0141 — the oft-quoted 0.0068 is the
# full 200k-cycle window's number, not a drifted one (both PR-8 and
# PR-9 artifacts record identical 0.0141 digits) — and 0.02 means a
# silent doubling of the quick-window error trips the gate instead of
# hiding under a slack ceiling.
ANALYTIC_MAX_SHARE_ABS_ERROR = 0.02
ANALYTIC_MEAN_SHARE_ABS_ERROR = 0.02
ANALYTIC_MAX_LATENCY_REL_ERROR = 1.0
ANALYTIC_MEAN_LATENCY_REL_ERROR = 0.40
# The search probe must cover at least a million design points...
ANALYTIC_MIN_SEARCH_POINTS = 1_000_000
# ...inside the PR-8 acceptance wall-clock bound (measured ~0.1s).
ANALYTIC_MAX_SEARCH_WALL_SECS = 5.0
# The validation grid must keep comparing a healthy number of cells —
# a shrinking grid would hollow the error ceilings out silently.
ANALYTIC_MIN_SHARE_CELLS = 50
ANALYTIC_MIN_LATENCY_CELLS = 15


def load(path):
    with open(path) as handle:
        return json.load(handle)


def check_tlm(tlm, warn):
    """Gate the TLM kernel's speed and accuracy probes."""
    lowutil = tlm.get("lowutil", {})
    speedup = lowutil.get("speedup")
    if speedup is None:
        warn("tlm.lowutil lacks speedup")
    elif speedup < TLM_LOWUTIL_MIN_SPEEDUP:
        warn(
            f"tlm kernel speedup on the low-utilization workload is {speedup:.2f}x "
            f"(want >= {TLM_LOWUTIL_MIN_SPEEDUP:.1f}x)"
        )
    else:
        print(f"ok: tlm low-utilization speedup {speedup:.2f}x (byte-exact)")
    if lowutil.get("byte_identical") is not True:
        warn("tlm.lowutil.byte_identical is not true")

    saturated = tlm.get("saturated", {})
    speedup = saturated.get("speedup")
    if speedup is None:
        warn("tlm.saturated lacks speedup")
    elif speedup < TLM_SATURATED_MIN_SPEEDUP:
        warn(
            f"tlm kernel speedup at saturation is {speedup:.2f}x "
            f"(want >= {TLM_SATURATED_MIN_SPEEDUP:.1f}x)"
        )
    else:
        print(f"ok: tlm saturated speedup {speedup:.2f}x")

    for key, ceiling in (
        ("utilization_abs_error", TLM_MAX_UTILIZATION_ABS_ERROR),
        ("bandwidth_share_max_abs_error", TLM_MAX_SHARE_ABS_ERROR),
        ("p99_latency_max_ratio_error", TLM_MAX_P99_RATIO_ERROR),
    ):
        value = saturated.get(key)
        if value is None:
            warn(f"tlm.saturated lacks {key}")
        elif value > ceiling:
            warn(f"tlm {key} is {value:.4f} (ceiling {ceiling:.2f})")
        else:
            print(f"ok: tlm {key} {value:.4f} <= {ceiling:.2f}")


def check_analytic(analytic, warn):
    """Gate the analytic model's validation-grid error and search probe."""
    validation = analytic.get("validation", {})
    for key, ceiling in (
        ("share_max_abs_error", ANALYTIC_MAX_SHARE_ABS_ERROR),
        ("share_mean_abs_error", ANALYTIC_MEAN_SHARE_ABS_ERROR),
        ("latency_max_rel_error", ANALYTIC_MAX_LATENCY_REL_ERROR),
        ("latency_mean_rel_error", ANALYTIC_MEAN_LATENCY_REL_ERROR),
    ):
        value = validation.get(key)
        if value is None:
            warn(f"analytic.validation lacks {key}")
        elif value > ceiling:
            warn(f"analytic {key} is {value:.4f} (ceiling {ceiling:.2f})")
        else:
            print(f"ok: analytic {key} {value:.4f} <= {ceiling:.2f}")
    for key, floor in (
        ("share_cells", ANALYTIC_MIN_SHARE_CELLS),
        ("latency_cells", ANALYTIC_MIN_LATENCY_CELLS),
    ):
        value = validation.get(key)
        if value is None:
            warn(f"analytic.validation lacks {key}")
        elif value < floor:
            warn(f"analytic validation grid has only {value} {key} (floor {floor})")
        else:
            print(f"ok: analytic validation grid compares {value} {key}")

    search = analytic.get("search", {})
    points = search.get("points")
    wall = search.get("wall_secs")
    if points is None or wall is None:
        warn("analytic.search lacks points/wall_secs")
        return
    if points < ANALYTIC_MIN_SEARCH_POINTS:
        warn(
            f"analytic search scanned {points} points "
            f"(floor {ANALYTIC_MIN_SEARCH_POINTS})"
        )
    elif wall > ANALYTIC_MAX_SEARCH_WALL_SECS:
        warn(
            f"analytic search took {wall:.3f}s for {points} points "
            f"(ceiling {ANALYTIC_MAX_SEARCH_WALL_SECS:.1f}s)"
        )
    else:
        print(
            f"ok: analytic search scanned {points} points in {wall:.3f}s "
            f"({points / max(wall, 1e-12) / 1e6:.1f}M points/s, single-threaded)"
        )


def check_fleet(fleet, baseline_fleet, warn):
    """Gate the fleet probe's exactness flag and aggregate speedup."""
    if fleet.get("lane_exact") is not True:
        warn("fleet.lane_exact is not true")
    speedup = fleet.get("aggregate_speedup")
    lanes = fleet.get("lanes", "?")
    if speedup is None:
        warn("fleet section lacks aggregate_speedup")
    elif speedup < FLEET_MIN_SPEEDUP:
        warn(
            f"fleet aggregate speedup is {speedup:.2f}x over {lanes} lanes "
            f"(want >= {FLEET_MIN_SPEEDUP:.1f}x vs independent scalar runs)"
        )
    else:
        print(f"ok: fleet aggregate speedup {speedup:.2f}x over {lanes} lanes (lane-exact)")

    now = fleet.get("lane_cycles_per_sec")
    if now is None:
        warn("fleet section lacks lane_cycles_per_sec")
        return
    was = (baseline_fleet or {}).get("lane_cycles_per_sec")
    if was is None:
        print(f"info: fleet {now / 1e6:.2f}M lane-cycles/s (no baseline)")
    elif was > 0 and now < was * (1 - FLEET_NOISE_TOLERANCE):
        warn(f"fleet throughput regressed: {was / 1e6:.2f}M -> {now / 1e6:.2f}M lane-cycles/s")
    else:
        print(f"ok: fleet {was / 1e6:.2f}M -> {now / 1e6:.2f}M lane-cycles/s")


def check_fleet_arb(fleet_arb, baseline, warn):
    """Gate the grouped-arbitration fleet probes (PR-10).

    The flagship probe must hold a >=1.5x gain over the *baseline
    report's* plain fleet speedup; the TDMA pack must beat its summed
    scalar runs at all. Pre-PR10 baselines still carry the plain
    `fleet` section this compares against.
    """
    probe = fleet_arb.get("probe", {})
    speedup = probe.get("aggregate_speedup")
    if probe.get("lane_exact") is not True:
        warn("fleet_arb.probe.lane_exact is not true")
    if probe.get("lanes_lowered") != probe.get("lanes"):
        warn(
            f"fleet_arb probe lowered only {probe.get('lanes_lowered')} of "
            f"{probe.get('lanes')} lanes into SoA kernels"
        )
    baseline_speedup = ((baseline or {}).get("fleet") or {}).get("aggregate_speedup")
    if speedup is None:
        warn("fleet_arb.probe lacks aggregate_speedup")
    elif baseline_speedup is None:
        print(f"info: fleet_arb probe {speedup:.2f}x aggregate (no fleet baseline)")
    elif speedup < baseline_speedup * FLEET_ARB_MIN_GAIN_OVER_BASELINE:
        warn(
            f"fleet_arb probe aggregate speedup is {speedup:.2f}x "
            f"(want >= {FLEET_ARB_MIN_GAIN_OVER_BASELINE:.1f}x the baseline's "
            f"{baseline_speedup:.2f}x = {baseline_speedup * FLEET_ARB_MIN_GAIN_OVER_BASELINE:.2f}x)"
        )
    else:
        print(
            f"ok: fleet_arb probe {speedup:.2f}x aggregate >= "
            f"{FLEET_ARB_MIN_GAIN_OVER_BASELINE:.1f}x baseline {baseline_speedup:.2f}x"
        )

    tdma = fleet_arb.get("tdma", {})
    tdma_speedup = tdma.get("aggregate_speedup")
    if tdma.get("lane_exact") is not True:
        warn("fleet_arb.tdma.lane_exact is not true")
    if tdma_speedup is None:
        warn("fleet_arb.tdma lacks aggregate_speedup")
    elif tdma_speedup < FLEET_ARB_TDMA_MIN_SPEEDUP:
        warn(
            f"fleet_arb tdma pack aggregate speedup is {tdma_speedup:.2f}x "
            f"(want > {FLEET_ARB_TDMA_MIN_SPEEDUP:.1f}x vs summed scalar runs)"
        )
    else:
        kernels = tdma.get("kernels", "?")
        print(
            f"ok: fleet_arb tdma pack {tdma_speedup:.2f}x aggregate over "
            f"{tdma.get('lanes', '?')} lanes sharing {kernels} wheel kernel(s)"
        )


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 0
    current = load(argv[1])
    try:
        baseline = load(argv[2])
    except OSError as error:
        print(f"note: no baseline ({error}); skipping wall-clock comparison")
        baseline = None

    warnings = 0

    def warn(message):
        nonlocal warnings
        warnings += 1
        print(f"WARNING: {message}")

    if baseline is not None:
        for key in (
            "serial_wall_secs",
            "parallel_wall_secs",
            "metrics_serial_wall_secs",
            "scenario_suite_wall_secs",
        ):
            if key not in current or key not in baseline:
                continue
            was, now = baseline[key], current[key]
            if was > 0 and now > was * (1 + NOISE_TOLERANCE):
                warn(f"{key} regressed: {was:.3f}s -> {now:.3f}s")
            else:
                print(f"ok: {key} {was:.3f}s -> {now:.3f}s")

    # Scenario-suite bench documents carry only wall-clock keys; the
    # kernel and hot-path sections below apply to suite --bench reports.
    is_suite_report = any(
        key in current for key in ("kernel_lowutil", "kernel_saturated", "hot")
    )
    if not is_suite_report:
        if warnings:
            print(f"{warnings} warning(s); soft check, exiting 0")
        else:
            print("benchmark comparison clean")
        return 0

    lowutil = current.get("kernel_lowutil", {}).get("speedup")
    if lowutil is None:
        warn("report lacks kernel_lowutil.speedup (old report format?)")
    elif lowutil < LOWUTIL_MIN_SPEEDUP:
        warn(
            f"fast kernel speedup on the low-utilization workload is {lowutil:.2f}x "
            f"(want >= {LOWUTIL_MIN_SPEEDUP:.1f}x)"
        )
    else:
        print(f"ok: fast kernel low-utilization speedup {lowutil:.2f}x")

    saturated = current.get("kernel_saturated", {}).get("speedup")
    if saturated is None:
        warn("report lacks kernel_saturated.speedup (old report format?)")
    elif saturated < SATURATED_MIN_RATIO:
        warn(
            f"fast kernel is {saturated:.2f}x at saturation "
            f"(slower than the {SATURATED_MIN_RATIO:.2f}x floor)"
        )
    else:
        print(f"ok: fast kernel saturated ratio {saturated:.2f}x")

    suite = current.get("kernel_suite_speedup")
    if suite is not None:
        print(f"info: whole-suite fast-kernel speedup {suite:.2f}x")

    tlm = current.get("tlm")
    if tlm is None:
        warn("report lacks the tlm probe section (old report format?)")
    else:
        check_tlm(tlm, warn)

    analytic = current.get("analytic")
    if analytic is None:
        # Pre-PR8 reports (e.g. the PR7 baseline re-checked in CI) have
        # no analytic section; only warn for fresh reports that should.
        print("note: report has no analytic section (pre-PR8 format)")
    else:
        check_analytic(analytic, warn)

    fleet = current.get("fleet")
    if fleet is None:
        # Pre-PR9 reports (e.g. the PR8 baseline re-checked in CI) have
        # no fleet section; only warn for fresh reports that should.
        print("note: report has no fleet section (pre-PR9 format)")
    else:
        check_fleet(fleet, (baseline or {}).get("fleet"), warn)

    fleet_arb = current.get("fleet_arb")
    if fleet_arb is None:
        # Pre-PR10 reports (e.g. the PR9 baseline re-checked in CI)
        # have no grouped-arbitration section; note and skip.
        print("note: report has no fleet_arb section (pre-PR10 format)")
    else:
        check_fleet_arb(fleet_arb, baseline, warn)

    hot = current.get("hot", {}).get("protocols")
    if hot is None:
        warn("report lacks the hot-path lineup (old report format?)")
    else:
        baseline_hot = (baseline or {}).get("hot", {}).get("protocols", {})
        for name, probe in hot.items():
            now = probe.get("cycles_per_sec")
            if now is None:
                warn(f"hot.{name} lacks cycles_per_sec")
                continue
            was = baseline_hot.get(name, {}).get("cycles_per_sec")
            if was is None:
                print(f"info: hot {name} {now / 1e6:.2f}M cycles/s (no baseline)")
            elif was > 0 and now < was * (1 - HOT_NOISE_TOLERANCE):
                warn(
                    f"hot {name} regressed: {was / 1e6:.2f}M -> {now / 1e6:.2f}M cycles/s"
                )
            else:
                print(f"ok: hot {name} {was / 1e6:.2f}M -> {now / 1e6:.2f}M cycles/s")

    if warnings:
        print(f"{warnings} warning(s); soft check, exiting 0")
    else:
        print("benchmark comparison clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
