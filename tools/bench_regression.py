#!/usr/bin/env python3
"""Soft benchmark-regression check for suite --bench reports.

Compares the fresh report (e.g. BENCH_PR4.json) against a committed
baseline (e.g. BENCH_PR3.json) and prints a verdict per metric. The
check is *soft*: CI wall-clock numbers are noisy, so regressions are
reported as warnings and the script always exits 0. The hard gates
(byte-identity of result documents) live in the suite binary itself.

Usage: bench_regression.py CURRENT.json BASELINE.json
"""

import json
import sys

# Wall-clock comparisons tolerate this much slowdown before warning.
NOISE_TOLERANCE = 0.25

# The fast kernel must beat the cycle kernel by at least this factor on
# the mostly-idle workload...
LOWUTIL_MIN_SPEEDUP = 2.0
# ...and must not cost more than 5% at saturation.
SATURATED_MIN_RATIO = 0.95

# Saturated hot-path throughput (cycles/sec per protocol, the `hot`
# section) may drop this far against the baseline before warning.
HOT_NOISE_TOLERANCE = 0.25


def load(path):
    with open(path) as handle:
        return json.load(handle)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 0
    current = load(argv[1])
    try:
        baseline = load(argv[2])
    except OSError as error:
        print(f"note: no baseline ({error}); skipping wall-clock comparison")
        baseline = None

    warnings = 0

    def warn(message):
        nonlocal warnings
        warnings += 1
        print(f"WARNING: {message}")

    if baseline is not None:
        for key in (
            "serial_wall_secs",
            "parallel_wall_secs",
            "metrics_serial_wall_secs",
            "scenario_suite_wall_secs",
        ):
            if key not in current or key not in baseline:
                continue
            was, now = baseline[key], current[key]
            if was > 0 and now > was * (1 + NOISE_TOLERANCE):
                warn(f"{key} regressed: {was:.3f}s -> {now:.3f}s")
            else:
                print(f"ok: {key} {was:.3f}s -> {now:.3f}s")

    # Scenario-suite bench documents carry only wall-clock keys; the
    # kernel and hot-path sections below apply to suite --bench reports.
    is_suite_report = any(
        key in current for key in ("kernel_lowutil", "kernel_saturated", "hot")
    )
    if not is_suite_report:
        if warnings:
            print(f"{warnings} warning(s); soft check, exiting 0")
        else:
            print("benchmark comparison clean")
        return 0

    lowutil = current.get("kernel_lowutil", {}).get("speedup")
    if lowutil is None:
        warn("report lacks kernel_lowutil.speedup (old report format?)")
    elif lowutil < LOWUTIL_MIN_SPEEDUP:
        warn(
            f"fast kernel speedup on the low-utilization workload is {lowutil:.2f}x "
            f"(want >= {LOWUTIL_MIN_SPEEDUP:.1f}x)"
        )
    else:
        print(f"ok: fast kernel low-utilization speedup {lowutil:.2f}x")

    saturated = current.get("kernel_saturated", {}).get("speedup")
    if saturated is None:
        warn("report lacks kernel_saturated.speedup (old report format?)")
    elif saturated < SATURATED_MIN_RATIO:
        warn(
            f"fast kernel is {saturated:.2f}x at saturation "
            f"(slower than the {SATURATED_MIN_RATIO:.2f}x floor)"
        )
    else:
        print(f"ok: fast kernel saturated ratio {saturated:.2f}x")

    suite = current.get("kernel_suite_speedup")
    if suite is not None:
        print(f"info: whole-suite fast-kernel speedup {suite:.2f}x")

    hot = current.get("hot", {}).get("protocols")
    if hot is None:
        warn("report lacks the hot-path lineup (old report format?)")
    else:
        baseline_hot = (baseline or {}).get("hot", {}).get("protocols", {})
        for name, probe in hot.items():
            now = probe.get("cycles_per_sec")
            if now is None:
                warn(f"hot.{name} lacks cycles_per_sec")
                continue
            was = baseline_hot.get(name, {}).get("cycles_per_sec")
            if was is None:
                print(f"info: hot {name} {now / 1e6:.2f}M cycles/s (no baseline)")
            elif was > 0 and now < was * (1 - HOT_NOISE_TOLERANCE):
                warn(
                    f"hot {name} regressed: {was / 1e6:.2f}M -> {now / 1e6:.2f}M cycles/s"
                )
            else:
                print(f"ok: hot {name} {was / 1e6:.2f}M -> {now / 1e6:.2f}M cycles/s")

    if warnings:
        print(f"{warnings} warning(s); soft check, exiting 0")
    else:
        print("benchmark comparison clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
