#!/usr/bin/env python3
"""Check that relative markdown links point at files — and anchors — that exist.

Usage: tools/check_doc_links.py README.md DESIGN.md EXPERIMENTS.md ...

Scans each document for inline markdown links `[text](target)` and
verifies that

* every relative target resolves to a file or directory in the
  repository (external URLs are skipped), and
* every anchor — `#section` in the same file or `OTHER.md#section`
  across files — matches a heading in the target document, using
  GitHub's heading-to-anchor slug rules.

Exits non-zero and lists every broken link, so CI fails when a doc
refactor leaves a dangling reference or renames a section out from
under a cross-link.
"""

import os
import re
import sys

# Inline links only; reference-style links are not used in this repo.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)
# Strip inline code/emphasis markers and links before slugifying.
MARKUP = re.compile(r"[`*_]|\[([^\]]*)\]\([^)]*\)")


def slugify(title: str) -> str:
    """GitHub's heading anchor: lowercase, punctuation dropped,
    spaces to hyphens."""
    title = MARKUP.sub(lambda m: m.group(1) or "", title)
    title = title.strip().lower()
    title = re.sub(r"[^\w\- ]", "", title)
    return title.replace(" ", "-")


def anchors_of(path: str) -> set[str]:
    """Every anchor a document's headings define (duplicate headings
    get -1/-2/... suffixes, all accepted)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    # Headings inside fenced code blocks are not anchors.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    seen: dict[str, int] = {}
    anchors = set()
    for match in HEADING.finditer(text):
        slug = slugify(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def check(path: str) -> list[str]:
    broken = []
    root = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        line = text.count("\n", 0, match.start()) + 1
        file_part, _, anchor = target.partition("#")
        resolved = path if not file_part else os.path.join(root, file_part)
        if file_part and not os.path.exists(resolved):
            broken.append(f"{path}:{line}: broken link -> {file_part}")
            continue
        if not anchor:
            continue
        if not resolved.endswith((".md", ".markdown")):
            continue  # anchors into non-markdown files are not checked
        if slugify(anchor) not in anchors_of(resolved):
            broken.append(
                f"{path}:{line}: broken anchor -> {file_part or os.path.basename(path)}"
                f"#{anchor}"
            )
    return broken


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for doc in sys.argv[1:]:
        failures.extend(check(doc))
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"{len(failures)} broken link(s)", file=sys.stderr)
        return 1
    print(f"doc links OK across {len(sys.argv) - 1} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
