#!/usr/bin/env python3
"""Check that relative markdown links point at files that exist.

Usage: tools/check_doc_links.py README.md DESIGN.md EXPERIMENTS.md ...

Scans each document for inline markdown links `[text](target)` and
verifies every relative target resolves to a file or directory in the
repository (anchors and external URLs are skipped). Exits non-zero and
lists every broken link, so CI fails when a doc refactor leaves a
dangling reference.
"""

import os
import re
import sys

# Inline links only; reference-style links are not used in this repo.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check(path: str) -> list[str]:
    broken = []
    root = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]  # strip in-file anchors
        if not target:
            continue
        line = text.count("\n", 0, match.start()) + 1
        if not os.path.exists(os.path.join(root, target)):
            broken.append(f"{path}:{line}: broken link -> {target}")
    return broken


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for doc in sys.argv[1:]:
        failures.extend(check(doc))
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"{len(failures)} broken link(s)", file=sys.stderr)
        return 1
    print(f"doc links OK across {len(sys.argv) - 1} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
