//! Empirical validation of the paper's starvation-freedom claim (§4.2).
//!
//! The paper argues LOTTERYBUS cannot starve a component because the
//! probability of winning within `n` lotteries, `p = 1 − (1 − t/T)^n`,
//! "converges rapidly to one". This experiment measures that CDF on a
//! live bus — a saturating heavy competitor versus a light observed
//! component holding `t` of `T` tickets — and prints predicted vs
//! measured side by side, together with the fairness of the resulting
//! allocation under every arbiter.

use crate::common::{self, RunSettings};
use crate::json::{Json, ToJson};
use crate::runner;
use lotterybus::{analysis, StaticLotteryArbiter, TicketAssignment};
use serde::{Deserialize, Serialize};
use socsim::stats::jain_fairness_index;
use socsim::{BusConfig, MasterId, SystemBuilder};
use traffic_gen::{GeneratorSpec, SizeDist};

/// One row of the win-within-n CDF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdfPoint {
    /// Number of lottery drawings.
    pub drawings: u32,
    /// Closed-form `1 − (1 − t/T)^n`.
    pub predicted: f64,
    /// Fraction of observed transactions granted within `drawings`
    /// competitor grants.
    pub measured: f64,
}

/// The starvation experiment results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Starvation {
    /// Tickets held by the observed component.
    pub tickets: u32,
    /// Total tickets in play while both contend.
    pub total: u32,
    /// Predicted-vs-measured CDF of lotteries-to-win.
    pub cdf: Vec<CdfPoint>,
    /// Weighted Jain fairness (share ÷ weight) of a saturated 1:2:3:4
    /// system under each arbiter, in [`FAIRNESS_PROTOCOLS`] order.
    pub fairness: Vec<f64>,
}

/// Protocol order of [`Starvation::fairness`].
pub const FAIRNESS_PROTOCOLS: [&str; 5] =
    ["static-priority", "round-robin", "deficit-rr", "tdma-2level", "lottery-static"];

/// Runs the starvation experiment: a 1-of-10 ticket holder with light
/// traffic against a 9-of-10 saturating competitor.
pub fn run(settings: &RunSettings) -> Starvation {
    // The long CDF simulation and the five fairness runs are
    // independent; run them side by side.
    let (cdf, fairness) = runner::join(settings, || cdf_curve(settings), || fairness_row(settings));
    Starvation { tickets: 1, total: 10, cdf, fairness }
}

fn cdf_curve(settings: &RunSettings) -> Vec<CdfPoint> {
    let (tickets, total) = (1u32, 10u32);
    // The light component issues single-word messages so each
    // transaction's wait counts whole competitor grants.
    let light = GeneratorSpec::poisson(0.001, SizeDist::fixed(1));
    let heavy = GeneratorSpec::poisson(0.08, SizeDist::fixed(16));
    let assignment = TicketAssignment::new(vec![tickets, total - tickets]).expect("valid tickets");
    let mut system = SystemBuilder::new(BusConfig::default())
        .kernel(settings.kernel)
        .master("observed", light.build_kind(settings.seed))
        .master("competitor", heavy.build_kind(settings.seed + 1))
        .arbiter(
            StaticLotteryArbiter::with_seed(assignment, settings.seed as u32 | 1).expect("valid"),
        )
        .build()
        .expect("valid system");
    system.warm_up(settings.warmup);
    system.run(settings.measure * 4);
    let observed = system.stats().master(MasterId::new(0));

    // Convert the wait histogram into "competitor grants waited": each
    // lost lottery costs one competitor burst of up to 16 cycles.
    [1u32, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|drawings| {
            let within_cycles = u64::from(drawings) * 16;
            let measured =
                observed.latency_histogram.fraction_at_most(within_cycles).unwrap_or(0.0);
            CdfPoint {
                drawings,
                predicted: analysis::win_within_probability(tickets, total, drawings),
                measured: measured.min(1.0),
            }
        })
        .collect()
}

fn fairness_row(settings: &RunSettings) -> Vec<f64> {
    let weights = [1u32, 2, 3, 4];
    let protocols: Vec<usize> = (0..FAIRNESS_PROTOCOLS.len()).collect();
    runner::map(settings, &protocols, |_, &protocol| {
        let arbiter = common::protocol_arbiter(protocol, settings.seed);
        let stats =
            common::run_system(&traffic_gen::classes::saturating_specs(4), arbiter, settings);
        let weighted: Vec<f64> = (0..4)
            .map(|i| stats.bandwidth_fraction(MasterId::new(i)) / f64::from(weights[i]))
            .collect();
        jain_fairness_index(&weighted)
    })
}

impl ToJson for Starvation {
    fn to_json(&self) -> Json {
        let cdf: Vec<Json> = self
            .cdf
            .iter()
            .map(|p| {
                Json::obj()
                    .field("drawings", p.drawings)
                    .field("predicted", p.predicted)
                    .field("measured", p.measured)
            })
            .collect();
        Json::obj()
            .field("tickets", self.tickets)
            .field("total", self.total)
            .field("cdf", Json::Arr(cdf))
            .field(
                "fairness_protocols",
                Json::Arr(FAIRNESS_PROTOCOLS.iter().map(|&n| n.into()).collect()),
            )
            .field("fairness", self.fairness.clone())
    }
}

impl std::fmt::Display for Starvation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Starvation bound: P(win within n lotteries), {} of {} tickets",
            self.tickets, self.total
        )?;
        writeln!(f, "{:>10} {:>11} {:>11}", "drawings", "predicted", "measured")?;
        for point in &self.cdf {
            writeln!(
                f,
                "{:>10} {:>10.1}% {:>10.1}%",
                point.drawings,
                point.predicted * 100.0,
                point.measured * 100.0
            )?;
        }
        writeln!(f)?;
        writeln!(f, "Weighted Jain fairness of a saturated 1:2:3:4 system:")?;
        for (name, value) in FAIRNESS_PROTOCOLS.iter().zip(&self.fairness) {
            writeln!(f, "  {name:<16} {value:.3}")?;
        }
        write!(f, "(1.000 = shares exactly proportional to weights)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_cdf_tracks_the_closed_form() {
        let settings = RunSettings { measure: 60_000, warmup: 5_000, ..RunSettings::quick() };
        let result = run(&settings);
        for point in &result.cdf {
            // The histogram is 2x-coarse and the competitor's grants are
            // shorter than 16 cycles on average, so allow generous slack
            // — but the measured CDF must climb with the prediction and
            // never show starvation where the bound promises service.
            assert!(
                point.measured + 0.25 >= point.predicted,
                "n={}: measured {:.2} far below predicted {:.2}",
                point.drawings,
                point.measured,
                point.predicted,
            );
        }
        let last = result.cdf.last().expect("points");
        assert!(last.measured > 0.9, "32 drawings should serve >90%: {:.2}", last.measured);
    }

    #[test]
    fn lottery_is_the_fairest_weighted_allocator() {
        let settings = RunSettings { measure: 40_000, warmup: 5_000, ..RunSettings::quick() };
        let result = run(&settings);
        let lottery = result.fairness[4];
        assert!(lottery > 0.99, "lottery weighted fairness {lottery:.3}");
        // Static priority is maximally unfair under saturation.
        assert!(result.fairness[0] < 0.7, "priority fairness {:.3}", result.fairness[0]);
        // Round-robin ignores weights entirely, so its *weighted*
        // fairness is poor too.
        assert!(result.fairness[1] < lottery);
    }
}
