//! Figure 4: bandwidth sharing under the static-priority architecture.
//!
//! Four masters with saturating traffic contend under every possible
//! priority assignment. The paper's observations, which this experiment
//! reproduces: the bandwidth fraction a component receives is extremely
//! sensitive to its priority, and low-priority components are starved
//! (C1 received an average of ~0.1% across the combinations where it is
//! lowest priority).

use crate::common::{self, RunSettings};
use crate::json::{Json, ToJson};
use crate::runner;
use arbiters::StaticPriorityArbiter;
use serde::{Deserialize, Serialize};

/// One bar of Figure 4: a priority assignment and the measured
/// per-component bandwidth fractions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Priority assignment label, e.g. `"1234"` (C1 lowest … C4 highest).
    pub assignment: String,
    /// Priority value per component (larger = higher priority).
    pub priorities: Vec<u32>,
    /// Measured bandwidth fraction per component.
    pub bandwidth: Vec<f64>,
}

/// The full figure: one row per priority permutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4 {
    /// Rows in lexicographic assignment order (the paper's x-axis).
    pub rows: Vec<Fig4Row>,
}

/// Runs the Figure 4 experiment. The 24 permutations are independent
/// simulations, so they fan out across `settings.jobs` workers with
/// results collected in permutation order.
pub fn run(settings: &RunSettings) -> Fig4 {
    let specs = traffic_gen::classes::saturating_specs(4);
    let perms = common::permutations(4);
    let rows = runner::map(settings, &perms, |_, perm| {
        let arbiter = StaticPriorityArbiter::new(perm.clone()).expect("unique priorities");
        let stats = common::run_system(&specs, Box::new(arbiter), settings);
        Fig4Row {
            assignment: common::permutation_label(perm),
            priorities: perm.clone(),
            bandwidth: common::bandwidth_fractions(&stats, 4),
        }
    });
    Fig4 { rows }
}

impl Fig4 {
    /// Bandwidth fraction of component `c` (0-based) in row `row`.
    pub fn fraction(&self, row: usize, c: usize) -> f64 {
        self.rows[row].bandwidth[c]
    }

    /// Range (min, max) of a component's bandwidth fraction across all
    /// priority assignments — the paper quotes C1 spanning 0.6%–77.8%.
    pub fn component_range(&self, c: usize) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &self.rows {
            lo = lo.min(row.bandwidth[c]);
            hi = hi.max(row.bandwidth[c]);
        }
        (lo, hi)
    }

    /// Mean bandwidth of component `c` over the rows where it holds the
    /// lowest priority (the starvation statistic of Example 1).
    pub fn mean_when_lowest_priority(&self, c: usize) -> f64 {
        let rows: Vec<&Fig4Row> = self.rows.iter().filter(|r| r.priorities[c] == 1).collect();
        rows.iter().map(|r| r.bandwidth[c]).sum::<f64>() / rows.len() as f64
    }
}

impl ToJson for Fig4Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("assignment", self.assignment.as_str())
            .field("priorities", self.priorities.clone())
            .field("bandwidth", self.bandwidth.clone())
    }
}

impl ToJson for Fig4 {
    fn to_json(&self) -> Json {
        Json::obj().field("rows", self.rows.to_json())
    }
}

impl std::fmt::Display for Fig4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 4: bandwidth sharing under static priority (saturated bus)")?;
        writeln!(f, "{:>10} {:>8} {:>8} {:>8} {:>8}", "assign", "C1", "C2", "C3", "C4")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>10} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                row.assignment,
                row.bandwidth[0] * 100.0,
                row.bandwidth[1] * 100.0,
                row.bandwidth[2] * 100.0,
                row.bandwidth[3] * 100.0,
            )?;
        }
        let (lo, hi) = self.component_range(0);
        write!(
            f,
            "C1 bandwidth ranges from {:.1}% to {:.1}%; mean when lowest priority: {:.2}%",
            lo * 100.0,
            hi * 100.0,
            self.mean_when_lowest_priority(0) * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_steps_and_starvation() {
        let fig = run(&RunSettings { measure: 30_000, warmup: 5_000, ..RunSettings::quick() });
        assert_eq!(fig.rows.len(), 24);
        // Bandwidth is a steep step function of priority: the range of
        // C1's share across assignments must span a wide interval.
        let (lo, hi) = fig.component_range(0);
        assert!(lo < 0.05, "starved share {lo}");
        assert!(hi > 0.30, "top-priority share {hi}");
        // Starvation: when lowest priority, C1 gets a tiny share.
        assert!(fig.mean_when_lowest_priority(0) < 0.05);
    }

    #[test]
    fn highest_priority_component_dominates() {
        let fig = run(&RunSettings { measure: 20_000, warmup: 5_000, ..RunSettings::quick() });
        for row in &fig.rows {
            let top = row.priorities.iter().position(|&p| p == 4).expect("has top");
            let bottom = row.priorities.iter().position(|&p| p == 1).expect("has bottom");
            assert!(
                row.bandwidth[top] > row.bandwidth[bottom],
                "row {}: top {} <= bottom {}",
                row.assignment,
                row.bandwidth[top],
                row.bandwidth[bottom],
            );
        }
    }
}
