//! Figure 4: bandwidth sharing under the static-priority architecture.
//!
//! Four masters with saturating traffic contend under every possible
//! priority assignment. The paper's observations, which this experiment
//! reproduces: the bandwidth fraction a component receives is extremely
//! sensitive to its priority, and low-priority components are starved
//! (C1 received an average of ~0.1% across the combinations where it is
//! lowest priority).

use crate::common::{self, RunSettings};
use crate::json::{Json, ToJson};
use crate::runner;
use arbiters::StaticPriorityArbiter;
use serde::{Deserialize, Serialize};

/// One bar of Figure 4: a priority assignment and the measured
/// per-component bandwidth fractions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Priority assignment label, e.g. `"1234"` (C1 lowest … C4 highest).
    pub assignment: String,
    /// Priority value per component (larger = higher priority).
    pub priorities: Vec<u32>,
    /// Measured bandwidth fraction per component.
    pub bandwidth: Vec<f64>,
}

/// The full figure: one row per priority permutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4 {
    /// Rows in lexicographic assignment order (the paper's x-axis).
    pub rows: Vec<Fig4Row>,
}

/// Runs the Figure 4 experiment. The 24 permutations are independent
/// simulations, so they fan out across `settings.jobs` workers with
/// results collected in permutation order.
pub fn run(settings: &RunSettings) -> Fig4 {
    let specs = traffic_gen::classes::saturating_specs(4);
    let perms = common::permutations(4);
    let rows = runner::map(settings, &perms, |_, perm| {
        let arbiter = StaticPriorityArbiter::new(perm.clone()).expect("unique priorities");
        let stats = common::run_system(&specs, Box::new(arbiter), settings);
        Fig4Row {
            assignment: common::permutation_label(perm),
            priorities: perm.clone(),
            bandwidth: common::bandwidth_fractions(&stats, 4),
        }
    });
    Fig4 { rows }
}

impl Fig4 {
    /// Bandwidth fraction of component `c` (0-based) in row `row`.
    pub fn fraction(&self, row: usize, c: usize) -> f64 {
        self.rows[row].bandwidth[c]
    }

    /// Range (min, max) of a component's bandwidth fraction across all
    /// priority assignments — the paper quotes C1 spanning 0.6%–77.8%.
    pub fn component_range(&self, c: usize) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &self.rows {
            lo = lo.min(row.bandwidth[c]);
            hi = hi.max(row.bandwidth[c]);
        }
        (lo, hi)
    }

    /// Mean bandwidth of component `c` over the rows where it holds the
    /// lowest priority (the starvation statistic of Example 1).
    pub fn mean_when_lowest_priority(&self, c: usize) -> f64 {
        let rows: Vec<&Fig4Row> = self.rows.iter().filter(|r| r.priorities[c] == 1).collect();
        rows.iter().map(|r| r.bandwidth[c]).sum::<f64>() / rows.len() as f64
    }
}

/// One metrics window of the starvation time-series: when it started,
/// how long it was, and what each component got within it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// First cycle of the window (measured interval starts at 0).
    pub start: u64,
    /// Window length in cycles (the tail window may be short).
    pub cycles: u64,
    /// Bandwidth fraction per component *within this window*.
    pub share: Vec<f64>,
    /// Transaction backlog per component at window close.
    pub queue_depth: Vec<u64>,
}

/// The Figure 4 starvation story replayed as a time-series: the same
/// saturated four-master workload observed window by window under the
/// assignment where C1 is lowest (priorities/tickets `1,2,3,4`).
///
/// The aggregate numbers of [`Fig4`] say C1 averages ~0.1% under static
/// priority; the windowed view shows the *texture* of that starvation —
/// under priority C1 receives nothing in almost every window while its
/// queue grows without bound, whereas the lottery's probabilistic
/// grants give C1 a small share in window after window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Timeseries {
    /// Metrics window length in cycles.
    pub window: u64,
    /// Windowed view under static priority (C1 lowest).
    pub priority: Vec<TimeWindow>,
    /// Windowed view under the static lottery (C1 holds 1 of 10 tickets).
    pub lottery: Vec<TimeWindow>,
}

/// Runs the windowed starvation experiment. The measured interval is
/// split into ~50 windows; the two arbiters are independent simulations
/// and fan out across `settings.jobs` workers.
pub fn run_timeseries(settings: &RunSettings) -> Fig4Timeseries {
    let window = (settings.measure / 50).max(1);
    let protocols = [0usize, 4]; // static priority, static lottery
    let series = runner::map(settings, &protocols, |_, &index| {
        let specs = traffic_gen::classes::saturating_specs(4);
        let arbiter = common::protocol_arbiter(index, settings.seed);
        let (_, samples) = common::run_system_timeseries(&specs, arbiter, settings, window);
        samples
            .iter()
            .map(|s| TimeWindow {
                start: s.start.index(),
                cycles: s.cycles,
                share: (0..4).map(|m| s.bandwidth_share(m)).collect(),
                queue_depth: s.per_master.iter().map(|m| m.queue_depth).collect(),
            })
            .collect::<Vec<_>>()
    });
    let mut series = series.into_iter();
    Fig4Timeseries {
        window,
        priority: series.next().expect("priority series"),
        lottery: series.next().expect("lottery series"),
    }
}

impl Fig4Timeseries {
    /// Fraction of windows in which component `c` received **zero**
    /// bandwidth under the given series — the windowed starvation
    /// statistic.
    pub fn starved_fraction(series: &[TimeWindow], c: usize) -> f64 {
        if series.is_empty() {
            return 0.0;
        }
        let starved = series.iter().filter(|w| w.share[c] == 0.0).count();
        starved as f64 / series.len() as f64
    }

    /// Mean within-window bandwidth share of component `c`.
    pub fn mean_share(series: &[TimeWindow], c: usize) -> f64 {
        if series.is_empty() {
            return 0.0;
        }
        series.iter().map(|w| w.share[c]).sum::<f64>() / series.len() as f64
    }

    /// Renders a one-character-per-window sparkline of component `c`'s
    /// share (` ` = zero through `#` = ≥ its fair share of 10%×4).
    pub fn sparkline(series: &[TimeWindow], c: usize) -> String {
        const LEVELS: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];
        series
            .iter()
            .map(|w| {
                // Scale so that 40% of the bus saturates the ramp.
                let level = (w.share[c] * 2.5 * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[level.min(LEVELS.len() - 1)]
            })
            .collect()
    }
}

impl ToJson for TimeWindow {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("start", self.start)
            .field("cycles", self.cycles)
            .field("share", self.share.clone())
            .field("queue_depth", self.queue_depth.clone())
    }
}

impl ToJson for Fig4Timeseries {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("window", self.window)
            .field("priority", self.priority.to_json())
            .field("lottery", self.lottery.to_json())
    }
}

impl std::fmt::Display for Fig4Timeseries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 4 time-series: C1 bandwidth per {}-cycle window (assignment 1234)",
            self.window
        )?;
        writeln!(f, "  priority [{}]", Self::sparkline(&self.priority, 0))?;
        writeln!(f, "  lottery  [{}]", Self::sparkline(&self.lottery, 0))?;
        write!(
            f,
            "C1 starved windows: priority {:.0}%, lottery {:.0}%; mean C1 share: {:.2}% vs {:.2}%",
            Self::starved_fraction(&self.priority, 0) * 100.0,
            Self::starved_fraction(&self.lottery, 0) * 100.0,
            Self::mean_share(&self.priority, 0) * 100.0,
            Self::mean_share(&self.lottery, 0) * 100.0,
        )
    }
}

impl ToJson for Fig4Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("assignment", self.assignment.as_str())
            .field("priorities", self.priorities.clone())
            .field("bandwidth", self.bandwidth.clone())
    }
}

impl ToJson for Fig4 {
    fn to_json(&self) -> Json {
        Json::obj().field("rows", self.rows.to_json())
    }
}

impl std::fmt::Display for Fig4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 4: bandwidth sharing under static priority (saturated bus)")?;
        writeln!(f, "{:>10} {:>8} {:>8} {:>8} {:>8}", "assign", "C1", "C2", "C3", "C4")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>10} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                row.assignment,
                row.bandwidth[0] * 100.0,
                row.bandwidth[1] * 100.0,
                row.bandwidth[2] * 100.0,
                row.bandwidth[3] * 100.0,
            )?;
        }
        let (lo, hi) = self.component_range(0);
        write!(
            f,
            "C1 bandwidth ranges from {:.1}% to {:.1}%; mean when lowest priority: {:.2}%",
            lo * 100.0,
            hi * 100.0,
            self.mean_when_lowest_priority(0) * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_steps_and_starvation() {
        let fig = run(&RunSettings { measure: 30_000, warmup: 5_000, ..RunSettings::quick() });
        assert_eq!(fig.rows.len(), 24);
        // Bandwidth is a steep step function of priority: the range of
        // C1's share across assignments must span a wide interval.
        let (lo, hi) = fig.component_range(0);
        assert!(lo < 0.05, "starved share {lo}");
        assert!(hi > 0.30, "top-priority share {hi}");
        // Starvation: when lowest priority, C1 gets a tiny share.
        assert!(fig.mean_when_lowest_priority(0) < 0.05);
    }

    #[test]
    fn timeseries_shows_persistent_priority_starvation() {
        let settings = RunSettings { measure: 30_000, warmup: 5_000, ..RunSettings::quick() };
        let ts = run_timeseries(&settings);
        assert_eq!(ts.window, 600);
        assert_eq!(ts.priority.len(), 50);
        assert_eq!(ts.lottery.len(), 50);
        assert_eq!(ts.priority.iter().map(|w| w.cycles).sum::<u64>(), 30_000);
        // Under static priority C1 (lowest) gets nothing in nearly
        // every window; under the lottery it is starved far less often.
        let starved_priority = Fig4Timeseries::starved_fraction(&ts.priority, 0);
        let starved_lottery = Fig4Timeseries::starved_fraction(&ts.lottery, 0);
        assert!(starved_priority > 0.8, "priority starved fraction {starved_priority}");
        assert!(starved_lottery < 0.5, "lottery starved fraction {starved_lottery}");
        assert!(
            Fig4Timeseries::mean_share(&ts.lottery, 0)
                > Fig4Timeseries::mean_share(&ts.priority, 0)
        );
        // The starved component's backlog only grows under priority.
        let first = ts.priority.first().expect("windows").queue_depth[0];
        let last = ts.priority.last().expect("windows").queue_depth[0];
        assert!(last > first, "C1 backlog should grow: {first} -> {last}");
        // Sparklines are one character per window, and the priority one
        // is visibly empty for C1.
        let spark = Fig4Timeseries::sparkline(&ts.priority, 0);
        assert_eq!(spark.chars().count(), 50);
        assert!(spark.chars().filter(|&c| c == ' ').count() > 40, "{spark:?}");
    }

    #[test]
    fn highest_priority_component_dominates() {
        let fig = run(&RunSettings { measure: 20_000, warmup: 5_000, ..RunSettings::quick() });
        for row in &fig.rows {
            let top = row.priorities.iter().position(|&p| p == 4).expect("has top");
            let bottom = row.priorities.iter().position(|&p| p == 1).expect("has bottom");
            assert!(
                row.bandwidth[top] > row.bandwidth[bottom],
                "row {}: top {} <= bottom {}",
                row.assignment,
                row.bandwidth[top],
                row.bandwidth[bottom],
            );
        }
    }
}
