//! Fleet-packed experiment execution.
//!
//! Experiment fan-out in this crate is a list of *independent*
//! simulations (see [`crate::runner`]). [`run_systems_fleet`] packs
//! such a list into one structure-of-arrays lockstep [`Fleet`]
//! (`socsim::fleet`) instead of building one scalar [`socsim::System`]
//! per point: all lanes advance together over contiguous state, so a
//! sweep's whole job list walks the caches once per cycle window
//! rather than once per system.
//!
//! Lane assembly replicates `common::run_system` exactly — master
//! names `C1..Cn`, per-master seeds derived from
//! [`RunSettings::seed`] and the master index, the settings' bus
//! config and optional metrics window — and the fleet kernel is
//! proven lane-exact against the scalar cycle kernel (the
//! `fleet_equivalence` test matrix), so swapping the executor never
//! changes a single byte of any experiment's output.

use crate::common::RunSettings;
use arbiters::ArbiterKind;
use socsim::fleet::{Fleet, LaneBuilder};
use socsim::BusStats;
use traffic_gen::{GeneratorSpec, SourceKind};

/// One fleet lane: the per-master traffic specs and the arbiter of an
/// independent experiment point.
pub type FleetJob = (Vec<GeneratorSpec>, ArbiterKind);

/// Builds one lane the way `common::run_system` builds its system.
fn lane(
    specs: &[GeneratorSpec],
    arbiter: ArbiterKind,
    settings: &RunSettings,
) -> LaneBuilder<ArbiterKind, SourceKind> {
    let mut lane: LaneBuilder<ArbiterKind, SourceKind> = LaneBuilder::new(settings.bus);
    for (i, spec) in specs.iter().enumerate() {
        lane = lane.master(
            format!("C{}", i + 1),
            spec.build_kind(settings.seed.wrapping_add(i as u64 * 0x9E37_79B9)),
        );
    }
    if let Some(window) = settings.metrics_window {
        lane = lane.metrics_window(window);
    }
    lane.arbiter(arbiter)
}

/// Builds every job's system as one fleet lane, runs the whole pack in
/// lockstep through the settings' warm-up and measurement windows, and
/// returns the per-lane steady-state statistics in input order.
/// Byte-identical to calling `common::run_system` on each job.
///
/// # Panics
///
/// Panics if any lane cannot be built (experiment definitions are
/// statically valid, like `common::run_system`'s).
pub fn run_systems_fleet(jobs: Vec<FleetJob>, settings: &RunSettings) -> Vec<BusStats> {
    let lanes = jobs.into_iter().map(|(specs, arbiter)| lane(&specs, arbiter, settings)).collect();
    let mut fleet = Fleet::build(lanes).expect("experiment fleet is valid");
    fleet.warm_up(settings.warmup);
    fleet.run(settings.measure);
    (0..fleet.len()).map(|i| fleet.stats(i).clone()).collect()
}

/// Whether `settings` allow an experiment to swap its per-point scalar
/// runs for one fleet pack without changing results or what `--bench`
/// is trying to measure: the fleet is the cycle kernel's lane-exact
/// batch form, so a `fast`/`tlm` request must keep the scalar path,
/// and a metrics window changes each lane's layout enough that the
/// overhead measurement should stay per-system.
pub fn fleet_pack_allowed(settings: &RunSettings) -> bool {
    settings.kernel == socsim::Kernel::Cycle && settings.metrics_window.is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common;
    use traffic_gen::classes::saturating_specs;
    use traffic_gen::SizeDist;

    #[test]
    fn fleet_pack_matches_scalar_runs_byte_for_byte() {
        let settings = RunSettings { warmup: 1_000, measure: 8_000, ..RunSettings::quick() };
        let jobs: Vec<FleetJob> = (0..5)
            .map(|p| (saturating_specs(4), common::protocol_arbiter(p, settings.seed)))
            .collect();
        let packed = run_systems_fleet(jobs, &settings);
        for (p, stats) in packed.iter().enumerate() {
            let solo = common::run_system(
                &saturating_specs(4),
                common::protocol_arbiter(p, settings.seed),
                &settings,
            );
            assert_eq!(*stats, solo, "protocol {p} lane diverged from its scalar run");
        }
    }

    #[test]
    fn heterogeneous_lane_shapes_stay_exact() {
        let settings = RunSettings { warmup: 500, measure: 6_000, ..RunSettings::quick() };
        let sparse = vec![GeneratorSpec::poisson(0.01, SizeDist::fixed(8)); 2];
        let rr2 = || ArbiterKind::from(arbiters::RoundRobinArbiter::new(2).expect("valid"));
        let jobs: Vec<FleetJob> = vec![
            (saturating_specs(4), common::protocol_arbiter(1, settings.seed)),
            (sparse.clone(), rr2()),
        ];
        let packed = run_systems_fleet(jobs, &settings);
        let solo_hot = common::run_system(
            &saturating_specs(4),
            common::protocol_arbiter(1, settings.seed),
            &settings,
        );
        let solo_sparse = common::run_system(&sparse, rr2(), &settings);
        assert_eq!(packed[0], solo_hot);
        assert_eq!(packed[1], solo_sparse);
    }

    #[test]
    fn packing_gate_respects_kernel_and_metrics() {
        let base = RunSettings::quick();
        assert!(fleet_pack_allowed(&base));
        assert!(!fleet_pack_allowed(&base.with_metrics(500)));
        assert!(!fleet_pack_allowed(&base.with_kernel(socsim::Kernel::Fast)));
        assert!(!fleet_pack_allowed(&base.with_kernel(socsim::Kernel::Tlm)));
    }
}
