//! Minimal deterministic JSON emission for experiment results.
//!
//! The vendored `serde` is a no-op API stub (the build has no registry
//! access), so results are serialized through this tiny value tree
//! instead. Output is fully deterministic: object keys keep insertion
//! order, floats render with Rust's shortest-roundtrip formatting, and
//! non-finite floats become `null`. That determinism is load-bearing —
//! the CI gate diffs the bytes of `--jobs 1` vs `--jobs N` suite runs.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (shortest-roundtrip formatting; non-finite → `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Serializes the value to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` is shortest-roundtrip and never uses exponent
                    // notation, so appending `.0` when no decimal point
                    // appeared keeps integral floats typed as floats.
                    let start = out.len();
                    let _ = write!(out, "{v}");
                    if !out[start..].contains('.') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        i64::try_from(v).map_or(Json::Num(v as f64), Json::Int)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        (v as u64).into()
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(items: &[T]) -> Json {
        Json::Arr(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

/// Conversion of an experiment result into its JSON form.
pub trait ToJson {
    /// The JSON representation of this value.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let value = Json::obj()
            .field("name", "fig4")
            .field("ok", true)
            .field("count", 24u32)
            .field("fraction", 0.125)
            .field("missing", Json::Null)
            .field("rows", vec![1.5f64, 2.0, 3.25]);
        assert_eq!(
            value.render(),
            r#"{"name":"fig4","ok":true,"count":24,"fraction":0.125,"missing":null,"rows":[1.5,2.0,3.25]}"#
        );
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Json::Num(1.0).render(), "1.0");
        assert_eq!(Json::Num(-3.0).render(), "-3.0");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(1e-9).render(), "0.000000001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::from(Option::<f64>::None).render(), "null");
        assert_eq!(Json::from(Some(2.5f64)).render(), "2.5");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || Json::obj().field("b", 2u32).field("a", vec![Json::Null, Json::Bool(false)]);
        assert_eq!(build().render(), build().render());
        assert_eq!(build().render(), r#"{"b":2,"a":[null,false]}"#);
    }
}
