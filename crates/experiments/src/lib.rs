//! # experiments — regenerating every table and figure of the paper
//!
//! Each module reproduces one artifact of the LOTTERYBUS paper's
//! evaluation and prints the same rows/series the paper reports:
//!
//! | Module      | Paper artifact | What it shows |
//! |-------------|----------------|----------------|
//! | [`fig4`]    | Figure 4       | bandwidth sharing under static priority, all 24 priority permutations |
//! | [`fig5`]    | Figure 5       | TDMA wait times under two phase alignments of the same periodic trace |
//! | [`fig6`]    | Figure 6(a/b)  | lottery bandwidth across ticket permutations; TDMA vs lottery latency |
//! | [`fig12`]   | Figure 12(a–c) | lottery bandwidth and TDMA/lottery latency across traffic classes T1–T9 |
//! | [`table1`]  | Table 1        | the ATM switch under all three architectures |
//! | [`hw_table`]| §5.2           | arbiter area and arbitration delay |
//!
//! Every experiment is deterministic under its seed. The binaries
//! (`cargo run -p experiments --bin fig4`, …) print human-readable
//! tables; `--bin all` runs everything, producing the data behind
//! `EXPERIMENTS.md`.

pub mod ablations;
pub mod common;
pub mod energy;
pub mod fig12;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fleet;
pub mod hotpath;
pub mod hw_table;
pub mod json;
pub mod runner;
pub mod starvation;
pub mod suite;
pub mod sweeps;
pub mod table1;
pub mod telemetry;
pub mod validate;

pub use common::RunSettings;
