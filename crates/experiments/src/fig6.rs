//! Figure 6: the motivating LOTTERYBUS results.
//!
//! * **6(a)** — bandwidth sharing under the lottery across all 24 ticket
//!   permutations: the fraction each component receives is directly
//!   proportional to its tickets, unlike the priority cliff of Figure 4.
//! * **6(b)** — average communication latency of each component under
//!   TDMA and under LOTTERYBUS for an illustrative bursty traffic class:
//!   the highest-weight component's latency drops severalfold under the
//!   lottery (the paper reports 8.55 → 2.7 cycles/word).

use crate::common::{self, RunSettings};
use crate::json::{Json, ToJson};
use crate::runner;
use arbiters::{TdmaArbiter, WheelLayout};
use lotterybus::{StaticLotteryArbiter, TicketAssignment};
use serde::{Deserialize, Serialize};
use traffic_gen::TrafficClass;

/// Slots per weight unit in the TDMA wheels of the latency experiments
/// (contiguous blocks, following the paper's Figure 5 reservations).
pub const TDMA_BLOCK: u32 = 64;

/// One bar of Figure 6(a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6aRow {
    /// Ticket assignment label, e.g. `"1234"`.
    pub assignment: String,
    /// Tickets per component.
    pub tickets: Vec<u32>,
    /// Measured bandwidth fraction per component.
    pub bandwidth: Vec<f64>,
}

/// Figure 6(a): lottery bandwidth sharing across ticket permutations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6a {
    /// Rows in lexicographic assignment order.
    pub rows: Vec<Fig6aRow>,
}

/// Runs Figure 6(a). Each ticket permutation is an independent
/// simulation (the arbiter is constructed inside the job), so the 24
/// rows fan out across `settings.jobs` workers.
pub fn run_bandwidth(settings: &RunSettings) -> Fig6a {
    let specs = traffic_gen::classes::saturating_specs(4);
    let perms = common::permutations(4);
    let rows = runner::map(settings, &perms, |_, perm| {
        let tickets = TicketAssignment::new(perm.clone()).expect("valid tickets");
        let arbiter = StaticLotteryArbiter::with_seed(tickets, settings.seed as u32 | 1)
            .expect("4-master LUT fits");
        let stats = common::run_system(&specs, Box::new(arbiter), settings);
        Fig6aRow {
            assignment: common::permutation_label(perm),
            tickets: perm.clone(),
            bandwidth: common::bandwidth_fractions(&stats, 4),
        }
    });
    Fig6a { rows }
}

impl Fig6a {
    /// Largest absolute error between a component's measured bandwidth
    /// fraction and its ticket fraction, across all rows.
    pub fn worst_proportionality_error(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for row in &self.rows {
            let total: u32 = row.tickets.iter().sum();
            for c in 0..row.tickets.len() {
                let entitled = f64::from(row.tickets[c]) / f64::from(total);
                worst = worst.max((row.bandwidth[c] - entitled).abs());
            }
        }
        worst
    }
}

impl ToJson for Fig6a {
    fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|row| {
                Json::obj()
                    .field("assignment", row.assignment.as_str())
                    .field("tickets", row.tickets.clone())
                    .field("bandwidth", row.bandwidth.clone())
            })
            .collect();
        Json::obj().field("rows", Json::Arr(rows))
    }
}

impl std::fmt::Display for Fig6a {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 6(a): bandwidth sharing under LOTTERYBUS (saturated bus)")?;
        writeln!(f, "{:>10} {:>8} {:>8} {:>8} {:>8}", "tickets", "C1", "C2", "C3", "C4")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>10} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                row.assignment,
                row.bandwidth[0] * 100.0,
                row.bandwidth[1] * 100.0,
                row.bandwidth[2] * 100.0,
                row.bandwidth[3] * 100.0,
            )?;
        }
        write!(
            f,
            "worst |measured - ticket fraction| across all rows: {:.2} points",
            self.worst_proportionality_error() * 100.0,
        )
    }
}

/// Figure 6(b): per-component latency under TDMA vs LOTTERYBUS for one
/// illustrative traffic class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6b {
    /// The traffic class used.
    pub class: TrafficClass,
    /// Cycles/word per component under the two-level TDMA bus.
    pub tdma: Vec<Option<f64>>,
    /// Cycles/word per component under LOTTERYBUS.
    pub lottery: Vec<Option<f64>>,
}

/// Runs Figure 6(b) with the paper's weights 1:2:3:4 on traffic class
/// `class` (the paper's illustrative class is T6).
pub fn run_latency(class: TrafficClass, settings: &RunSettings) -> Fig6b {
    let weights = [1u32, 2, 3, 4];
    let specs = class.specs_with_frame(&weights, TDMA_BLOCK);
    let (tdma_stats, lottery_stats) = runner::join(
        settings,
        || {
            let slots: Vec<u32> = weights.iter().map(|w| w * TDMA_BLOCK).collect();
            let tdma = TdmaArbiter::new(&slots, WheelLayout::Contiguous).expect("valid wheel");
            common::run_system(&specs, Box::new(tdma), settings)
        },
        || {
            let tickets = TicketAssignment::new(weights.to_vec()).expect("valid tickets");
            let lottery = StaticLotteryArbiter::with_seed(tickets, settings.seed as u32 | 1)
                .expect("4-master LUT fits");
            common::run_system(&specs, Box::new(lottery), settings)
        },
    );
    Fig6b {
        class,
        tdma: common::latencies(&tdma_stats, 4),
        lottery: common::latencies(&lottery_stats, 4),
    }
}

impl ToJson for Fig6b {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("class", self.class.to_string())
            .field("tdma", self.tdma.clone())
            .field("lottery", self.lottery.clone())
    }
}

impl std::fmt::Display for Fig6b {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 6(b): average latency, TDMA vs LOTTERYBUS (class {})", self.class)?;
        writeln!(f, "{:>10} {:>12} {:>12}", "component", "TDMA", "LOTTERYBUS")?;
        for c in 0..4 {
            let t = self.tdma[c].map_or("-".into(), |v| format!("{v:.2}"));
            let l = self.lottery[c].map_or("-".into(), |v| format!("{v:.2}"));
            writeln!(f, "{:>10} {:>12} {:>12}", format!("C{} ({})", c + 1, c + 1), t, l)?;
        }
        let (t4, l4) = (self.tdma[3].unwrap_or(f64::NAN), self.lottery[3].unwrap_or(f64::NAN));
        write!(f, "highest-weight component improves {:.1}x under the lottery", t4 / l4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_tracks_tickets_in_every_permutation() {
        let fig =
            run_bandwidth(&RunSettings { measure: 40_000, warmup: 5_000, ..RunSettings::quick() });
        assert_eq!(fig.rows.len(), 24);
        // Paper: "the actual allocation of bandwidth closely matches the
        // ratio of lottery tickets". Allow a few points of slack for the
        // power-of-two scaling and finite window.
        assert!(
            fig.worst_proportionality_error() < 0.06,
            "worst error {:.3}",
            fig.worst_proportionality_error()
        );
    }

    #[test]
    fn lottery_beats_tdma_for_high_weight_component() {
        let fig = run_latency(TrafficClass::T6, &RunSettings::quick());
        let (t4, l4) = (fig.tdma[3].expect("served"), fig.lottery[3].expect("served"));
        assert!(t4 > 1.5 * l4, "TDMA {t4:.2} should be well above lottery {l4:.2} for C4");
    }
}
