//! The saturated hot-path probe behind `suite --bench`.
//!
//! Every probe system puts four [`SaturateSource`] masters — request
//! lines permanently asserted, no RNG, no per-cycle allocation — behind
//! one of the built-in protocols, so the measurement isolates exactly
//! the per-cycle machinery the enum-dispatch kernel devirtualizes:
//! polling, arbitration, and word transfer. The reported number is
//! steady-state **cycles per wall-clock second** (build and warm-up sit
//! outside the timed window), taken as the best of several runs because
//! a single short run is dominated by scheduler noise.
//!
//! `tools/bench_regression.py` consumes the per-protocol numbers as a
//! soft gate: a saturated-throughput regression prints a warning
//! without failing CI, while the byte-identity and zero-allocation
//! guarantees stay hard gates elsewhere (the suite binary and the
//! `alloc_steady_state` test).

use crate::common::RunSettings;
use crate::json::Json;
use arbiters::{
    ArbiterKind, DeficitRoundRobinArbiter, RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter,
    WheelLayout,
};
use lotterybus::{DynamicLotteryArbiter, StaticLotteryArbiter, TicketAssignment};
use socsim::SystemBuilder;
use traffic_gen::{SaturateSource, SourceKind};

/// Masters in every hot-probe system (the paper's four-component SoC).
pub const HOT_MASTERS: usize = 4;

/// Words per message; long enough that arbitration is amortized the
/// same way the paper's traffic classes amortize it.
pub const HOT_WORDS: u32 = 8;

/// Timed repetitions per protocol; the best run is reported.
const HOT_REPEATS: usize = 3;

/// Protocol names of the saturated lineup, in report order. This is the
/// five-protocol comparison lineup of the paper plus the dynamic
/// lottery, whose decision cache only earns its keep under contention.
pub const HOT_PROTOCOLS: [&str; 6] =
    ["static-priority", "round-robin", "deficit-rr", "tdma", "lottery-static", "lottery-dynamic"];

/// One protocol's saturated hot-path measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct HotProbe {
    /// Protocol name (one of [`HOT_PROTOCOLS`]).
    pub protocol: &'static str,
    /// Measured steady-state cycles (warm-up excluded).
    pub cycles: u64,
    /// Best wall-clock time for the measured window, seconds.
    pub wall_secs: f64,
    /// `cycles / wall_secs` — the headline throughput number.
    pub cycles_per_sec: f64,
}

impl HotProbe {
    /// The probe as a JSON object for the bench report.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("protocol", self.protocol)
            .field("cycles", self.cycles)
            .field("wall_secs", self.wall_secs)
            .field("cycles_per_sec", self.cycles_per_sec)
    }
}

/// Builds the arbiter for one lineup `protocol` name with the standard
/// 1:2:3:4 weighting.
///
/// # Panics
///
/// Panics if `protocol` is not in [`HOT_PROTOCOLS`].
pub fn hot_arbiter(protocol: &str, seed: u64) -> ArbiterKind {
    let weights = [1u32, 2, 3, 4];
    let tickets = || TicketAssignment::new(weights.to_vec()).expect("valid");
    let seed = seed as u32 | 1;
    match protocol {
        "static-priority" => StaticPriorityArbiter::new(weights.to_vec()).expect("valid").into(),
        "round-robin" => RoundRobinArbiter::new(HOT_MASTERS).expect("valid").into(),
        "deficit-rr" => DeficitRoundRobinArbiter::new(&weights, 8).expect("valid").into(),
        "tdma" => {
            TdmaArbiter::new(&[6, 12, 18, 24], WheelLayout::Contiguous).expect("valid").into()
        }
        "lottery-static" => StaticLotteryArbiter::with_seed(tickets(), seed).expect("valid").into(),
        "lottery-dynamic" => {
            DynamicLotteryArbiter::with_seed(tickets(), seed).expect("valid").into()
        }
        other => panic!("unknown hot-probe protocol {other:?}"),
    }
}

/// Runs the saturated probe for one lineup `protocol` and returns its
/// measurement. Each repetition builds a fresh system, warms it up
/// outside the timer, and times only the measured window; repeats must
/// agree on statistics (the run is deterministic) and the best time
/// wins.
///
/// # Panics
///
/// Panics if `protocol` is unknown, the system fails to build, or the
/// probe fails its saturation sanity check (bus utilization must
/// exceed 95% — an idle "saturated" probe would measure the wrong
/// path).
pub fn hot_probe(protocol: &'static str, settings: &RunSettings) -> HotProbe {
    let mut best = f64::INFINITY;
    let mut reference = None;
    for _ in 0..HOT_REPEATS {
        let mut builder = SystemBuilder::new(settings.bus);
        for i in 0..HOT_MASTERS {
            builder = builder
                .master(format!("C{}", i + 1), SourceKind::from(SaturateSource::new(0, HOT_WORDS)));
        }
        let mut system = builder
            .arbiter(hot_arbiter(protocol, settings.seed))
            .build()
            .expect("hot-probe system is valid");
        system.warm_up(settings.warmup);
        let start = std::time::Instant::now();
        system.run(settings.measure);
        best = best.min(start.elapsed().as_secs_f64());
        let stats = system.stats().clone();
        assert!(
            stats.bus_utilization() > 0.95,
            "{protocol} probe is not saturated: utilization {}",
            stats.bus_utilization()
        );
        if let Some(previous) = reference.replace(stats) {
            assert_eq!(
                previous,
                *reference.as_ref().expect("just set"),
                "{protocol} probe repeats diverged"
            );
        }
    }
    let cycles = settings.measure;
    let cycles_per_sec = if best > 0.0 { cycles as f64 / best } else { 0.0 };
    HotProbe { protocol, cycles, wall_secs: best, cycles_per_sec }
}

/// Runs the whole lineup and returns the measurements in
/// [`HOT_PROTOCOLS`] order.
pub fn hot_lineup(settings: &RunSettings) -> Vec<HotProbe> {
    HOT_PROTOCOLS.iter().map(|protocol| hot_probe(protocol, settings)).collect()
}

/// The bench-report JSON for a lineup run: probe geometry plus one
/// object per protocol (keyed by name, insertion order = lineup order).
pub fn hot_json(probes: &[HotProbe]) -> Json {
    let mut protocols = Json::obj();
    for probe in probes {
        protocols = protocols.field(probe.protocol, probe.to_json());
    }
    Json::obj()
        .field("masters", HOT_MASTERS)
        .field("words", u64::from(HOT_WORDS))
        .field("protocols", protocols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use socsim::Arbiter;

    #[test]
    fn lineup_names_build_and_label_their_arbiters() {
        for name in HOT_PROTOCOLS {
            let arbiter = hot_arbiter(name, 0xC0FFEE);
            // The enum reports the wrapped protocol's own name; the
            // lineup labels match except for the deficit-rr spelling.
            let reported = arbiter.name().to_owned();
            assert!(!reported.is_empty(), "{name} produced an unnamed arbiter");
        }
    }

    #[test]
    #[should_panic(expected = "unknown hot-probe protocol")]
    fn unknown_protocol_is_rejected() {
        hot_arbiter("token-ring", 1);
    }

    #[test]
    fn probe_reports_saturated_throughput() {
        let settings = RunSettings { warmup: 500, measure: 4_000, ..RunSettings::quick() };
        let probe = hot_probe("round-robin", &settings);
        assert_eq!(probe.cycles, 4_000);
        assert!(probe.wall_secs > 0.0);
        assert!(probe.cycles_per_sec > 0.0);
        let json = hot_json(&[probe]).render();
        assert!(json.contains("\"round-robin\""), "json: {json}");
        assert!(json.contains("\"cycles_per_sec\""), "json: {json}");
    }
}
