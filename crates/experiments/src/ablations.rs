//! Ablations of the design choices DESIGN.md calls out.
//!
//! Unlike the figure experiments (which reproduce the paper), these
//! quantify how the reproduction's own knobs affect the results:
//!
//! * **burst size** — proportionality and latency vs `max_burst`;
//! * **draw source** — hardware LFSR draws vs ideal uniform draws;
//! * **scaling resolution** — ratio error of power-of-two ticket
//!   scaling vs the number of extra resolution bits;
//! * **ticket-update period** — how stale dynamic tickets may get before
//!   the backlog-proportional policy stops helping;
//! * **TDMA wheel layout** — contiguous blocks vs interleaved slots.

use crate::common::{self, RunSettings};
use crate::json::{Json, ToJson};
use crate::runner;
use arbiters::{TdmaArbiter, WheelLayout};
use lotterybus::{
    DynamicLotteryArbiter, QueueProportionalPolicy, StaticLotteryArbiter, StdRngSource,
    TicketAssignment,
};
use serde::{Deserialize, Serialize};
use socsim::{BusConfig, MasterId};
use traffic_gen::classes::saturating_specs;
use traffic_gen::TrafficClass;

/// The weights used throughout the ablations.
const WEIGHTS: [u32; 4] = [1, 2, 3, 4];

fn weight_tickets() -> TicketAssignment {
    TicketAssignment::new(WEIGHTS.to_vec()).expect("valid")
}

/// Worst |measured − entitled| bandwidth error across components.
fn proportionality_error(fractions: &[f64]) -> f64 {
    let total: u32 = WEIGHTS.iter().sum();
    fractions
        .iter()
        .enumerate()
        .map(|(i, f)| (f - f64::from(WEIGHTS[i]) / f64::from(total)).abs())
        .fold(0.0, f64::max)
}

/// One row of the burst-size ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstRow {
    /// Maximum burst size in words.
    pub max_burst: u32,
    /// Worst bandwidth-proportionality error under saturation.
    pub proportionality_error: f64,
    /// Cycles/word of the highest-weight component under class T6.
    pub t6_latency_w4: Option<f64>,
}

/// Burst-size ablation: the maximum transfer size trades arbitration
/// frequency against head-of-line blocking.
pub fn burst_size(settings: &RunSettings) -> Vec<BurstRow> {
    let bursts = [1u32, 4, 16, 64];
    runner::map(settings, &bursts, |_, &max_burst| {
        let s = RunSettings { bus: BusConfig { max_burst, ..settings.bus }, ..*settings };
        let sat = common::run_system(
            &saturating_specs(4),
            Box::new(StaticLotteryArbiter::with_seed(weight_tickets(), 3).expect("valid")),
            &s,
        );
        let t6 = common::run_system(
            &TrafficClass::T6.specs_with_frame(&WEIGHTS, crate::fig6::TDMA_BLOCK),
            Box::new(StaticLotteryArbiter::with_seed(weight_tickets(), 3).expect("valid")),
            &s,
        );
        BurstRow {
            max_burst,
            proportionality_error: proportionality_error(&common::bandwidth_fractions(&sat, 4)),
            t6_latency_w4: t6.master(MasterId::new(3)).cycles_per_word(),
        }
    })
}

/// One row of the draw-source ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrawSourceRow {
    /// Source name (`"lfsr"` or `"stdrng"`).
    pub source: String,
    /// Worst bandwidth-proportionality error under saturation.
    pub proportionality_error: f64,
}

/// Draw-source ablation: the hardware LFSR vs an ideal uniform RNG.
pub fn draw_source(settings: &RunSettings) -> Vec<DrawSourceRow> {
    let sources = ["lfsr", "stdrng"];
    runner::map(settings, &sources, |_, &name| {
        // Arbiters are built inside the job (they are not `Send`).
        let arbiter = if name == "lfsr" {
            StaticLotteryArbiter::with_seed(weight_tickets(), 0xACE1).expect("valid")
        } else {
            StaticLotteryArbiter::with_source(weight_tickets(), Box::new(StdRngSource::new(7)))
                .expect("valid")
        };
        let stats = common::run_system(&saturating_specs(4), Box::new(arbiter), settings);
        DrawSourceRow {
            source: name.into(),
            proportionality_error: proportionality_error(&common::bandwidth_fractions(&stats, 4)),
        }
    })
}

/// One row of the scaling-resolution ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Extra resolution bits used by the power-of-two scaling.
    pub extra_bits: u32,
    /// Scaled total for the 1:2:3:4 assignment.
    pub scaled_total: u32,
    /// Worst |scaled fraction − original fraction| across components.
    pub ratio_error: f64,
}

/// Scaling-resolution ablation: how many extra bits the power-of-two
/// rescaling needs before ratio distortion becomes negligible.
pub fn scaling_resolution() -> Vec<ScalingRow> {
    let original = weight_tickets();
    (0..=6)
        .map(|extra_bits| {
            let scaled = original.scaled_to_power_of_two_with_resolution(extra_bits);
            let ratio_error = (0..4)
                .map(|i| {
                    let id = MasterId::new(i);
                    (original.fraction(id) - scaled.fraction(id)).abs()
                })
                .fold(0.0, f64::max);
            ScalingRow { extra_bits, scaled_total: scaled.total(), ratio_error }
        })
        .collect()
}

/// One row of the ticket-update-period ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdatePeriodRow {
    /// Cycles between policy re-evaluations.
    pub period: u64,
    /// Cycles/word of the bursty component.
    pub bursty_latency: Option<f64>,
}

/// Ticket-update-period ablation for the dynamic manager's
/// backlog-proportional policy: a bursty component competes with a
/// steady one; frequent updates let its backlog win tickets quickly.
pub fn update_period(settings: &RunSettings) -> Vec<UpdatePeriodRow> {
    use traffic_gen::{GeneratorSpec, SizeDist};
    let specs = [
        GeneratorSpec::bursty(6, 10, 0, 400, 900, 0, SizeDist::fixed(16)),
        GeneratorSpec::poisson(0.045, SizeDist::fixed(16)),
    ];
    let periods = [1u64, 16, 256, 4096];
    runner::map(settings, &periods, |_, &period| {
        let tickets = TicketAssignment::new(vec![1, 1]).expect("valid");
        let mut arbiter = DynamicLotteryArbiter::with_seed(tickets, 5).expect("valid");
        arbiter.set_policy(Box::new(QueueProportionalPolicy::new(vec![1, 1])), period);
        let stats = common::run_system(&specs, Box::new(arbiter), settings);
        UpdatePeriodRow { period, bursty_latency: stats.master(MasterId::new(0)).cycles_per_word() }
    })
}

/// One row of the wheel-layout ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WheelLayoutRow {
    /// Layout name.
    pub layout: String,
    /// Per-component cycles/word under class T6.
    pub t6_latency: Vec<Option<f64>>,
}

/// TDMA wheel-layout ablation: contiguous reservation blocks vs evenly
/// interleaved slots, on the TDMA-hostile class T6.
pub fn wheel_layout(settings: &RunSettings) -> Vec<WheelLayoutRow> {
    let slots: Vec<u32> = WEIGHTS.iter().map(|w| w * crate::fig6::TDMA_BLOCK).collect();
    let layouts =
        [("contiguous", WheelLayout::Contiguous), ("interleaved", WheelLayout::Interleaved)];
    runner::map(settings, &layouts, |_, &(name, layout)| {
        let arbiter = TdmaArbiter::new(&slots, layout).expect("valid wheel");
        let stats = common::run_system(
            &TrafficClass::T6.specs_with_frame(&WEIGHTS, crate::fig6::TDMA_BLOCK),
            Box::new(arbiter),
            settings,
        );
        WheelLayoutRow { layout: name.into(), t6_latency: common::latencies(&stats, 4) }
    })
}

/// All ablations bundled for printing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ablations {
    /// Burst-size sweep.
    pub burst: Vec<BurstRow>,
    /// LFSR vs ideal RNG.
    pub draw: Vec<DrawSourceRow>,
    /// Power-of-two scaling resolution.
    pub scaling: Vec<ScalingRow>,
    /// Dynamic ticket-update period.
    pub update: Vec<UpdatePeriodRow>,
    /// TDMA wheel layout.
    pub wheel: Vec<WheelLayoutRow>,
}

/// Runs every ablation.
pub fn run(settings: &RunSettings) -> Ablations {
    Ablations {
        burst: burst_size(settings),
        draw: draw_source(settings),
        scaling: scaling_resolution(),
        update: update_period(settings),
        wheel: wheel_layout(settings),
    }
}

impl ToJson for Ablations {
    fn to_json(&self) -> Json {
        let burst: Vec<Json> = self
            .burst
            .iter()
            .map(|r| {
                Json::obj()
                    .field("max_burst", r.max_burst)
                    .field("proportionality_error", r.proportionality_error)
                    .field("t6_latency_w4", r.t6_latency_w4)
            })
            .collect();
        let draw: Vec<Json> = self
            .draw
            .iter()
            .map(|r| {
                Json::obj()
                    .field("source", r.source.as_str())
                    .field("proportionality_error", r.proportionality_error)
            })
            .collect();
        let scaling: Vec<Json> = self
            .scaling
            .iter()
            .map(|r| {
                Json::obj()
                    .field("extra_bits", r.extra_bits)
                    .field("scaled_total", r.scaled_total)
                    .field("ratio_error", r.ratio_error)
            })
            .collect();
        let update: Vec<Json> = self
            .update
            .iter()
            .map(|r| {
                Json::obj().field("period", r.period).field("bursty_latency", r.bursty_latency)
            })
            .collect();
        let wheel: Vec<Json> = self
            .wheel
            .iter()
            .map(|r| {
                Json::obj()
                    .field("layout", r.layout.as_str())
                    .field("t6_latency", r.t6_latency.clone())
            })
            .collect();
        Json::obj()
            .field("burst", Json::Arr(burst))
            .field("draw", Json::Arr(draw))
            .field("scaling", Json::Arr(scaling))
            .field("update", Json::Arr(update))
            .field("wheel", Json::Arr(wheel))
    }
}

impl std::fmt::Display for Ablations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation: maximum burst size (lottery, tickets 1:2:3:4)")?;
        writeln!(f, "{:>10} {:>12} {:>16}", "max_burst", "bw error", "T6 w=4 latency")?;
        for row in &self.burst {
            writeln!(
                f,
                "{:>10} {:>11.2}% {:>16}",
                row.max_burst,
                row.proportionality_error * 100.0,
                row.t6_latency_w4.map_or("-".into(), |v| format!("{v:.2}")),
            )?;
        }
        writeln!(f)?;
        writeln!(f, "Ablation: random draw source")?;
        for row in &self.draw {
            writeln!(
                f,
                "  {:<8} worst bandwidth error {:.2}%",
                row.source,
                row.proportionality_error * 100.0
            )?;
        }
        writeln!(f)?;
        writeln!(f, "Ablation: power-of-two scaling resolution (tickets 1:2:3:4, T=10)")?;
        writeln!(f, "{:>10} {:>13} {:>12}", "extra bits", "scaled total", "ratio error")?;
        for row in &self.scaling {
            writeln!(
                f,
                "{:>10} {:>13} {:>11.2}%",
                row.extra_bits,
                row.scaled_total,
                row.ratio_error * 100.0
            )?;
        }
        writeln!(f)?;
        writeln!(f, "Ablation: dynamic ticket-update period (bursty vs steady master)")?;
        writeln!(f, "{:>10} {:>16}", "period", "bursty latency")?;
        for row in &self.update {
            writeln!(
                f,
                "{:>10} {:>16}",
                row.period,
                row.bursty_latency.map_or("-".into(), |v| format!("{v:.2}")),
            )?;
        }
        writeln!(f)?;
        writeln!(f, "Ablation: TDMA wheel layout on class T6 (cycles/word per component)")?;
        for row in &self.wheel {
            let cells: Vec<String> = row
                .t6_latency
                .iter()
                .map(|v| v.map_or("-".into(), |x| format!("{x:.2}")))
                .collect();
            writeln!(f, "  {:<12} {}", row.layout, cells.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> RunSettings {
        RunSettings { measure: 40_000, warmup: 5_000, ..RunSettings::quick() }
    }

    #[test]
    fn scaling_error_shrinks_with_resolution() {
        let rows = scaling_resolution();
        assert!(rows[0].ratio_error >= rows.last().expect("rows").ratio_error);
        assert!(rows.last().expect("rows").ratio_error < 0.01);
        for row in &rows {
            assert!(row.scaled_total.is_power_of_two());
        }
    }

    #[test]
    fn proportionality_holds_for_all_burst_sizes() {
        for row in burst_size(&settings()) {
            assert!(
                row.proportionality_error < 0.05,
                "burst {}: error {:.3}",
                row.max_burst,
                row.proportionality_error
            );
        }
    }

    #[test]
    fn lfsr_matches_ideal_rng_allocation() {
        let rows = draw_source(&settings());
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(
                row.proportionality_error < 0.04,
                "{}: {}",
                row.source,
                row.proportionality_error
            );
        }
    }

    #[test]
    fn frequent_updates_do_not_hurt() {
        // The bursty master fires only ~1-2 bursts per thousand cycles,
        // so its latency estimate needs a long window to converge; the
        // short shared fixture is too noisy for a ratio comparison.
        let rows = update_period(&RunSettings { measure: 200_000, ..settings() });
        let fast = rows[0].bursty_latency.expect("served");
        let slow = rows.last().expect("rows").bursty_latency.expect("served");
        // Stale tickets should never *help* the bursty master.
        assert!(fast <= slow * 1.5, "fast {fast:.2} vs slow {slow:.2}");
    }

    #[test]
    fn wheel_layout_changes_t6_latency_profile() {
        let rows = wheel_layout(&settings());
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.t6_latency.iter().all(Option::is_some), "{}", row.layout);
        }
    }
}
