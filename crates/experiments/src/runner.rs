//! Deterministic parallel fan-out for experiment runs.
//!
//! Every figure, table, sweep and ablation in this crate is a list of
//! *independent* simulations: each point builds its own system from a
//! seed derived from [`RunSettings::seed`] and shares no mutable state
//! with any other point. This module fans those points out across
//! worker threads ([`socsim::pool`]) and collects results in input
//! order, so the output of every experiment is **byte-identical**
//! between `jobs = 1` and `jobs = N` — parallelism changes wall-clock
//! time only.
//!
//! The determinism argument, in full:
//!
//! 1. **Seed ownership.** `common::run_system` derives every traffic
//!    source's seed from `RunSettings.seed` and the master index, and
//!    every arbiter is constructed inside its job from plain inputs.
//!    No job reads another job's RNG.
//! 2. **Ordered collection.** [`map`] writes result *i* into slot *i*
//!    regardless of which worker computed it or when it finished.
//! 3. **No shared mutable state.** Jobs borrow their inputs (`Sync`)
//!    and the settings immutably; the simulation kernel allocates
//!    everything per-system.

use crate::common::RunSettings;

/// Applies `f` to every input on `settings.jobs` workers and returns
/// the outputs in input order. See [`socsim::pool::parallel_map`].
pub fn map<I, T, F>(settings: &RunSettings, inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    socsim::pool::parallel_map(settings.jobs, inputs, f)
}

/// Runs two independent closures, concurrently when the settings allow
/// more than one worker, and returns both results in argument order.
pub fn join<A, B, FA, FB>(settings: &RunSettings, fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    socsim::pool::join(settings.jobs, fa, fb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_respects_settings_jobs_and_order() {
        let serial = RunSettings::quick().with_jobs(1);
        let parallel = RunSettings::quick().with_jobs(4);
        let inputs: Vec<u32> = (0..20).collect();
        let a = map(&serial, &inputs, |i, &x| (i, x * 3));
        let b = map(&parallel, &inputs, |i, &x| (i, x * 3));
        assert_eq!(a, b);
    }

    #[test]
    fn join_matches_serial_evaluation() {
        let settings = RunSettings::quick().with_jobs(2);
        let (a, b) = join(&settings, || 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
