//! Regenerates Table 1: the ATM switch under all three architectures.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", experiments::table1::run(200_000, 17)?);
    Ok(())
}
