//! Runs the starvation-bound validation and fairness comparison.
fn main() {
    println!("{}", experiments::starvation::run(&experiments::RunSettings::new()));
}
