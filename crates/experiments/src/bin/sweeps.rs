//! Runs the extension sweeps: share-vs-tickets and latency-vs-load.
fn main() {
    println!("{}", experiments::sweeps::run(&experiments::RunSettings::new()));
}
