//! Regenerates Figure 12(a): lottery bandwidth across classes T1-T9.
fn main() {
    println!("{}", experiments::fig12::run_bandwidth(&experiments::RunSettings::new()));
}
