//! Runs the design-choice ablations (burst size, draw source, scaling
//! resolution, ticket-update period, TDMA wheel layout).
fn main() {
    println!("{}", experiments::ablations::run(&experiments::RunSettings::new()));
}
