//! Regenerates Figure 6(b): TDMA vs LOTTERYBUS latency (class T6).
fn main() {
    let fig = experiments::fig6::run_latency(
        traffic_gen::TrafficClass::T6,
        &experiments::RunSettings::new(),
    );
    println!("{fig}");
}
