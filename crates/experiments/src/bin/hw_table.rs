//! Regenerates the hardware-complexity estimates of paper section 5.2.
fn main() {
    println!("{}", experiments::hw_table::run());
}
