//! Regenerates Figure 4: bandwidth sharing under static priority.
fn main() {
    println!("{}", experiments::fig4::run(&experiments::RunSettings::new()));
}
