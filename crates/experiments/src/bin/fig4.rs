//! Regenerates Figure 4: bandwidth sharing under static priority,
//! plus the windowed starvation time-series (priority vs lottery).
fn main() {
    let settings = experiments::RunSettings::new();
    println!("{}\n", experiments::fig4::run(&settings));
    println!("{}", experiments::fig4::run_timeseries(&settings));
}
