//! Runs every experiment in sequence - the data behind EXPERIMENTS.md.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let settings = experiments::RunSettings::new();
    println!("{}\n", experiments::fig4::run(&settings));
    println!("{}\n", experiments::fig4::run_timeseries(&settings));
    println!("{}\n", experiments::fig5::run());
    println!("{}\n", experiments::fig6::run_bandwidth(&settings));
    println!("{}\n", experiments::fig6::run_latency(traffic_gen::TrafficClass::T6, &settings));
    println!("{}\n", experiments::fig12::run_bandwidth(&settings));
    println!("{}\n", experiments::fig12::run_tdma_latency(&settings));
    println!("{}\n", experiments::fig12::run_lottery_latency(&settings));
    println!("{}\n", experiments::table1::run(200_000, 17)?);
    println!("{}\n", experiments::hw_table::run());
    println!("{}\n", experiments::starvation::run(&settings));
    println!("{}\n", experiments::sweeps::run(&settings));
    println!("{}\n", experiments::energy::run(&settings));
    println!("{}", experiments::ablations::run(&settings));
    Ok(())
}
