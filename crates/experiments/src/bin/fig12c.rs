//! Regenerates Figure 12(c): LOTTERYBUS latency across classes T1-T6.
fn main() {
    println!("{}", experiments::fig12::run_lottery_latency(&experiments::RunSettings::new()));
}
