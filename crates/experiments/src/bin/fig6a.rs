//! Regenerates Figure 6(a): lottery bandwidth sharing.
fn main() {
    println!("{}", experiments::fig6::run_bandwidth(&experiments::RunSettings::new()));
}
