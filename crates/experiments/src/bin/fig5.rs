//! Regenerates Figure 5: TDMA wait times vs request alignment.
fn main() {
    println!("{}", experiments::fig5::run());
}
