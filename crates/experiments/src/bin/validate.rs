//! Prints the analytic-model validation grid as human-readable tables:
//! every sweep workload simulated and compared against the closed-form
//! predictors, with per-cell errors and the aggregate summary. The
//! data behind the EXPERIMENTS.md validation section.
//!
//! ```text
//! validate [--quick] [--jobs N]
//! ```

use experiments::RunSettings;

fn usage() -> ! {
    eprintln!("usage: validate [--quick] [--jobs N]");
    std::process::exit(2);
}

fn main() {
    let mut settings = RunSettings::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => settings = RunSettings { jobs: settings.jobs, ..RunSettings::quick() },
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| usage());
                settings.jobs = value.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    print!("{}", experiments::validate::run(&settings));
}
