//! Runs the energy comparison across architectures.
fn main() {
    println!("{}", experiments::energy::run(&experiments::RunSettings::new()));
}
