//! Regenerates Figure 12(b): TDMA latency across classes T1-T6.
fn main() {
    println!("{}", experiments::fig12::run_tdma_latency(&experiments::RunSettings::new()));
}
