//! Runs the full experiment suite and emits one deterministic JSON
//! document on stdout (or `--out FILE`).
//!
//! ```text
//! suite [--quick] [--jobs N] [--out FILE] [--bench FILE]
//! ```
//!
//! * `--quick` — short measurement window (CI-friendly).
//! * `--jobs N` — worker threads; `0` (default) = all cores. Never
//!   affects the JSON output, only wall-clock time.
//! * `--out FILE` — write the JSON document to FILE instead of stdout.
//! * `--bench FILE` — run the suite serially (`--jobs 1`) and then with
//!   the requested worker count, assert the outputs are byte-identical,
//!   and write wall-clock/speedup telemetry to FILE (the
//!   `BENCH_PR2.json` artifact).
//!
//! Timing telemetry always goes to **stderr** so stdout stays a clean,
//! diffable result stream.

use experiments::suite::{run_suite, SuiteOptions};

fn usage() -> ! {
    eprintln!("usage: suite [--quick] [--jobs N] [--out FILE] [--bench FILE]");
    std::process::exit(2);
}

fn main() {
    let mut opts = SuiteOptions { quick: false, jobs: 0 };
    let mut out: Option<String> = None;
    let mut bench: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| usage());
                opts.jobs = value.parse().unwrap_or_else(|_| usage());
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--bench" => bench = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let workers = socsim::pool::resolve_jobs(opts.jobs);

    if let Some(bench_path) = bench {
        // Serial baseline first, then the parallel run; the two result
        // documents must be byte-identical (the determinism guarantee
        // the rest of the tooling relies on).
        let serial = run_suite(&SuiteOptions { jobs: 1, ..opts });
        eprintln!("{}", serial.telemetry.report(1));
        let parallel = run_suite(&opts);
        eprintln!("{}", parallel.telemetry.report(workers));
        assert_eq!(
            serial.json, parallel.json,
            "suite output differs between --jobs 1 and --jobs {workers}"
        );

        let serial_wall = serial.telemetry.total_wall().as_secs_f64();
        let parallel_wall = parallel.telemetry.total_wall().as_secs_f64();
        let speedup = if parallel_wall > 0.0 { serial_wall / parallel_wall } else { 1.0 };
        let report = experiments::json::Json::obj()
            .field("quick", opts.quick)
            .field("host_parallelism", socsim::pool::available_jobs())
            .field("jobs", workers)
            .field("serial_wall_secs", serial_wall)
            .field("parallel_wall_secs", parallel_wall)
            .field("speedup", speedup)
            .field("byte_identical", true)
            .field("serial", serial.telemetry.to_json())
            .field("parallel", parallel.telemetry.to_json());
        std::fs::write(&bench_path, report.render() + "\n").expect("write bench report");
        eprintln!("speedup {speedup:.2}x with {workers} worker(s); bench report: {bench_path}");
        emit(out.as_deref(), &parallel.json);
    } else {
        let run = run_suite(&opts);
        eprintln!("{}", run.telemetry.report(workers));
        emit(out.as_deref(), &run.json);
    }
}

fn emit(out: Option<&str>, json: &str) {
    match out {
        Some(path) => std::fs::write(path, json.to_owned() + "\n").expect("write suite output"),
        None => println!("{json}"),
    }
}
