//! Runs the full experiment suite and emits one deterministic JSON
//! document on stdout (or `--out FILE`).
//!
//! ```text
//! suite [--quick] [--jobs N] [--metrics W] [--out FILE] [--bench FILE]
//! ```
//!
//! * `--quick` — short measurement window (CI-friendly).
//! * `--jobs N` — worker threads; `0` (default) = all cores. Never
//!   affects the JSON output, only wall-clock time.
//! * `--metrics W` — also collect windowed metrics (window of W cycles)
//!   in every simulation. The samples are discarded, so the JSON output
//!   is byte-identical with or without this flag; it exists to exercise
//!   and measure the observability layer.
//! * `--out FILE` — write the JSON document to FILE instead of stdout.
//! * `--bench FILE` — benchmark mode: run the suite serially (`--jobs
//!   1`) and with the requested worker count, with metrics off and on,
//!   assert all four result documents are byte-identical, profile the
//!   cycle kernel's phases, and write the wall-clock report to FILE
//!   (the `BENCH_PR3.json` artifact: speedup, metrics overhead, and
//!   per-phase breakdown).
//!
//! Timing telemetry always goes to **stderr** so stdout stays a clean,
//! diffable result stream.

use experiments::suite::{run_suite, SuiteOptions};
use experiments::telemetry::{sim_phases_json, sim_phases_report};

fn usage() -> ! {
    eprintln!("usage: suite [--quick] [--jobs N] [--metrics W] [--out FILE] [--bench FILE]");
    std::process::exit(2);
}

fn main() {
    let mut opts = SuiteOptions { quick: false, jobs: 0, metrics_window: None };
    let mut out: Option<String> = None;
    let mut bench: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| usage());
                opts.jobs = value.parse().unwrap_or_else(|_| usage());
            }
            "--metrics" => {
                let value = args.next().unwrap_or_else(|| usage());
                let window: u64 = value.parse().unwrap_or_else(|_| usage());
                if window == 0 {
                    usage();
                }
                opts.metrics_window = Some(window);
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--bench" => bench = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let workers = socsim::pool::resolve_jobs(opts.jobs);

    if let Some(bench_path) = bench {
        emit(out.as_deref(), &run_bench(&opts, workers, &bench_path));
    } else {
        let run = run_suite(&opts);
        eprintln!("{}", run.telemetry.report(workers));
        emit(out.as_deref(), &run.json);
    }
}

/// The benchmark flow: four suite runs (serial/parallel × metrics
/// off/on), a byte-identity check across all of them, a profiled probe
/// simulation, and the JSON report. Returns the suite result document.
fn run_bench(opts: &SuiteOptions, workers: usize, bench_path: &str) -> String {
    let window = opts.metrics_window.unwrap_or(1_000);
    let off = SuiteOptions { metrics_window: None, ..*opts };
    let on = SuiteOptions { metrics_window: Some(window), ..*opts };

    // Serial baseline first, then the parallel run; the two result
    // documents must be byte-identical (the determinism guarantee the
    // rest of the tooling relies on).
    let serial = run_suite(&SuiteOptions { jobs: 1, ..off });
    eprintln!("{}", serial.telemetry.report(1));
    let parallel = run_suite(&off);
    eprintln!("{}", parallel.telemetry.report(workers));
    assert_eq!(
        serial.json, parallel.json,
        "suite output differs between --jobs 1 and --jobs {workers}"
    );

    // The same pair with windowed metrics collected in every system.
    // Metrics must neither perturb results nor break the jobs
    // invariance, so all four documents are identical.
    let serial_metrics = run_suite(&SuiteOptions { jobs: 1, ..on });
    let parallel_metrics = run_suite(&on);
    assert_eq!(
        serial.json, serial_metrics.json,
        "suite output changed when metrics (window={window}) were enabled"
    );
    assert_eq!(
        serial_metrics.json, parallel_metrics.json,
        "metrics-on output differs between --jobs 1 and --jobs {workers}"
    );

    let serial_wall = serial.telemetry.total_wall().as_secs_f64();
    let parallel_wall = parallel.telemetry.total_wall().as_secs_f64();
    let metrics_serial_wall = serial_metrics.telemetry.total_wall().as_secs_f64();
    let metrics_parallel_wall = parallel_metrics.telemetry.total_wall().as_secs_f64();
    let speedup = if parallel_wall > 0.0 { serial_wall / parallel_wall } else { 1.0 };
    let overhead_pct = if serial_wall > 0.0 {
        (metrics_serial_wall - serial_wall) / serial_wall * 100.0
    } else {
        0.0
    };

    // Where does simulation time go? Profile one saturated four-master
    // system (with metrics on, like the overhead run).
    let probe_settings = on.settings().with_jobs(1);
    let (_, profiler) = experiments::common::run_system_profiled(
        &traffic_gen::classes::saturating_specs(4),
        experiments::common::protocol_arbiter(4, probe_settings.seed),
        &probe_settings,
    );
    eprintln!("{}", sim_phases_report(&profiler));

    let report = experiments::json::Json::obj()
        .field("quick", opts.quick)
        .field("host_parallelism", socsim::pool::available_jobs())
        .field("jobs", workers)
        .field("serial_wall_secs", serial_wall)
        .field("parallel_wall_secs", parallel_wall)
        .field("speedup", speedup)
        .field("byte_identical", true)
        .field("metrics_window", window)
        .field("metrics_serial_wall_secs", metrics_serial_wall)
        .field("metrics_parallel_wall_secs", metrics_parallel_wall)
        .field("metrics_overhead_pct", overhead_pct)
        .field("metrics_byte_identical", true)
        .field("sim_phases", sim_phases_json(&profiler))
        .field("serial", serial.telemetry.to_json())
        .field("parallel", parallel.telemetry.to_json());
    std::fs::write(bench_path, report.render() + "\n").expect("write bench report");
    eprintln!(
        "speedup {speedup:.2}x with {workers} worker(s); metrics overhead {overhead_pct:.2}% \
         at window={window}; bench report: {bench_path}"
    );
    parallel.json
}

fn emit(out: Option<&str>, json: &str) {
    match out {
        Some(path) => std::fs::write(path, json.to_owned() + "\n").expect("write suite output"),
        None => println!("{json}"),
    }
}
