//! Runs the full experiment suite and emits one deterministic JSON
//! document on stdout (or `--out FILE`).
//!
//! ```text
//! suite [--quick] [--jobs N] [--metrics W] [--kernel K] [--validate-analytic]
//!       [--out FILE] [--bench FILE]
//! ```
//!
//! * `--quick` — short measurement window (CI-friendly).
//! * `--jobs N` — worker threads; `0` (default) = all cores. Never
//!   affects the JSON output, only wall-clock time.
//! * `--metrics W` — also collect windowed metrics (window of W cycles)
//!   in every simulation. The samples are discarded, so the JSON output
//!   is byte-identical with or without this flag; it exists to exercise
//!   and measure the observability layer.
//! * `--kernel K` — simulation kernel, `cycle` (default), `fast`, or
//!   `tlm`. The fast-forward kernel skips provably idle spans and the
//!   JSON output is byte-identical (the CI kernel-diff gate checks
//!   exactly that). The TLM kernel additionally collapses whole bus
//!   tenures into single events: exact for catch-up arrival processes
//!   (periodic, on/off, replay), a bounded approximation for
//!   memoryless (Bernoulli) arrivals against a contended bus.
//! * `--validate-analytic` — additionally run the analytic-model
//!   validation grid (48 simulations, each compared against the
//!   closed-form predictors of the `analytic` crate) and embed the
//!   per-cell error table as an `analytic_validation` field of the
//!   result document. Off by default so the core document the CI
//!   determinism gates diff is unchanged.
//! * `--out FILE` — write the JSON document to FILE instead of stdout.
//! * `--bench FILE` — benchmark mode: run the suite serially (`--jobs
//!   1`) and with the requested worker count, with metrics off and on,
//!   and once under the fast-forward kernel; assert all result
//!   documents are byte-identical, profile the cycle kernel's phases,
//!   time the fast kernel against the cycle kernel on a low-utilization
//!   and a saturated workload, probe the TLM kernel (byte-exactness
//!   plus speedup on the low-utilization workload, measured error
//!   bounds on the saturated one), run the saturated hot-path lineup
//!   (steady-state cycles/sec per protocol), pack the same lineup as
//!   one SoA lockstep fleet and time it against the summed scalar runs
//!   (lane exactness hard-asserted, aggregate speedup reported), and
//!   write the wall-clock report to FILE (the `BENCH_PR9.json`
//!   artifact: parallel speedup, metrics overhead, kernel speedups,
//!   the `tlm` probe section, per-phase breakdown, per-protocol
//!   hot-path throughput, and the `fleet` section).
//!
//! Timing telemetry always goes to **stderr** so stdout stays a clean,
//! diffable result stream.

use experiments::suite::{run_suite, SuiteOptions};
use experiments::telemetry::{sim_phases_json, sim_phases_report};
use socsim::Kernel;

fn usage() -> ! {
    eprintln!(
        "usage: suite [--quick] [--jobs N] [--metrics W] [--kernel cycle|fast|tlm] \
         [--validate-analytic] [--out FILE] [--bench FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = SuiteOptions {
        quick: false,
        jobs: 0,
        metrics_window: None,
        kernel: Kernel::Cycle,
        validate_analytic: false,
    };
    let mut out: Option<String> = None;
    let mut bench: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| usage());
                opts.jobs = value.parse().unwrap_or_else(|_| usage());
            }
            "--metrics" => {
                let value = args.next().unwrap_or_else(|| usage());
                let window: u64 = value.parse().unwrap_or_else(|_| usage());
                if window == 0 {
                    usage();
                }
                opts.metrics_window = Some(window);
            }
            "--kernel" => {
                let value = args.next().unwrap_or_else(|| usage());
                opts.kernel = Kernel::parse(&value).unwrap_or_else(|| usage());
            }
            "--validate-analytic" => opts.validate_analytic = true,
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--bench" => bench = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let workers = socsim::pool::resolve_jobs(opts.jobs);

    if let Some(bench_path) = bench {
        emit(out.as_deref(), &run_bench(&opts, workers, &bench_path));
    } else {
        let run = run_suite(&opts);
        eprintln!("{}", run.telemetry.report(workers));
        emit(out.as_deref(), &run.json);
    }
}

/// The benchmark flow: four suite runs (serial/parallel × metrics
/// off/on) plus a fast-kernel run, byte-identity checks across all of
/// them, a profiled probe simulation, kernel-speedup probes, and the
/// JSON report. Returns the suite result document.
fn run_bench(opts: &SuiteOptions, workers: usize, bench_path: &str) -> String {
    let window = opts.metrics_window.unwrap_or(1_000);
    // The validation grid is benchmarked once on the side (below), not
    // inside each of the five suite runs the identity checks compare.
    let off = SuiteOptions {
        metrics_window: None,
        kernel: Kernel::Cycle,
        validate_analytic: false,
        ..*opts
    };
    let on = SuiteOptions { metrics_window: Some(window), kernel: Kernel::Cycle, ..off };

    // Serial baseline first, then the parallel run; the two result
    // documents must be byte-identical (the determinism guarantee the
    // rest of the tooling relies on).
    let serial = run_suite(&SuiteOptions { jobs: 1, ..off });
    eprintln!("{}", serial.telemetry.report(1));
    let parallel = run_suite(&off);
    eprintln!("{}", parallel.telemetry.report(workers));
    assert_eq!(
        serial.json, parallel.json,
        "suite output differs between --jobs 1 and --jobs {workers}"
    );

    // The same pair with windowed metrics collected in every system.
    // Metrics must neither perturb results nor break the jobs
    // invariance, so all four documents are identical.
    let serial_metrics = run_suite(&SuiteOptions { jobs: 1, ..on });
    let parallel_metrics = run_suite(&on);
    assert_eq!(
        serial.json, serial_metrics.json,
        "suite output changed when metrics (window={window}) were enabled"
    );
    assert_eq!(
        serial_metrics.json, parallel_metrics.json,
        "metrics-on output differs between --jobs 1 and --jobs {workers}"
    );

    // The fast-forward kernel must reproduce the suite byte for byte
    // — the same guarantee the CI kernel-diff gate enforces.
    let fast = run_suite(&SuiteOptions { jobs: 1, kernel: Kernel::Fast, ..off });
    assert_eq!(
        serial.json, fast.json,
        "suite output differs between the cycle and fast-forward kernels"
    );

    let serial_wall = serial.telemetry.total_wall().as_secs_f64();
    let fast_wall = fast.telemetry.total_wall().as_secs_f64();
    let kernel_suite_speedup = if fast_wall > 0.0 { serial_wall / fast_wall } else { 1.0 };
    let parallel_wall = parallel.telemetry.total_wall().as_secs_f64();
    let metrics_serial_wall = serial_metrics.telemetry.total_wall().as_secs_f64();
    let metrics_parallel_wall = parallel_metrics.telemetry.total_wall().as_secs_f64();
    let speedup = if parallel_wall > 0.0 { serial_wall / parallel_wall } else { 1.0 };
    let overhead_pct = if serial_wall > 0.0 {
        (metrics_serial_wall - serial_wall) / serial_wall * 100.0
    } else {
        0.0
    };

    // Where does simulation time go? Profile one saturated four-master
    // system (with metrics on, like the overhead run).
    let probe_settings = on.settings().with_jobs(1);
    let (_, profiler) = experiments::common::run_system_profiled(
        &traffic_gen::classes::saturating_specs(4),
        experiments::common::protocol_arbiter(4, probe_settings.seed),
        &probe_settings,
    );
    eprintln!("{}", sim_phases_report(&profiler));

    // Targeted kernel probes: the fast-forward kernel must win big on a
    // mostly-idle workload and must not lose at saturation.
    let probe = off.settings().with_jobs(1);
    let lowutil = kernel_probe(&experiments::common::low_utilization_specs(4), &probe);
    let saturated = kernel_probe(&traffic_gen::classes::saturating_specs(4), &probe);
    eprintln!(
        "fast kernel: suite {kernel_suite_speedup:.2}x, low-utilization {:.2}x, \
         saturated {:.2}x",
        lowutil.speedup, saturated.speedup
    );

    // TLM probes. On the low-utilization periodic workload every
    // arbitration outcome is forced, so the TLM kernel must be
    // byte-exact and much faster than the cycle kernel. On the
    // saturated Bernoulli workload it is an approximation: measure the
    // deviation instead of asserting identity, and publish the error
    // bounds so regressions (accuracy or speed) are visible in the
    // bench artifact.
    let tlm_lowutil = tlm_exact_probe(&experiments::common::low_utilization_specs(4), &probe);
    let tlm_saturated = tlm_error_probe(&traffic_gen::classes::saturating_specs(4), &probe);
    eprintln!(
        "tlm kernel: low-utilization {:.2}x (byte-exact), saturated {:.2}x \
         (util err {:.4}, share err {:.4}, p99 ratio err {:.3})",
        tlm_lowutil.speedup,
        tlm_saturated.speedup,
        tlm_saturated.utilization_abs_error,
        tlm_saturated.bandwidth_share_max_abs_error,
        tlm_saturated.p99_latency_max_ratio_error,
    );

    // The analytic crate's two headline numbers: how close the closed
    // forms track the simulator across the validation grid, and how
    // fast the design-space search scans. Both land in the bench
    // artifact so accuracy or throughput regressions fail the gate.
    let analytic_probe = analytic_probe(&probe, workers);
    eprintln!(
        "analytic: share err max {:.4} / mean {:.4}, latency rel err max {:.3} / mean {:.3}; \
         search {} points in {:.3}s ({:.1}M points/s)",
        analytic_probe.validation.share_max_abs_error,
        analytic_probe.validation.share_mean_abs_error,
        analytic_probe.validation.latency_max_rel_error,
        analytic_probe.validation.latency_mean_rel_error,
        analytic_probe.search_points,
        analytic_probe.search_wall_secs,
        analytic_probe.search_points_per_sec / 1e6,
    );

    // The saturated hot-path lineup: steady-state cycles/sec per
    // protocol with always-requesting sources (no RNG, no per-cycle
    // allocation), the number the enum-dispatch kernel is tuned for.
    let hot = experiments::hotpath::hot_lineup(&probe);
    for p in &hot {
        eprintln!(
            "hot {}: {:.2}M cycles/s ({} cycles in {:.4}s)",
            p.protocol,
            p.cycles_per_sec / 1e6,
            p.cycles,
            p.wall_secs
        );
    }

    // The fleet probes: saturated lineups packed as lanes of one SoA
    // lockstep fleet with grouped (lowered) arbitration, timed against
    // the sum of the equivalent scalar runs. Lane exactness is a hard
    // in-binary assert; the aggregate speedups are the PR-9/PR-10
    // acceptance numbers gated by tools/bench_regression.py.
    let fleet = fleet_probe(&probe, &FLEET_PROTOCOLS);
    eprintln!(
        "fleet: {} lanes, {:.2}x aggregate vs scalar ({:.4}s vs {:.4}s, \
         {:.2}M lane-cycles/s)",
        fleet.lanes,
        fleet.aggregate_speedup,
        fleet.fleet_wall_secs,
        fleet.scalar_wall_secs,
        fleet.lane_cycles_per_sec / 1e6,
    );
    let fleet_tdma = fleet_probe(&probe, &FLEET_TDMA_PACK);
    eprintln!(
        "fleet_arb tdma: {} lanes sharing {} wheel kernel(s), {:.2}x aggregate vs scalar \
         ({:.4}s vs {:.4}s, {:.2}M lane-cycles/s)",
        fleet_tdma.lanes,
        fleet_tdma.kernels,
        fleet_tdma.aggregate_speedup,
        fleet_tdma.fleet_wall_secs,
        fleet_tdma.scalar_wall_secs,
        fleet_tdma.lane_cycles_per_sec / 1e6,
    );

    let report = experiments::json::Json::obj()
        .field("quick", opts.quick)
        .field("host_parallelism", socsim::pool::available_jobs())
        .field("jobs", workers)
        .field("serial_wall_secs", serial_wall)
        .field("parallel_wall_secs", parallel_wall)
        .field("speedup", speedup)
        .field("byte_identical", true)
        .field("metrics_window", window)
        .field("metrics_serial_wall_secs", metrics_serial_wall)
        .field("metrics_parallel_wall_secs", metrics_parallel_wall)
        .field("metrics_overhead_pct", overhead_pct)
        .field("metrics_byte_identical", true)
        .field("kernel_suite_wall_secs", fast_wall)
        .field("kernel_suite_speedup", kernel_suite_speedup)
        .field("kernel_byte_identical", true)
        .field("kernel_lowutil", lowutil.to_json())
        .field("kernel_saturated", saturated.to_json())
        .field(
            "tlm",
            experiments::json::Json::obj()
                .field("lowutil", tlm_lowutil.to_json())
                .field("saturated", tlm_saturated.to_json()),
        )
        .field("analytic", analytic_probe.to_json())
        .field("hot", experiments::hotpath::hot_json(&hot))
        .field("fleet", fleet.to_json())
        .field(
            "fleet_arb",
            experiments::json::Json::obj()
                .field("probe", fleet.to_json())
                .field("tdma", fleet_tdma.to_json()),
        )
        .field("sim_phases", sim_phases_json(&profiler))
        .field("serial", serial.telemetry.to_json())
        .field("parallel", parallel.telemetry.to_json());
    std::fs::write(bench_path, report.render() + "\n").expect("write bench report");
    eprintln!(
        "speedup {speedup:.2}x with {workers} worker(s); metrics overhead {overhead_pct:.2}% \
         at window={window}; bench report: {bench_path}"
    );
    parallel.json
}

/// One kernel-speedup probe: the same workload timed under the cycle
/// kernel and the fast-forward kernel, with a stats-equality check.
struct KernelProbe {
    cycle_wall_secs: f64,
    fast_wall_secs: f64,
    speedup: f64,
}

impl KernelProbe {
    fn to_json(&self) -> experiments::json::Json {
        experiments::json::Json::obj()
            .field("cycle_wall_secs", self.cycle_wall_secs)
            .field("fast_wall_secs", self.fast_wall_secs)
            .field("speedup", self.speedup)
    }
}

fn kernel_probe(
    specs: &[traffic_gen::GeneratorSpec],
    settings: &experiments::RunSettings,
) -> KernelProbe {
    // Warm the caches once, then take the best of several timed runs
    // per kernel — single runs are short enough for scheduler noise to
    // dominate the ratio.
    experiments::common::run_system(
        specs,
        experiments::common::protocol_arbiter(4, settings.seed),
        settings,
    );
    let (cycle_wall_secs, cycle_stats) = time_best(specs, settings);
    let (fast_wall_secs, fast_stats) = time_best(specs, &settings.with_fast_forward(true));
    assert_eq!(cycle_stats, fast_stats, "kernel probe results diverged");
    let speedup = if fast_wall_secs > 0.0 { cycle_wall_secs / fast_wall_secs } else { 1.0 };
    KernelProbe { cycle_wall_secs, fast_wall_secs, speedup }
}

/// Best-of-5 wall time for one workload under one kernel, returning the
/// (deterministic) stats of the final run alongside the timing.
fn time_best(
    specs: &[traffic_gen::GeneratorSpec],
    settings: &experiments::RunSettings,
) -> (f64, socsim::stats::BusStats) {
    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..5 {
        let arbiter = experiments::common::protocol_arbiter(4, settings.seed);
        let start = std::time::Instant::now();
        let run = experiments::common::run_system(specs, arbiter, settings);
        best = best.min(start.elapsed().as_secs_f64());
        stats = Some(run);
    }
    (best, stats.expect("ran at least once"))
}

/// The TLM exactness probe: on a forced-outcome workload the TLM kernel
/// must reproduce the cycle kernel's stats exactly *and* beat it on
/// wall clock by a wide margin (the ≥10x acceptance target).
struct TlmExactProbe {
    cycle_wall_secs: f64,
    tlm_wall_secs: f64,
    speedup: f64,
}

impl TlmExactProbe {
    fn to_json(&self) -> experiments::json::Json {
        experiments::json::Json::obj()
            .field("cycle_wall_secs", self.cycle_wall_secs)
            .field("tlm_wall_secs", self.tlm_wall_secs)
            .field("speedup", self.speedup)
            .field("byte_identical", true)
    }
}

fn tlm_exact_probe(
    specs: &[traffic_gen::GeneratorSpec],
    settings: &experiments::RunSettings,
) -> TlmExactProbe {
    experiments::common::run_system(
        specs,
        experiments::common::protocol_arbiter(4, settings.seed),
        settings,
    );
    let (cycle_wall_secs, cycle_stats) = time_best(specs, settings);
    let (tlm_wall_secs, tlm_stats) = time_best(specs, &settings.with_kernel(Kernel::Tlm));
    assert_eq!(cycle_stats, tlm_stats, "tlm kernel diverged on a forced-outcome workload");
    let speedup = if tlm_wall_secs > 0.0 { cycle_wall_secs / tlm_wall_secs } else { 1.0 };
    TlmExactProbe { cycle_wall_secs, tlm_wall_secs, speedup }
}

/// The TLM error probe: on a saturated Bernoulli workload tenure
/// batching thins the arrival polls, so instead of asserting identity
/// we measure how far utilization, per-master bandwidth shares, and
/// latency quantiles drift from the cycle kernel's ground truth.
struct TlmErrorProbe {
    cycle_wall_secs: f64,
    tlm_wall_secs: f64,
    speedup: f64,
    utilization_abs_error: f64,
    bandwidth_share_max_abs_error: f64,
    p50_latency_max_ratio_error: f64,
    p99_latency_max_ratio_error: f64,
}

impl TlmErrorProbe {
    fn to_json(&self) -> experiments::json::Json {
        experiments::json::Json::obj()
            .field("cycle_wall_secs", self.cycle_wall_secs)
            .field("tlm_wall_secs", self.tlm_wall_secs)
            .field("speedup", self.speedup)
            .field("utilization_abs_error", self.utilization_abs_error)
            .field("bandwidth_share_max_abs_error", self.bandwidth_share_max_abs_error)
            .field("p50_latency_max_ratio_error", self.p50_latency_max_ratio_error)
            .field("p99_latency_max_ratio_error", self.p99_latency_max_ratio_error)
    }
}

fn tlm_error_probe(
    specs: &[traffic_gen::GeneratorSpec],
    settings: &experiments::RunSettings,
) -> TlmErrorProbe {
    experiments::common::run_system(
        specs,
        experiments::common::protocol_arbiter(4, settings.seed),
        settings,
    );
    let (cycle_wall_secs, cycle_stats) = time_best(specs, settings);
    let (tlm_wall_secs, tlm_stats) = time_best(specs, &settings.with_kernel(Kernel::Tlm));
    let speedup = if tlm_wall_secs > 0.0 { cycle_wall_secs / tlm_wall_secs } else { 1.0 };

    let utilization_abs_error = (cycle_stats.bus_utilization() - tlm_stats.bus_utilization()).abs();
    // Bandwidth *shares* are relative: each master's fraction of the
    // words actually delivered. Utilization error measures how much
    // total throughput the approximation loses; share error measures
    // whether it distorts the split between masters (fairness).
    let relative_share = |stats: &socsim::stats::BusStats, id: socsim::MasterId| -> f64 {
        let total: f64 =
            (0..specs.len()).map(|j| stats.bandwidth_fraction(socsim::MasterId::new(j))).sum();
        if total > 0.0 {
            stats.bandwidth_fraction(id) / total
        } else {
            0.0
        }
    };
    let mut bandwidth_share_max_abs_error = 0.0f64;
    let mut p50_latency_max_ratio_error = 0.0f64;
    let mut p99_latency_max_ratio_error = 0.0f64;
    for i in 0..specs.len() {
        let id = socsim::MasterId::new(i);
        bandwidth_share_max_abs_error = bandwidth_share_max_abs_error
            .max((relative_share(&cycle_stats, id) - relative_share(&tlm_stats, id)).abs());
        let quantile_ratio_error = |q: f64| -> f64 {
            let cycle_q = cycle_stats.master(id).latency_quantile(q);
            let tlm_q = tlm_stats.master(id).latency_quantile(q);
            match (cycle_q, tlm_q) {
                (Some(c), Some(t)) if c > 0 => (t as f64 - c as f64).abs() / c as f64,
                _ => 0.0,
            }
        };
        p50_latency_max_ratio_error = p50_latency_max_ratio_error.max(quantile_ratio_error(0.5));
        p99_latency_max_ratio_error = p99_latency_max_ratio_error.max(quantile_ratio_error(0.99));
    }

    TlmErrorProbe {
        cycle_wall_secs,
        tlm_wall_secs,
        speedup,
        utilization_abs_error,
        bandwidth_share_max_abs_error,
        p50_latency_max_ratio_error,
        p99_latency_max_ratio_error,
    }
}

/// One fleet probe: a saturated protocol lineup packed as lanes of one
/// SoA lockstep fleet, timed against the summed wall clock of the
/// equivalent scalar cycle-kernel runs. Every lane's stats are
/// hard-asserted byte-identical to its scalar run before any number is
/// reported.
struct FleetProbe {
    protocols: &'static [&'static str],
    lanes: usize,
    lanes_lowered: usize,
    kernels: usize,
    cycles_per_lane: u64,
    fleet_wall_secs: f64,
    scalar_wall_secs: f64,
    aggregate_speedup: f64,
    lane_cycles_per_sec: f64,
}

/// Burst length (and bus `max_burst`) of the fleet probe's workload:
/// DMA-style long tenures, where the fleet's exact tenure batching
/// amortizes per-cycle stepping and the aggregate speedup target
/// (gated by `tools/bench_regression.py`) is meaningful. The
/// short-burst regime is covered by the `hot` probe above.
const FLEET_WORDS: u32 = 64;

/// The flagship fleet lineup: every built-in protocol whose grants can
/// span a multi-cycle tenure, one lane each, every lane lowered into
/// its (singleton) SoA decision kernel. TDMA is measured by its own
/// pack ([`FLEET_TDMA_PACK`]) instead — its wheel issues single-word
/// grants, so its fleet win comes from the arithmetic slot-position
/// walk rather than tenure batching, a different mechanism worth its
/// own number.
const FLEET_PROTOCOLS: [&str; 5] =
    ["static-priority", "round-robin", "deficit-rr", "lottery-static", "lottery-dynamic"];

/// The TDMA lane pack: identically-configured TDMA lanes that lower
/// into one SoA kernel sharing a single timing-wheel table, each lane
/// replayed by the arithmetic slot-position walk.
const FLEET_TDMA_PACK: [&str; 5] = ["tdma"; 5];

impl FleetProbe {
    fn to_json(&self) -> experiments::json::Json {
        use experiments::json::Json;
        let protocols: Vec<Json> = self.protocols.iter().map(|&p| Json::from(p)).collect();
        Json::obj()
            .field("lanes", self.lanes)
            .field("protocols", Json::Arr(protocols))
            .field("lanes_lowered", self.lanes_lowered)
            .field("kernels", self.kernels)
            .field("masters", experiments::hotpath::HOT_MASTERS)
            .field("words", u64::from(FLEET_WORDS))
            .field("cycles_per_lane", self.cycles_per_lane)
            .field("fleet_wall_secs", self.fleet_wall_secs)
            .field("scalar_wall_secs", self.scalar_wall_secs)
            .field("aggregate_speedup", self.aggregate_speedup)
            .field("lane_cycles_per_sec", self.lane_cycles_per_sec)
            .field("lane_exact", true)
    }
}

fn fleet_probe(
    settings: &experiments::RunSettings,
    protocols: &'static [&'static str],
) -> FleetProbe {
    use experiments::hotpath::{hot_arbiter, HOT_MASTERS};
    use socsim::fleet::{Fleet, LaneBuilder};
    use traffic_gen::{SaturateSource, SourceKind};

    let bus = socsim::BusConfig { max_burst: FLEET_WORDS, ..settings.bus };

    // Scalar baseline: one cycle-kernel system per protocol, walls
    // summed within a repetition, best repetition reported.
    let mut scalar_wall_secs = f64::INFINITY;
    let mut scalar_stats = Vec::new();
    for _ in 0..3 {
        let mut total = 0.0;
        let mut stats = Vec::new();
        for &protocol in protocols {
            let mut builder = socsim::SystemBuilder::new(bus);
            for i in 0..HOT_MASTERS {
                builder = builder.master(
                    format!("C{}", i + 1),
                    SourceKind::from(SaturateSource::new(0, FLEET_WORDS)),
                );
            }
            let mut system = builder
                .arbiter(hot_arbiter(protocol, settings.seed))
                .build()
                .expect("fleet-probe system is valid");
            system.warm_up(settings.warmup);
            let start = std::time::Instant::now();
            system.run(settings.measure);
            total += start.elapsed().as_secs_f64();
            stats.push(system.stats().clone());
        }
        scalar_wall_secs = scalar_wall_secs.min(total);
        scalar_stats = stats;
    }

    // The same systems as lanes of one fleet, advanced together with
    // grouped (SoA-lowered) arbitration.
    let mut fleet_wall_secs = f64::INFINITY;
    let mut fleet_stats = Vec::new();
    let mut lanes_lowered = 0;
    let mut kernels = 0;
    for _ in 0..3 {
        let lanes = protocols
            .iter()
            .map(|protocol| {
                let mut lane: LaneBuilder<arbiters::ArbiterKind, SourceKind> =
                    LaneBuilder::new(bus);
                for i in 0..HOT_MASTERS {
                    lane = lane.master(
                        format!("C{}", i + 1),
                        SourceKind::from(SaturateSource::new(0, FLEET_WORDS)),
                    );
                }
                lane.arbiter(hot_arbiter(protocol, settings.seed))
            })
            .collect();
        let mut fleet = Fleet::build(lanes).expect("fleet-probe lanes are valid");
        lanes_lowered = fleet.lowered_lanes();
        kernels = fleet.kernel_count();
        fleet.warm_up(settings.warmup);
        let start = std::time::Instant::now();
        fleet.run(settings.measure);
        fleet_wall_secs = fleet_wall_secs.min(start.elapsed().as_secs_f64());
        fleet_stats = (0..fleet.len()).map(|i| fleet.stats(i).clone()).collect();
    }
    assert_eq!(
        lanes_lowered,
        protocols.len(),
        "every probe lane must lower into an SoA decision kernel"
    );

    // Hard gate: every lane must reproduce its scalar run byte for
    // byte before any throughput number is believed.
    for ((protocol, lane), solo) in protocols.iter().zip(&fleet_stats).zip(&scalar_stats) {
        assert_eq!(lane, solo, "fleet lane {protocol} diverged from its scalar run");
        assert!(
            lane.bus_utilization() > 0.95,
            "{protocol} fleet lane is not saturated: utilization {}",
            lane.bus_utilization()
        );
    }

    let lanes = protocols.len();
    let aggregate_speedup =
        if fleet_wall_secs > 0.0 { scalar_wall_secs / fleet_wall_secs } else { 1.0 };
    let lane_cycles_per_sec = if fleet_wall_secs > 0.0 {
        settings.measure as f64 * lanes as f64 / fleet_wall_secs
    } else {
        0.0
    };
    FleetProbe {
        protocols,
        lanes,
        lanes_lowered,
        kernels,
        cycles_per_lane: settings.measure,
        fleet_wall_secs,
        scalar_wall_secs,
        aggregate_speedup,
        lane_cycles_per_sec,
    }
}

/// The analytic probe: the validation grid's error summary plus the
/// single-threaded design-space search throughput (the "scan a million
/// points in under five seconds" acceptance number).
struct AnalyticProbe {
    grid_wall_secs: f64,
    validation: experiments::validate::ErrorSummary,
    search_points: u64,
    search_feasible: u64,
    search_shortlisted: usize,
    search_wall_secs: f64,
    search_points_per_sec: f64,
}

impl AnalyticProbe {
    fn to_json(&self) -> experiments::json::Json {
        use experiments::json::ToJson as _;
        experiments::json::Json::obj()
            .field("grid_wall_secs", self.grid_wall_secs)
            .field("validation", self.validation.to_json())
            .field(
                "search",
                experiments::json::Json::obj()
                    .field("points", self.search_points)
                    .field("feasible", self.search_feasible)
                    .field("shortlisted", self.search_shortlisted)
                    .field("wall_secs", self.search_wall_secs)
                    .field("points_per_sec", self.search_points_per_sec),
            )
    }
}

fn analytic_probe(settings: &experiments::RunSettings, workers: usize) -> AnalyticProbe {
    let start = std::time::Instant::now();
    let grid = experiments::validate::run(&settings.with_jobs(workers));
    let grid_wall_secs = start.elapsed().as_secs_f64();
    let validation = grid.summary();

    // The acceptance scan: four saturating masters × tickets 1..=32 =
    // 1,048,576 lottery design points against a 40 % share SLA on the
    // last master — single-threaded, best of 3.
    let traffic = vec![
        analytic::TrafficInput {
            lambda: 0.09,
            size: traffic_gen::SizeDist::fixed(16),
            stall: None
        };
        4
    ];
    let space =
        analytic::SearchSpace::new(analytic::Protocol::LotteryStatic, settings.bus, traffic);
    let targets = [analytic::SlaTarget { master: 3, kind: analytic::TargetKind::MinShare(0.4) }];
    let mut wall = f64::INFINITY;
    let mut report = None;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        let r = analytic::search(&space, &targets, 8).expect("probe space is valid");
        wall = wall.min(start.elapsed().as_secs_f64());
        report = Some(r);
    }
    let report = report.expect("ran at least once");
    AnalyticProbe {
        grid_wall_secs,
        validation,
        search_points: report.scanned,
        search_feasible: report.feasible,
        search_shortlisted: report.candidates.len(),
        search_wall_secs: wall,
        search_points_per_sec: if wall > 0.0 { report.scanned as f64 / wall } else { 0.0 },
    }
}

fn emit(out: Option<&str>, json: &str) {
    match out {
        Some(path) => std::fs::write(path, json.to_owned() + "\n").expect("write suite output"),
        None => println!("{json}"),
    }
}
