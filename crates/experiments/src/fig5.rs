//! Figure 5: TDMA wait times under two phase alignments of the same
//! periodic request pattern.
//!
//! Three masters reserve contiguous 6-slot blocks of an 18-slot timing
//! wheel. Masters M1 and M2 are saturated (they always have backlog, so
//! idle-slot reclaim cannot mask alignment effects); the observed master
//! M3 issues one 6-word message per wheel rotation. When M3's requests
//! are time-aligned with its reserved block the wait is zero; shifting
//! the same request trace to arrive three slots *early* makes every
//! transaction wait three slots for the block to come around — the
//! paper's Example 2.

use crate::json::{Json, ToJson};
use arbiters::{TdmaArbiter, WheelLayout};
use serde::{Deserialize, Serialize};
use socsim::{BusConfig, Kernel, MasterId, SystemBuilder};
use traffic_gen::{GeneratorSpec, ReplaySource, SizeDist, SourceKind};

/// Words per message and slots per reservation block (the paper's
/// "6 contiguous slots defining the size of a burst").
pub const BLOCK: u32 = 6;

/// Result of one trace replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Trace {
    /// How many slots early M3's requests arrive relative to its block.
    pub slots_early: u64,
    /// Average waiting slots per M3 transaction.
    pub mean_wait: f64,
    /// Symbolic bus-ownership trace (one character per cycle).
    pub bus_trace: String,
}

/// The full figure: the aligned trace and the phase-shifted trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// Request trace 1: M3's requests aligned with its reservation.
    pub aligned: Fig5Trace,
    /// Request trace 2: the same requests, three slots early.
    pub misaligned: Fig5Trace,
}

fn replay_run(slots_early: u64, rotations: usize, kernel: Kernel) -> Fig5Trace {
    let wheel = u64::from(BLOCK) * 3; // 18 slots
                                      // M3's block spans slots [12, 18); its k-th request arrives
                                      // `slots_early` cycles before the block of rotation k+1 opens.
    let m3_phase = 2 * u64::from(BLOCK) - slots_early;
    let mut builder =
        SystemBuilder::new(BusConfig { max_burst: BLOCK, ..BusConfig::default() }).kernel(kernel);
    // Saturated background masters: far more traffic than their blocks
    // can carry, so their request lines are always asserted.
    for m in 0..2 {
        let spec = GeneratorSpec::periodic(wheel / 2, 0, SizeDist::fixed(BLOCK));
        builder = builder.master(format!("M{}", m + 1), spec.build_kind(100 + m as u64));
    }
    builder = builder.master(
        "M3",
        SourceKind::from(ReplaySource::periodic(0, m3_phase, wheel, BLOCK, rotations)),
    );
    let arbiter = TdmaArbiter::new(&[BLOCK; 3], WheelLayout::Contiguous).expect("valid wheel");
    let mut system = builder
        .arbiter(arbiter)
        .trace_capacity(8 * wheel as usize * rotations)
        .build()
        .expect("valid system");
    let cycles = wheel * (rotations as u64 + 3);
    system.run(cycles);
    let wait = system
        .stats()
        .master(MasterId::new(2))
        .wait_per_transaction()
        .expect("M3 transactions complete");
    Fig5Trace {
        slots_early,
        mean_wait: wait,
        bus_trace: system.trace().render_owners(0..3 * wheel),
    }
}

/// Runs the Figure 5 experiment: the same periodic request pattern with
/// and without a phase shift relative to the slot reservations.
pub fn run() -> Fig5 {
    run_jobs(1)
}

/// [`run`] with an explicit worker count (`0` = auto): the two replays
/// are independent, fully deterministic simulations, so running them
/// concurrently produces the identical `Fig5`.
pub fn run_jobs(jobs: usize) -> Fig5 {
    run_kernel(jobs, Kernel::Cycle)
}

/// [`run_jobs`] with an explicit kernel choice: every kernel produces
/// the identical `Fig5` — the replayed request trace announces its
/// arrival times, so even the TLM kernel stays exact here (the
/// suite's kernel-diff gate checks this byte for byte).
pub fn run_kernel(jobs: usize, kernel: Kernel) -> Fig5 {
    let (aligned, misaligned) =
        socsim::pool::join(jobs, || replay_run(0, 12, kernel), || replay_run(3, 12, kernel));
    Fig5 { aligned, misaligned }
}

impl ToJson for Fig5Trace {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("slots_early", self.slots_early)
            .field("mean_wait", self.mean_wait)
            .field("bus_trace", self.bus_trace.as_str())
    }
}

impl ToJson for Fig5 {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("aligned", self.aligned.to_json())
            .field("misaligned", self.misaligned.to_json())
    }
}

impl std::fmt::Display for Fig5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 5: TDMA latency vs request/reservation alignment")?;
        writeln!(f, "(M1, M2 saturated; M3 periodic, one 6-word message per rotation)")?;
        for (name, trace) in
            [("trace 1 (aligned)", &self.aligned), ("trace 2 (3 slots early)", &self.misaligned)]
        {
            writeln!(f, "{name}:")?;
            writeln!(f, "  bus: {}", trace.bus_trace)?;
            writeln!(f, "  M3 mean wait: {:.1} slots per transaction", trace.mean_wait)?;
        }
        write!(
            f,
            "the phase shift alone grows the wait from {:.1} to {:.1} slots",
            self.aligned.mean_wait, self.misaligned.mean_wait,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_determines_wait() {
        let fig = run();
        // Paper: minimal wait when aligned, ~3 slots when shifted.
        assert!(fig.aligned.mean_wait <= 1.0, "aligned wait {}", fig.aligned.mean_wait);
        assert!(
            (fig.misaligned.mean_wait - 3.0).abs() <= 1.0,
            "misaligned wait {}",
            fig.misaligned.mean_wait
        );
    }

    #[test]
    fn figure5_is_bit_exact_reproducible() {
        // Fully deterministic: a golden snapshot of the rendered traces.
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.aligned.bus_trace, "000000111111222222000000111111222222000000111111222222");
        assert_eq!(a.aligned.mean_wait, 0.0);
        assert_eq!(a.misaligned.mean_wait, 3.0);
    }

    #[test]
    fn concurrent_replays_match_serial() {
        assert_eq!(run_jobs(2), run());
    }

    #[test]
    fn fast_and_tlm_kernel_replays_match_the_cycle_kernel() {
        assert_eq!(run_kernel(1, Kernel::Fast), run(), "fast kernel disagrees on Figure 5");
        assert_eq!(run_kernel(1, Kernel::Tlm), run(), "tlm kernel disagrees on Figure 5");
    }

    #[test]
    fn traces_show_all_three_masters() {
        let fig = run();
        for c in ['0', '1', '2'] {
            assert!(fig.aligned.bus_trace.contains(c), "missing {c} in trace");
        }
    }

    #[test]
    fn misalignment_does_not_change_bandwidth() {
        // Both traces carry the same M3 message stream; only waits move.
        let fig = run();
        assert_eq!(
            fig.aligned.bus_trace.matches('2').count(),
            fig.misaligned.bus_trace.matches('2').count()
        );
    }
}
