//! Figure 12: performance across the communication-traffic space.
//!
//! * **12(a)** — LOTTERYBUS bandwidth allocation across classes T1–T9,
//!   including the unused fraction. Under heavy classes the allocation
//!   follows the 1:2:3:4 tickets; in the sparse classes (T3, T6) grants
//!   are mostly immediate and shares track offered load instead.
//! * **12(b)** — per-component latency under two-level TDMA across
//!   classes T1–T6.
//! * **12(c)** — the same under LOTTERYBUS: lower and far less variable
//!   for the high-weight components, and never inverted (a higher-weight
//!   component never does worse than a lower-weight one by a large
//!   factor, unlike TDMA).

use crate::common::{self, RunSettings};
use crate::fig6::TDMA_BLOCK;
use crate::json::{Json, ToJson};
use crate::runner;
use arbiters::{TdmaArbiter, WheelLayout};
use lotterybus::{StaticLotteryArbiter, TicketAssignment};
use serde::{Deserialize, Serialize};
use traffic_gen::TrafficClass;

/// The component weights used throughout Figure 12 (tickets and slots).
pub const WEIGHTS: [u32; 4] = [1, 2, 3, 4];

/// One class's bandwidth row of Figure 12(a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12aRow {
    /// Traffic class.
    pub class: TrafficClass,
    /// Bandwidth fraction per component.
    pub bandwidth: Vec<f64>,
    /// Fraction of the bus left unused.
    pub unused: f64,
}

/// Figure 12(a): lottery bandwidth allocation across T1–T9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12a {
    /// One row per class.
    pub rows: Vec<Fig12aRow>,
}

/// Runs Figure 12(a). The nine traffic classes are independent
/// simulations, fanned out across `settings.jobs` workers.
pub fn run_bandwidth(settings: &RunSettings) -> Fig12a {
    let classes = TrafficClass::all();
    let rows = runner::map(settings, &classes, |_, &class| {
        let specs = class.specs_with_frame(&WEIGHTS, TDMA_BLOCK);
        let tickets = TicketAssignment::new(WEIGHTS.to_vec()).expect("valid");
        let arbiter = StaticLotteryArbiter::with_seed(tickets, settings.seed as u32 | 1)
            .expect("4-master LUT fits");
        let stats = common::run_system(&specs, Box::new(arbiter), settings);
        Fig12aRow {
            class,
            bandwidth: common::bandwidth_fractions(&stats, 4),
            unused: stats.unused_fraction(),
        }
    });
    Fig12a { rows }
}

impl ToJson for Fig12a {
    fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|row| {
                Json::obj()
                    .field("class", row.class.to_string())
                    .field("bandwidth", row.bandwidth.clone())
                    .field("unused", row.unused)
            })
            .collect();
        Json::obj().field("rows", Json::Arr(rows))
    }
}

impl std::fmt::Display for Fig12a {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 12(a): LOTTERYBUS bandwidth allocation (tickets 1:2:3:4)")?;
        writeln!(
            f,
            "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "class", "C1", "C2", "C3", "C4", "unused"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>6} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                row.class.name(),
                row.bandwidth[0] * 100.0,
                row.bandwidth[1] * 100.0,
                row.bandwidth[2] * 100.0,
                row.bandwidth[3] * 100.0,
                row.unused * 100.0,
            )?;
        }
        Ok(())
    }
}

/// A latency surface: classes × components, one architecture
/// (Figure 12(b) for TDMA, 12(c) for LOTTERYBUS).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySurface {
    /// Architecture name.
    pub architecture: String,
    /// Classes, in T1..T6 order.
    pub classes: Vec<TrafficClass>,
    /// `latency[k][c]` = cycles/word of component `c` under class `k`.
    pub latency: Vec<Vec<Option<f64>>>,
}

/// Runs Figure 12(b) — TDMA latency across classes T1–T6.
pub fn run_tdma_latency(settings: &RunSettings) -> LatencySurface {
    run_latency_surface("TDMA", settings, |seed| {
        let slots: Vec<u32> = WEIGHTS.iter().map(|w| w * TDMA_BLOCK).collect();
        let _ = seed;
        Box::new(TdmaArbiter::new(&slots, WheelLayout::Contiguous).expect("valid wheel"))
    })
}

/// Runs Figure 12(c) — LOTTERYBUS latency across classes T1–T6.
pub fn run_lottery_latency(settings: &RunSettings) -> LatencySurface {
    run_latency_surface("LOTTERYBUS", settings, |seed| {
        let tickets = TicketAssignment::new(WEIGHTS.to_vec()).expect("valid");
        Box::new(StaticLotteryArbiter::with_seed(tickets, seed).expect("4-master LUT fits"))
    })
}

fn run_latency_surface(
    name: &str,
    settings: &RunSettings,
    make_arbiter: impl Fn(u32) -> Box<dyn socsim::Arbiter> + Sync,
) -> LatencySurface {
    let classes: Vec<TrafficClass> = TrafficClass::latency_set().to_vec();
    // Each class runs on its own worker; the arbiter is constructed
    // inside the job (`Box<dyn Arbiter>` is not `Send`).
    let latency = runner::map(settings, &classes, |_, class| {
        let specs = class.specs_with_frame(&WEIGHTS, TDMA_BLOCK);
        let stats = common::run_system(&specs, make_arbiter(settings.seed as u32 | 1), settings);
        common::latencies(&stats, 4)
    });
    LatencySurface { architecture: name.into(), classes, latency }
}

impl LatencySurface {
    /// Latency of the component holding `weight` (1..=4) under `class`.
    pub fn at(&self, class: TrafficClass, weight: u32) -> Option<f64> {
        let k = self.classes.iter().position(|&c| c == class)?;
        self.latency[k][weight as usize - 1]
    }

    /// (min, max) latency of a component across all classes — the paper
    /// highlights how wide this range is for TDMA's high-priority
    /// component and how narrow for the lottery's.
    pub fn component_range(&self, weight: u32) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &self.latency {
            if let Some(v) = row[weight as usize - 1] {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        (lo, hi)
    }
}

impl ToJson for LatencySurface {
    fn to_json(&self) -> Json {
        let classes: Vec<Json> = self.classes.iter().map(|c| c.to_string().into()).collect();
        let latency: Vec<Json> = self.latency.iter().map(|row| row.clone().into()).collect();
        Json::obj()
            .field("architecture", self.architecture.as_str())
            .field("classes", Json::Arr(classes))
            .field("latency", Json::Arr(latency))
    }
}

impl std::fmt::Display for LatencySurface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Average latency (cycles/word) under {}", self.architecture)?;
        writeln!(f, "{:>6} {:>9} {:>9} {:>9} {:>9}", "class", "w=1", "w=2", "w=3", "w=4")?;
        for (k, class) in self.classes.iter().enumerate() {
            let cells: Vec<String> = self.latency[k]
                .iter()
                .map(|v| v.map_or("-".into(), |x| format!("{x:.2}")))
                .collect();
            writeln!(
                f,
                "{:>6} {:>9} {:>9} {:>9} {:>9}",
                class.name(),
                cells[0],
                cells[1],
                cells[2],
                cells[3]
            )?;
        }
        let (lo, hi) = self.component_range(4);
        write!(f, "highest-weight component ranges {lo:.2}..{hi:.2} cycles/word")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> RunSettings {
        RunSettings { measure: 60_000, warmup: 10_000, ..RunSettings::quick() }
    }

    #[test]
    fn heavy_classes_follow_tickets_sparse_classes_do_not() {
        let fig = run_bandwidth(&settings());
        for row in &fig.rows {
            match row.class {
                TrafficClass::T3 | TrafficClass::T6 => {
                    // Sparse: substantial unused bandwidth.
                    assert!(row.unused > 0.3, "{}: unused {:.2}", row.class, row.unused);
                }
                TrafficClass::T1 | TrafficClass::T8 => {
                    // Heavy: allocation ordered by tickets, C4 near 4/10.
                    assert!(row.bandwidth[3] > row.bandwidth[0], "{}", row.class);
                    assert!(
                        (row.bandwidth[3] - 0.34).abs() < 0.12,
                        "{}: C4 {:.2}",
                        row.class,
                        row.bandwidth[3]
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn lottery_latency_is_lower_and_steadier_than_tdma() {
        let s = settings();
        let tdma = run_tdma_latency(&s);
        let lottery = run_lottery_latency(&s);
        let (tlo, thi) = tdma.component_range(4);
        let (llo, lhi) = lottery.component_range(4);
        // The lottery's high-weight latency band sits below TDMA's peak
        // and is much narrower (paper: 0.65..10.5 vs a tight band).
        assert!(lhi < thi, "lottery max {lhi:.2} vs tdma max {thi:.2}");
        assert!(
            (lhi - llo) < (thi - tlo),
            "lottery spread {:.2} vs tdma spread {:.2}",
            lhi - llo,
            thi - tlo
        );
    }

    #[test]
    fn tdma_inverts_priorities_somewhere_lottery_does_not_badly() {
        let s = settings();
        let tdma = run_tdma_latency(&s);
        // Paper: under TDMA, higher-weight components can see *higher*
        // latency than lower-weight ones (e.g. T5, T6).
        let inverted =
            tdma.classes.iter().any(|&class| match (tdma.at(class, 4), tdma.at(class, 1)) {
                (Some(h), Some(l)) => h > l,
                _ => false,
            });
        assert!(inverted, "expected at least one TDMA inversion\n{tdma}");
    }
}
