//! Shared experiment plumbing: system assembly, runs, permutations.

use arbiters::ArbiterKind;
use socsim::{
    Arbiter, BusConfig, BusStats, Kernel, MasterId, PhaseProfiler, SystemBuilder, WindowSample,
};
use traffic_gen::{GeneratorSpec, SourceKind};

/// Simulation window settings shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSettings {
    /// Warm-up cycles discarded before measurement.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Base seed; per-master seeds derive from it.
    pub seed: u64,
    /// Bus configuration.
    pub bus: BusConfig,
    /// Worker threads for independent runs within one experiment
    /// (`0` = all available cores). Never affects results — every run
    /// owns its seed and results are collected in input order — only
    /// wall-clock time.
    pub jobs: usize,
    /// When set, every system built by [`run_system`] also collects
    /// windowed metrics with this window length. The samples are
    /// collected and discarded, so results (and the suite JSON) stay
    /// byte-identical to a metrics-off run; the point is to measure the
    /// observability overhead with `suite --bench`.
    pub metrics_window: Option<u64>,
    /// Which simulation kernel every system built by [`run_system`]
    /// runs under (see `socsim::fastforward`). [`Kernel::Fast`]
    /// results are byte-identical to the cycle kernel;
    /// [`Kernel::Tlm`] additionally batches whole bus tenures and is
    /// exact only for catch-up arrival processes (periodic, on/off) —
    /// the suite JSON never records this field.
    pub kernel: Kernel,
}

impl RunSettings {
    /// The full-length window used for published numbers.
    pub fn new() -> Self {
        RunSettings {
            warmup: 20_000,
            measure: 200_000,
            seed: 0xC0FFEE,
            bus: BusConfig::default(),
            jobs: 0,
            metrics_window: None,
            kernel: Kernel::Cycle,
        }
    }

    /// A shorter window for tests (same shapes, faster).
    pub fn quick() -> Self {
        RunSettings { measure: 60_000, ..RunSettings::new() }
    }

    /// These settings with an explicit worker count.
    pub fn with_jobs(self, jobs: usize) -> Self {
        RunSettings { jobs, ..self }
    }

    /// These settings with windowed metrics enabled in every run.
    pub fn with_metrics(self, window: u64) -> Self {
        RunSettings { metrics_window: Some(window), ..self }
    }

    /// These settings with the fast-forward kernel enabled (or not) in
    /// every run.
    pub fn with_fast_forward(self, enabled: bool) -> Self {
        self.with_kernel(if enabled { Kernel::Fast } else { Kernel::Cycle })
    }

    /// These settings running every system under `kernel`.
    pub fn with_kernel(self, kernel: Kernel) -> Self {
        RunSettings { kernel, ..self }
    }
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings::new()
    }
}

/// Builds a single-bus system from per-master traffic specs and an
/// arbiter, runs it, and returns the steady-state statistics.
///
/// # Panics
///
/// Panics if the system cannot be built (the experiment definitions are
/// all statically valid).
pub fn run_system<A: Arbiter>(
    specs: &[GeneratorSpec],
    arbiter: A,
    settings: &RunSettings,
) -> BusStats {
    let mut system = build_system(specs, arbiter, settings);
    system.warm_up(settings.warmup);
    system.run(settings.measure);
    system.stats().clone()
}

/// Like [`run_system`], but also returns the windowed metric samples
/// of the measured interval. The window length is explicit (it is part
/// of the experiment's definition, not a tuning knob), and only the
/// measured interval lands in the series: warm-up samples are
/// discarded with the warm-up statistics, and a trailing partial
/// window is flushed as a final short sample.
///
/// # Panics
///
/// Panics if the system cannot be built or `window` is zero.
pub fn run_system_timeseries<A: Arbiter>(
    specs: &[GeneratorSpec],
    arbiter: A,
    settings: &RunSettings,
    window: u64,
) -> (BusStats, Vec<WindowSample>) {
    let with_metrics = RunSettings { metrics_window: Some(window), ..*settings };
    let mut system = build_system(specs, arbiter, &with_metrics);
    system.warm_up(settings.warmup);
    system.run(settings.measure);
    system.flush_metrics();
    let samples = system.metrics().expect("metrics enabled").samples().to_vec();
    (system.stats().clone(), samples)
}

/// Like [`run_system`], but with the cycle kernel's phase profiler on;
/// returns the per-phase wall-clock breakdown of the measured interval
/// alongside the statistics. Used by `suite --bench` to report where
/// simulation time goes.
pub fn run_system_profiled<A: Arbiter>(
    specs: &[GeneratorSpec],
    arbiter: A,
    settings: &RunSettings,
) -> (BusStats, PhaseProfiler) {
    let mut builder = system_builder(specs, settings).profiling(true);
    if let Some(window) = settings.metrics_window {
        builder = builder.metrics_window(window);
    }
    let mut system = builder.arbiter(arbiter).build().expect("experiment system is valid");
    system.warm_up(settings.warmup);
    system.run(settings.measure);
    (system.stats().clone(), system.profiler().clone())
}

fn system_builder<A: Arbiter>(
    specs: &[GeneratorSpec],
    settings: &RunSettings,
) -> SystemBuilder<A, SourceKind> {
    let mut builder = SystemBuilder::new(settings.bus).kernel(settings.kernel);
    for (i, spec) in specs.iter().enumerate() {
        builder = builder.master(
            format!("C{}", i + 1),
            spec.build_kind(settings.seed.wrapping_add(i as u64 * 0x9E37_79B9)),
        );
    }
    builder
}

fn build_system<A: Arbiter>(
    specs: &[GeneratorSpec],
    arbiter: A,
    settings: &RunSettings,
) -> socsim::System<A, SourceKind> {
    let mut builder = system_builder(specs, settings);
    if let Some(window) = settings.metrics_window {
        builder = builder.metrics_window(window);
    }
    builder.arbiter(arbiter).build().expect("experiment system is valid")
}

/// Builds the arbiter at `index` of the shared five-protocol comparison
/// lineup (static-priority, round-robin, deficit-RR, two-level TDMA,
/// static lottery) for a 1:2:3:4-weighted four-master system. Used by
/// the load sweeps and the fairness table, and callable from worker
/// threads because the arbiter is constructed inside the job.
///
/// Returns the enum-dispatched [`ArbiterKind`] so systems assembled
/// from the lineup arbitrate through a direct call rather than a
/// `Box<dyn Arbiter>` vtable hop.
///
/// # Panics
///
/// Panics if `index` is not in `0..5` (the lineup is fixed).
pub fn protocol_arbiter(index: usize, seed: u64) -> ArbiterKind {
    use arbiters::{
        DeficitRoundRobinArbiter, RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter,
        WheelLayout,
    };
    use lotterybus::{StaticLotteryArbiter, TicketAssignment};
    let weights = [1u32, 2, 3, 4];
    match index {
        0 => StaticPriorityArbiter::new(weights.to_vec()).expect("valid").into(),
        1 => RoundRobinArbiter::new(4).expect("valid").into(),
        2 => DeficitRoundRobinArbiter::new(&weights, 8).expect("valid").into(),
        3 => TdmaArbiter::new(&[6, 12, 18, 24], WheelLayout::Contiguous).expect("valid").into(),
        4 => StaticLotteryArbiter::with_seed(
            TicketAssignment::new(weights.to_vec()).expect("valid"),
            seed as u32 | 1,
        )
        .expect("valid")
        .into(),
        _ => panic!("protocol index {index} outside the five-protocol lineup"),
    }
}

/// A mostly-idle four-master workload for kernel benchmarking: each
/// master issues one short periodic message per long period (staggered
/// phases), so the bus sits idle for the vast majority of cycles. This
/// is the best case for the fast-forward kernel — `suite --bench` uses
/// it to demonstrate the skip-path speedup — while
/// [`traffic_gen::classes::saturating_specs`] is the worst case.
///
/// # Panics
///
/// Panics if `masters` is zero.
pub fn low_utilization_specs(masters: usize) -> Vec<GeneratorSpec> {
    assert!(masters > 0, "at least one master required");
    (0..masters)
        .map(|i| GeneratorSpec::periodic(500, 125 * i as u64, traffic_gen::SizeDist::fixed(8)))
        .collect()
}

/// Per-master bandwidth fractions from a run.
pub fn bandwidth_fractions(stats: &BusStats, masters: usize) -> Vec<f64> {
    (0..masters).map(|i| stats.bandwidth_fraction(MasterId::new(i))).collect()
}

/// Per-master cycles/word latencies from a run.
pub fn latencies(stats: &BusStats, masters: usize) -> Vec<Option<f64>> {
    (0..masters).map(|i| stats.master(MasterId::new(i)).cycles_per_word()).collect()
}

/// All permutations of `1..=n` in lexicographic order — the x-axis of
/// Figures 4 and 6(a) ("priority/ticket assignments to C1–C4").
pub fn permutations(n: usize) -> Vec<Vec<u32>> {
    let mut items: Vec<u32> = (1..=n as u32).collect();
    let mut out = Vec::new();
    heap_permute(&mut items, n, &mut out);
    out.sort();
    out
}

fn heap_permute(items: &mut Vec<u32>, k: usize, out: &mut Vec<Vec<u32>>) {
    if k == 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Formats a permutation as the paper labels it, e.g. `[2,1,3,4]` →
/// `"2134"` (the value at position *i* is component C*i+1*'s assignment).
pub fn permutation_label(perm: &[u32]) -> String {
    perm.iter().map(|d| d.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbiters::RoundRobinArbiter;
    use traffic_gen::classes::saturating_specs;

    #[test]
    fn permutations_of_four_number_24() {
        let perms = permutations(4);
        assert_eq!(perms.len(), 24);
        assert_eq!(perms[0], vec![1, 2, 3, 4]);
        assert_eq!(perms[23], vec![4, 3, 2, 1]);
        // All distinct.
        let mut unique = perms.clone();
        unique.dedup();
        assert_eq!(unique.len(), 24);
    }

    #[test]
    fn labels_concatenate_digits() {
        assert_eq!(permutation_label(&[3, 1, 4, 2]), "3142");
    }

    #[test]
    fn metrics_collection_never_changes_results() {
        let settings = RunSettings { warmup: 1_000, measure: 8_000, ..RunSettings::quick() };
        let plain = run_system(
            &saturating_specs(4),
            Box::new(RoundRobinArbiter::new(4).expect("valid")),
            &settings,
        );
        let observed = run_system(
            &saturating_specs(4),
            Box::new(RoundRobinArbiter::new(4).expect("valid")),
            &settings.with_metrics(500),
        );
        assert_eq!(plain, observed, "metrics collection perturbed the simulation");
    }

    #[test]
    fn timeseries_covers_the_measured_interval() {
        let settings = RunSettings { warmup: 1_000, measure: 10_000, ..RunSettings::quick() };
        let (stats, samples) = run_system_timeseries(
            &saturating_specs(4),
            Box::new(RoundRobinArbiter::new(4).expect("valid")),
            &settings,
            1_000,
        );
        assert_eq!(stats.cycles, 10_000);
        assert_eq!(samples.len(), 10, "10k measured cycles / 1k window");
        assert_eq!(samples.iter().map(|s| s.cycles).sum::<u64>(), 10_000);
        let words: u64 = samples.iter().flat_map(|s| s.per_master.iter().map(|m| m.words)).sum();
        let total: u64 = stats.masters().iter().map(|m| m.words).sum();
        assert_eq!(words, total, "window word counts add up to the run total");
    }

    #[test]
    fn profiled_run_attributes_wall_time() {
        let settings = RunSettings { warmup: 500, measure: 4_000, ..RunSettings::quick() };
        let (stats, profiler) = run_system_profiled(
            &saturating_specs(4),
            Box::new(RoundRobinArbiter::new(4).expect("valid")),
            &settings,
        );
        assert_eq!(stats.cycles, 4_000);
        assert_eq!(profiler.laps(), 4_000, "warm-up laps are discarded");
        assert!(profiler.total_wall() > std::time::Duration::ZERO);
    }

    #[test]
    fn fast_forward_never_changes_results() {
        let settings = RunSettings { warmup: 1_000, measure: 8_000, ..RunSettings::quick() };
        let cycle = run_system(
            &saturating_specs(4),
            Box::new(RoundRobinArbiter::new(4).expect("valid")),
            &settings,
        );
        let fast = run_system(
            &saturating_specs(4),
            Box::new(RoundRobinArbiter::new(4).expect("valid")),
            &settings.with_fast_forward(true),
        );
        assert_eq!(cycle, fast, "fast-forward kernel perturbed the simulation");
    }

    #[test]
    fn tlm_kernel_is_exact_on_periodic_low_utilization_traffic() {
        let settings = RunSettings { warmup: 1_000, measure: 20_000, ..RunSettings::quick() };
        let cycle = run_system(
            &low_utilization_specs(4),
            Box::new(RoundRobinArbiter::new(4).expect("valid")),
            &settings,
        );
        let tlm = run_system(
            &low_utilization_specs(4),
            Box::new(RoundRobinArbiter::new(4).expect("valid")),
            &settings.with_kernel(Kernel::Tlm),
        );
        assert_eq!(cycle, tlm, "TLM kernel perturbed a forced-outcome workload");
    }

    #[test]
    fn run_system_produces_saturated_stats() {
        let settings = RunSettings { warmup: 1_000, measure: 10_000, ..RunSettings::quick() };
        let stats = run_system(
            &saturating_specs(4),
            Box::new(RoundRobinArbiter::new(4).expect("valid")),
            &settings,
        );
        assert_eq!(stats.cycles, 10_000);
        assert!(stats.bus_utilization() > 0.95, "util {}", stats.bus_utilization());
        let fractions = bandwidth_fractions(&stats, 4);
        // Round robin shares the saturated bus equally.
        for f in &fractions {
            assert!((f - 0.25).abs() < 0.05, "fractions {fractions:?}");
        }
    }
}
