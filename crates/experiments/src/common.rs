//! Shared experiment plumbing: system assembly, runs, permutations.

use socsim::{Arbiter, BusConfig, BusStats, MasterId, SystemBuilder};
use traffic_gen::GeneratorSpec;

/// Simulation window settings shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSettings {
    /// Warm-up cycles discarded before measurement.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Base seed; per-master seeds derive from it.
    pub seed: u64,
    /// Bus configuration.
    pub bus: BusConfig,
    /// Worker threads for independent runs within one experiment
    /// (`0` = all available cores). Never affects results — every run
    /// owns its seed and results are collected in input order — only
    /// wall-clock time.
    pub jobs: usize,
}

impl RunSettings {
    /// The full-length window used for published numbers.
    pub fn new() -> Self {
        RunSettings {
            warmup: 20_000,
            measure: 200_000,
            seed: 0xC0FFEE,
            bus: BusConfig::default(),
            jobs: 0,
        }
    }

    /// A shorter window for tests (same shapes, faster).
    pub fn quick() -> Self {
        RunSettings { measure: 60_000, ..RunSettings::new() }
    }

    /// These settings with an explicit worker count.
    pub fn with_jobs(self, jobs: usize) -> Self {
        RunSettings { jobs, ..self }
    }
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings::new()
    }
}

/// Builds a single-bus system from per-master traffic specs and an
/// arbiter, runs it, and returns the steady-state statistics.
///
/// # Panics
///
/// Panics if the system cannot be built (the experiment definitions are
/// all statically valid).
pub fn run_system(
    specs: &[GeneratorSpec],
    arbiter: Box<dyn Arbiter>,
    settings: &RunSettings,
) -> BusStats {
    let mut builder = SystemBuilder::new(settings.bus);
    for (i, spec) in specs.iter().enumerate() {
        builder = builder.master(
            format!("C{}", i + 1),
            spec.build_source(settings.seed.wrapping_add(i as u64 * 0x9E37_79B9)),
        );
    }
    let mut system = builder.arbiter(arbiter).build().expect("experiment system is valid");
    system.warm_up(settings.warmup);
    system.run(settings.measure);
    system.stats().clone()
}

/// Builds the arbiter at `index` of the shared five-protocol comparison
/// lineup (static-priority, round-robin, deficit-RR, two-level TDMA,
/// static lottery) for a 1:2:3:4-weighted four-master system. Used by
/// the load sweeps and the fairness table, and callable from worker
/// threads because the arbiter is constructed inside the job.
///
/// # Panics
///
/// Panics if `index` is not in `0..5` (the lineup is fixed).
pub fn protocol_arbiter(index: usize, seed: u64) -> Box<dyn Arbiter> {
    use arbiters::{
        DeficitRoundRobinArbiter, RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter,
        WheelLayout,
    };
    use lotterybus::{StaticLotteryArbiter, TicketAssignment};
    let weights = [1u32, 2, 3, 4];
    match index {
        0 => Box::new(StaticPriorityArbiter::new(weights.to_vec()).expect("valid")),
        1 => Box::new(RoundRobinArbiter::new(4).expect("valid")),
        2 => Box::new(DeficitRoundRobinArbiter::new(&weights, 8).expect("valid")),
        3 => Box::new(TdmaArbiter::new(&[6, 12, 18, 24], WheelLayout::Contiguous).expect("valid")),
        4 => Box::new(
            StaticLotteryArbiter::with_seed(
                TicketAssignment::new(weights.to_vec()).expect("valid"),
                seed as u32 | 1,
            )
            .expect("valid"),
        ),
        _ => panic!("protocol index {index} outside the five-protocol lineup"),
    }
}

/// Per-master bandwidth fractions from a run.
pub fn bandwidth_fractions(stats: &BusStats, masters: usize) -> Vec<f64> {
    (0..masters).map(|i| stats.bandwidth_fraction(MasterId::new(i))).collect()
}

/// Per-master cycles/word latencies from a run.
pub fn latencies(stats: &BusStats, masters: usize) -> Vec<Option<f64>> {
    (0..masters).map(|i| stats.master(MasterId::new(i)).cycles_per_word()).collect()
}

/// All permutations of `1..=n` in lexicographic order — the x-axis of
/// Figures 4 and 6(a) ("priority/ticket assignments to C1–C4").
pub fn permutations(n: usize) -> Vec<Vec<u32>> {
    let mut items: Vec<u32> = (1..=n as u32).collect();
    let mut out = Vec::new();
    heap_permute(&mut items, n, &mut out);
    out.sort();
    out
}

fn heap_permute(items: &mut Vec<u32>, k: usize, out: &mut Vec<Vec<u32>>) {
    if k == 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Formats a permutation as the paper labels it, e.g. `[2,1,3,4]` →
/// `"2134"` (the value at position *i* is component C*i+1*'s assignment).
pub fn permutation_label(perm: &[u32]) -> String {
    perm.iter().map(|d| d.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbiters::RoundRobinArbiter;
    use traffic_gen::classes::saturating_specs;

    #[test]
    fn permutations_of_four_number_24() {
        let perms = permutations(4);
        assert_eq!(perms.len(), 24);
        assert_eq!(perms[0], vec![1, 2, 3, 4]);
        assert_eq!(perms[23], vec![4, 3, 2, 1]);
        // All distinct.
        let mut unique = perms.clone();
        unique.dedup();
        assert_eq!(unique.len(), 24);
    }

    #[test]
    fn labels_concatenate_digits() {
        assert_eq!(permutation_label(&[3, 1, 4, 2]), "3142");
    }

    #[test]
    fn run_system_produces_saturated_stats() {
        let settings = RunSettings { warmup: 1_000, measure: 10_000, ..RunSettings::quick() };
        let stats = run_system(
            &saturating_specs(4),
            Box::new(RoundRobinArbiter::new(4).expect("valid")),
            &settings,
        );
        assert_eq!(stats.cycles, 10_000);
        assert!(stats.bus_utilization() > 0.95, "util {}", stats.bus_utilization());
        let fractions = bandwidth_fractions(&stats, 4);
        // Round robin shares the saturated bus equally.
        for f in &fractions {
            assert!((f - 0.25).abs() < 0.05, "fractions {fractions:?}");
        }
    }
}
