//! Extension sweeps beyond the paper's figures.
//!
//! The paper claims LOTTERYBUS gives the designer "fine-grained control
//! over the fraction of communication bandwidth" and latencies that stay
//! low as load grows. These sweeps chart both claims as continuous
//! curves:
//!
//! * [`ticket_granularity`] — one component's ticket count sweeps 1..64
//!   against three 1-ticket competitors; its bandwidth share must track
//!   `k / (k + 3)` across the whole range.
//! * [`latency_vs_load`] — average latency of a tagged component as the
//!   total offered load rises from 30 % to 120 % of bus capacity, under
//!   every arbitration protocol: the queueing "hockey stick" and where
//!   each protocol's knee sits.

use crate::common::{self, RunSettings};
use crate::fleet::{fleet_pack_allowed, run_systems_fleet, FleetJob};
use crate::json::{Json, ToJson};
use crate::runner;
use arbiters::ArbiterKind;
use lotterybus::{StaticLotteryArbiter, TicketAssignment};
use serde::{Deserialize, Serialize};
use socsim::{BusStats, MasterId};
use traffic_gen::{GeneratorSpec, SizeDist};

/// One point of the ticket-granularity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GranularityPoint {
    /// Tickets held by the swept component (competitors hold 1 each).
    pub tickets: u32,
    /// Its entitled share `k / (k + 3)`.
    pub entitled: f64,
    /// Its measured bandwidth share.
    pub measured: f64,
}

/// Sweeps one component's ticket count against three single-ticket
/// competitors on a saturated bus.
pub fn ticket_granularity(settings: &RunSettings) -> Vec<GranularityPoint> {
    let counts = [1u32, 2, 3, 5, 8, 13, 21, 34, 64];
    let arbiter_for = |k: u32| -> ArbiterKind {
        let tickets = TicketAssignment::new(vec![k, 1, 1, 1]).expect("valid");
        StaticLotteryArbiter::with_seed(tickets, settings.seed as u32 | 1)
            .expect("4-master LUT fits")
            .into()
    };
    // Every master must offer more than any possible entitlement
    // (up to 64/67 ≈ 96 %), so each offers ~1.4× bus capacity.
    let spec = GeneratorSpec::poisson(0.09, SizeDist::fixed(16));
    let stats: Vec<BusStats> = if fleet_pack_allowed(settings) {
        // All nine points as lanes of one lockstep fleet (lane-exact,
        // so the curve is byte-identical to the scalar fan-out).
        let jobs: Vec<FleetJob> = counts.iter().map(|&k| (vec![spec; 4], arbiter_for(k))).collect();
        run_systems_fleet(jobs, settings)
    } else {
        runner::map(settings, &counts, |_, &k| {
            common::run_system(&vec![spec; 4], arbiter_for(k), settings)
        })
    };
    counts
        .iter()
        .zip(stats)
        .map(|(&k, stats)| GranularityPoint {
            tickets: k,
            entitled: f64::from(k) / f64::from(k + 3),
            measured: stats.bandwidth_fraction(MasterId::new(0)),
        })
        .collect()
}

/// One point of the latency-vs-load sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Total offered load as a fraction of bus capacity.
    pub load: f64,
    /// Cycles/word of the tagged (highest-weight) component per protocol,
    /// in [`LATENCY_PROTOCOLS`] order.
    pub latency: Vec<Option<f64>>,
}

/// Protocol order of [`LoadPoint::latency`].
pub const LATENCY_PROTOCOLS: [&str; 5] =
    ["static-priority", "round-robin", "deficit-rr", "tdma-2level", "lottery-static"];

/// Sweeps total offered load and measures the tagged component's
/// latency under each protocol. Loads are split by weight 1:2:3:4; the
/// tagged component holds weight 4 (top priority / most slots / most
/// tickets).
pub fn latency_vs_load(settings: &RunSettings) -> Vec<LoadPoint> {
    let weights = [1u32, 2, 3, 4];
    let loads = [0.3, 0.5, 0.7, 0.85, 1.0, 1.2];
    // Flatten the (load × protocol) cross-product into one job list so
    // all 30 simulations fan out together; arbiters are built inside
    // each job from the lineup index ([`common::protocol_arbiter`]).
    let cells: Vec<(f64, usize)> = loads
        .iter()
        .flat_map(|&load| (0..LATENCY_PROTOCOLS.len()).map(move |p| (load, p)))
        .collect();
    let cell_specs = |load: f64| -> Vec<GeneratorSpec> {
        weights
            .iter()
            .map(|&w| {
                let rate = load * f64::from(w) / 10.0 / 16.0;
                GeneratorSpec::poisson(rate, SizeDist::fixed(16))
            })
            .collect()
    };
    let latencies: Vec<Option<f64>> = if fleet_pack_allowed(settings) {
        // The whole 30-cell cross-product as one lockstep fleet.
        let jobs: Vec<FleetJob> = cells
            .iter()
            .map(|&(load, protocol)| {
                (cell_specs(load), common::protocol_arbiter(protocol, settings.seed))
            })
            .collect();
        run_systems_fleet(jobs, settings)
            .iter()
            .map(|stats| stats.master(MasterId::new(3)).cycles_per_word())
            .collect()
    } else {
        runner::map(settings, &cells, |_, &(load, protocol)| {
            let arbiter = common::protocol_arbiter(protocol, settings.seed);
            let stats = common::run_system(&cell_specs(load), arbiter, settings);
            stats.master(MasterId::new(3)).cycles_per_word()
        })
    };
    loads
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            let row = &latencies[i * LATENCY_PROTOCOLS.len()..(i + 1) * LATENCY_PROTOCOLS.len()];
            LoadPoint { load, latency: row.to_vec() }
        })
        .collect()
}

/// Both sweeps bundled for printing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sweeps {
    /// Ticket-granularity curve.
    pub granularity: Vec<GranularityPoint>,
    /// Latency-vs-load curves.
    pub load: Vec<LoadPoint>,
}

/// Runs both sweeps.
pub fn run(settings: &RunSettings) -> Sweeps {
    Sweeps { granularity: ticket_granularity(settings), load: latency_vs_load(settings) }
}

impl ToJson for Sweeps {
    fn to_json(&self) -> Json {
        let granularity: Vec<Json> = self
            .granularity
            .iter()
            .map(|p| {
                Json::obj()
                    .field("tickets", p.tickets)
                    .field("entitled", p.entitled)
                    .field("measured", p.measured)
            })
            .collect();
        let load: Vec<Json> = self
            .load
            .iter()
            .map(|p| Json::obj().field("load", p.load).field("latency", p.latency.clone()))
            .collect();
        Json::obj()
            .field("protocols", Json::Arr(LATENCY_PROTOCOLS.iter().map(|&n| n.into()).collect()))
            .field("granularity", Json::Arr(granularity))
            .field("load", Json::Arr(load))
    }
}

impl std::fmt::Display for Sweeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Sweep: bandwidth share vs ticket count (3 single-ticket competitors)")?;
        writeln!(f, "{:>8} {:>10} {:>10}", "tickets", "entitled", "measured")?;
        for point in &self.granularity {
            writeln!(
                f,
                "{:>8} {:>9.1}% {:>9.1}%",
                point.tickets,
                point.entitled * 100.0,
                point.measured * 100.0
            )?;
        }
        writeln!(f)?;
        writeln!(f, "Sweep: top-weight component latency (cycles/word) vs offered load")?;
        write!(f, "{:>6}", "load")?;
        for name in LATENCY_PROTOCOLS {
            write!(f, " {name:>16}")?;
        }
        writeln!(f)?;
        for point in &self.load {
            write!(f, "{:>5.0}%", point.load * 100.0)?;
            for latency in &point.latency {
                write!(f, " {:>16}", latency.map_or("-".into(), |v| format!("{v:.2}")))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> RunSettings {
        RunSettings { measure: 50_000, warmup: 5_000, ..RunSettings::quick() }
    }

    #[test]
    fn granularity_curve_tracks_entitlement() {
        for point in ticket_granularity(&settings()) {
            assert!(
                (point.measured - point.entitled).abs() < 0.05,
                "tickets {}: measured {:.3} vs entitled {:.3}",
                point.tickets,
                point.measured,
                point.entitled,
            );
        }
    }

    #[test]
    fn latency_grows_with_load_for_every_protocol() {
        let curve = latency_vs_load(&settings());
        let first = &curve[0];
        let last = curve.last().expect("points");
        for (p, name) in LATENCY_PROTOCOLS.iter().enumerate() {
            let (lo, hi) = (first.latency[p].expect("served"), last.latency[p].expect("served"));
            assert!(hi > lo, "{name}: latency {hi:.2} at high load not above {lo:.2}");
        }
    }

    #[test]
    fn top_priority_is_load_insensitive_under_static_priority() {
        // The top-priority master barely notices congestion: that is the
        // whole point of priority — and its cost is everyone else.
        let curve = latency_vs_load(&settings());
        let lo = curve[0].latency[0].expect("served");
        let hi = curve.last().expect("points").latency[0].expect("served");
        assert!(hi < 2.5 * lo, "static priority top master: {lo:.2} -> {hi:.2}");
    }
}
