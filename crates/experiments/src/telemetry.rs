//! Wall-clock telemetry for experiment runs.
//!
//! Records per-phase timings (phase name, wall time, number of
//! simulation jobs executed) so the suite can report throughput and the
//! parallel speedup vs a serial run. Telemetry is **never** mixed into
//! the deterministic result stream — timings go to stderr and to the
//! separate `BENCH_PR2.json` artifact, keeping the diffable experiment
//! JSON byte-identical across `--jobs` values.

use crate::json::Json;
use std::time::{Duration, Instant};

/// Wall time and job count of one timed phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase label, e.g. `"fig4"`.
    pub name: String,
    /// Wall-clock duration of the phase.
    pub wall: Duration,
    /// Independent simulation jobs the phase executed.
    pub jobs: usize,
}

impl PhaseTiming {
    /// Jobs completed per wall-clock second (`None` for a zero-length
    /// phase, which would divide by zero).
    pub fn jobs_per_sec(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        (secs > 0.0).then(|| self.jobs as f64 / secs)
    }
}

/// Collects per-phase wall-clock timings across an experiment run.
#[derive(Debug, Default)]
pub struct Telemetry {
    phases: Vec<PhaseTiming>,
}

impl Telemetry {
    /// An empty collector.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Times `f`, records it as a phase running `jobs` simulation jobs,
    /// and returns its result.
    pub fn time<T>(&mut self, name: &str, jobs: usize, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let value = f();
        self.phases.push(PhaseTiming { name: name.to_owned(), wall: start.elapsed(), jobs });
        value
    }

    /// The recorded phases, in execution order.
    pub fn phases(&self) -> &[PhaseTiming] {
        &self.phases
    }

    /// Sum of all phase wall times.
    pub fn total_wall(&self) -> Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }

    /// Sum of all phase job counts.
    pub fn total_jobs(&self) -> usize {
        self.phases.iter().map(|p| p.jobs).sum()
    }

    /// Overall jobs per wall-clock second (`None` if no time elapsed).
    pub fn jobs_per_sec(&self) -> Option<f64> {
        let secs = self.total_wall().as_secs_f64();
        (secs > 0.0).then(|| self.total_jobs() as f64 / secs)
    }

    /// A human-readable per-phase table (for stderr, never for the
    /// deterministic result stream).
    pub fn report(&self, workers: usize) -> String {
        let mut out = format!("timing ({workers} worker thread(s)):\n");
        for p in &self.phases {
            let rate =
                p.jobs_per_sec().map_or_else(|| "-".to_owned(), |r| format!("{r:.1} jobs/s"));
            out.push_str(&format!(
                "  {:<12} {:>8.3}s  {:>3} jobs  {}\n",
                p.name,
                p.wall.as_secs_f64(),
                p.jobs,
                rate
            ));
        }
        let total_rate =
            self.jobs_per_sec().map_or_else(|| "-".to_owned(), |r| format!("{r:.1} jobs/s"));
        out.push_str(&format!(
            "  {:<12} {:>8.3}s  {:>3} jobs  {}\n",
            "total",
            self.total_wall().as_secs_f64(),
            self.total_jobs(),
            total_rate
        ));
        out
    }

    /// The JSON form used by `BENCH_PR2.json`.
    pub fn to_json(&self) -> Json {
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                Json::obj()
                    .field("name", p.name.as_str())
                    .field("wall_secs", p.wall.as_secs_f64())
                    .field("jobs", p.jobs)
                    .field("jobs_per_sec", p.jobs_per_sec())
            })
            .collect();
        Json::obj()
            .field("total_wall_secs", self.total_wall().as_secs_f64())
            .field("total_jobs", self.total_jobs())
            .field("jobs_per_sec", self.jobs_per_sec())
            .field("phases", Json::Arr(phases))
    }
}

/// The per-simulation-phase JSON breakdown of a profiled run (the
/// `sim_phases` section of the bench artifact): where wall-clock time
/// goes *inside* the cycle kernel — polling sources, stepping the bus,
/// or accounting — as measured by [`socsim::PhaseProfiler`].
pub fn sim_phases_json(profiler: &socsim::PhaseProfiler) -> Json {
    let phases: Vec<Json> = socsim::SimPhase::ALL
        .iter()
        .map(|&phase| {
            Json::obj()
                .field("name", phase.label())
                .field("wall_secs", profiler.total(phase).as_secs_f64())
                .field("fraction", profiler.fraction(phase))
        })
        .collect();
    Json::obj()
        .field("cycles", profiler.laps())
        .field("total_wall_secs", profiler.total_wall().as_secs_f64())
        .field("phases", Json::Arr(phases))
}

/// A human-readable one-liner-per-phase table for stderr.
pub fn sim_phases_report(profiler: &socsim::PhaseProfiler) -> String {
    let mut out = format!("cycle kernel profile ({} cycles):\n", profiler.laps());
    for &phase in &socsim::SimPhase::ALL {
        let pct = profiler.fraction(phase).map_or(0.0, |f| f * 100.0);
        out.push_str(&format!(
            "  {:<12} {:>8.3}s  {:>5.1}%\n",
            phase.label(),
            profiler.total(phase).as_secs_f64(),
            pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_phase_json_and_report_are_stable() {
        let profiler = socsim::PhaseProfiler::disabled();
        let json = sim_phases_json(&profiler).render();
        assert!(json.starts_with("{\"cycles\":0,"), "{json}");
        assert!(json.contains("\"name\":\"poll\""), "{json}");
        assert!(json.contains("\"name\":\"bus\""), "{json}");
        assert!(json.contains("\"name\":\"accounting\""), "{json}");
        let report = sim_phases_report(&profiler);
        assert!(report.contains("cycle kernel profile"), "{report}");
        assert!(report.contains("accounting"), "{report}");
    }

    #[test]
    fn timed_phases_accumulate() {
        let mut t = Telemetry::new();
        let v = t.time("alpha", 3, || 41 + 1);
        assert_eq!(v, 42);
        t.time("beta", 5, || std::thread::sleep(Duration::from_millis(2)));
        assert_eq!(t.phases().len(), 2);
        assert_eq!(t.phases()[0].name, "alpha");
        assert_eq!(t.total_jobs(), 8);
        assert!(t.total_wall() >= Duration::from_millis(2));
        assert!(t.jobs_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn report_lists_each_phase_and_a_total() {
        let mut t = Telemetry::new();
        t.time("fig4", 24, || ());
        let report = t.report(2);
        assert!(report.contains("fig4"));
        assert!(report.contains("total"));
        assert!(report.contains("2 worker"));
    }

    #[test]
    fn json_shape_is_stable() {
        let mut t = Telemetry::new();
        t.time("one", 1, || ());
        let json = t.to_json().render();
        assert!(json.starts_with("{\"total_wall_secs\":"));
        assert!(json.contains("\"phases\":[{\"name\":\"one\""));
    }

    #[test]
    fn zero_duration_rate_is_none() {
        let p = PhaseTiming { name: "x".into(), wall: Duration::ZERO, jobs: 4 };
        assert_eq!(p.jobs_per_sec(), None);
    }
}
