//! Table 1: the output-queued ATM switch under all three architectures.

use crate::json::{Json, ToJson};
use atm_switch::{AtmReport, SwitchArbiter, SwitchConfig};
use serde::{Deserialize, Serialize};

/// The three rows of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Static priority, TDMA, LOTTERYBUS — in the paper's row order.
    pub rows: Vec<AtmReport>,
}

/// Runs Table 1: `cycles` measured cycles per architecture.
///
/// # Errors
///
/// Returns an error if the switch configuration cannot be assembled.
pub fn run(cycles: u64, seed: u64) -> Result<Table1, Box<dyn std::error::Error>> {
    run_jobs(cycles, seed, 1).map_err(Into::into)
}

/// [`run`] with an explicit worker count (`0` = auto). The three
/// architectures are independent simulations of the same switch config,
/// so they fan out one per worker; errors cross the thread boundary as
/// strings (`Box<dyn Error>` is not `Send`).
///
/// # Errors
///
/// Returns the first architecture's error message, in row order.
pub fn run_jobs(cycles: u64, seed: u64, jobs: usize) -> Result<Table1, String> {
    let cfg = SwitchConfig::paper_setup();
    let archs = [SwitchArbiter::StaticPriority, SwitchArbiter::Tdma, SwitchArbiter::Lottery];
    let rows = socsim::pool::parallel_map(jobs, &archs, |_, &arch| {
        cfg.run(arch, cycles, seed).map_err(|e| e.to_string())
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    Ok(Table1 { rows })
}

impl Table1 {
    /// The report for one architecture.
    pub fn report(&self, arch: SwitchArbiter) -> &AtmReport {
        let idx = match arch {
            SwitchArbiter::StaticPriority => 0,
            SwitchArbiter::Tdma => 1,
            SwitchArbiter::Lottery => 2,
        };
        &self.rows[idx]
    }
}

impl ToJson for Table1 {
    fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|row| {
                Json::obj()
                    .field("architecture", row.architecture.as_str())
                    .field("bandwidth", row.bandwidth.clone())
                    .field("latency_cycles_per_word", row.latency_cycles_per_word.clone())
                    .field("cells_forwarded", row.cells_forwarded.clone())
                    .field("cells_dropped", row.cells_dropped.clone())
                    .field("cells_aborted", row.cells_aborted.clone())
                    .field("utilization", row.utilization)
            })
            .collect();
        Json::obj().field("rows", Json::Arr(rows))
    }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 1: ATM switch QoS (weights 1:2:4:6 for ports 1..4)")?;
        writeln!(
            f,
            "{:<16} {:>8} {:>8} {:>8} {:>8} {:>14}",
            "architecture", "P1 bw", "P2 bw", "P3 bw", "P4 bw", "P4 latency"
        )?;
        for row in &self.rows {
            let l4 =
                row.latency_cycles_per_word[3].map_or("-".into(), |v| format!("{v:.2} cyc/word"));
            writeln!(
                f,
                "{:<16} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>14}",
                row.architecture,
                row.bandwidth[0] * 100.0,
                row.bandwidth[1] * 100.0,
                row.bandwidth[2] * 100.0,
                row.bandwidth[3] * 100.0,
                l4,
            )?;
        }
        write!(f, "reservation target for ports 1-3: bandwidth ratio 1:2:4")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_rows_match_serial() {
        let serial = run_jobs(20_000, 17, 1).expect("switch runs");
        let parallel = run_jobs(20_000, 17, 3).expect("switch runs");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn table1_reproduces_paper_shape() {
        let table = run(120_000, 17).expect("switch runs");
        let sp = table.report(SwitchArbiter::StaticPriority);
        let td = table.report(SwitchArbiter::Tdma);
        let lo = table.report(SwitchArbiter::Lottery);

        // (1) Port-4 latency: minimal under static priority, several
        // times larger under TDMA, comparable to static under lottery.
        let (l_sp, l_td, l_lo) =
            (sp.latency(3).unwrap(), td.latency(3).unwrap(), lo.latency(3).unwrap());
        assert!(l_td > 2.0 * l_sp, "TDMA {l_td:.2} vs static {l_sp:.2}");
        assert!(l_lo < 0.6 * l_td, "lottery {l_lo:.2} vs TDMA {l_td:.2}");

        // (2) Static priority does not respect reservations: port 1
        // starves.
        assert!(sp.bandwidth_fraction(0) < 0.08);

        // (3) Lottery bandwidth for ports 1-3 close to 1:2:4.
        let r21 = lo.bandwidth_ratio(1, 0);
        let r31 = lo.bandwidth_ratio(2, 0);
        assert!((r21 - 2.0).abs() < 0.6, "P2/P1 {r21:.2}");
        assert!((r31 - 4.0).abs() < 1.2, "P3/P1 {r31:.2}");

        // (4) TDMA's round-robin reclaim flattens the ratio.
        let tdma_r31 = td.bandwidth_ratio(2, 0);
        assert!(tdma_r31 < r31, "TDMA P3/P1 {tdma_r31:.2} vs lottery {r31:.2}");
    }
}
