//! Analytic-model validation grid: every workload of the experiment
//! sweeps run through both the simulator and the closed-form
//! predictors of the [`analytic`] crate, with the per-cell error
//! recorded.
//!
//! Three sections cover the model's three regimes:
//!
//! * **granularity** — the saturated ticket-granularity sweep
//!   (tickets 1..64 vs three single-ticket competitors): pure
//!   saturation water-filling, bandwidth shares only.
//! * **latency_vs_load** — the 30-cell (load × protocol) sweep: shares
//!   plus the tagged master's mean latency where both the predictor
//!   and the simulator produce one. Cells the model declares unstable
//!   (or the simulator never completes a message in) are listed as
//!   skipped, with the reason.
//! * **classes** — the nine traffic classes T1–T9 under the static
//!   lottery: mixed under- and over-subscribed systems with periodic,
//!   bursty and memoryless sources all mapped to Bernoulli rates.
//!
//! The grid is deterministic under the settings' seed, so `suite
//! --validate-analytic` can embed it in the result document and the
//! bench artifact can gate its summary errors.

use crate::common::{self, RunSettings};
use crate::json::{Json, ToJson};
use crate::runner;
use analytic::{Protocol, SystemModel};
use socsim::MasterId;
use traffic_gen::{GeneratorSpec, SizeDist, TrafficClass};

/// The analytic protocol lineup in [`common::protocol_arbiter`] index
/// order (the order of [`crate::sweeps::LATENCY_PROTOCOLS`]).
const LINEUP: [Protocol; 5] = [
    Protocol::StaticPriority,
    Protocol::RoundRobin,
    Protocol::DeficitRoundRobin,
    Protocol::Tdma2Level,
    Protocol::LotteryStatic,
];

/// One predicted-vs-measured comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Which workload and master this cell compares.
    pub label: String,
    /// `"share"` (bandwidth fraction, absolute error) or
    /// `"cycles_per_word"` (mean latency, relative error).
    pub metric: &'static str,
    /// The closed-form prediction.
    pub predicted: f64,
    /// The simulator's measurement.
    pub measured: f64,
    /// Absolute error for shares, relative error for latencies.
    pub error: f64,
}

/// One section of the grid: a named cell list plus the cells that
/// could not be compared (with reasons).
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section name (`granularity`, `latency_vs_load`, `classes`).
    pub name: &'static str,
    /// Comparable cells.
    pub cells: Vec<Cell>,
    /// Human-readable reasons for cells with no comparison — e.g. the
    /// predictor declares a queue unstable at ≥100 % load, where the
    /// simulator still measures a (window-dependent) finite latency.
    pub skipped: Vec<String>,
}

/// The whole validation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// All sections, in run order.
    pub sections: Vec<Section>,
}

/// Aggregate error figures over the whole grid — the numbers the bench
/// artifact gates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Number of bandwidth-share cells.
    pub share_cells: usize,
    /// Worst absolute share error.
    pub share_max_abs_error: f64,
    /// Mean absolute share error.
    pub share_mean_abs_error: f64,
    /// Number of latency cells.
    pub latency_cells: usize,
    /// Worst relative latency error.
    pub latency_max_rel_error: f64,
    /// Mean relative latency error.
    pub latency_mean_rel_error: f64,
    /// Cells skipped across all sections.
    pub skipped: usize,
}

impl Grid {
    /// Aggregates the per-cell errors.
    pub fn summary(&self) -> ErrorSummary {
        let mut s = ErrorSummary {
            share_cells: 0,
            share_max_abs_error: 0.0,
            share_mean_abs_error: 0.0,
            latency_cells: 0,
            latency_max_rel_error: 0.0,
            latency_mean_rel_error: 0.0,
            skipped: 0,
        };
        for section in &self.sections {
            s.skipped += section.skipped.len();
            for cell in &section.cells {
                if cell.metric == "share" {
                    s.share_cells += 1;
                    s.share_max_abs_error = s.share_max_abs_error.max(cell.error);
                    s.share_mean_abs_error += cell.error;
                } else {
                    s.latency_cells += 1;
                    s.latency_max_rel_error = s.latency_max_rel_error.max(cell.error);
                    s.latency_mean_rel_error += cell.error;
                }
            }
        }
        if s.share_cells > 0 {
            s.share_mean_abs_error /= s.share_cells as f64;
        }
        if s.latency_cells > 0 {
            s.latency_mean_rel_error /= s.latency_cells as f64;
        }
        s
    }
}

/// Runs the full validation grid: 48 simulations (9 granularity + 30
/// load-sweep + 9 class cells) fanned out on the settings' workers,
/// each compared against the closed forms.
pub fn run(settings: &RunSettings) -> Grid {
    Grid { sections: vec![granularity(settings), latency_vs_load(settings), classes(settings)] }
}

/// Saturated ticket-granularity sweep: predicted vs measured bandwidth
/// share of the swept master.
fn granularity(settings: &RunSettings) -> Section {
    let points = crate::sweeps::ticket_granularity(settings);
    let cells = points
        .iter()
        .map(|p| {
            let spec = GeneratorSpec::poisson(0.09, SizeDist::fixed(16));
            let model = SystemModel::from_specs(
                Protocol::LotteryStatic,
                &vec![spec; 4],
                &[p.tickets, 1, 1, 1],
                &settings.bus,
            );
            let predicted = model.predict().masters[0].share;
            Cell {
                label: format!("tickets={} C1", p.tickets),
                metric: "share",
                predicted,
                measured: p.measured,
                error: (predicted - p.measured).abs(),
            }
        })
        .collect();
    Section { name: "granularity", cells, skipped: Vec::new() }
}

/// The traffic specs of one latency-sweep cell (split 1:2:3:4 by
/// weight), mirroring [`crate::sweeps::latency_vs_load`].
fn load_specs(load: f64, weights: &[u32]) -> Vec<GeneratorSpec> {
    weights
        .iter()
        .map(|&w| {
            let rate = load * f64::from(w) / 10.0 / 16.0;
            GeneratorSpec::poisson(rate, SizeDist::fixed(16))
        })
        .collect()
}

/// The (load × protocol) sweep: share and mean latency of the tagged
/// weight-4 master.
fn latency_vs_load(settings: &RunSettings) -> Section {
    let weights = [1u32, 2, 3, 4];
    let loads = [0.3, 0.5, 0.7, 0.85, 1.0, 1.2];
    let tagged = MasterId::new(3);
    let grid: Vec<(f64, usize)> =
        loads.iter().flat_map(|&load| (0..LINEUP.len()).map(move |p| (load, p))).collect();
    let measured = runner::map(settings, &grid, |_, &(load, protocol)| {
        let stats = common::run_system(
            &load_specs(load, &weights),
            common::protocol_arbiter(protocol, settings.seed),
            settings,
        );
        (stats.bandwidth_fraction(tagged), stats.master(tagged).cycles_per_word())
    });

    let mut cells = Vec::new();
    let mut skipped = Vec::new();
    for (&(load, protocol), &(share, latency)) in grid.iter().zip(&measured) {
        let name = LINEUP[protocol].name();
        let label = format!("load={load:.2} {name} C4");
        let specs = load_specs(load, &weights);
        let model = SystemModel::from_specs(LINEUP[protocol], &specs, &weights, &settings.bus);
        let pred = model.predict().masters[3];
        cells.push(Cell {
            label: label.clone(),
            metric: "share",
            predicted: pred.share,
            measured: share,
            error: (pred.share - share).abs(),
        });
        match (pred.cycles_per_word, latency) {
            (Some(p), Some(m)) if m > 0.0 => cells.push(Cell {
                label,
                metric: "cycles_per_word",
                predicted: p,
                measured: m,
                error: (p - m).abs() / m,
            }),
            (None, Some(m)) => skipped.push(format!(
                "{label}: analytic predicts an unstable queue (unbounded latency); \
                 the simulator measured {m:.1} cycles/word in its finite window"
            )),
            (_, None) => {
                skipped.push(format!("{label}: no message completed in the measured window"));
            }
            (Some(_), Some(_)) => {
                skipped.push(format!("{label}: simulator measured zero latency"));
            }
        }
    }
    Section { name: "latency_vs_load", cells, skipped }
}

/// Traffic classes T1–T9 under the 1:2:3:4 static lottery: per-master
/// bandwidth shares.
fn classes(settings: &RunSettings) -> Section {
    let weights = [1u32, 2, 3, 4];
    let all = TrafficClass::all();
    let measured = runner::map(settings, &all, |_, &class| {
        let stats = common::run_system(
            &class.specs(&weights),
            common::protocol_arbiter(4, settings.seed),
            settings,
        );
        common::bandwidth_fractions(&stats, 4)
    });
    let mut cells = Vec::new();
    for (class, shares) in all.iter().zip(&measured) {
        let model = SystemModel::from_specs(
            Protocol::LotteryStatic,
            &class.specs(&weights),
            &weights,
            &settings.bus,
        );
        let pred = model.predict();
        for (i, (&m, p)) in shares.iter().zip(&pred.masters).enumerate() {
            cells.push(Cell {
                label: format!("{} C{}", class.name(), i + 1),
                metric: "share",
                predicted: p.share,
                measured: m,
                error: (p.share - m).abs(),
            });
        }
    }
    Section { name: "classes", cells, skipped: Vec::new() }
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("label", self.label.as_str())
            .field("metric", self.metric)
            .field("predicted", self.predicted)
            .field("measured", self.measured)
            .field("error", self.error)
    }
}

impl ToJson for Section {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("name", self.name)
            .field("cells", self.cells.to_json())
            .field("skipped", Json::Arr(self.skipped.iter().map(|s| s.as_str().into()).collect()))
    }
}

impl ToJson for ErrorSummary {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("share_cells", self.share_cells)
            .field("share_max_abs_error", self.share_max_abs_error)
            .field("share_mean_abs_error", self.share_mean_abs_error)
            .field("latency_cells", self.latency_cells)
            .field("latency_max_rel_error", self.latency_max_rel_error)
            .field("latency_mean_rel_error", self.latency_mean_rel_error)
            .field("skipped", self.skipped)
    }
}

impl ToJson for Grid {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("sections", self.sections.to_json())
            .field("summary", self.summary().to_json())
    }
}

impl std::fmt::Display for Grid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for section in &self.sections {
            writeln!(f, "Validation: {}", section.name)?;
            writeln!(
                f,
                "{:>32} {:>16} {:>10} {:>10} {:>8}",
                "cell", "metric", "predicted", "measured", "error"
            )?;
            for c in &section.cells {
                writeln!(
                    f,
                    "{:>32} {:>16} {:>10.4} {:>10.4} {:>8.4}",
                    c.label, c.metric, c.predicted, c.measured, c.error
                )?;
            }
            for s in &section.skipped {
                writeln!(f, "  skipped: {s}")?;
            }
            writeln!(f)?;
        }
        let s = self.summary();
        writeln!(
            f,
            "share: {} cells, max abs error {:.4}, mean {:.4}",
            s.share_cells, s.share_max_abs_error, s.share_mean_abs_error
        )?;
        writeln!(
            f,
            "latency: {} cells, max rel error {:.4}, mean {:.4} ({} skipped)",
            s.latency_cells, s.latency_max_rel_error, s.latency_mean_rel_error, s.skipped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> RunSettings {
        RunSettings { measure: 50_000, warmup: 5_000, ..RunSettings::quick() }
    }

    #[test]
    fn grid_has_the_expected_shape() {
        let grid = run(&settings());
        assert_eq!(grid.sections.len(), 3);
        assert_eq!(grid.sections[0].cells.len(), 9, "granularity: 9 ticket counts");
        let ll = &grid.sections[1];
        // 30 share cells plus a latency cell or a skip reason per cell.
        let shares = ll.cells.iter().filter(|c| c.metric == "share").count();
        let latencies = ll.cells.iter().filter(|c| c.metric == "cycles_per_word").count();
        assert_eq!(shares, 30);
        assert_eq!(latencies + ll.skipped.len(), 30);
        assert!(!ll.skipped.is_empty(), "overloaded cells must be skipped with a reason");
        assert_eq!(grid.sections[2].cells.len(), 36, "classes: 9 classes x 4 masters");
    }

    #[test]
    fn shares_validate_tightly_and_latencies_within_bounds() {
        let grid = run(&settings());
        let s = grid.summary();
        assert!(s.share_max_abs_error < 0.03, "share error {:.4}", s.share_max_abs_error);
        assert!(s.share_mean_abs_error < 0.01, "mean share error {:.4}", s.share_mean_abs_error);
        assert!(s.latency_cells > 0);
        // Latency closed forms are approximations (the TDMA
        // slot-alignment term is an upper bound); they must stay well
        // under one mean's worth of relative error across the stable
        // grid.
        assert!(s.latency_max_rel_error < 1.0, "latency error {:.4}", s.latency_max_rel_error);
        assert!(
            s.latency_mean_rel_error < 0.4,
            "mean latency error {:.4}",
            s.latency_mean_rel_error
        );
    }

    #[test]
    fn json_roundtrip_is_deterministic() {
        let a = run(&settings()).to_json().render();
        let b = run(&settings()).to_json().render();
        assert_eq!(a, b);
        assert!(a.contains("\"summary\""));
    }
}
