//! The full experiment suite as one deterministic JSON document.
//!
//! [`run_suite`] executes every figure, table, sweep and ablation and
//! serializes the results through [`crate::json`]. The output depends
//! only on the settings' seed and window — **never** on the worker
//! count — which is what the CI determinism gate checks by diffing
//! `--jobs 1` against `--jobs N` byte for byte. Wall-clock telemetry is
//! collected on the side ([`crate::telemetry`]) and kept out of the
//! result document.

use crate::json::{Json, ToJson};
use crate::telemetry::Telemetry;
use crate::RunSettings;
use traffic_gen::TrafficClass;

/// What to run and how wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteOptions {
    /// Use the short measurement window (CI-friendly).
    pub quick: bool,
    /// Worker threads (`0` = all available cores).
    pub jobs: usize,
    /// When set, every simulation also collects windowed metrics with
    /// this window length. The samples are discarded, so the result
    /// JSON is byte-identical either way; `suite --bench` uses this to
    /// measure the observability overhead.
    pub metrics_window: Option<u64>,
    /// Which simulation kernel every simulation runs under. `fast`
    /// keeps the result JSON byte-identical (the CI kernel-diff gate
    /// checks exactly that); `tlm` batches whole bus tenures and is
    /// exact only where no memoryless arrival process feeds a
    /// contended bus — `suite --bench` reports its error bounds
    /// instead of asserting identity.
    pub kernel: socsim::Kernel,
    /// Also run the analytic-model validation grid
    /// ([`crate::validate`]) and embed its per-cell error table as an
    /// `analytic_validation` field. Off by default so the core result
    /// document — the one the CI determinism and kernel gates diff —
    /// is unchanged.
    pub validate_analytic: bool,
}

impl SuiteOptions {
    /// The settings implied by these options.
    pub fn settings(&self) -> RunSettings {
        let base = if self.quick { RunSettings::quick() } else { RunSettings::new() };
        let base = base.with_jobs(self.jobs).with_kernel(self.kernel);
        match self.metrics_window {
            Some(window) => base.with_metrics(window),
            None => base,
        }
    }
}

/// A completed suite run: the deterministic result document plus the
/// side-channel timings.
#[derive(Debug)]
pub struct SuiteRun {
    /// The rendered JSON document (worker-count independent).
    pub json: String,
    /// Per-phase wall-clock telemetry (worker-count *dependent*).
    pub telemetry: Telemetry,
}

/// Runs every experiment and serializes the results.
pub fn run_suite(opts: &SuiteOptions) -> SuiteRun {
    let settings = opts.settings();
    let mut t = Telemetry::new();

    let fig4 = t.time("fig4", 24, || crate::fig4::run(&settings));
    let fig4_ts = t.time("fig4_timeseries", 2, || crate::fig4::run_timeseries(&settings));
    let fig5 = t.time("fig5", 2, || crate::fig5::run_kernel(settings.jobs, settings.kernel));
    let fig6a = t.time("fig6a", 24, || crate::fig6::run_bandwidth(&settings));
    let fig6b = t.time("fig6b", 2, || crate::fig6::run_latency(TrafficClass::T6, &settings));
    let fig12a = t.time("fig12a", 9, || crate::fig12::run_bandwidth(&settings));
    let fig12b = t.time("fig12b", 6, || crate::fig12::run_tdma_latency(&settings));
    let fig12c = t.time("fig12c", 6, || crate::fig12::run_lottery_latency(&settings));
    let table1 = t.time("table1", 3, || {
        crate::table1::run_jobs(settings.measure, 17, settings.jobs).expect("switch runs")
    });
    let hw_table = t.time("hw_table", 0, crate::hw_table::run);
    let starvation = t.time("starvation", 6, || crate::starvation::run(&settings));
    let sweeps = t.time("sweeps", 39, || crate::sweeps::run(&settings));
    let energy = t.time("energy", 5, || crate::energy::run(&settings));
    let ablations = t.time("ablations", 12, || crate::ablations::run(&settings));
    let validation = opts
        .validate_analytic
        .then(|| t.time("analytic_validation", 48, || crate::validate::run(&settings)));

    let mut doc = Json::obj()
        .field(
            "meta",
            Json::obj()
                .field("seed", settings.seed)
                .field("warmup", settings.warmup)
                .field("measure", settings.measure)
                .field("quick", opts.quick),
        )
        .field("fig4", fig4.to_json())
        .field("fig4_timeseries", fig4_ts.to_json())
        .field("fig5", fig5.to_json())
        .field("fig6a", fig6a.to_json())
        .field("fig6b", fig6b.to_json())
        .field("fig12a", fig12a.to_json())
        .field("fig12b", fig12b.to_json())
        .field("fig12c", fig12c.to_json())
        .field("table1", table1.to_json())
        .field("hw_table", hw_table.to_json())
        .field("starvation", starvation.to_json())
        .field("sweeps", sweeps.to_json())
        .field("energy", energy.to_json())
        .field("ablations", ablations.to_json());
    if let Some(grid) = validation {
        doc = doc.field("analytic_validation", grid.to_json());
    }

    SuiteRun { json: doc.render(), telemetry: t }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_map_to_settings() {
        use socsim::Kernel;
        let opts = SuiteOptions {
            quick: true,
            jobs: 3,
            metrics_window: None,
            kernel: Kernel::Cycle,
            validate_analytic: false,
        };
        let s = opts.settings();
        assert_eq!(s.jobs, 3);
        assert_eq!(s.measure, RunSettings::quick().measure);
        assert_eq!(s.metrics_window, None);
        assert_eq!(s.kernel, Kernel::Cycle);
        let full = SuiteOptions {
            quick: false,
            jobs: 0,
            metrics_window: Some(1_000),
            kernel: Kernel::Tlm,
            validate_analytic: true,
        }
        .settings();
        assert_eq!(full.measure, RunSettings::new().measure);
        assert_eq!(full.jobs, 0);
        assert_eq!(full.metrics_window, Some(1_000));
        assert_eq!(full.kernel, Kernel::Tlm);
    }
}
