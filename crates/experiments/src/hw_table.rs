//! §5.2: hardware complexity of the LOTTERYBUS architecture.
//!
//! The paper implements the 4-master lottery manager in NEC's 0.35 µm
//! cell-based array, reports its area in cell grids, and concludes that
//! arbitration completes within a single bus cycle at bus speeds of a
//! few hundred MHz. This experiment regenerates that table from the
//! structural model in [`hwmodel`], plus a scaling sweep over master
//! count that contrasts the static design's exponential LUT with the
//! dynamic design's adder tree.

use crate::json::{Json, ToJson};
use hwmodel::{managers, CellLibrary, ManagerReport};
use serde::{Deserialize, Serialize};

/// The hardware-complexity table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwTable {
    /// Reports for the paper's 4-master configuration.
    pub four_master: Vec<ManagerReport>,
    /// Static-manager totals for 2..=8 masters (area, delay).
    pub static_sweep: Vec<ManagerReport>,
    /// Dynamic-manager totals for 2..=8 masters.
    pub dynamic_sweep: Vec<ManagerReport>,
}

/// Ticket width used in the paper-scale configuration.
pub const TICKET_BITS: u32 = 8;

/// Runs the hardware-complexity estimation.
pub fn run() -> HwTable {
    let lib = CellLibrary::cmos035();
    let four_master = vec![
        managers::static_lottery_manager(&lib, 4, TICKET_BITS),
        managers::dynamic_lottery_manager(&lib, 4, TICKET_BITS),
        managers::static_priority_arbiter(&lib, 4),
        managers::tdma_arbiter(&lib, 4, 60),
    ];
    let static_sweep =
        (2..=8).map(|n| managers::static_lottery_manager(&lib, n, TICKET_BITS)).collect();
    let dynamic_sweep =
        (2..=8).map(|n| managers::dynamic_lottery_manager(&lib, n, TICKET_BITS)).collect();
    HwTable { four_master, static_sweep, dynamic_sweep }
}

fn report_json(report: &ManagerReport) -> Json {
    Json::obj()
        .field("name", report.name.as_str())
        .field("masters", report.masters)
        .field("width_bits", report.width_bits)
        .field("area_grids", report.total.area_grids)
        .field("delay_ns", report.total.delay_ns)
}

impl ToJson for HwTable {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("four_master", Json::Arr(self.four_master.iter().map(report_json).collect()))
            .field("static_sweep", Json::Arr(self.static_sweep.iter().map(report_json).collect()))
            .field("dynamic_sweep", Json::Arr(self.dynamic_sweep.iter().map(report_json).collect()))
    }
}

impl std::fmt::Display for HwTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Hardware complexity (abstract 0.35um-class library)")?;
        for report in &self.four_master {
            writeln!(f, "{report}")?;
            writeln!(f)?;
        }
        writeln!(f, "Scaling with master count (total area in cell grids / delay in ns):")?;
        writeln!(f, "{:>8} {:>20} {:>20}", "masters", "static lottery", "dynamic lottery")?;
        for (s, d) in self.static_sweep.iter().zip(&self.dynamic_sweep) {
            writeln!(
                f,
                "{:>8} {:>12.0} / {:>4.2} {:>12.0} / {:>4.2}",
                s.masters,
                s.total.area_grids,
                s.total.delay_ns,
                d.total.area_grids,
                d.total.delay_ns,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_claims_hold() {
        let table = run();
        let static_mgr = &table.four_master[0];
        let dynamic_mgr = &table.four_master[1];
        // Single-cycle arbitration at a few hundred MHz (§5.2 reports
        // ~3 ns / ~300 MHz for the static manager).
        assert!(static_mgr.total.delay_ns < 4.0, "delay {}", static_mgr.total.delay_ns);
        assert!(static_mgr.total.max_freq_mhz() > 250.0);
        // Area on the order of 10^3..10^4 cell grids.
        assert!(static_mgr.total.area_grids > 500.0);
        assert!(static_mgr.total.area_grids < 50_000.0);
        // The dynamic manager pays for the adder tree and modulo unit.
        assert!(dynamic_mgr.total.delay_ns > static_mgr.total.delay_ns);
    }

    #[test]
    fn sweeps_cover_two_to_eight_masters() {
        let table = run();
        assert_eq!(table.static_sweep.len(), 7);
        assert_eq!(table.dynamic_sweep.len(), 7);
        // Exponential vs roughly-linear growth.
        let s_growth =
            table.static_sweep[6].total.area_grids / table.static_sweep[2].total.area_grids;
        let d_growth =
            table.dynamic_sweep[6].total.area_grids / table.dynamic_sweep[2].total.area_grids;
        assert!(s_growth > d_growth, "static {s_growth:.1}x vs dynamic {d_growth:.1}x");
    }
}
