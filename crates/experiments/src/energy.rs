//! Energy comparison of the communication architectures (extension).
//!
//! The paper motivates communication-architecture design through power
//! as well as performance (§1) but reports no power numbers. This
//! experiment combines the simulator's activity counts with the
//! hardware model's per-design arbitration energy to ask: *what does
//! the lottery's fancier arbiter cost in energy on a real workload?*
//! The answer — data movement dominates, arbitration energy is noise —
//! supports adopting the richer protocol.

use crate::common::{self, RunSettings};
use crate::json::{Json, ToJson};
use crate::runner;
use arbiters::{RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter, WheelLayout};
use hwmodel::power::{estimate_energy, ActivityCounts, EnergyModel, EnergyReport};
use hwmodel::{managers, CellLibrary};
use lotterybus::{StaticLotteryArbiter, TicketAssignment};
use serde::{Deserialize, Serialize};
use traffic_gen::TrafficClass;

/// One architecture's energy row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Architecture name.
    pub architecture: String,
    /// Simulation activity the energy derives from.
    pub activity: ActivityCounts,
    /// The energy estimate.
    pub report: EnergyReport,
    /// Average power at the nominal 66 MHz bus clock, in mW.
    pub average_power_mw: f64,
}

/// The full energy comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// Rows per architecture.
    pub rows: Vec<EnergyRow>,
}

/// Runs the heavy uniform class T1 under every architecture and prices
/// the runs with the 0.35 µm-class energy model.
pub fn run(settings: &RunSettings) -> EnergyTable {
    let weights = [1u32, 2, 3, 4];
    let lib = CellLibrary::cmos035();
    let model = EnergyModel::cmos035();
    let specs = TrafficClass::T1.specs_with_frame(&weights, crate::fig6::TDMA_BLOCK);
    let slots: Vec<u32> = weights.iter().map(|w| w * 6).collect();

    // Hardware estimates are precomputed (plain data crosses the thread
    // boundary); the arbiters themselves are built inside each job from
    // the architecture name, since `Box<dyn Arbiter>` is not `Send`.
    let candidates: Vec<(&str, hwmodel::HwEstimate)> = vec![
        ("static-priority", managers::static_priority_arbiter(&lib, 4).total),
        ("round-robin", managers::static_priority_arbiter(&lib, 4).total),
        ("tdma-2level", managers::tdma_arbiter(&lib, 4, 60).total),
        ("lottery-static", managers::static_lottery_manager(&lib, 4, 8).total),
        ("lottery-dynamic", managers::dynamic_lottery_manager(&lib, 4, 8).total),
    ];

    let rows = runner::map(settings, &candidates, |_, &(name, hw)| {
        let arbiter: Box<dyn socsim::Arbiter> = match name {
            "static-priority" => {
                Box::new(StaticPriorityArbiter::new(weights.to_vec()).expect("valid"))
            }
            "round-robin" => Box::new(RoundRobinArbiter::new(4).expect("valid")),
            "tdma-2level" => {
                Box::new(TdmaArbiter::new(&slots, WheelLayout::Contiguous).expect("valid"))
            }
            "lottery-static" => Box::new(
                StaticLotteryArbiter::with_seed(
                    TicketAssignment::new(weights.to_vec()).expect("valid"),
                    settings.seed as u32 | 1,
                )
                .expect("valid"),
            ),
            "lottery-dynamic" => Box::new(
                lotterybus::DynamicLotteryArbiter::with_seed(
                    TicketAssignment::new(weights.to_vec()).expect("valid"),
                    settings.seed as u32 | 1,
                )
                .expect("valid"),
            ),
            other => panic!("unknown architecture {other}"),
        };
        let stats = common::run_system(&specs, arbiter, settings);
        let activity = ActivityCounts {
            words: stats.busy_cycles,
            decisions: stats.grants,
            cycles: stats.cycles,
        };
        let report = estimate_energy(&model, &activity, &hw);
        EnergyRow {
            architecture: name.into(),
            activity,
            average_power_mw: report.average_power_mw(activity.cycles, 66.0),
            report,
        }
    });
    EnergyTable { rows }
}

impl ToJson for EnergyTable {
    fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("architecture", r.architecture.as_str())
                    .field(
                        "activity",
                        Json::obj()
                            .field("words", r.activity.words)
                            .field("decisions", r.activity.decisions)
                            .field("cycles", r.activity.cycles),
                    )
                    .field(
                        "report",
                        Json::obj()
                            .field("transfer_pj", r.report.transfer_pj)
                            .field("arbitration_pj", r.report.arbitration_pj)
                            .field("idle_pj", r.report.idle_pj),
                    )
                    .field("average_power_mw", r.average_power_mw)
            })
            .collect();
        Json::obj().field("rows", Json::Arr(rows))
    }
}

impl std::fmt::Display for EnergyTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Energy on traffic class T1 (0.35um-class model, 66 MHz bus)")?;
        writeln!(
            f,
            "{:<16} {:>10} {:>12} {:>12} {:>10} {:>10}",
            "architecture", "grants", "transfer uJ", "arbiter uJ", "idle uJ", "avg mW"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<16} {:>10} {:>12.2} {:>12.3} {:>10.3} {:>10.2}",
                row.architecture,
                row.activity.decisions,
                row.report.transfer_pj / 1e6,
                row.report.arbitration_pj / 1e6,
                row.report.idle_pj / 1e6,
                row.average_power_mw,
            )?;
        }
        write!(f, "arbitration energy stays well below data-movement energy for every design")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbitration_energy_is_second_order() {
        let table = run(&RunSettings { measure: 40_000, warmup: 5_000, ..RunSettings::quick() });
        assert_eq!(table.rows.len(), 5);
        for row in &table.rows {
            assert!(
                row.report.arbitration_pj < 0.2 * row.report.transfer_pj,
                "{}: arbitration {:.0} pJ vs transfer {:.0} pJ",
                row.architecture,
                row.report.arbitration_pj,
                row.report.transfer_pj,
            );
            assert!(row.average_power_mw > 0.0);
        }
    }

    #[test]
    fn tdma_makes_many_more_decisions_per_word() {
        // Single-word slots mean one decision per word; burst protocols
        // amortize one decision over up to 16 words.
        let table = run(&RunSettings { measure: 40_000, warmup: 5_000, ..RunSettings::quick() });
        let tdma = &table.rows[2];
        let lottery = &table.rows[3];
        assert!(
            tdma.activity.decisions > 5 * lottery.activity.decisions,
            "TDMA {} vs lottery {}",
            tdma.activity.decisions,
            lottery.activity.decisions,
        );
    }
}
