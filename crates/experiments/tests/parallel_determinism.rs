//! The tentpole guarantee: fanning experiments across worker threads
//! never changes their results. Serial (`jobs = 1`) and parallel
//! (`jobs > 1`) runs must serialize to byte-identical JSON.

use experiments::json::ToJson;
use experiments::RunSettings;
use traffic_gen::TrafficClass;

fn settings(jobs: usize) -> RunSettings {
    RunSettings { measure: 20_000, warmup: 2_000, ..RunSettings::quick() }.with_jobs(jobs)
}

#[test]
fn fig4_is_byte_identical_across_worker_counts() {
    let serial = experiments::fig4::run(&settings(1));
    let parallel = experiments::fig4::run(&settings(4));
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_json().render(), parallel.to_json().render());
}

#[test]
fn fig6_is_byte_identical_across_worker_counts() {
    let serial = experiments::fig6::run_bandwidth(&settings(1));
    let parallel = experiments::fig6::run_bandwidth(&settings(3));
    assert_eq!(serial.to_json().render(), parallel.to_json().render());

    let serial = experiments::fig6::run_latency(TrafficClass::T6, &settings(1));
    let parallel = experiments::fig6::run_latency(TrafficClass::T6, &settings(2));
    assert_eq!(serial.to_json().render(), parallel.to_json().render());
}

#[test]
fn fig12_surfaces_are_byte_identical_across_worker_counts() {
    let serial = experiments::fig12::run_bandwidth(&settings(1));
    let parallel = experiments::fig12::run_bandwidth(&settings(4));
    assert_eq!(serial.to_json().render(), parallel.to_json().render());

    let serial = experiments::fig12::run_tdma_latency(&settings(1));
    let parallel = experiments::fig12::run_tdma_latency(&settings(4));
    assert_eq!(serial.to_json().render(), parallel.to_json().render());
}

#[test]
fn sweeps_and_starvation_are_byte_identical_across_worker_counts() {
    let serial = experiments::sweeps::run(&settings(1));
    let parallel = experiments::sweeps::run(&settings(4));
    assert_eq!(serial.to_json().render(), parallel.to_json().render());

    let serial = experiments::starvation::run(&settings(1));
    let parallel = experiments::starvation::run(&settings(4));
    assert_eq!(serial.to_json().render(), parallel.to_json().render());
}

#[test]
fn energy_and_ablations_are_byte_identical_across_worker_counts() {
    let serial = experiments::energy::run(&settings(1));
    let parallel = experiments::energy::run(&settings(4));
    assert_eq!(serial.to_json().render(), parallel.to_json().render());

    let serial = experiments::ablations::run(&settings(1));
    let parallel = experiments::ablations::run(&settings(4));
    assert_eq!(serial.to_json().render(), parallel.to_json().render());
}

#[test]
fn auto_job_count_matches_serial_too() {
    // `jobs = 0` (all available cores) must also be output-neutral.
    let serial = experiments::fig12::run_bandwidth(&settings(1));
    let auto = experiments::fig12::run_bandwidth(&settings(0));
    assert_eq!(serial.to_json().render(), auto.to_json().render());
}
