//! `lotterybus-sim` — run a custom bus simulation from a plain-text
//! spec file.
//!
//! ```console
//! $ lotterybus-sim my-system.spec
//! $ lotterybus-sim my-system.spec --vcd waves.vcd   # also dump a waveform
//! $ lotterybus-sim my-system.spec --jobs 4          # replica fan-out width
//! $ lotterybus-sim --example                        # print a starter spec
//! $ cat my-system.spec | lotterybus-sim -
//! ```
//!
//! With `replicas = N` in the spec, the N independent runs (derived
//! seeds) fan out across `--jobs` worker threads; the report shows
//! replica 0 followed by a cross-replica aggregate. The worker count
//! never changes the report — results are collected in replica order —
//! and wall-clock telemetry goes to stderr only.

use lotterybus_cli::report::render_replica_summary;
use lotterybus_cli::scenario_cmd::CommandError;
use lotterybus_cli::{render_metrics, render_report, SimSpec, TraceSinkSpec};
use socsim::{SystemBuilder, TraceSink, WindowSample};
use std::io::Read;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
usage: lotterybus-sim <spec-file | -> [--vcd <file>] [--jobs <n>]
       lotterybus-sim scenario <files-or-dirs>... [--kernel cycle|fast|tlm] [--jobs <n>] [--bench <file>] [--fleet]
       lotterybus-sim fuzz [--seed <n>] [--iters <n>] [--out <dir>] [--demo-failure]
       lotterybus-sim search <file.scenario> [--points <n>] [--top <k>] [--confirm <k>] [--kernel cycle|fast|tlm] [--bursts <a,b>] [--load-scales <x,y>] [--max-tickets <n>]
       lotterybus-sim --example";

const EXAMPLE_SPEC: &str = "\
# lotterybus-sim example spec
arbiter = lottery       # lottery | lottery-dynamic | priority | tdma | rr | token
burst   = 16
cycles  = 200000
warmup  = 20000
seed    = 7

# master <name> weight=<w> load=<words/cycle> size=<words> [burst|periodic]
master cpu   weight=4 load=0.30 size=16
master dsp   weight=2 load=0.25 size=16 burst
master dma   weight=1 load=0.15 size=8  periodic

# Optional fault injection & recovery (uncomment to enable).
# The plan is seeded from `seed`, so runs are reproducible.
# fault slave-error  rate=0.01
# fault slave-outage rate=0.001 duration=64
# fault grant-drop   rate=0.005
# fault master-stall rate=0.002 max=8
# retry max=4 backoff=2x
# timeout  = 256      # abort transactions wedged this many cycles
# failover = 64       # wrap the arbiter; fall over to round-robin

# Optional observability (uncomment to enable).
# metrics window=1000             # windowed metrics in the report
# trace sink=jsonl:events.jsonl   # stream trace events as JSON lines
# trace sink=vcd:waves.vcd        # or stream a VCD waveform

# Optional kernel selection. `fast` skips provably idle spans and is
# byte-identical to `cycle`; `tlm` also batches whole bus tenures —
# exact for periodic/burst arrivals, a bounded approximation for
# memoryless (poisson) ones.
# kernel = fast                   # cycle | fast | tlm (default cycle)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--example") => {
            print!("{EXAMPLE_SPEC}");
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            eprintln!("run `lotterybus-sim --example > system.spec` to get started");
            if args.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("scenario") => {
            subcommand_exit(lotterybus_cli::scenario_cmd::run_scenario_command(&args[1..]))
        }
        Some("fuzz") => subcommand_exit(lotterybus_cli::scenario_cmd::run_fuzz_command(&args[1..])),
        Some("search") => {
            subcommand_exit(lotterybus_cli::search_cmd::run_search_command(&args[1..]))
        }
        Some(path) => {
            let outcome = vcd_path(&args)
                .and_then(|vcd| jobs_flag(&args).map(|jobs| (vcd, jobs)))
                .and_then(|(vcd, jobs)| run(path, vcd, jobs));
            match outcome {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(message) => {
                    eprintln!("{message}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}

/// Prints a subcommand's stdout payload and maps its verdict to the
/// process exit code (reports that ran but didn't match expectations
/// still print before the non-zero exit). Usage errors — a malformed
/// command line, e.g. an unknown `--kernel` value — exit with status
/// 2; runtime failures with 1.
fn subcommand_exit(outcome: Result<(String, bool), CommandError>) -> ExitCode {
    match outcome {
        Ok((stdout, ok)) => {
            print!("{stdout}");
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Err(CommandError::Usage(message)) => {
            eprintln!("error: {message}\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CommandError::Failure(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Extracts the `--vcd <file>` option, if present. A trailing `--vcd`
/// with no file is a usage error, not a silent no-op.
fn vcd_path(args: &[String]) -> Result<Option<&str>, String> {
    match args.iter().position(|a| a == "--vcd") {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(file) => Ok(Some(file.as_str())),
            None => Err(format!("error: `--vcd` requires a file argument\n{USAGE}")),
        },
    }
}

/// Extracts the `--jobs <n>` option (worker threads for replica
/// fan-out; overrides the spec's `jobs` key). `None` = not given.
fn jobs_flag(args: &[String]) -> Result<Option<usize>, String> {
    match args.iter().position(|a| a == "--jobs") {
        None => Ok(None),
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(jobs) => Ok(Some(jobs)),
            None => Err(format!("error: `--jobs` requires a number\n{USAGE}")),
        },
    }
}

/// Results of one replica's run: the statistics plus the windowed
/// metric samples when the spec enables metrics.
struct SimOutcome {
    stats: socsim::BusStats,
    samples: Option<Vec<WindowSample>>,
}

/// Runs one replica's simulation; the VCD trace path and the spec's
/// streaming trace sink apply only to single-replica runs.
fn simulate(spec: &SimSpec, vcd: Option<&str>) -> Result<SimOutcome, String> {
    let mut builder = SystemBuilder::new(spec.bus_config());
    for (i, master) in spec.masters.iter().enumerate() {
        builder = builder.master(
            master.name.clone(),
            master.generator(i).build_source(spec.seed.wrapping_add(i as u64)),
        );
    }
    if let Some(fault) = spec.fault {
        builder = builder.faults(fault);
    }
    if let Some(retry) = spec.retry {
        builder = builder.retry_policy(retry);
    }
    if let Some(timeout) = spec.timeout {
        builder = builder.timeout(timeout);
    }
    if let Some(window) = spec.metrics {
        builder = builder.metrics_window(window);
    }
    if let Some(sink_spec) = &spec.trace_sink {
        builder = builder.trace_sink(build_sink(spec, sink_spec)?);
    }
    if vcd.is_some() {
        // Record enough events for the whole measured window (a grant
        // plus a word event per cycle, worst case).
        builder = builder.trace_capacity(3 * spec.cycles as usize);
    }
    let mut system = builder
        .kernel(spec.kernel.to_kernel())
        .arbiter(spec.build_arbiter().map_err(|e| e.to_string())?)
        .build()
        .map_err(|e| e.to_string())?;
    system.warm_up(spec.warmup);
    system.run(spec.cycles);
    if let Some(vcd_file) = vcd {
        // The buffered trace is bounded; if it overflowed, say so
        // instead of silently rendering a waveform with a hole in it.
        if system.trace().is_truncated() {
            eprintln!(
                "warning: trace buffer overflowed; {} event(s) dropped, `{vcd_file}` is \
                 incomplete (use `trace sink=vcd:...` to stream without a buffer)",
                system.trace().dropped(),
            );
        }
        let names: Vec<String> = spec.masters.iter().map(|m| m.name.clone()).collect();
        let document = socsim::vcd::trace_to_vcd(system.trace(), &names, spec.warmup + spec.cycles);
        std::fs::write(vcd_file, document)
            .map_err(|e| format!("cannot write `{vcd_file}`: {e}"))?;
    }
    if let Some(sink_spec) = &spec.trace_sink {
        system.finish_trace().map_err(|e| format!("cannot write `{}`: {e}", sink_spec.path()))?;
    }
    system.flush_metrics();
    let samples = system.metrics().map(|m| m.samples().to_vec());
    Ok(SimOutcome { stats: system.stats().clone(), samples })
}

/// Opens the spec's streaming trace destination.
fn build_sink(spec: &SimSpec, sink_spec: &TraceSinkSpec) -> Result<Box<dyn TraceSink>, String> {
    let file = std::fs::File::create(sink_spec.path())
        .map_err(|e| format!("cannot create `{}`: {e}", sink_spec.path()))?;
    let writer = std::io::BufWriter::new(file);
    Ok(match sink_spec {
        TraceSinkSpec::Jsonl(_) => Box::new(socsim::JsonlSink::new(writer)),
        TraceSinkSpec::Vcd(_) => {
            let names: Vec<String> = spec.masters.iter().map(|m| m.name.clone()).collect();
            Box::new(socsim::VcdSink::new(writer, &names, spec.warmup + spec.cycles))
        }
    })
}

fn run(path: &str, vcd: Option<&str>, jobs: Option<usize>) -> Result<String, String> {
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
    };
    let spec = SimSpec::parse(&text).map_err(|e| e.to_string())?;
    let jobs = jobs.unwrap_or(spec.jobs);
    if spec.replicas > 1 && vcd.is_some() {
        return Err(format!(
            "error: `--vcd` requires `replicas = 1` (the spec requests {})\n{USAGE}",
            spec.replicas
        ));
    }
    let start = Instant::now();
    let report = if spec.replicas == 1 {
        let outcome = simulate(&spec, vcd)?;
        let mut report = render_report(&spec, &outcome.stats);
        if let (Some(window), Some(samples)) = (spec.metrics, &outcome.samples) {
            report.push_str(&render_metrics(&spec, window, samples));
        }
        report
    } else {
        let indices: Vec<u32> = (0..spec.replicas).collect();
        let runs =
            socsim::pool::parallel_map(jobs, &indices, |_, &r| simulate(&spec.replica(r), None))
                .into_iter()
                .collect::<Result<Vec<_>, _>>()?;
        // Replica 0 ran with the unchanged seed, so its report is
        // byte-identical to a single-replica run of the same spec.
        let mut report = render_report(&spec, &runs[0].stats);
        if let (Some(window), Some(samples)) = (spec.metrics, &runs[0].samples) {
            report.push_str(&render_metrics(&spec, window, samples));
        }
        let stats: Vec<socsim::BusStats> = runs.iter().map(|r| r.stats.clone()).collect();
        report.push_str(&render_replica_summary(&spec, &stats));
        report
    };
    // Telemetry stays on stderr so stdout remains a clean, diffable
    // result stream.
    eprintln!(
        "ran {} replica(s) in {:.3}s with {} worker(s)",
        spec.replicas,
        start.elapsed().as_secs_f64(),
        socsim::pool::resolve_jobs(jobs).min(spec.replicas.max(1) as usize),
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn example_spec_parses() {
        let spec = SimSpec::parse(EXAMPLE_SPEC).expect("example spec stays valid");
        assert_eq!(spec.masters.len(), 3);
        assert!(!spec.has_fault_machinery(), "fault lines ship commented out");
    }

    #[test]
    fn vcd_flag_with_file_is_extracted() {
        assert_eq!(vcd_path(&args(&["s.spec", "--vcd", "w.vcd"])).unwrap(), Some("w.vcd"));
        assert_eq!(vcd_path(&args(&["s.spec"])).unwrap(), None);
    }

    #[test]
    fn trailing_vcd_flag_is_a_usage_error() {
        let err = vcd_path(&args(&["s.spec", "--vcd"])).unwrap_err();
        assert!(err.contains("`--vcd` requires a file argument"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn jobs_flag_is_extracted_and_validated() {
        assert_eq!(jobs_flag(&args(&["s.spec", "--jobs", "4"])).unwrap(), Some(4));
        assert_eq!(jobs_flag(&args(&["s.spec"])).unwrap(), None);
        let err = jobs_flag(&args(&["s.spec", "--jobs"])).unwrap_err();
        assert!(err.contains("`--jobs` requires a number"), "{err}");
        let err = jobs_flag(&args(&["s.spec", "--jobs", "many"])).unwrap_err();
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn fast_kernel_report_is_byte_identical() {
        let base = "arbiter = lottery\ncycles = 5000\nwarmup = 500\nmetrics window=500\n\
                    master cpu weight=3 load=0.2 size=16 periodic\n\
                    master dma weight=1 load=0.1 size=8 periodic\n";
        let render = |kernel: &str| -> String {
            let spec = SimSpec::parse(&format!("kernel = {kernel}\n{base}")).expect("valid spec");
            let outcome = simulate(&spec, None).expect("runs");
            let mut report = render_report(&spec, &outcome.stats);
            if let (Some(window), Some(samples)) = (spec.metrics, &outcome.samples) {
                report.push_str(&render_metrics(&spec, window, samples));
            }
            report
        };
        assert_eq!(render("cycle"), render("fast"), "kernels must render identically");
        assert_eq!(render("cycle"), render("tlm"), "tlm is exact for periodic arrivals");
    }

    #[test]
    fn tlm_kernel_report_is_byte_identical_without_metrics() {
        // Without a metrics window the TLM kernel actually batches
        // tenures (metrics force the exact fallback); periodic
        // arrivals keep it byte-exact regardless.
        let base = "arbiter = lottery\ncycles = 5000\nwarmup = 500\n\
                    master cpu weight=3 load=0.2 size=16 periodic\n\
                    master dma weight=1 load=0.1 size=8 periodic\n";
        let render = |kernel: &str| -> String {
            let spec = SimSpec::parse(&format!("kernel = {kernel}\n{base}")).expect("valid spec");
            render_report(&spec, &simulate(&spec, None).expect("runs").stats)
        };
        assert_eq!(render("cycle"), render("tlm"), "tlm must render identically");
    }

    #[test]
    fn replica_fanout_is_deterministic_and_extends_the_report() {
        let text = "arbiter = lottery\ncycles = 4000\nwarmup = 0\nreplicas = 3\n\
                    master cpu weight=3 load=0.4 size=16\n\
                    master dsp weight=1 load=0.3 size=16\n";
        let spec = SimSpec::parse(text).expect("valid");
        let simulate_all = |jobs: usize| -> Vec<socsim::BusStats> {
            let indices: Vec<u32> = (0..spec.replicas).collect();
            socsim::pool::parallel_map(jobs, &indices, |_, &r| {
                simulate(&spec.replica(r), None).expect("runs").stats
            })
        };
        let serial = simulate_all(1);
        let parallel = simulate_all(3);
        assert_eq!(serial, parallel, "worker count changed replica results");
        let report = render_report(&spec, &serial[0]) + &render_replica_summary(&spec, &serial);
        assert!(report.contains("replica aggregate over 3 runs"), "{report}");
    }
}
