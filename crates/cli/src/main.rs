//! `lotterybus-sim` — run a custom bus simulation from a plain-text
//! spec file.
//!
//! ```console
//! $ lotterybus-sim my-system.spec
//! $ lotterybus-sim my-system.spec --vcd waves.vcd   # also dump a waveform
//! $ lotterybus-sim --example                        # print a starter spec
//! $ cat my-system.spec | lotterybus-sim -
//! ```

use lotterybus_cli::{render_report, SimSpec};
use socsim::SystemBuilder;
use std::io::Read;
use std::process::ExitCode;

const EXAMPLE_SPEC: &str = "\
# lotterybus-sim example spec
arbiter = lottery       # lottery | lottery-dynamic | priority | tdma | rr | token
burst   = 16
cycles  = 200000
warmup  = 20000
seed    = 7

# master <name> weight=<w> load=<words/cycle> size=<words> [burst|periodic]
master cpu   weight=4 load=0.30 size=16
master dsp   weight=2 load=0.25 size=16 burst
master dma   weight=1 load=0.15 size=8  periodic

# Optional fault injection & recovery (uncomment to enable).
# The plan is seeded from `seed`, so runs are reproducible.
# fault slave-error  rate=0.01
# fault slave-outage rate=0.001 duration=64
# fault grant-drop   rate=0.005
# fault master-stall rate=0.002 max=8
# retry max=4 backoff=2x
# timeout  = 256      # abort transactions wedged this many cycles
# failover = 64       # wrap the arbiter; fall over to round-robin
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--example") => {
            print!("{EXAMPLE_SPEC}");
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            eprintln!("usage: lotterybus-sim <spec-file | -> [--vcd <file>] | --example");
            eprintln!("run `lotterybus-sim --example > system.spec` to get started");
            if args.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some(path) => match vcd_path(&args).and_then(|vcd| run(path, vcd)) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        },
    }
}

/// Extracts the `--vcd <file>` option, if present. A trailing `--vcd`
/// with no file is a usage error, not a silent no-op.
fn vcd_path(args: &[String]) -> Result<Option<&str>, String> {
    match args.iter().position(|a| a == "--vcd") {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(file) => Ok(Some(file.as_str())),
            None => Err("error: `--vcd` requires a file argument\n\
                         usage: lotterybus-sim <spec-file | -> [--vcd <file>] | --example"
                .to_owned()),
        },
    }
}

fn run(path: &str, vcd: Option<&str>) -> Result<String, String> {
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
    };
    let spec = SimSpec::parse(&text).map_err(|e| e.to_string())?;
    let mut builder = SystemBuilder::new(spec.bus_config());
    for (i, master) in spec.masters.iter().enumerate() {
        builder = builder.master(
            master.name.clone(),
            master.generator(i).build_source(spec.seed.wrapping_add(i as u64)),
        );
    }
    if let Some(fault) = spec.fault {
        builder = builder.faults(fault);
    }
    if let Some(retry) = spec.retry {
        builder = builder.retry_policy(retry);
    }
    if let Some(timeout) = spec.timeout {
        builder = builder.timeout(timeout);
    }
    if vcd.is_some() {
        // Record enough events for the whole measured window (a grant
        // plus a word event per cycle, worst case).
        builder = builder.trace_capacity(3 * spec.cycles as usize);
    }
    let mut system = builder
        .arbiter(spec.build_arbiter().map_err(|e| e.to_string())?)
        .build()
        .map_err(|e| e.to_string())?;
    system.warm_up(spec.warmup);
    system.run(spec.cycles);
    if let Some(vcd_file) = vcd {
        let names: Vec<String> = spec.masters.iter().map(|m| m.name.clone()).collect();
        let document = socsim::vcd::trace_to_vcd(system.trace(), &names, spec.warmup + spec.cycles);
        std::fs::write(vcd_file, document)
            .map_err(|e| format!("cannot write `{vcd_file}`: {e}"))?;
    }
    Ok(render_report(&spec, system.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn example_spec_parses() {
        let spec = SimSpec::parse(EXAMPLE_SPEC).expect("example spec stays valid");
        assert_eq!(spec.masters.len(), 3);
        assert!(!spec.has_fault_machinery(), "fault lines ship commented out");
    }

    #[test]
    fn vcd_flag_with_file_is_extracted() {
        assert_eq!(vcd_path(&args(&["s.spec", "--vcd", "w.vcd"])).unwrap(), Some("w.vcd"));
        assert_eq!(vcd_path(&args(&["s.spec"])).unwrap(), None);
    }

    #[test]
    fn trailing_vcd_flag_is_a_usage_error() {
        let err = vcd_path(&args(&["s.spec", "--vcd"])).unwrap_err();
        assert!(err.contains("`--vcd` requires a file argument"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }
}
