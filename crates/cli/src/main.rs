//! `lotterybus-sim` — run a custom bus simulation from a plain-text
//! spec file.
//!
//! ```console
//! $ lotterybus-sim my-system.spec
//! $ lotterybus-sim my-system.spec --vcd waves.vcd   # also dump a waveform
//! $ lotterybus-sim --example                        # print a starter spec
//! $ cat my-system.spec | lotterybus-sim -
//! ```

use lotterybus_cli::{render_report, SimSpec};
use socsim::SystemBuilder;
use std::io::Read;
use std::process::ExitCode;

const EXAMPLE_SPEC: &str = "\
# lotterybus-sim example spec
arbiter = lottery       # lottery | lottery-dynamic | priority | tdma | rr | token
burst   = 16
cycles  = 200000
warmup  = 20000
seed    = 7

# master <name> weight=<w> load=<words/cycle> size=<words> [burst|periodic]
master cpu   weight=4 load=0.30 size=16
master dsp   weight=2 load=0.25 size=16 burst
master dma   weight=1 load=0.15 size=8  periodic
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--example") => {
            print!("{EXAMPLE_SPEC}");
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            eprintln!("usage: lotterybus-sim <spec-file | -> [--vcd <file>] | --example");
            eprintln!("run `lotterybus-sim --example > system.spec` to get started");
            if args.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some(path) => match run(path, vcd_path(&args)) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        },
    }
}

/// Extracts the `--vcd <file>` option, if present.
fn vcd_path(args: &[String]) -> Option<&str> {
    args.iter().position(|a| a == "--vcd").and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn run(path: &str, vcd: Option<&str>) -> Result<String, String> {
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
    };
    let spec = SimSpec::parse(&text).map_err(|e| e.to_string())?;
    let mut builder = SystemBuilder::new(spec.bus_config());
    for (i, master) in spec.masters.iter().enumerate() {
        builder = builder.master(
            master.name.clone(),
            master.generator(i).build_source(spec.seed.wrapping_add(i as u64)),
        );
    }
    if vcd.is_some() {
        // Record enough events for the whole measured window (a grant
        // plus a word event per cycle, worst case).
        builder = builder.trace_capacity(3 * spec.cycles as usize);
    }
    let mut system = builder
        .arbiter(spec.build_arbiter().map_err(|e| e.to_string())?)
        .build()
        .map_err(|e| e.to_string())?;
    system.warm_up(spec.warmup);
    system.run(spec.cycles);
    if let Some(vcd_file) = vcd {
        let names: Vec<String> = spec.masters.iter().map(|m| m.name.clone()).collect();
        let document =
            socsim::vcd::trace_to_vcd(system.trace(), &names, spec.warmup + spec.cycles);
        std::fs::write(vcd_file, document)
            .map_err(|e| format!("cannot write `{vcd_file}`: {e}"))?;
    }
    Ok(render_report(&spec, system.stats()))
}
