//! # lotterybus-cli — run custom bus simulations from a plain-text spec
//!
//! The `lotterybus-sim` binary reads a small declarative spec describing
//! a single-bus system — arbiter, bus parameters, and one line per
//! master — runs it, and prints the bandwidth/latency report. It is the
//! quickest way to try the LOTTERYBUS protocol on your own workload
//! without writing Rust.
//!
//! ## Spec format
//!
//! Line-oriented; `#` starts a comment. Keys before the first `master`
//! line configure the system:
//!
//! ```text
//! # system keys
//! arbiter  = lottery          # lottery | lottery-dynamic | priority |
//!                             # tdma | rr | token
//! burst    = 16               # max words per grant
//! cycles   = 200000           # measured cycles
//! warmup   = 20000            # discarded warm-up cycles
//! seed     = 7
//! tdma-block = 6              # slots per weight unit (tdma only)
//!
//! # one line per master:
//! #   master <name> weight=<w> load=<words/cycle> size=<words> [burst|periodic]
//! master cpu   weight=4 load=0.30 size=16
//! master dsp   weight=2 load=0.20 size=16 burst
//! master dma   weight=1 load=0.10 size=8  periodic
//! ```
//!
//! `weight` feeds the arbiter (tickets / priority / slot count), `load`
//! is the offered load in words per cycle, `size` the message size, and
//! the optional trailing word selects the arrival process (default:
//! memoryless).

pub mod report;
pub mod spec;

pub use report::render_report;
pub use spec::{ArbiterKind, MasterSpec, ParseSpecError, SimSpec};
