//! # lotterybus-cli — run custom bus simulations from a plain-text spec
//!
//! The `lotterybus-sim` binary reads a small declarative spec describing
//! a single-bus system — arbiter, bus parameters, and one line per
//! master — runs it, and prints the bandwidth/latency report. It is the
//! quickest way to try the LOTTERYBUS protocol on your own workload
//! without writing Rust.
//!
//! ## Spec format
//!
//! Line-oriented; `#` starts a comment. Keys before the first `master`
//! line configure the system:
//!
//! ```text
//! # system keys
//! arbiter  = lottery          # lottery | lottery-dynamic | priority |
//!                             # tdma | rr | token
//! burst    = 16               # max words per grant
//! cycles   = 200000           # measured cycles
//! warmup   = 20000            # discarded warm-up cycles
//! seed     = 7
//! tdma-block = 6              # slots per weight unit (tdma only)
//!
//! # one line per master:
//! #   master <name> weight=<w> load=<words/cycle> size=<words> [burst|periodic]
//! master cpu   weight=4 load=0.30 size=16
//! master dsp   weight=2 load=0.20 size=16 burst
//! master dma   weight=1 load=0.10 size=8  periodic
//! ```
//!
//! `weight` feeds the arbiter (tickets / priority / slot count), `load`
//! is the offered load in words per cycle, `size` the message size, and
//! the optional trailing word selects the arrival process (default:
//! memoryless).
//!
//! ## Fault injection & recovery (optional)
//!
//! ```text
//! # fault <class> rate=<p> [duration=<cycles>] [max=<cycles>]
//! fault slave-error  rate=0.01
//! fault slave-outage rate=0.001 duration=64
//! fault grant-drop   rate=0.005
//! fault grant-corrupt rate=0.005
//! fault master-stall rate=0.002 max=8
//!
//! retry max=4 backoff=2x base=1   # retries per txn, exponential backoff
//! timeout  = 256                  # watchdog: abort wedged transactions
//! failover = 64                   # wrap arbiter in a round-robin failover
//! ```
//!
//! The fault plan is seeded from `seed`, so a faulty run is bit-for-bit
//! reproducible. Reports for specs with any of these lines gain a
//! `faults:` / `recovery:` section; specs without them render exactly as
//! before.
//!
//! ## Observability (optional)
//!
//! ```text
//! metrics window=1000             # windowed metrics section in the report
//! trace sink=jsonl:events.jsonl   # stream trace events as JSON lines
//! trace sink=vcd:waves.vcd        # or stream a VCD waveform directly
//! ```
//!
//! `metrics` samples counters every `window` cycles and appends a
//! windowed-metrics section (per-window utilization and per-master
//! bandwidth-share sparklines) to the report. `trace sink=` streams
//! every bus event to a file as the run progresses — unlike the
//! bounded in-memory trace buffer, a streaming sink never truncates.
//! Neither feature changes simulation results.
//!
//! ## Kernel selection (optional)
//!
//! ```text
//! kernel = fast                   # fast | cycle (default cycle)
//! ```
//!
//! `kernel = fast` runs the event-driven fast-forward kernel, which
//! skips provably idle spans instead of stepping them cycle by cycle.
//! Both kernels produce byte-identical reports (and traces and
//! waveforms); only wall-clock time changes.
//!
//! ## Scenarios & fuzzing
//!
//! Two further subcommands drive the declarative robustness subsystem
//! from the `scenario` crate:
//!
//! ```console
//! $ lotterybus-sim scenario scenarios/                 # run the library
//! $ lotterybus-sim scenario a.scenario --kernel fast
//! $ lotterybus-sim fuzz --seed 7 --iters 50 --out tmp/
//! ```
//!
//! `scenario` executes `.scenario` files as one dependency plan and
//! prints a deterministic verdict JSON (exit status reflects whether
//! every verdict matched its `expect` line); `fuzz` runs the seeded
//! scenario fuzzer and writes shrunk reproducers. See
//! [`scenario_cmd`] for the flag reference.
//!
//! ## Design-space search
//!
//! The `search` subcommand turns a `.scenario` file's SLA lines into
//! analytic targets, scans a million-plus (tickets, burst, load)
//! design points through the closed-form predictors of the `analytic`
//! crate, and confirms the best candidates by simulation:
//!
//! ```console
//! $ lotterybus-sim search scenarios/baseline-fairness.scenario
//! $ lotterybus-sim search sla.scenario --points 2000000 --confirm 5
//! ```
//!
//! Exit status 0 means at least one candidate was confirmed; 2 means
//! the targets are infeasible over the scanned space. See
//! [`search_cmd`] for the flag reference.

pub mod report;
pub mod scenario_cmd;
pub mod search_cmd;
pub mod spec;

pub use report::{render_metrics, render_report};
pub use spec::{ArbiterKind, KernelKind, MasterSpec, ParseSpecError, SimSpec, TraceSinkSpec};
