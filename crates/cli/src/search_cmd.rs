//! The `search` subcommand: instant analytic design-space search
//! driven by a `.scenario` file.
//!
//! `lotterybus-sim search <file.scenario>` reads one scenario, maps
//! its masters and SLA lines onto the closed-form predictors of the
//! [`analytic`] crate, scans a million-plus (tickets, burst,
//! load-scale) design points in well under a second, and then
//! *confirms* the best short-listed candidates by running the full
//! scenario — phases, faults and all — through the simulator with the
//! candidate's weights substituted in.
//!
//! The stdout payload is deterministic JSON (wall-clock telemetry goes
//! to stderr), so CI can diff a search run byte for byte. Exit status
//! is 0 when at least one candidate is confirmed by simulation (or,
//! with `--confirm 0`, when the scan found any feasible point) and 2
//! when the SLA targets are infeasible over the scanned space or every
//! short-listed candidate failed confirmation.

use crate::scenario_cmd::CommandError;
use analytic::{search, Candidate, Protocol, SearchSpace, SlaTarget, TargetKind, TrafficInput};
use experiments::json::Json;
use scenario::{run_scenario, ArbiterSel, Outcome, Scenario, SlaKind};
use socsim::{BusConfig, Kernel};
use traffic_gen::SizeDist;

/// Parsed flags of the `search` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchArgs {
    /// The single `.scenario` file driving the search.
    pub path: String,
    /// Kernel used for the confirmation runs.
    pub kernel: Kernel,
    /// Minimum number of design points the scan must cover; the ticket
    /// grid is widened until it does.
    pub points: u64,
    /// Short-list size (shape-deduplicated feasible candidates).
    pub top: usize,
    /// How many short-listed candidates to confirm by simulation.
    pub confirm: usize,
    /// Burst limits to scan; empty = the scenario's own burst.
    pub bursts: Vec<u32>,
    /// Load multipliers to scan.
    pub load_scales: Vec<f64>,
    /// Fixed per-master ticket ceiling; `None` auto-dimensions from
    /// `points`.
    pub max_tickets: Option<u32>,
}

/// Parses the arguments after `search`.
pub fn parse_search_args(args: &[String]) -> Result<SearchArgs, String> {
    let mut parsed = SearchArgs {
        path: String::new(),
        kernel: Kernel::Cycle,
        points: 1_000_000,
        top: 8,
        confirm: 3,
        bursts: Vec::new(),
        load_scales: vec![1.0],
        max_tickets: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kernel" => {
                let word = it.next().map(String::as_str).unwrap_or("nothing");
                parsed.kernel = Kernel::parse(word)
                    .ok_or(format!("`--kernel` must be `cycle`, `fast`, or `tlm`, got {word:?}"))?;
            }
            "--points" => {
                parsed.points =
                    it.next().and_then(|v| v.parse().ok()).ok_or("`--points` requires a number")?;
            }
            "--top" => {
                parsed.top =
                    it.next().and_then(|v| v.parse().ok()).ok_or("`--top` requires a number")?;
            }
            "--confirm" => {
                parsed.confirm = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("`--confirm` requires a number")?;
            }
            "--bursts" => {
                let list = it.next().ok_or("`--bursts` requires a comma-separated list")?;
                parsed.bursts = parse_list(list, "`--bursts`")?;
                if parsed.bursts.contains(&0) {
                    return Err("`--bursts` entries must be at least 1".to_owned());
                }
            }
            "--load-scales" => {
                let list = it.next().ok_or("`--load-scales` requires a comma-separated list")?;
                parsed.load_scales = parse_list(list, "`--load-scales`")?;
                if parsed.load_scales.iter().any(|&s: &f64| !s.is_finite() || s <= 0.0) {
                    return Err("`--load-scales` entries must be finite and > 0".to_owned());
                }
            }
            "--max-tickets" => {
                let n: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("`--max-tickets` requires a number")?;
                if n == 0 {
                    return Err("`--max-tickets` must be at least 1".to_owned());
                }
                parsed.max_tickets = Some(n);
            }
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown search flag `{flag}`: expected --kernel, --points, --top, \
                     --confirm, --bursts, --load-scales or --max-tickets"
                ))
            }
            path if parsed.path.is_empty() => parsed.path = path.to_owned(),
            extra => {
                return Err(format!(
                    "`search` takes exactly one .scenario file, got a second: `{extra}`"
                ))
            }
        }
    }
    if parsed.path.is_empty() {
        return Err("`search` needs a .scenario file whose SLAs define the targets".to_owned());
    }
    Ok(parsed)
}

/// Parses a comma-separated numeric list.
fn parse_list<T: std::str::FromStr>(list: &str, flag: &str) -> Result<Vec<T>, String> {
    let parsed: Result<Vec<T>, _> = list.split(',').map(str::parse).collect();
    parsed.map_err(|_| format!("{flag} wants a comma-separated list of numbers, got {list:?}"))
}

/// The analytic protocol standing in for a scenario's arbiter. The
/// dynamic lottery's long-run shares track its base tickets, and the
/// token ring grants one master per rotation like round-robin, so both
/// reuse the nearest static model.
fn protocol_for(sel: ArbiterSel) -> Protocol {
    match sel {
        ArbiterSel::Lottery | ArbiterSel::LotteryDynamic => Protocol::LotteryStatic,
        ArbiterSel::Priority => Protocol::StaticPriority,
        ArbiterSel::Tdma => Protocol::Tdma2Level,
        ArbiterSel::RoundRobin | ArbiterSel::TokenRing => Protocol::RoundRobin,
    }
}

/// One scannable target plus the report row describing it.
struct ScanTarget {
    target: SlaTarget,
    /// `(master name, kind keyword, bound)` for the JSON report.
    row: (String, &'static str, f64),
}

/// Splits the scenario's SLA lines into analytic scan targets and the
/// sim-only remainder (asserted during confirmation, not scanned).
/// Phase-filtered SLAs are sim-only too: the predictors model the
/// whole run at base load.
fn scan_targets(sc: &Scenario) -> (Vec<ScanTarget>, Vec<String>) {
    let mut targets = Vec::new();
    let mut sim_only = Vec::new();
    let index = |name: &str| sc.master_index(name).expect("validated scenario");
    for sla in &sc.slas {
        if sla.phase.is_some() {
            sim_only.push(format!("{} (phase-filtered)", sla.kind.keyword()));
            continue;
        }
        match &sla.kind {
            SlaKind::Bandwidth { master, min, max } => {
                if let Some(b) = min {
                    targets.push(ScanTarget {
                        target: SlaTarget { master: index(master), kind: TargetKind::MinShare(*b) },
                        row: (master.clone(), "min-share", *b),
                    });
                }
                if let Some(b) = max {
                    targets.push(ScanTarget {
                        target: SlaTarget { master: index(master), kind: TargetKind::MaxShare(*b) },
                        row: (master.clone(), "max-share", *b),
                    });
                }
            }
            SlaKind::LatencyMaster { master, p99 } => {
                targets.push(ScanTarget {
                    target: SlaTarget {
                        master: index(master),
                        kind: TargetKind::MaxP99(*p99 as f64),
                    },
                    row: (master.clone(), "max-p99", *p99 as f64),
                });
            }
            // A bus-wide p99 ceiling holds if every master's does —
            // conservative, which is the right direction for a
            // short-list that simulation then confirms.
            SlaKind::LatencyBus { p99 } => {
                for m in &sc.masters {
                    targets.push(ScanTarget {
                        target: SlaTarget {
                            master: index(&m.name),
                            kind: TargetKind::MaxP99(*p99 as f64),
                        },
                        row: (m.name.clone(), "max-p99", *p99 as f64),
                    });
                }
            }
            other => sim_only.push(other.keyword().to_owned()),
        }
    }
    (targets, sim_only)
}

/// Builds the analytic search space from the scenario: every master
/// becomes a Bernoulli stream at its long-run rate (assumption 1 of
/// the model), stalled by its addressed slave's wait states.
fn search_space(sc: &Scenario, args: &SearchArgs) -> SearchSpace {
    let bus = BusConfig { max_burst: sc.burst, ..BusConfig::new() };
    let traffic: Vec<TrafficInput> = sc
        .masters
        .iter()
        .map(|m| {
            let wait = sc.slaves.get(m.slave).map_or(0, |s| s.wait);
            TrafficInput {
                lambda: (m.load / f64::from(m.size)).min(1.0),
                size: SizeDist::fixed(m.size),
                stall: Some(bus.grant_stall(wait)),
            }
        })
        .collect();
    let mut space = SearchSpace::new(protocol_for(sc.arbiter), bus, traffic);
    space.tdma_block = sc.tdma_block;
    if !args.bursts.is_empty() {
        space.bursts = args.bursts.clone();
    }
    space.load_scales = args.load_scales.clone();
    match args.max_tickets {
        Some(n) => space.max_tickets = n,
        None => {
            space.max_tickets = 1;
            space.dimension_for(args.points);
        }
    }
    space
}

/// The scenario with one candidate's design point substituted in:
/// its weights, its burst limit, and its load scaling (clamped to the
/// grammar's (0, 1] load range).
fn candidate_scenario(sc: &Scenario, cand: &Candidate) -> Scenario {
    let mut out = sc.clone();
    out.burst = cand.burst;
    for (m, &w) in out.masters.iter_mut().zip(&cand.weights) {
        m.weight = w;
    }
    if cand.load_scale != 1.0 {
        for m in &mut out.masters {
            m.load = (m.load * cand.load_scale).min(1.0);
        }
    }
    out
}

/// Whole-run bandwidth share per master, reassembled from the phase
/// reports (words are cycle-weighted shares).
fn whole_run_shares(outcome: &Outcome) -> Vec<f64> {
    let n = outcome.phases.first().map_or(0, |p| p.shares.len());
    let total: u64 = outcome.phases.iter().map(|p| p.cycles).sum();
    (0..n)
        .map(|i| {
            if total == 0 {
                return 0.0;
            }
            let words: f64 = outcome.phases.iter().map(|p| p.shares[i] * p.cycles as f64).sum();
            words / total as f64
        })
        .collect()
}

/// One confirmation run's result.
struct Confirmation {
    confirmed: bool,
    measured_shares: Vec<f64>,
    share_error: f64,
    violations: Vec<String>,
}

/// Compares one candidate's confirmation run to its prediction.
fn confirmation(cand: &Candidate, outcome: &Outcome) -> Confirmation {
    let measured = whole_run_shares(outcome);
    let share_error = cand
        .predicted
        .iter()
        .zip(&measured)
        .map(|(p, &m)| (p.share - m).abs())
        .fold(0.0f64, f64::max);
    Confirmation {
        confirmed: outcome.passed,
        measured_shares: measured,
        share_error,
        violations: outcome.violations.iter().map(|v| v.message.clone()).collect(),
    }
}

/// Runs the confirmation simulations for the first `confirm`
/// short-listed candidates. Under the cycle kernel the whole
/// short-list is packed into one lockstep fleet
/// ([`scenario::run_scenarios_fleet`], lane-exact, so the JSON stays
/// byte-identical to per-candidate runs); other kernels confirm one
/// scenario at a time.
fn confirm_outcomes(
    sc: &Scenario,
    candidates: &[Candidate],
    confirm: usize,
    kernel: Kernel,
) -> Result<Vec<Outcome>, String> {
    let runs: Vec<Scenario> =
        candidates.iter().take(confirm).map(|cand| candidate_scenario(sc, cand)).collect();
    if kernel == Kernel::Cycle {
        let refs: Vec<&Scenario> = runs.iter().collect();
        scenario::run_scenarios_fleet(&refs)
    } else {
        runs.iter().map(|candidate| run_scenario(candidate, kernel)).collect()
    }
}

fn candidate_json(cand: &Candidate, conf: Option<&Confirmation>) -> Json {
    let predicted = cand
        .predicted
        .iter()
        .map(|p| {
            Json::obj()
                .field("share", p.share)
                .field("cycles_per_word", p.cycles_per_word.map_or(Json::Null, Json::from))
                .field("p99_latency", p.p99_latency.map_or(Json::Null, Json::from))
        })
        .collect();
    let mut json = Json::obj()
        .field(
            "weights",
            Json::Arr(cand.weights.iter().map(|&w| Json::from(u64::from(w))).collect()),
        )
        .field("burst", u64::from(cand.burst))
        .field("load_scale", cand.load_scale)
        .field("margin", cand.margin)
        .field("predicted", Json::Arr(predicted));
    json = match conf {
        None => json.field("simulated", false),
        Some(c) => json
            .field("simulated", true)
            .field("confirmed", c.confirmed)
            .field(
                "measured_shares",
                Json::Arr(c.measured_shares.iter().map(|&s| Json::from(s)).collect()),
            )
            .field("share_error", c.share_error)
            .field(
                "violations",
                Json::Arr(c.violations.iter().map(|v| Json::from(v.as_str())).collect()),
            ),
    };
    json
}

/// Runs the `search` subcommand. Returns the stdout payload and
/// whether the search succeeded: at least one candidate confirmed by
/// simulation, or — with `--confirm 0` — at least one feasible point.
pub fn run_search_command(args: &[String]) -> Result<(String, bool), CommandError> {
    let parsed = parse_search_args(args).map_err(CommandError::Usage)?;
    let text = std::fs::read_to_string(&parsed.path)
        .map_err(|e| CommandError::Failure(format!("cannot read `{}`: {e}", parsed.path)))?;
    let sc = Scenario::parse(&text)
        .map_err(|e| CommandError::Failure(format!("{}: {e}", parsed.path)))?;

    let (targets, sim_only) = scan_targets(&sc);
    if targets.is_empty() {
        return Err(CommandError::Failure(format!(
            "scenario `{}` has no SLA lines the analytic model can scan (need a whole-run \
             `bandwidth` or `latency` SLA); {} sim-only SLA(s) present",
            sc.name,
            sim_only.len(),
        )));
    }
    let space = search_space(&sc, &parsed);
    let sla_targets: Vec<SlaTarget> = targets.iter().map(|t| t.target).collect();
    let start = std::time::Instant::now();
    let report = search(&space, &sla_targets, parsed.top).map_err(CommandError::Failure)?;
    let scan_wall = start.elapsed().as_secs_f64();
    eprintln!(
        "scanned {} design points in {:.3}s ({:.0} points/s): {} feasible, {} short-listed",
        report.scanned,
        scan_wall,
        report.scanned as f64 / scan_wall.max(f64::MIN_POSITIVE),
        report.feasible,
        report.candidates.len(),
    );

    let outcomes = confirm_outcomes(&sc, &report.candidates, parsed.confirm, parsed.kernel)
        .map_err(CommandError::Failure)?;
    let mut confirmations: Vec<Option<Confirmation>> = Vec::new();
    for (i, cand) in report.candidates.iter().enumerate() {
        let Some(outcome) = outcomes.get(i) else {
            confirmations.push(None);
            continue;
        };
        let conf = confirmation(cand, outcome);
        eprintln!(
            "confirm {:?} burst={} scale={}: {} (max share error {:.4})",
            cand.weights,
            cand.burst,
            cand.load_scale,
            if conf.confirmed { "confirmed" } else { "rejected" },
            conf.share_error,
        );
        confirmations.push(Some(conf));
    }
    let confirmed = confirmations.iter().flatten().filter(|c| c.confirmed).count() as u64;
    let simulated = confirmations.iter().flatten().count() as u64;

    let target_rows = targets
        .iter()
        .map(|t| {
            let (master, kind, bound) = &t.row;
            Json::obj().field("master", master.as_str()).field("kind", *kind).field("bound", *bound)
        })
        .collect();
    let candidates = report
        .candidates
        .iter()
        .zip(&confirmations)
        .map(|(c, conf)| candidate_json(c, conf.as_ref()))
        .collect();
    let json = Json::obj()
        .field("scenario", sc.name.as_str())
        .field("arbiter", sc.arbiter.keyword())
        .field("protocol_model", format!("{:?}", protocol_for(sc.arbiter)).as_str())
        .field("points", report.scanned)
        .field("max_tickets", u64::from(space.max_tickets))
        .field("feasible", report.feasible)
        .field("targets", Json::Arr(target_rows))
        .field(
            "sim_only_slas",
            Json::Arr(sim_only.iter().map(|s| Json::from(s.as_str())).collect()),
        )
        .field("simulated", simulated)
        .field("confirmed", confirmed)
        .field("candidates", Json::Arr(candidates));

    let ok = if parsed.confirm == 0 { report.feasible > 0 } else { confirmed > 0 };
    if !ok {
        eprintln!(
            "verdict: infeasible — {} over {} scanned points under the {} model",
            if report.feasible == 0 {
                "no design point satisfies the targets"
            } else {
                "no short-listed candidate survived simulation"
            },
            report.scanned,
            sc.arbiter.keyword(),
        );
    }
    Ok((json.render() + "\n", ok))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    fn write_scenario(name: &str, text: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir()
            .join(format!("lbsim-search-{name}-{}.scenario", std::process::id()));
        std::fs::write(&path, text).expect("temp scenario writes");
        path
    }

    const FEASIBLE: &str = "\
scenario search-feasible
seed = 11
arbiter = lottery
master cpu weight=1 load=0.60 size=16
master dsp weight=1 load=0.60 size=16
master dma weight=1 load=0.60 size=8
phase steady duration=30000
sla bandwidth master=cpu min=0.45 max=0.70
sla losses max=0
";

    #[test]
    fn search_flags_parse() {
        let parsed = parse_search_args(&args(&[
            "x.scenario",
            "--kernel",
            "fast",
            "--points",
            "4096",
            "--top",
            "4",
            "--confirm",
            "2",
            "--bursts",
            "8,16",
            "--load-scales",
            "0.8,1.0",
            "--max-tickets",
            "6",
        ]))
        .expect("valid");
        assert_eq!(
            parsed,
            SearchArgs {
                path: "x.scenario".into(),
                kernel: Kernel::Fast,
                points: 4096,
                top: 4,
                confirm: 2,
                bursts: vec![8, 16],
                load_scales: vec![0.8, 1.0],
                max_tickets: Some(6),
            }
        );
        let parsed = parse_search_args(&args(&["x.scenario"])).expect("valid");
        assert_eq!(parsed.points, 1_000_000, "default scan covers a million points");
        assert_eq!(parsed.confirm, 3);
    }

    #[test]
    fn search_flag_errors_are_actionable() {
        let e = parse_search_args(&args(&[])).unwrap_err();
        assert!(e.contains(".scenario"), "{e}");
        let e = parse_search_args(&args(&["a.scenario", "b.scenario"])).unwrap_err();
        assert!(e.contains("exactly one"), "{e}");
        let e = parse_search_args(&args(&["x", "--frobnicate"])).unwrap_err();
        assert!(e.contains("--frobnicate") && e.contains("--confirm"), "{e}");
        let e = parse_search_args(&args(&["x", "--kernel", "warp"])).unwrap_err();
        assert!(e.contains("cycle") && e.contains("tlm"), "{e}");
        let e = parse_search_args(&args(&["x", "--load-scales", "0,-1"])).unwrap_err();
        assert!(e.contains("> 0"), "{e}");
        let e = parse_search_args(&args(&["x", "--bursts", "16,0"])).unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
    }

    #[test]
    fn every_arbiter_maps_to_a_protocol_model() {
        for sel in ArbiterSel::ALL {
            let _ = protocol_for(sel); // must not panic for any keyword
        }
        assert_eq!(protocol_for(ArbiterSel::TokenRing), Protocol::RoundRobin);
        assert_eq!(protocol_for(ArbiterSel::LotteryDynamic), Protocol::LotteryStatic);
    }

    #[test]
    fn slas_split_into_scannable_and_sim_only() {
        let sc = Scenario::parse(
            "scenario t\nseed = 1\narbiter = lottery\n\
             master a weight=1 load=0.5 size=16\n\
             master b weight=1 load=0.5 size=16\n\
             phase p duration=1000\n\
             sla bandwidth master=a min=0.3\n\
             sla latency master=b p99=500\n\
             sla latency p99=900\n\
             sla starvation master=a max-windows=0\n\
             sla bandwidth master=b max=0.8 phase=p\n",
        )
        .expect("valid");
        let (targets, sim_only) = scan_targets(&sc);
        // min-share + per-master p99 + bus-wide p99 fanned out to both
        // masters = 4 scannable targets.
        assert_eq!(targets.len(), 4);
        assert_eq!(targets[0].row, ("a".into(), "min-share", 0.3));
        assert_eq!(targets[1].row, ("b".into(), "max-p99", 500.0));
        assert_eq!(sim_only, vec!["starvation".to_owned(), "bandwidth (phase-filtered)".into()]);
    }

    #[test]
    fn feasible_search_confirms_by_simulation() {
        let path = write_scenario("feasible", FEASIBLE);
        let (stdout, ok) = run_search_command(&args(&[
            path.to_str().unwrap(),
            "--points",
            "4096",
            "--confirm",
            "1",
            "--kernel",
            "fast",
        ]))
        .expect("search runs");
        std::fs::remove_file(&path).ok();
        assert!(ok, "a 45% share for one of three equal masters is reachable: {stdout}");
        assert!(stdout.contains("\"confirmed\":true"), "{stdout}");
        assert!(stdout.contains("\"feasible\""), "{stdout}");
    }

    #[test]
    fn infeasible_targets_report_cleanly_without_simulating() {
        let text = FEASIBLE.replace("min=0.45 max=0.70", "min=0.99");
        let path = write_scenario("infeasible", &text);
        let (stdout, ok) = run_search_command(&args(&[path.to_str().unwrap(), "--points", "4096"]))
            .expect("search runs");
        std::fs::remove_file(&path).ok();
        assert!(!ok, "99% of a saturated 3-master bus is unreachable");
        assert!(stdout.contains("\"feasible\":0"), "{stdout}");
        assert!(stdout.contains("\"simulated\":0"), "{stdout}");
    }

    #[test]
    fn scenario_without_scannable_slas_is_a_runtime_failure() {
        let text = "scenario t\nseed = 1\narbiter = lottery\n\
                    master a weight=1 load=0.5 size=16\n\
                    phase p duration=1000\n\
                    sla losses max=0\n";
        let path = write_scenario("simonly", text);
        let err = run_search_command(&args(&[path.to_str().unwrap()])).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CommandError::Failure(_)));
        assert!(err.message().contains("bandwidth"), "{}", err.message());
    }

    #[test]
    fn missing_file_is_a_failure_not_a_usage_error() {
        let err = run_search_command(&args(&["/nonexistent.scenario"])).unwrap_err();
        assert!(matches!(err, CommandError::Failure(_)));
        let err = run_search_command(&args(&["x", "--kernel", "warp"])).unwrap_err();
        assert!(matches!(err, CommandError::Usage(_)));
    }
}
