//! Rendering simulation results for the terminal.

use crate::spec::SimSpec;
use socsim::{BusStats, MasterId};

/// Renders the end-of-run report: one row per master plus totals, with
/// an ASCII bandwidth bar.
pub fn render_report(spec: &SimSpec, stats: &BusStats) -> String {
    let mut out = String::new();
    let total_weight: u32 = spec.masters.iter().map(|m| m.weight).sum();
    out.push_str(&format!(
        "{:<10} {:>6} {:>9} {:>9} {:>12} {:>10}  bandwidth\n",
        "master", "weight", "entitled", "measured", "cyc/word", "p99 lat"
    ));
    for (i, master) in spec.masters.iter().enumerate() {
        let id = MasterId::new(i);
        let m = stats.master(id);
        let share = stats.bandwidth_fraction(id);
        let entitled = f64::from(master.weight) / f64::from(total_weight.max(1));
        let bar_len = (share * 40.0).round() as usize;
        out.push_str(&format!(
            "{:<10} {:>6} {:>8.1}% {:>8.1}% {:>12} {:>10}  {}\n",
            master.name,
            master.weight,
            entitled * 100.0,
            share * 100.0,
            m.cycles_per_word().map_or("-".into(), |v| format!("{v:.2}")),
            m.latency_quantile(0.99).map_or("-".into(), |v| format!("<{v}")),
            "#".repeat(bar_len),
        ));
    }
    out.push_str(&format!(
        "bus utilization {:.1}%  ({} grants over {} cycles)\n",
        stats.bus_utilization() * 100.0,
        stats.grants,
        stats.cycles,
    ));
    // Only specs that opt into fault machinery get the fault section;
    // fault-free specs render byte-identically to earlier versions.
    if spec.has_fault_machinery() {
        out.push_str(&format!(
            "faults: {} slave errors, {} dropped grants, {} corrupted grants\n",
            stats.slave_errors, stats.dropped_grants, stats.corrupted_grants,
        ));
        out.push_str(&format!(
            "recovery: {} retries, {} timeouts, {} aborted, {} failovers\n",
            stats.retries, stats.timeouts, stats.aborted_transactions, stats.failovers,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SimSpec;
    use arbiters::{FailoverArbiter, StaticPriorityArbiter};
    use socsim::{Arbiter, Cycle, Grant, RequestMap, System, SystemBuilder};

    fn build_system(spec: &SimSpec, arbiter: Box<dyn Arbiter>) -> System {
        let mut builder = SystemBuilder::new(spec.bus_config());
        for (i, master) in spec.masters.iter().enumerate() {
            builder = builder.master(
                master.name.clone(),
                master.generator(i).build_source(spec.seed + i as u64),
            );
        }
        if let Some(fault) = spec.fault {
            builder = builder.faults(fault);
        }
        if let Some(retry) = spec.retry {
            builder = builder.retry_policy(retry);
        }
        if let Some(timeout) = spec.timeout {
            builder = builder.timeout(timeout);
        }
        builder.arbiter(arbiter).build().expect("valid")
    }

    #[test]
    fn report_contains_every_master_and_totals() {
        let text = "arbiter = lottery\ncycles = 5000\nwarmup = 0\n\
                    master cpu weight=3 load=0.4 size=16\n\
                    master dsp weight=1 load=0.3 size=16\n";
        let spec = SimSpec::parse(text).expect("valid");
        let mut system = build_system(&spec, spec.build_arbiter().expect("builds"));
        system.run(spec.cycles);
        let report = render_report(&spec, system.stats());
        assert!(report.contains("cpu"));
        assert!(report.contains("dsp"));
        assert!(report.contains("bus utilization"));
        assert!(report.contains('#'), "bandwidth bars rendered");
        assert!(!report.contains("faults:"), "fault-free report has no fault section");
        assert!(!report.contains("recovery:"), "fault-free report has no recovery section");
    }

    #[test]
    fn faulty_spec_report_shows_fault_section() {
        let text = "arbiter = lottery\ncycles = 5000\nwarmup = 0\n\
                    fault slave-error rate=0.2\n\
                    retry max=2 backoff=2x\n\
                    master cpu weight=3 load=0.4 size=16\n\
                    master dsp weight=1 load=0.3 size=16\n";
        let spec = SimSpec::parse(text).expect("valid");
        let mut system = build_system(&spec, spec.build_arbiter().expect("builds"));
        system.run(spec.cycles);
        let stats = system.stats();
        assert!(stats.slave_errors > 0, "rate 0.2 over 5000 cycles injects errors");
        let report = render_report(&spec, stats);
        assert!(report.contains(&format!("{} slave errors", stats.slave_errors)));
        assert!(report.contains(&format!("{} retries", stats.retries)));
    }

    /// End-to-end failover demo: a deliberately wedged primary trips the
    /// failover, the system keeps making progress on the backup, and the
    /// failover count appears in the rendered report.
    #[test]
    fn wedged_primary_failover_appears_in_report() {
        /// Grants normally for 100 cycles, then never again.
        struct WedgeAfter100(StaticPriorityArbiter);
        impl Arbiter for WedgeAfter100 {
            fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
                (now.index() < 100).then(|| self.0.arbitrate(requests, now)).flatten()
            }
            fn name(&self) -> &str {
                "wedging"
            }
        }

        let text = "cycles = 5000\nwarmup = 0\nfailover = 16\n\
                    master cpu weight=2 load=0.4 size=16\n\
                    master dsp weight=1 load=0.3 size=16\n";
        let spec = SimSpec::parse(text).expect("valid");
        let primary =
            Box::new(WedgeAfter100(StaticPriorityArbiter::new(vec![2, 1]).expect("valid")));
        let arbiter = FailoverArbiter::with_patience(
            primary,
            spec.masters.len(),
            spec.failover.expect("failover configured"),
        )
        .expect("valid");
        let mut system = build_system(&spec, Box::new(arbiter));
        system.run(spec.cycles);
        let stats = system.stats();
        assert_eq!(stats.failovers, 1, "wedged primary tripped the failover");
        assert!(
            stats.grants > 200,
            "system kept progressing on the backup ({} grants)",
            stats.grants
        );
        let report = render_report(&spec, stats);
        assert!(report.contains("1 failovers"), "failover count rendered:\n{report}");
    }
}
