//! Rendering simulation results for the terminal.

use crate::spec::SimSpec;
use socsim::{BusStats, MasterId};

/// Renders the end-of-run report: one row per master plus totals, with
/// an ASCII bandwidth bar.
pub fn render_report(spec: &SimSpec, stats: &BusStats) -> String {
    let mut out = String::new();
    let total_weight: u32 = spec.masters.iter().map(|m| m.weight).sum();
    out.push_str(&format!(
        "{:<10} {:>6} {:>9} {:>9} {:>12} {:>10}  bandwidth\n",
        "master", "weight", "entitled", "measured", "cyc/word", "p99 lat"
    ));
    for (i, master) in spec.masters.iter().enumerate() {
        let id = MasterId::new(i);
        let m = stats.master(id);
        let share = stats.bandwidth_fraction(id);
        let entitled = f64::from(master.weight) / f64::from(total_weight.max(1));
        let bar_len = (share * 40.0).round() as usize;
        out.push_str(&format!(
            "{:<10} {:>6} {:>8.1}% {:>8.1}% {:>12} {:>10}  {}\n",
            master.name,
            master.weight,
            entitled * 100.0,
            share * 100.0,
            m.cycles_per_word().map_or("-".into(), |v| format!("{v:.2}")),
            m.latency_quantile(0.99).map_or("-".into(), |v| format!("<{v}")),
            "#".repeat(bar_len),
        ));
    }
    out.push_str(&format!(
        "bus utilization {:.1}%  ({} grants over {} cycles)\n",
        stats.bus_utilization() * 100.0,
        stats.grants,
        stats.cycles,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SimSpec;
    use socsim::SystemBuilder;

    #[test]
    fn report_contains_every_master_and_totals() {
        let text = "arbiter = lottery\ncycles = 5000\nwarmup = 0\n\
                    master cpu weight=3 load=0.4 size=16\n\
                    master dsp weight=1 load=0.3 size=16\n";
        let spec = SimSpec::parse(text).expect("valid");
        let mut builder = SystemBuilder::new(spec.bus_config());
        for (i, master) in spec.masters.iter().enumerate() {
            builder = builder.master(
                master.name.clone(),
                master.generator(i).build_source(spec.seed + i as u64),
            );
        }
        let mut system =
            builder.arbiter(spec.build_arbiter().expect("builds")).build().expect("valid");
        system.run(spec.cycles);
        let report = render_report(&spec, system.stats());
        assert!(report.contains("cpu"));
        assert!(report.contains("dsp"));
        assert!(report.contains("bus utilization"));
        assert!(report.contains('#'), "bandwidth bars rendered");
    }
}
