//! Rendering simulation results for the terminal.

use crate::spec::SimSpec;
use socsim::{BusStats, MasterId, WindowSample};

/// Renders the end-of-run report: one row per master plus totals, with
/// an ASCII bandwidth bar.
pub fn render_report(spec: &SimSpec, stats: &BusStats) -> String {
    let mut out = String::new();
    let total_weight: u32 = spec.masters.iter().map(|m| m.weight).sum();
    out.push_str(&format!(
        "{:<10} {:>6} {:>9} {:>9} {:>12} {:>10}  bandwidth\n",
        "master", "weight", "entitled", "measured", "cyc/word", "p99 lat"
    ));
    for (i, master) in spec.masters.iter().enumerate() {
        let id = MasterId::new(i);
        let m = stats.master(id);
        let share = stats.bandwidth_fraction(id);
        let entitled = f64::from(master.weight) / f64::from(total_weight.max(1));
        let bar_len = (share * 40.0).round() as usize;
        out.push_str(&format!(
            "{:<10} {:>6} {:>8.1}% {:>8.1}% {:>12} {:>10}  {}\n",
            master.name,
            master.weight,
            entitled * 100.0,
            share * 100.0,
            m.cycles_per_word().map_or("-".into(), |v| format!("{v:.2}")),
            m.latency_quantile(0.99).map_or("-".into(), |v| format!("<{v}")),
            "#".repeat(bar_len),
        ));
    }
    out.push_str(&format!(
        "bus utilization {:.1}%  ({} grants over {} cycles)\n",
        stats.bus_utilization() * 100.0,
        stats.grants,
        stats.cycles,
    ));
    // Only specs that opt into fault machinery get the fault section;
    // fault-free specs render byte-identically to earlier versions.
    if spec.has_fault_machinery() {
        out.push_str(&format!(
            "faults: {} slave errors, {} dropped grants, {} corrupted grants\n",
            stats.slave_errors, stats.dropped_grants, stats.corrupted_grants,
        ));
        out.push_str(&format!(
            "recovery: {} retries, {} timeouts, {} aborted, {} failovers\n",
            stats.retries, stats.timeouts, stats.aborted_transactions, stats.failovers,
        ));
    }
    out
}

/// Renders the windowed-metrics section (`metrics window=<n>` in the
/// spec): the per-window utilization range plus, per master, the range
/// of its within-window bandwidth share and a sparkline of that share
/// over time (downsampled to at most 50 characters). Starvation that
/// an end-of-run average hides — a master that gets nothing for long
/// stretches — is visible here as blank runs in the sparkline.
pub fn render_metrics(spec: &SimSpec, window: u64, samples: &[WindowSample]) -> String {
    let mut out = format!("\nwindowed metrics ({} windows of {} cycles):\n", samples.len(), window);
    if samples.is_empty() {
        out.push_str("  (no complete windows)\n");
        return out;
    }
    let utils: Vec<f64> = samples.iter().map(WindowSample::utilization).collect();
    let (lo, hi) = min_max(&utils);
    out.push_str(&format!(
        "bus utilization mean {:.1}% (window range {:.1}%..{:.1}%)\n",
        mean(&utils) * 100.0,
        lo * 100.0,
        hi * 100.0,
    ));
    out.push_str(&format!(
        "{:<10} {:>9} {:>16}  share per window\n",
        "master", "mean bw", "bw min..max"
    ));
    for (i, master) in spec.masters.iter().enumerate() {
        let shares: Vec<f64> = samples.iter().map(|s| s.bandwidth_share(i)).collect();
        let (lo, hi) = min_max(&shares);
        out.push_str(&format!(
            "{:<10} {:>8.1}% {:>6.1}%..{:>6.1}%  [{}]\n",
            master.name,
            mean(&shares) * 100.0,
            lo * 100.0,
            hi * 100.0,
            sparkline(&shares),
        ));
    }
    out
}

/// A fixed-alphabet sparkline of `values` scaled to their maximum,
/// downsampled by averaging to at most 50 characters.
fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let stride = values.len().div_ceil(50).max(1);
    let max = values.iter().fold(0.0_f64, |m, &v| m.max(v));
    values
        .chunks(stride)
        .map(|chunk| {
            let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
            if max <= 0.0 {
                return LEVELS[0];
            }
            let level = (avg / max * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[level.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// Renders the cross-replica aggregate section: per-master mean ±
/// spread of bandwidth share and latency over all replica runs, plus
/// utilization statistics. Appended after the replica-0 report when the
/// spec requests `replicas > 1`.
pub fn render_replica_summary(spec: &SimSpec, runs: &[BusStats]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\nreplica aggregate over {} runs (derived seeds):\n", runs.len()));
    out.push_str(&format!(
        "{:<10} {:>12} {:>18} {:>16}\n",
        "master", "mean bw", "bw min..max", "mean cyc/word"
    ));
    for (i, master) in spec.masters.iter().enumerate() {
        let id = MasterId::new(i);
        let shares: Vec<f64> = runs.iter().map(|s| s.bandwidth_fraction(id)).collect();
        let (lo, hi) = min_max(&shares);
        let latencies: Vec<f64> =
            runs.iter().filter_map(|s| s.master(id).cycles_per_word()).collect();
        let lat =
            if latencies.is_empty() { "-".to_owned() } else { format!("{:.2}", mean(&latencies)) };
        out.push_str(&format!(
            "{:<10} {:>11.1}% {:>8.1}%..{:>6.1}% {:>16}\n",
            master.name,
            mean(&shares) * 100.0,
            lo * 100.0,
            hi * 100.0,
            lat,
        ));
    }
    let utils: Vec<f64> = runs.iter().map(BusStats::bus_utilization).collect();
    let (lo, hi) = min_max(&utils);
    out.push_str(&format!(
        "bus utilization mean {:.1}% (range {:.1}%..{:.1}%)\n",
        mean(&utils) * 100.0,
        lo * 100.0,
        hi * 100.0,
    ));
    out
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

fn min_max(values: &[f64]) -> (f64, f64) {
    values.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SimSpec;
    use arbiters::{FailoverArbiter, StaticPriorityArbiter};
    use socsim::{Arbiter, Cycle, Grant, RequestMap, System, SystemBuilder};

    fn build_system<A: Arbiter>(spec: &SimSpec, arbiter: A) -> System<A> {
        let mut builder = SystemBuilder::new(spec.bus_config());
        for (i, master) in spec.masters.iter().enumerate() {
            builder = builder.master(
                master.name.clone(),
                master.generator(i).build_source(spec.seed + i as u64),
            );
        }
        if let Some(fault) = spec.fault {
            builder = builder.faults(fault);
        }
        if let Some(retry) = spec.retry {
            builder = builder.retry_policy(retry);
        }
        if let Some(timeout) = spec.timeout {
            builder = builder.timeout(timeout);
        }
        builder.arbiter(arbiter).build().expect("valid")
    }

    #[test]
    fn report_contains_every_master_and_totals() {
        let text = "arbiter = lottery\ncycles = 5000\nwarmup = 0\n\
                    master cpu weight=3 load=0.4 size=16\n\
                    master dsp weight=1 load=0.3 size=16\n";
        let spec = SimSpec::parse(text).expect("valid");
        let mut system = build_system(&spec, spec.build_arbiter().expect("builds"));
        system.run(spec.cycles);
        let report = render_report(&spec, system.stats());
        assert!(report.contains("cpu"));
        assert!(report.contains("dsp"));
        assert!(report.contains("bus utilization"));
        assert!(report.contains('#'), "bandwidth bars rendered");
        assert!(!report.contains("faults:"), "fault-free report has no fault section");
        assert!(!report.contains("recovery:"), "fault-free report has no recovery section");
    }

    #[test]
    fn faulty_spec_report_shows_fault_section() {
        let text = "arbiter = lottery\ncycles = 5000\nwarmup = 0\n\
                    fault slave-error rate=0.2\n\
                    retry max=2 backoff=2x\n\
                    master cpu weight=3 load=0.4 size=16\n\
                    master dsp weight=1 load=0.3 size=16\n";
        let spec = SimSpec::parse(text).expect("valid");
        let mut system = build_system(&spec, spec.build_arbiter().expect("builds"));
        system.run(spec.cycles);
        let stats = system.stats();
        assert!(stats.slave_errors > 0, "rate 0.2 over 5000 cycles injects errors");
        let report = render_report(&spec, stats);
        assert!(report.contains(&format!("{} slave errors", stats.slave_errors)));
        assert!(report.contains(&format!("{} retries", stats.retries)));
    }

    #[test]
    fn replica_summary_aggregates_across_runs() {
        let text = "arbiter = lottery\ncycles = 4000\nwarmup = 0\nreplicas = 3\n\
                    master cpu weight=3 load=0.4 size=16\n\
                    master dsp weight=1 load=0.3 size=16\n";
        let spec = SimSpec::parse(text).expect("valid");
        let runs: Vec<socsim::BusStats> = (0..spec.replicas)
            .map(|r| {
                let rspec = spec.replica(r);
                let mut system = build_system(&rspec, rspec.build_arbiter().expect("builds"));
                system.run(rspec.cycles);
                system.stats().clone()
            })
            .collect();
        let summary = render_replica_summary(&spec, &runs);
        assert!(summary.contains("replica aggregate over 3 runs"), "{summary}");
        assert!(summary.contains("cpu"));
        assert!(summary.contains("dsp"));
        assert!(summary.contains("bus utilization mean"));
    }

    #[test]
    fn metrics_section_shows_windows_and_sparklines() {
        let text = "arbiter = priority\ncycles = 10000\nwarmup = 0\nmetrics window=1000\n\
                    master cpu weight=2 load=0.9 size=16\n\
                    master dsp weight=1 load=0.9 size=16\n";
        let spec = SimSpec::parse(text).expect("valid");
        let mut builder = SystemBuilder::new(spec.bus_config());
        for (i, master) in spec.masters.iter().enumerate() {
            builder = builder.master(
                master.name.clone(),
                master.generator(i).build_source(spec.seed + i as u64),
            );
        }
        let mut system = builder
            .metrics_window(spec.metrics.expect("metrics configured"))
            .arbiter(spec.build_arbiter().expect("builds"))
            .build()
            .expect("valid");
        system.run(spec.cycles);
        system.flush_metrics();
        let samples = system.metrics().expect("metrics on").samples().to_vec();
        assert_eq!(samples.len(), 10);
        let section = render_metrics(&spec, 1000, &samples);
        assert!(section.contains("windowed metrics (10 windows of 1000 cycles)"), "{section}");
        assert!(section.contains("cpu"), "{section}");
        assert!(section.contains("dsp"), "{section}");
        assert!(section.contains("bus utilization mean"), "{section}");
        // Sparklines render one row per master; scaling by the row
        // maximum guarantees at least one full-height character.
        let sparks: Vec<&str> = section.lines().filter(|l| l.contains('[')).collect();
        assert_eq!(sparks.len(), 2, "{section}");
        for line in sparks {
            assert!(line.contains('#'), "{line}");
        }
    }

    #[test]
    fn empty_metrics_section_is_explicit() {
        let spec = SimSpec::parse("master m load=0.1\n").expect("valid");
        let section = render_metrics(&spec, 500, &[]);
        assert!(section.contains("(no complete windows)"), "{section}");
    }

    /// End-to-end failover demo: a deliberately wedged primary trips the
    /// failover, the system keeps making progress on the backup, and the
    /// failover count appears in the rendered report.
    #[test]
    fn wedged_primary_failover_appears_in_report() {
        /// Grants normally for 100 cycles, then never again.
        struct WedgeAfter100(StaticPriorityArbiter);
        impl Arbiter for WedgeAfter100 {
            fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
                (now.index() < 100).then(|| self.0.arbitrate(requests, now)).flatten()
            }
            fn name(&self) -> &str {
                "wedging"
            }
        }

        let text = "cycles = 5000\nwarmup = 0\nfailover = 16\n\
                    master cpu weight=2 load=0.4 size=16\n\
                    master dsp weight=1 load=0.3 size=16\n";
        let spec = SimSpec::parse(text).expect("valid");
        let primary =
            Box::new(WedgeAfter100(StaticPriorityArbiter::new(vec![2, 1]).expect("valid")));
        let arbiter = FailoverArbiter::with_patience(
            primary,
            spec.masters.len(),
            spec.failover.expect("failover configured"),
        )
        .expect("valid");
        let mut system = build_system(&spec, arbiter);
        system.run(spec.cycles);
        let stats = system.stats();
        assert_eq!(stats.failovers, 1, "wedged primary tripped the failover");
        assert!(
            stats.grants > 200,
            "system kept progressing on the backup ({} grants)",
            stats.grants
        );
        let report = render_report(&spec, stats);
        assert!(report.contains("1 failovers"), "failover count rendered:\n{report}");
    }
}
