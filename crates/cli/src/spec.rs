//! The plain-text simulation spec and its parser.

use arbiters::ArbiterKind as ArbiterDispatch;
use arbiters::{
    FailoverArbiter, RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter, TokenRingArbiter,
    WheelLayout,
};
use lotterybus::{DynamicLotteryArbiter, StaticLotteryArbiter, TicketAssignment};
use socsim::{BusConfig, FaultConfig, RetryPolicy};
use std::error::Error;
use std::fmt;
use traffic_gen::{GeneratorSpec, SizeDist};

/// Which arbitration protocol the spec selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterKind {
    /// Static lottery manager (`lottery`).
    Lottery,
    /// Dynamic lottery manager (`lottery-dynamic`).
    LotteryDynamic,
    /// Static priority (`priority`); weights must be unique.
    Priority,
    /// Two-level TDMA (`tdma`); weights become slot counts.
    Tdma,
    /// Round robin (`rr`); weights are ignored.
    RoundRobin,
    /// Token ring (`token`); weights are ignored.
    TokenRing,
}

impl ArbiterKind {
    fn parse(word: &str) -> Option<Self> {
        Some(match word {
            "lottery" => ArbiterKind::Lottery,
            "lottery-dynamic" => ArbiterKind::LotteryDynamic,
            "priority" => ArbiterKind::Priority,
            "tdma" => ArbiterKind::Tdma,
            "rr" | "round-robin" => ArbiterKind::RoundRobin,
            "token" | "token-ring" => ArbiterKind::TokenRing,
            _ => return None,
        })
    }

    /// The spec keyword for this protocol.
    pub fn keyword(self) -> &'static str {
        match self {
            ArbiterKind::Lottery => "lottery",
            ArbiterKind::LotteryDynamic => "lottery-dynamic",
            ArbiterKind::Priority => "priority",
            ArbiterKind::Tdma => "tdma",
            ArbiterKind::RoundRobin => "rr",
            ArbiterKind::TokenRing => "token",
        }
    }
}

/// Which simulation kernel the spec selects
/// (`kernel = cycle|fast|tlm`).
///
/// `cycle` and `fast` produce byte-identical reports; `fast` skips
/// provably idle spans (see `socsim::fastforward`) and only changes
/// wall-clock time. `tlm` additionally batches whole bus tenures into
/// single events: exact for catch-up arrival processes (periodic,
/// on/off) but a bounded approximation for memoryless (Bernoulli)
/// arrivals, whose thinning against a busy bus differs when polls are
/// deferred. The report never mentions the kernel, so outputs stay
/// diffable wherever the kernels agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Step every cycle (the reference kernel).
    #[default]
    Cycle,
    /// Fast-forward across provably idle spans.
    Fast,
    /// Transaction-level: idle skips plus whole-tenure batching.
    Tlm,
}

impl KernelKind {
    fn parse(word: &str) -> Option<Self> {
        Some(match word {
            "cycle" => KernelKind::Cycle,
            "fast" => KernelKind::Fast,
            "tlm" => KernelKind::Tlm,
            _ => return None,
        })
    }

    /// Whether this kernel runs with fast-forward enabled.
    pub fn is_fast(self) -> bool {
        self != KernelKind::Cycle
    }

    /// The `socsim` kernel this spec keyword selects.
    pub fn to_kernel(self) -> socsim::Kernel {
        match self {
            KernelKind::Cycle => socsim::Kernel::Cycle,
            KernelKind::Fast => socsim::Kernel::Fast,
            KernelKind::Tlm => socsim::Kernel::Tlm,
        }
    }
}

/// One `master` line of the spec.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterSpec {
    /// Component name.
    pub name: String,
    /// Arbiter weight (tickets / priority / slots).
    pub weight: u32,
    /// Offered load in words per cycle.
    pub load: f64,
    /// Message size in words.
    pub size: u32,
    /// Arrival process keyword: `""` (memoryless), `"burst"`, `"periodic"`.
    pub arrival: String,
}

impl MasterSpec {
    /// The traffic generator this master line describes.
    pub fn generator(&self, index: usize) -> GeneratorSpec {
        let size = SizeDist::fixed(self.size);
        match self.arrival.as_str() {
            "periodic" => {
                let period = (f64::from(self.size) / self.load).round().max(1.0) as u64;
                GeneratorSpec::periodic(period, 3 * index as u64, size)
            }
            "burst" => {
                // Trains of ~4 messages with off periods sized for the load.
                let words_per_train = 4.0 * f64::from(self.size);
                let off = (words_per_train / self.load - 1.0).max(1.0);
                GeneratorSpec::bursty(
                    2,
                    6,
                    0,
                    (off * 0.5) as u64,
                    (off * 1.5) as u64,
                    7 * index as u64,
                    size,
                )
            }
            _ => GeneratorSpec::poisson(self.load / f64::from(self.size), size),
        }
    }
}

/// A streaming trace destination from the spec's `trace sink=` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSinkSpec {
    /// `jsonl:<path>` — one JSON object per trace event, streamed to
    /// the file as the simulation runs (never truncated).
    Jsonl(String),
    /// `vcd:<path>` — a VCD waveform streamed to the file as the
    /// simulation runs (unlike `--vcd`, which buffers events first).
    Vcd(String),
}

impl TraceSinkSpec {
    /// The destination path.
    pub fn path(&self) -> &str {
        match self {
            TraceSinkSpec::Jsonl(path) | TraceSinkSpec::Vcd(path) => path,
        }
    }
}

/// A parsed simulation spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// Selected protocol.
    pub arbiter: ArbiterKind,
    /// Maximum burst size.
    pub burst: u32,
    /// Measured cycles.
    pub cycles: u64,
    /// Warm-up cycles.
    pub warmup: u64,
    /// Seed for generators and the lottery.
    pub seed: u64,
    /// TDMA slots per weight unit.
    pub tdma_block: u32,
    /// Fault-injection rates, if any `fault` line appeared. The plan
    /// seed is the spec's `seed`.
    pub fault: Option<FaultConfig>,
    /// Retry policy from a `retry` line.
    pub retry: Option<RetryPolicy>,
    /// Watchdog timeout in cycles from a `timeout` line.
    pub timeout: Option<u64>,
    /// Failover patience in cycles from a `failover` line; when set the
    /// selected arbiter is wrapped in a [`FailoverArbiter`].
    pub failover: Option<u64>,
    /// Independent replica runs with derived seeds (`replicas` key,
    /// default 1). Replica 0 uses the spec seed unchanged, so a
    /// single-replica run is byte-identical to earlier versions.
    pub replicas: u32,
    /// Worker threads for replica fan-out (`jobs` key; `0` = all
    /// available cores). Never affects results, only wall-clock time.
    pub jobs: usize,
    /// Windowed-metrics window length in cycles, from a
    /// `metrics window=<n>` line; when set the report gains a windowed
    /// metrics section. Metrics never change results.
    pub metrics: Option<u64>,
    /// Streaming trace destination from a `trace sink=<kind>:<path>`
    /// line; requires `replicas = 1`.
    pub trace_sink: Option<TraceSinkSpec>,
    /// Simulation kernel from a `kernel = cycle|fast|tlm` line
    /// (default `cycle`). `cycle` and `fast` never affect results;
    /// `tlm` is exact except under memoryless arrivals (see
    /// [`KernelKind`]).
    pub kernel: KernelKind,
    /// The masters, in declaration order.
    pub masters: Vec<MasterSpec>,
}

impl Default for SimSpec {
    fn default() -> Self {
        SimSpec {
            arbiter: ArbiterKind::Lottery,
            burst: 16,
            cycles: 200_000,
            warmup: 20_000,
            seed: 7,
            tdma_block: 6,
            fault: None,
            retry: None,
            timeout: None,
            failover: None,
            replicas: 1,
            jobs: 0,
            metrics: None,
            trace_sink: None,
            kernel: KernelKind::Cycle,
            masters: Vec::new(),
        }
    }
}

/// Error produced when a spec cannot be parsed or realized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// 1-based line of the offending input (0 for whole-spec errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "spec error: {}", self.message)
        } else {
            write!(f, "spec error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseSpecError {}

fn err(line: usize, message: impl Into<String>) -> ParseSpecError {
    ParseSpecError { line, message: message.into() }
}

impl SimSpec {
    /// Parses a spec from its text form.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or semantic problem with its line number.
    pub fn parse(text: &str) -> Result<SimSpec, ParseSpecError> {
        let mut spec = SimSpec::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("master ") {
                spec.masters.push(parse_master(line_no, rest)?);
                continue;
            }
            if let Some(rest) = line.strip_prefix("fault ") {
                parse_fault(line_no, rest, spec.fault.get_or_insert_with(FaultConfig::default))?;
                continue;
            }
            if let Some(rest) = line.strip_prefix("retry ") {
                spec.retry = Some(parse_retry(line_no, rest)?);
                continue;
            }
            if let Some(rest) = line.strip_prefix("metrics ") {
                spec.metrics = Some(parse_metrics(line_no, rest)?);
                continue;
            }
            if let Some(rest) = line.strip_prefix("trace ") {
                spec.trace_sink = Some(parse_trace(line_no, rest)?);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(line_no, format!("expected `key = value`, got `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "arbiter" => {
                    spec.arbiter = ArbiterKind::parse(value).ok_or_else(|| {
                        err(
                            line_no,
                            format!(
                                "unknown arbiter `{value}` (expected lottery, lottery-dynamic, \
                                 priority, tdma, rr, or token)"
                            ),
                        )
                    })?;
                }
                "burst" => spec.burst = parse_num(line_no, key, value)?,
                "cycles" => spec.cycles = parse_num(line_no, key, value)?,
                "warmup" => spec.warmup = parse_num(line_no, key, value)?,
                "seed" => spec.seed = parse_num(line_no, key, value)?,
                "tdma-block" => spec.tdma_block = parse_num(line_no, key, value)?,
                "timeout" => spec.timeout = Some(parse_num(line_no, key, value)?),
                "failover" => spec.failover = Some(parse_num(line_no, key, value)?),
                "replicas" => spec.replicas = parse_num(line_no, key, value)?,
                "jobs" => spec.jobs = parse_num(line_no, key, value)?,
                "kernel" => {
                    spec.kernel = KernelKind::parse(value).ok_or_else(|| {
                        err(
                            line_no,
                            format!("unknown kernel `{value}` (expected cycle, fast, or tlm)"),
                        )
                    })?;
                }
                _ => {
                    return Err(err(
                        line_no,
                        format!(
                            "unknown key `{key}` (expected arbiter, burst, cycles, warmup, seed, \
                             tdma-block, timeout, failover, replicas, jobs, or kernel — or a \
                             `master`, `fault`, `retry`, `metrics`, or `trace` line)"
                        ),
                    ))
                }
            }
        }
        if spec.masters.is_empty() {
            return Err(err(0, "spec declares no masters"));
        }
        if spec.burst == 0 {
            return Err(err(0, "burst must be at least 1"));
        }
        // The fault plan is keyed on the spec seed regardless of the
        // order of `seed` and `fault` lines.
        if let Some(fault) = &mut spec.fault {
            fault.seed = spec.seed;
            fault.validate().map_err(|msg| err(0, msg))?;
        }
        if spec.timeout == Some(0) {
            return Err(err(0, "timeout must be at least 1 cycle"));
        }
        if spec.failover == Some(0) {
            return Err(err(0, "failover patience must be at least 1 cycle"));
        }
        if spec.replicas == 0 {
            return Err(err(0, "replicas must be at least 1"));
        }
        if spec.trace_sink.is_some() && spec.replicas > 1 {
            return Err(err(
                0,
                "`trace sink=` writes one file and therefore requires `replicas = 1`",
            ));
        }
        Ok(spec)
    }

    /// The spec for replica `r`: identical except that the seed (and the
    /// fault-plan seed with it) is re-derived per replica, so replicas
    /// sample independent traffic and fault streams. Replica 0 keeps
    /// the spec seed unchanged and therefore reproduces a
    /// single-replica run exactly.
    pub fn replica(&self, r: u32) -> SimSpec {
        let mut spec = self.clone();
        spec.seed = self.seed.wrapping_add(u64::from(r).wrapping_mul(0x9E37_79B9_97F4_A7C5));
        if let Some(fault) = &mut spec.fault {
            fault.seed = spec.seed;
        }
        spec
    }

    /// Whether the spec configures any fault-injection or recovery
    /// machinery (and the report should show the fault section).
    pub fn has_fault_machinery(&self) -> bool {
        self.fault.is_some()
            || self.retry.is_some()
            || self.timeout.is_some()
            || self.failover.is_some()
    }

    /// Builds the arbiter the spec selects, as the enum-dispatched
    /// [`arbiters::ArbiterKind`] so the simulator's hot loop arbitrates
    /// through a direct call instead of a `Box<dyn Arbiter>` vtable hop.
    ///
    /// # Errors
    ///
    /// Returns an error if the weights are invalid for the protocol
    /// (e.g. duplicate priorities).
    pub fn build_arbiter(&self) -> Result<ArbiterDispatch, ParseSpecError> {
        let weights: Vec<u32> = self.masters.iter().map(|m| m.weight).collect();
        let fail = |e: &dyn fmt::Display| err(0, format!("cannot build arbiter: {e}"));
        let primary: ArbiterDispatch = match self.arbiter {
            ArbiterKind::Lottery => {
                let tickets = TicketAssignment::new(weights).map_err(|e| fail(&e))?;
                StaticLotteryArbiter::with_seed(tickets, self.seed as u32 | 1)
                    .map_err(|e| fail(&e))?
                    .into()
            }
            ArbiterKind::LotteryDynamic => {
                let tickets = TicketAssignment::new(weights).map_err(|e| fail(&e))?;
                DynamicLotteryArbiter::with_seed(tickets, self.seed as u32 | 1)
                    .map_err(|e| fail(&e))?
                    .into()
            }
            ArbiterKind::Priority => {
                StaticPriorityArbiter::new(weights).map_err(|e| fail(&e))?.into()
            }
            ArbiterKind::Tdma => {
                let slots: Vec<u32> = weights.iter().map(|w| w * self.tdma_block).collect();
                TdmaArbiter::new(&slots, WheelLayout::Contiguous).map_err(|e| fail(&e))?.into()
            }
            ArbiterKind::RoundRobin => {
                RoundRobinArbiter::new(self.masters.len()).map_err(|e| fail(&e))?.into()
            }
            ArbiterKind::TokenRing => {
                TokenRingArbiter::new(self.masters.len()).map_err(|e| fail(&e))?.into()
            }
        };
        Ok(match self.failover {
            Some(patience) => {
                FailoverArbiter::with_patience(Box::new(primary), self.masters.len(), patience)
                    .map_err(|e| fail(&e))?
                    .into()
            }
            None => primary,
        })
    }

    /// The bus configuration the spec selects.
    pub fn bus_config(&self) -> BusConfig {
        BusConfig { max_burst: self.burst, ..BusConfig::default() }
    }
}

fn parse_num<T: std::str::FromStr>(
    line: usize,
    key: &str,
    value: &str,
) -> Result<T, ParseSpecError> {
    value.parse().map_err(|_| err(line, format!("invalid number for `{key}`: `{value}`")))
}

/// Parses a `fault <class> rate=<r> [duration=<d>] [max=<m>]` line into
/// the accumulating config. Classes may repeat; the last rate wins.
fn parse_fault(line: usize, rest: &str, fault: &mut FaultConfig) -> Result<(), ParseSpecError> {
    let mut words = rest.split_whitespace();
    let class = words.next().ok_or_else(|| err(line, "fault line needs a class"))?;
    let mut rate: Option<f64> = None;
    let mut duration: Option<u32> = None;
    let mut max: Option<u32> = None;
    for word in words {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected `key=value`, got `{word}`")))?;
        match key {
            "rate" => rate = Some(parse_num(line, key, value)?),
            "duration" => duration = Some(parse_num(line, key, value)?),
            "max" => max = Some(parse_num(line, key, value)?),
            _ => {
                return Err(err(
                    line,
                    format!("unknown fault key `{key}` (expected rate=, duration=, or max=)"),
                ))
            }
        }
    }
    let rate = rate.ok_or_else(|| err(line, format!("fault {class} needs a `rate=`")))?;
    match class {
        "slave-error" => fault.slave_error_rate = rate,
        "slave-outage" => {
            fault.slave_outage_rate = rate;
            if let Some(d) = duration {
                fault.slave_outage_duration = d;
            }
        }
        "grant-drop" => fault.grant_drop_rate = rate,
        "grant-corrupt" => fault.grant_corrupt_rate = rate,
        "master-stall" => {
            fault.master_stall_rate = rate;
            if let Some(m) = max {
                fault.master_stall_max = m;
            }
        }
        _ => {
            return Err(err(
                line,
                format!(
                    "unknown fault class `{class}` (expected slave-error, slave-outage, \
                     grant-drop, grant-corrupt, or master-stall)"
                ),
            ))
        }
    }
    if duration.is_some() && class != "slave-outage" {
        return Err(err(line, format!("`duration=` only applies to slave-outage, not {class}")));
    }
    if max.is_some() && class != "master-stall" {
        return Err(err(line, format!("`max=` only applies to master-stall, not {class}")));
    }
    Ok(())
}

/// Parses a `metrics window=<cycles>` line.
fn parse_metrics(line: usize, rest: &str) -> Result<u64, ParseSpecError> {
    let mut window: Option<u64> = None;
    for word in rest.split_whitespace() {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected `key=value`, got `{word}`")))?;
        match key {
            "window" => window = Some(parse_num(line, key, value)?),
            _ => {
                return Err(err(
                    line,
                    format!("unknown metrics key `{key}` (expected window=<cycles>)"),
                ))
            }
        }
    }
    let window = window.ok_or_else(|| err(line, "metrics line needs a `window=`"))?;
    if window == 0 {
        return Err(err(line, "metrics window must be at least 1 cycle"));
    }
    Ok(window)
}

/// Parses a `trace sink=<kind>:<path>` line (`jsonl:` or `vcd:`).
fn parse_trace(line: usize, rest: &str) -> Result<TraceSinkSpec, ParseSpecError> {
    let mut sink: Option<TraceSinkSpec> = None;
    for word in rest.split_whitespace() {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected `key=value`, got `{word}`")))?;
        match key {
            "sink" => {
                let (kind, path) = value.split_once(':').ok_or_else(|| {
                    err(line, format!("expected `sink=<kind>:<path>`, got `sink={value}`"))
                })?;
                if path.is_empty() {
                    return Err(err(line, "trace sink needs a non-empty path"));
                }
                sink = Some(match kind {
                    "jsonl" => TraceSinkSpec::Jsonl(path.to_owned()),
                    "vcd" => TraceSinkSpec::Vcd(path.to_owned()),
                    _ => {
                        return Err(err(
                            line,
                            format!("unknown trace sink kind `{kind}` (expected jsonl or vcd)"),
                        ))
                    }
                });
            }
            _ => {
                return Err(err(
                    line,
                    format!("unknown trace key `{key}` (expected sink=<jsonl|vcd>:<path>)"),
                ))
            }
        }
    }
    sink.ok_or_else(|| err(line, "trace line needs a `sink=`"))
}

/// Parses a `retry max=<n> [backoff=<f>x] [base=<cycles>]` line.
fn parse_retry(line: usize, rest: &str) -> Result<RetryPolicy, ParseSpecError> {
    let mut policy = RetryPolicy { max_retries: 0, backoff_base: 1, backoff_factor: 2 };
    let mut saw_max = false;
    for word in rest.split_whitespace() {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected `key=value`, got `{word}`")))?;
        match key {
            "max" => {
                policy.max_retries = parse_num(line, key, value)?;
                saw_max = true;
            }
            "backoff" => {
                let factor = value.strip_suffix('x').unwrap_or(value);
                policy.backoff_factor = parse_num(line, key, factor)?;
            }
            "base" => policy.backoff_base = parse_num(line, key, value)?,
            _ => {
                return Err(err(
                    line,
                    format!("unknown retry key `{key}` (expected max=, backoff=, or base=)"),
                ))
            }
        }
    }
    if !saw_max {
        return Err(err(line, "retry line needs a `max=`"));
    }
    policy.validate().map_err(|msg| err(line, msg))?;
    Ok(policy)
}

fn parse_master(line: usize, rest: &str) -> Result<MasterSpec, ParseSpecError> {
    let mut words = rest.split_whitespace();
    let name = words.next().ok_or_else(|| err(line, "master line needs a name"))?.to_owned();
    let mut master = MasterSpec { name, weight: 1, load: 0.1, size: 16, arrival: String::new() };
    let mut saw_load = false;
    for word in words {
        if let Some((key, value)) = word.split_once('=') {
            match key {
                "weight" => master.weight = parse_num(line, key, value)?,
                "load" => {
                    master.load = parse_num(line, key, value)?;
                    saw_load = true;
                }
                "size" => master.size = parse_num(line, key, value)?,
                _ => {
                    return Err(err(
                        line,
                        format!("unknown master key `{key}` (expected weight=, load=, or size=)"),
                    ))
                }
            }
        } else if matches!(word, "burst" | "periodic" | "poisson") {
            master.arrival = if word == "poisson" { String::new() } else { word.to_owned() };
        } else {
            return Err(err(
                line,
                format!(
                    "unknown master token `{word}` (expected weight=, load=, size=, or an \
                     arrival keyword: burst, periodic, or poisson)"
                ),
            ));
        }
    }
    if master.size == 0 {
        return Err(err(line, "size must be at least 1"));
    }
    if !(0.0..=1.0).contains(&master.load) || master.load <= 0.0 {
        return Err(err(line, format!("load must be in (0, 1], got {}", master.load)));
    }
    let _ = saw_load;
    Ok(master)
}

#[cfg(test)]
mod tests {
    use super::*;
    use socsim::Arbiter;

    const SAMPLE: &str = "\n\
        # a comment\n\
        arbiter = lottery\n\
        burst = 8\n\
        cycles = 1000   # trailing comment\n\
        warmup = 100\n\
        master cpu weight=4 load=0.3 size=16\n\
        master dsp weight=2 load=0.2 size=16 burst\n\
        master dma weight=1 load=0.1 size=8 periodic\n";

    #[test]
    fn parses_a_full_spec() {
        let spec = SimSpec::parse(SAMPLE).expect("valid spec");
        assert_eq!(spec.arbiter, ArbiterKind::Lottery);
        assert_eq!(spec.burst, 8);
        assert_eq!(spec.cycles, 1000);
        assert_eq!(spec.masters.len(), 3);
        assert_eq!(spec.masters[0].name, "cpu");
        assert_eq!(spec.masters[0].weight, 4);
        assert_eq!(spec.masters[1].arrival, "burst");
        assert_eq!(spec.masters[2].size, 8);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = SimSpec::parse("arbiter = bogus\nmaster m weight=1 load=0.1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("bogus"));

        let e = SimSpec::parse("burst = x\nmaster m load=0.1").unwrap_err();
        assert_eq!(e.line, 1);

        let e = SimSpec::parse("master m load=2.0").unwrap_err();
        assert!(e.message.contains("load"));
    }

    #[test]
    fn replicas_and_jobs_keys_parse() {
        let text = "replicas = 5\njobs = 2\nmaster m load=0.1\n";
        let spec = SimSpec::parse(text).expect("valid");
        assert_eq!(spec.replicas, 5);
        assert_eq!(spec.jobs, 2);
        // Defaults: one replica, auto worker count.
        let spec = SimSpec::parse("master m load=0.1\n").expect("valid");
        assert_eq!(spec.replicas, 1);
        assert_eq!(spec.jobs, 0);
        let e = SimSpec::parse("replicas = 0\nmaster m load=0.1\n").unwrap_err();
        assert!(e.message.contains("replicas"), "{e}");
    }

    #[test]
    fn replica_zero_is_the_base_spec() {
        let text = "seed = 42\nfault slave-error rate=0.01\nmaster m load=0.1\n";
        let spec = SimSpec::parse(text).expect("valid");
        assert_eq!(spec.replica(0), spec);
        let r1 = spec.replica(1);
        assert_ne!(r1.seed, spec.seed);
        assert_eq!(r1.fault.expect("fault kept").seed, r1.seed, "fault plan re-keyed");
        // Distinct replicas draw distinct seeds.
        assert_ne!(spec.replica(1).seed, spec.replica(2).seed);
    }

    #[test]
    fn kernel_key_parses_and_defaults_to_cycle() {
        let spec = SimSpec::parse("kernel = fast\nmaster m load=0.1\n").expect("valid");
        assert_eq!(spec.kernel, KernelKind::Fast);
        assert!(spec.kernel.is_fast());
        assert_eq!(spec.kernel.to_kernel(), socsim::Kernel::Fast);

        let spec = SimSpec::parse("kernel = tlm\nmaster m load=0.1\n").expect("valid");
        assert_eq!(spec.kernel, KernelKind::Tlm);
        assert!(spec.kernel.is_fast());
        assert_eq!(spec.kernel.to_kernel(), socsim::Kernel::Tlm);

        let spec = SimSpec::parse("kernel = cycle\nmaster m load=0.1\n").expect("valid");
        assert_eq!(spec.kernel, KernelKind::Cycle);
        assert_eq!(spec.kernel.to_kernel(), socsim::Kernel::Cycle);

        let spec = SimSpec::parse("master m load=0.1\n").expect("valid");
        assert_eq!(spec.kernel, KernelKind::Cycle, "default is the reference kernel");

        let e = SimSpec::parse("kernel = warp\nmaster m load=0.1\n").unwrap_err();
        assert!(e.message.contains("unknown kernel"), "{e}");
        assert!(e.message.contains("tlm"), "error must list tlm: {e}");
    }

    #[test]
    fn empty_spec_rejected() {
        let e = SimSpec::parse("# nothing\n").unwrap_err();
        assert!(e.message.contains("no masters"));
    }

    #[test]
    fn every_arbiter_kind_builds() {
        for kind in ["lottery", "lottery-dynamic", "priority", "tdma", "rr", "token"] {
            let text = format!(
                "arbiter = {kind}\nmaster a weight=1 load=0.2 size=8\nmaster b weight=2 load=0.2 size=8\n"
            );
            let spec = SimSpec::parse(&text).expect("valid");
            assert!(spec.build_arbiter().is_ok(), "{kind}");
        }
    }

    #[test]
    fn duplicate_priorities_fail_at_build() {
        let text = "arbiter = priority\n\
                    master a weight=1 load=0.1\n\
                    master b weight=1 load=0.1\n";
        let spec = SimSpec::parse(text).expect("parses");
        assert!(spec.build_arbiter().is_err());
    }

    #[test]
    fn parses_fault_and_recovery_lines() {
        let text = "seed = 42\n\
                    fault slave-error rate=0.01\n\
                    fault slave-outage rate=0.001 duration=64\n\
                    fault master-stall rate=0.002 max=4\n\
                    retry max=4 backoff=2x base=2\n\
                    timeout = 256\n\
                    failover = 64\n\
                    master cpu weight=4 load=0.3 size=16\n";
        let spec = SimSpec::parse(text).expect("valid spec");
        let fault = spec.fault.expect("fault config present");
        assert_eq!(fault.seed, 42, "fault plan keyed on the spec seed");
        assert_eq!(fault.slave_error_rate, 0.01);
        assert_eq!(fault.slave_outage_rate, 0.001);
        assert_eq!(fault.slave_outage_duration, 64);
        assert_eq!(fault.master_stall_rate, 0.002);
        assert_eq!(fault.master_stall_max, 4);
        assert_eq!(fault.grant_drop_rate, 0.0);
        let retry = spec.retry.expect("retry policy present");
        assert_eq!(retry.max_retries, 4);
        assert_eq!(retry.backoff_factor, 2);
        assert_eq!(retry.backoff_base, 2);
        assert_eq!(spec.timeout, Some(256));
        assert_eq!(spec.failover, Some(64));
        assert!(spec.has_fault_machinery());
        assert!(spec.build_arbiter().expect("builds").name().starts_with("failover("));
    }

    #[test]
    fn fault_free_spec_has_no_machinery() {
        let spec = SimSpec::parse(SAMPLE).expect("valid spec");
        assert!(!spec.has_fault_machinery());
        assert_eq!(spec.build_arbiter().expect("builds").name(), "lottery-static");
    }

    #[test]
    fn fault_line_errors_are_specific() {
        let base = "master m load=0.1\n";
        let e = SimSpec::parse(&format!("fault bogus rate=0.1\n{base}")).unwrap_err();
        assert!(e.message.contains("unknown fault class"), "{e}");

        let e = SimSpec::parse(&format!("fault slave-error\n{base}")).unwrap_err();
        assert!(e.message.contains("needs a `rate=`"), "{e}");

        let e = SimSpec::parse(&format!("fault slave-error rate=1.5\n{base}")).unwrap_err();
        assert!(e.message.contains("[0, 1]"), "{e}");

        let e = SimSpec::parse(&format!("fault grant-drop rate=0.1 max=3\n{base}")).unwrap_err();
        assert!(e.message.contains("only applies to master-stall"), "{e}");

        let e = SimSpec::parse(&format!("retry backoff=2x\n{base}")).unwrap_err();
        assert!(e.message.contains("needs a `max=`"), "{e}");

        let e = SimSpec::parse(&format!("retry max=3 base=0\n{base}")).unwrap_err();
        assert!(e.message.contains("backoff base"), "{e}");

        let e = SimSpec::parse(&format!("timeout = 0\n{base}")).unwrap_err();
        assert!(e.message.contains("timeout"), "{e}");

        let e = SimSpec::parse(&format!("failover = 0\n{base}")).unwrap_err();
        assert!(e.message.contains("patience"), "{e}");
    }

    #[test]
    fn unknown_keys_name_themselves_and_the_accepted_values() {
        let base = "master m load=0.1\n";

        // Top-level key: names the key and lists the accepted ones.
        let e = SimSpec::parse(&format!("bandwith = 3\n{base}")).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("`bandwith`"), "{e}");
        assert!(e.message.contains("arbiter"), "{e}");
        assert!(e.message.contains("kernel"), "{e}");

        // Arbiter value: lists every protocol keyword.
        let e = SimSpec::parse(&format!("arbiter = fifo\n{base}")).unwrap_err();
        assert!(e.message.contains("`fifo`"), "{e}");
        for kind in ["lottery", "lottery-dynamic", "priority", "tdma", "rr", "token"] {
            assert!(e.message.contains(kind), "{e} should mention {kind}");
        }

        // Fault clause keys.
        let e = SimSpec::parse(&format!("fault slave-error rate=0.1 depth=2\n{base}")).unwrap_err();
        assert!(e.message.contains("`depth`"), "{e}");
        assert!(e.message.contains("rate="), "{e}");
        assert!(e.message.contains("duration="), "{e}");
        assert!(e.message.contains("max="), "{e}");

        // Metrics clause keys.
        let e = SimSpec::parse(&format!("metrics span=100\n{base}")).unwrap_err();
        assert!(e.message.contains("`span`"), "{e}");
        assert!(e.message.contains("window=<cycles>"), "{e}");

        // Trace clause keys.
        let e = SimSpec::parse(&format!("trace file=out.vcd\n{base}")).unwrap_err();
        assert!(e.message.contains("`file`"), "{e}");
        assert!(e.message.contains("sink=<jsonl|vcd>:<path>"), "{e}");

        // Retry clause keys.
        let e = SimSpec::parse(&format!("retry max=3 cap=9\n{base}")).unwrap_err();
        assert!(e.message.contains("`cap`"), "{e}");
        assert!(e.message.contains("backoff="), "{e}");

        // Master clause keys and bare tokens.
        let e = SimSpec::parse("master m load=0.1 prio=2\n").unwrap_err();
        assert!(e.message.contains("`prio`"), "{e}");
        assert!(e.message.contains("weight="), "{e}");
        let e = SimSpec::parse("master m load=0.1 bursty\n").unwrap_err();
        assert!(e.message.contains("`bursty`"), "{e}");
        assert!(e.message.contains("periodic"), "{e}");
    }

    #[test]
    fn malformed_clause_shapes_are_actionable() {
        let base = "master m load=0.1\n";

        // A fault line with a bare word instead of key=value.
        let e = SimSpec::parse(&format!("fault slave-error rate\n{base}")).unwrap_err();
        assert!(e.message.contains("expected `key=value`"), "{e}");
        assert_eq!(e.line, 1);

        // Numbers that do not parse name the key and the value.
        let e = SimSpec::parse(&format!("fault slave-error rate=lots\n{base}")).unwrap_err();
        assert!(e.message.contains("`rate`"), "{e}");
        assert!(e.message.contains("`lots`"), "{e}");

        // A metrics line with a malformed pair.
        let e = SimSpec::parse(&format!("metrics window=ten\n{base}")).unwrap_err();
        assert!(e.message.contains("`window`"), "{e}");

        // Errors on later lines carry the right line number.
        let e = SimSpec::parse(&format!("{base}seed = 3\ntrace path=x.vcd\n")).unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.message.contains("`path`"), "{e}");
    }

    #[test]
    fn metrics_and_trace_lines_parse() {
        let text = "metrics window=1000\n\
                    trace sink=jsonl:events.jsonl\n\
                    master m load=0.1\n";
        let spec = SimSpec::parse(text).expect("valid");
        assert_eq!(spec.metrics, Some(1000));
        assert_eq!(spec.trace_sink, Some(TraceSinkSpec::Jsonl("events.jsonl".into())));
        assert_eq!(spec.trace_sink.as_ref().unwrap().path(), "events.jsonl");

        let text = "trace sink=vcd:waves.vcd\nmaster m load=0.1\n";
        let spec = SimSpec::parse(text).expect("valid");
        assert_eq!(spec.trace_sink, Some(TraceSinkSpec::Vcd("waves.vcd".into())));

        // Defaults: both observability features off.
        let spec = SimSpec::parse("master m load=0.1\n").expect("valid");
        assert_eq!(spec.metrics, None);
        assert_eq!(spec.trace_sink, None);
    }

    #[test]
    fn metrics_and_trace_line_errors_are_specific() {
        let base = "master m load=0.1\n";
        let e = SimSpec::parse(&format!("metrics window=0\n{base}")).unwrap_err();
        assert!(e.message.contains("at least 1 cycle"), "{e}");

        let e = SimSpec::parse(&format!("metrics depth=3\n{base}")).unwrap_err();
        assert!(e.message.contains("unknown metrics key"), "{e}");

        let e = SimSpec::parse(&format!("metrics\n{base}")).unwrap_err();
        assert!(e.message.contains("expected `key = value`"), "{e}");

        let e = SimSpec::parse(&format!("trace sink=csv:out.csv\n{base}")).unwrap_err();
        assert!(e.message.contains("unknown trace sink kind"), "{e}");

        let e = SimSpec::parse(&format!("trace sink=jsonl\n{base}")).unwrap_err();
        assert!(e.message.contains("sink=<kind>:<path>"), "{e}");

        let e = SimSpec::parse(&format!("trace sink=jsonl:\n{base}")).unwrap_err();
        assert!(e.message.contains("non-empty path"), "{e}");

        let e =
            SimSpec::parse(&format!("trace sink=jsonl:a.jsonl\nreplicas = 2\n{base}")).unwrap_err();
        assert!(e.message.contains("replicas = 1"), "{e}");
    }

    #[test]
    fn generators_match_requested_loads() {
        let spec = SimSpec::parse(SAMPLE).expect("valid");
        for (i, master) in spec.masters.iter().enumerate() {
            let generator = master.generator(i);
            let load = generator.offered_load();
            assert!(
                (load - master.load).abs() < master.load * 0.25,
                "{}: generator load {load:.3} vs requested {:.3}",
                master.name,
                master.load,
            );
        }
    }
}
