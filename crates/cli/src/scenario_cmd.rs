//! The `scenario` and `fuzz` subcommands.
//!
//! `lotterybus-sim scenario <files-or-dirs>…` parses every `.scenario`
//! file (directories are expanded to their sorted `*.scenario`
//! entries), executes them as one dependency plan, and prints the
//! verdict JSON on stdout. The JSON is deterministic and contains no
//! kernel or wall-clock information, so CI diffs a `--kernel cycle`
//! run against a `--kernel fast` run byte for byte. Exit status is
//! success iff every scenario's verdict matched its `expect` line.
//!
//! `lotterybus-sim fuzz` runs the seeded scenario fuzzer and prints
//! its report JSON; `--out <dir>` additionally writes each finding's
//! shrunk minimal reproducer as a committable `.scenario` file.

use scenario::{fuzz, run_scenario_profiled, FuzzConfig, PlanReport, Scenario};
use socsim::Kernel;
use std::path::{Path, PathBuf};

/// How a subcommand failed: usage errors (bad flags) exit with status
/// 2, runtime failures (unreadable files, invalid scenarios) with 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandError {
    /// The command line itself is malformed.
    Usage(String),
    /// The command line parsed but the command could not run.
    Failure(String),
}

impl CommandError {
    /// The human-readable message, regardless of kind.
    pub fn message(&self) -> &str {
        match self {
            CommandError::Usage(m) | CommandError::Failure(m) => m,
        }
    }
}

/// Parsed flags of the `scenario` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioArgs {
    /// Files or directories to load scenarios from.
    pub paths: Vec<String>,
    /// Simulation kernel to run under.
    pub kernel: Kernel,
    /// Worker threads (0 = all cores).
    pub jobs: usize,
    /// Write a wall-clock bench report to this file.
    pub bench: Option<String>,
    /// Pack each plan level into one lockstep fleet (lane-exact, so
    /// output is byte-identical to the default path).
    pub fleet: bool,
}

/// Parses the arguments after `scenario`.
pub fn parse_scenario_args(args: &[String]) -> Result<ScenarioArgs, String> {
    let mut parsed = ScenarioArgs {
        paths: Vec::new(),
        kernel: Kernel::Cycle,
        jobs: 0,
        bench: None,
        fleet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kernel" => {
                let word = it.next().map(String::as_str).unwrap_or("nothing");
                parsed.kernel = Kernel::parse(word)
                    .ok_or(format!("`--kernel` must be `cycle`, `fast`, or `tlm`, got {word:?}"))?;
            }
            "--jobs" => {
                parsed.jobs =
                    it.next().and_then(|v| v.parse().ok()).ok_or("`--jobs` requires a number")?;
            }
            "--bench" => {
                parsed.bench = Some(it.next().ok_or("`--bench` requires a file argument")?.clone());
            }
            "--fleet" => parsed.fleet = true,
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown scenario flag `{flag}`: expected --kernel, --jobs, --bench or --fleet"
                ))
            }
            path => parsed.paths.push(path.to_owned()),
        }
    }
    if parsed.paths.is_empty() {
        return Err("`scenario` needs at least one .scenario file or directory".to_owned());
    }
    Ok(parsed)
}

/// Expands files and directories into the ordered list of `.scenario`
/// files to load. Directory entries are sorted by name so a directory
/// is a deterministic plan.
pub fn collect_scenario_files(paths: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for path in paths {
        let p = Path::new(path);
        if p.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(p)
                .map_err(|e| format!("cannot read directory `{path}`: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "scenario"))
                .collect();
            entries.sort();
            if entries.is_empty() {
                return Err(format!("directory `{path}` contains no .scenario files"));
            }
            files.extend(entries);
        } else {
            files.push(p.to_path_buf());
        }
    }
    Ok(files)
}

/// Loads and parses every scenario file.
fn load_scenarios(files: &[PathBuf]) -> Result<Vec<Scenario>, String> {
    files
        .iter()
        .map(|file| {
            let text = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read `{}`: {e}", file.display()))?;
            Scenario::parse(&text).map_err(|e| format!("{}: {e}", file.display()))
        })
        .collect()
}

/// Runs the `scenario` subcommand. Returns the stdout payload and
/// whether every scenario matched its expectation.
pub fn run_scenario_command(args: &[String]) -> Result<(String, bool), CommandError> {
    let parsed = parse_scenario_args(args).map_err(CommandError::Usage)?;
    let files = collect_scenario_files(&parsed.paths).map_err(CommandError::Failure)?;
    let scenarios = load_scenarios(&files).map_err(CommandError::Failure)?;
    let report = if parsed.fleet {
        scenario::run_plan_fleet(&scenarios).map_err(CommandError::Failure)?
    } else {
        scenario::run_plan(&scenarios, parsed.kernel, parsed.jobs).map_err(CommandError::Failure)?
    };
    if let Some(bench_path) = &parsed.bench {
        write_bench(bench_path, &scenarios, &report, parsed.kernel)
            .map_err(CommandError::Failure)?;
    }
    let ok = report.all_as_expected();
    eprintln!(
        "ran {} scenario(s) under the {} kernel: {}",
        scenarios.len(),
        if parsed.fleet { "fleet-packed cycle" } else { parsed.kernel.name() },
        if ok { "all as expected" } else { "unexpected verdicts" },
    );
    Ok((report.to_json().render() + "\n", ok))
}

/// Re-runs the suite serially with the phase profiler enabled and
/// writes the wall-clock report. Bench numbers never touch stdout —
/// the verdict stream stays diffable.
fn write_bench(
    path: &str,
    scenarios: &[Scenario],
    report: &PlanReport,
    kernel: Kernel,
) -> Result<(), String> {
    use experiments::json::Json;
    let mut total = std::time::Duration::ZERO;
    let mut timed = 0u64;
    for sc in scenarios {
        // Skipped scenarios cost nothing in the plan; keep the bench
        // consistent with what actually ran.
        let ran = report
            .entries
            .iter()
            .any(|(name, o)| name == &sc.name && matches!(o, scenario::PlanOutcome::Ran(_)));
        if !ran {
            continue;
        }
        let (_, wall) = run_scenario_profiled(sc, kernel)?;
        total += wall;
        timed += 1;
    }
    let json = Json::obj()
        .field("scenario_suite_wall_secs", total.as_secs_f64())
        .field("scenarios_timed", timed)
        .field("kernel", kernel.name());
    std::fs::write(path, json.render() + "\n")
        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    eprintln!("scenario bench: {timed} scenario(s) in {:.3}s -> {path}", total.as_secs_f64());
    Ok(())
}

/// Parsed flags of the `fuzz` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzArgs {
    /// Campaign seed.
    pub seed: u64,
    /// Scenarios to generate.
    pub iters: u32,
    /// Directory for shrunk reproducers, if any.
    pub out: Option<String>,
    /// Arm the deterministic demo failure.
    pub demo: bool,
}

/// Parses the arguments after `fuzz`.
pub fn parse_fuzz_args(args: &[String]) -> Result<FuzzArgs, String> {
    let mut parsed = FuzzArgs { seed: 7, iters: 20, out: None, demo: false };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                parsed.seed =
                    it.next().and_then(|v| v.parse().ok()).ok_or("`--seed` requires a number")?;
            }
            "--iters" => {
                parsed.iters =
                    it.next().and_then(|v| v.parse().ok()).ok_or("`--iters` requires a number")?;
            }
            "--out" => {
                parsed.out = Some(it.next().ok_or("`--out` requires a directory")?.clone());
            }
            "--demo-failure" => parsed.demo = true,
            other => {
                return Err(format!(
                    "unknown fuzz flag `{other}`: expected --seed, --iters, --out or \
                     --demo-failure"
                ))
            }
        }
    }
    Ok(parsed)
}

/// Runs the `fuzz` subcommand. Returns the stdout payload and whether
/// the campaign counts as successful: no findings in normal mode; in
/// `--demo-failure` mode, at least one finding and nothing but the
/// injected `verdict-fail` kind.
pub fn run_fuzz_command(args: &[String]) -> Result<(String, bool), CommandError> {
    let parsed = parse_fuzz_args(args).map_err(CommandError::Usage)?;
    let config =
        FuzzConfig { seed: parsed.seed, iterations: parsed.iters, demo_failure: parsed.demo };
    let report = fuzz(&config);
    if let Some(dir) = &parsed.out {
        std::fs::create_dir_all(dir)
            .map_err(|e| CommandError::Failure(format!("cannot create `{dir}`: {e}")))?;
        for finding in &report.findings {
            let path = Path::new(dir).join(format!("{}.scenario", finding.shrunk.name));
            std::fs::write(&path, finding.shrunk.render()).map_err(|e| {
                CommandError::Failure(format!("cannot write `{}`: {e}", path.display()))
            })?;
            eprintln!("wrote shrunk reproducer {}", path.display());
        }
    }
    let ok = if parsed.demo {
        !report.findings.is_empty() && report.findings.iter().all(|f| f.invariant == "verdict-fail")
    } else {
        report.findings.is_empty()
    };
    eprintln!("fuzzed {} scenario(s), {} finding(s)", report.iterations, report.findings.len());
    Ok((report.to_json().render() + "\n", ok))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn scenario_flags_parse() {
        let parsed = parse_scenario_args(&args(&[
            "scenarios",
            "--kernel",
            "fast",
            "--jobs",
            "2",
            "--bench",
            "b.json",
        ]))
        .expect("valid");
        assert_eq!(
            parsed,
            ScenarioArgs {
                paths: vec!["scenarios".into()],
                kernel: Kernel::Fast,
                jobs: 2,
                bench: Some("b.json".into()),
                fleet: false,
            }
        );
        let parsed = parse_scenario_args(&args(&["scenarios", "--kernel", "tlm"])).expect("valid");
        assert_eq!(parsed.kernel, Kernel::Tlm);
        let parsed = parse_scenario_args(&args(&["scenarios"])).expect("valid");
        assert_eq!(parsed.kernel, Kernel::Cycle, "default is the reference kernel");
        let parsed = parse_scenario_args(&args(&["scenarios", "--fleet"])).expect("valid");
        assert!(parsed.fleet, "--fleet switches to the packed executor");
    }

    #[test]
    fn scenario_flag_errors_are_actionable() {
        let e = parse_scenario_args(&args(&["dir", "--kernel", "warp"])).unwrap_err();
        assert!(e.contains("cycle") && e.contains("fast") && e.contains("tlm"), "{e}");
        let e = parse_scenario_args(&args(&["dir", "--frobnicate"])).unwrap_err();
        assert!(e.contains("--frobnicate") && e.contains("--bench"), "{e}");
        let e = parse_scenario_args(&args(&[])).unwrap_err();
        assert!(e.contains(".scenario"), "{e}");
    }

    #[test]
    fn unknown_kernel_is_a_usage_error_not_a_panic() {
        let err = run_scenario_command(&args(&["dir", "--kernel", "warp"])).unwrap_err();
        assert!(matches!(err, CommandError::Usage(_)), "bad --kernel must be a usage error");
        assert!(err.message().contains("tlm"), "{}", err.message());
        // A well-formed command line that fails at runtime is not a
        // usage error.
        let err = run_scenario_command(&args(&["/nonexistent-dir-for-test"])).unwrap_err();
        assert!(matches!(err, CommandError::Failure(_)));
    }

    #[test]
    fn fuzz_flags_parse() {
        let parsed = parse_fuzz_args(&args(&["--seed", "5", "--iters", "3", "--demo-failure"]))
            .expect("valid");
        assert_eq!(parsed, FuzzArgs { seed: 5, iters: 3, out: None, demo: true });
        let e = parse_fuzz_args(&args(&["--seed"])).unwrap_err();
        assert!(e.contains("--seed"), "{e}");
    }
}
