//! Integration tests driving the `lotterybus-sim` binary end to end.

use std::process::Command;

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lotterybus-sim"))
}

fn write_spec(name: &str, text: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("lbsim-test-{name}-{}", std::process::id()));
    std::fs::write(&path, text).expect("write spec");
    path
}

const SPEC: &str = "\
arbiter = lottery
burst = 16
cycles = 20000
warmup = 1000
seed = 7
master cpu weight=3 load=0.5 size=16
master dma weight=1 load=0.5 size=16
";

#[test]
fn example_flag_prints_a_parseable_spec() {
    let out = binary().arg("--example").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("arbiter"));
    assert!(lotterybus_cli::SimSpec::parse(&text).is_ok(), "example must parse");
}

#[test]
fn runs_a_spec_and_reports_shares() {
    let path = write_spec("basic", SPEC);
    let out = binary().arg(&path).output().expect("run");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report = String::from_utf8(out.stdout).expect("utf8");
    assert!(report.contains("cpu"));
    assert!(report.contains("dma"));
    assert!(report.contains("bus utilization"));
}

#[test]
fn writes_a_vcd_when_asked() {
    let spec = write_spec("vcd", SPEC);
    let vcd = std::env::temp_dir().join(format!("lbsim-test-{}.vcd", std::process::id()));
    let out = binary().arg(&spec).arg("--vcd").arg(&vcd).output().expect("run");
    std::fs::remove_file(&spec).ok();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let dump = std::fs::read_to_string(&vcd).expect("vcd written");
    std::fs::remove_file(&vcd).ok();
    assert!(dump.starts_with("$date"));
    assert!(dump.contains("grant_cpu"));
    assert!(dump.contains("$enddefinitions"));
}

#[test]
fn bad_specs_fail_with_line_numbers() {
    let path = write_spec("bad", "arbiter = nonsense\nmaster a load=0.1\n");
    let out = binary().arg(&path).output().expect("run");
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("line 1"), "{err}");
}

#[test]
fn missing_file_reports_cleanly() {
    let out = binary().arg("/nonexistent/definitely-missing.spec").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
