//! Bus and arbiter power estimation.
//!
//! The paper motivates communication-architecture design partly through
//! power: "the delay and power in global interconnect is known to be an
//! increasing bottleneck with shrinking feature sizes" (§1). This module
//! provides a first-order energy model that combines a simulation's
//! activity counts ([`ActivityCounts`], extracted from
//! `socsim::BusStats`) with per-event energy costs calibrated to the
//! same 0.35 µm-class technology as the cell library:
//!
//! * **word transfers** dominate — each switches the long, heavily
//!   loaded global bus wires;
//! * **arbitration decisions** cost energy in the manager logic, with a
//!   per-design multiplier derived from its gate count (more cell grids
//!   ⇒ more switched capacitance per decision);
//! * **idle cycles** pay a small standby cost (clocking, leakage).

use crate::estimate::HwEstimate;
use serde::{Deserialize, Serialize};

/// Per-event energy costs in picojoules, 0.35 µm-class defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy to drive one word across the shared bus wires.
    pub word_transfer_pj: f64,
    /// Arbitration energy per decision, per 1000 cell grids of arbiter
    /// logic (switched-capacitance proxy).
    pub decision_pj_per_kgrid: f64,
    /// Standby energy per bus cycle (clock tree, leakage).
    pub idle_pj: f64,
}

impl EnergyModel {
    /// The 0.35 µm-class defaults used throughout the reproduction:
    /// ~40 pJ per 32-bit word on a long global bus, ~2 pJ per decision
    /// per thousand cell grids, ~1 pJ standby per cycle.
    pub fn cmos035() -> Self {
        EnergyModel { word_transfer_pj: 40.0, decision_pj_per_kgrid: 2.0, idle_pj: 1.0 }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::cmos035()
    }
}

/// Activity counts of one simulation run, the inputs to the energy
/// model. Build it from a `socsim::BusStats` with
/// `ActivityCounts { words: stats.busy_cycles, decisions: stats.grants,
/// cycles: stats.cycles }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActivityCounts {
    /// Words transferred (busy cycles).
    pub words: u64,
    /// Arbitration decisions made (grants).
    pub decisions: u64,
    /// Total elapsed bus cycles.
    pub cycles: u64,
}

/// An energy estimate for one run under one arbiter implementation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Energy spent moving data, in pJ.
    pub transfer_pj: f64,
    /// Energy spent arbitrating, in pJ.
    pub arbitration_pj: f64,
    /// Standby energy, in pJ.
    pub idle_pj: f64,
}

impl EnergyReport {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.transfer_pj + self.arbitration_pj + self.idle_pj
    }

    /// Average power in mW at the given bus frequency.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero or `freq_mhz` is not positive.
    pub fn average_power_mw(&self, cycles: u64, freq_mhz: f64) -> f64 {
        assert!(cycles > 0, "power needs a nonzero run length");
        assert!(freq_mhz > 0.0, "frequency must be positive");
        // pJ per cycle × cycles/second = pJ/s × 1e-12 = W; ×1e3 = mW.
        let pj_per_cycle = self.total_pj() / cycles as f64;
        pj_per_cycle * freq_mhz * 1e6 * 1e-12 * 1e3
    }
}

/// Estimates the energy of a run: `activity` from the simulation,
/// `arbiter` the hardware estimate of the arbiter driving it.
pub fn estimate_energy(
    model: &EnergyModel,
    activity: &ActivityCounts,
    arbiter: &HwEstimate,
) -> EnergyReport {
    let idle_cycles = activity.cycles.saturating_sub(activity.words);
    EnergyReport {
        transfer_pj: activity.words as f64 * model.word_transfer_pj,
        arbitration_pj: activity.decisions as f64
            * model.decision_pj_per_kgrid
            * (arbiter.area_grids / 1000.0),
        idle_pj: idle_cycles as f64 * model.idle_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use crate::managers;

    fn activity() -> ActivityCounts {
        ActivityCounts { words: 80_000, decisions: 5_000, cycles: 100_000 }
    }

    #[test]
    fn transfers_dominate_for_reasonable_workloads() {
        let lib = CellLibrary::cmos035();
        let arbiter = managers::static_lottery_manager(&lib, 4, 8).total;
        let report = estimate_energy(&EnergyModel::cmos035(), &activity(), &arbiter);
        assert!(report.transfer_pj > report.arbitration_pj);
        assert!(report.transfer_pj > report.idle_pj);
        assert!(report.total_pj() > 0.0);
    }

    #[test]
    fn bigger_arbiters_cost_more_per_decision() {
        let lib = CellLibrary::cmos035();
        let small = managers::static_priority_arbiter(&lib, 4).total;
        let large = managers::static_lottery_manager(&lib, 4, 8).total;
        let model = EnergyModel::cmos035();
        let a = estimate_energy(&model, &activity(), &small);
        let b = estimate_energy(&model, &activity(), &large);
        assert!(b.arbitration_pj > a.arbitration_pj);
        assert_eq!(a.transfer_pj, b.transfer_pj, "data movement is arbiter-independent");
    }

    #[test]
    fn average_power_is_sane() {
        let lib = CellLibrary::cmos035();
        let arbiter = managers::static_lottery_manager(&lib, 4, 8).total;
        let report = estimate_energy(&EnergyModel::cmos035(), &activity(), &arbiter);
        let mw = report.average_power_mw(100_000, 66.0);
        // A 0.35 µm bus at 66 MHz burns a few mW — not µW, not W.
        assert!((0.1..100.0).contains(&mw), "power {mw} mW");
    }

    #[test]
    fn idle_bus_still_burns_standby_energy() {
        let arbiter = HwEstimate::new(1000.0, 1.0);
        let idle = ActivityCounts { words: 0, decisions: 0, cycles: 10_000 };
        let report = estimate_energy(&EnergyModel::cmos035(), &idle, &arbiter);
        assert_eq!(report.transfer_pj, 0.0);
        assert_eq!(report.arbitration_pj, 0.0);
        assert!(report.idle_pj > 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero run length")]
    fn power_of_empty_run_panics() {
        let report = EnergyReport { transfer_pj: 1.0, arbitration_pj: 0.0, idle_pj: 0.0 };
        let _ = report.average_power_mw(0, 66.0);
    }
}
