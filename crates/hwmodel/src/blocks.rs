//! Structural area/delay estimators for the arbiter building blocks.
//!
//! Each function composes library cells into one of the datapath blocks
//! appearing in the paper's Figure 9 (static manager) and Figure 10
//! (dynamic manager). Delay models use logarithmic tree depths for the
//! blocks a competent implementation would build as trees (comparators,
//! fast adders, selectors) and linear depth for the iterative modulo
//! unit.

use crate::cells::CellLibrary;
use crate::estimate::HwEstimate;

fn log2_ceil(n: usize) -> u32 {
    usize::BITS - n.saturating_sub(1).leading_zeros()
}

/// An `width`-bit magnitude comparator (`a < b`), used to compare the
/// random draw against each partial sum.
pub fn comparator(lib: &CellLibrary, width: u32) -> HwEstimate {
    // Per-bit compare (XOR + AOI) followed by a combining tree.
    let per_bit = HwEstimate::new(lib.xor2.area_grids + lib.aoi.area_grids, lib.xor2.delay_ns);
    let tree_depth = log2_ceil(width.max(1) as usize);
    let tree = HwEstimate::new(
        (width.saturating_sub(1)) as f64 * lib.aoi.area_grids,
        f64::from(tree_depth) * lib.aoi.delay_ns,
    );
    per_bit.replicated(width as usize).then(tree)
}

/// A fast (carry-lookahead-class) `width`-bit adder.
pub fn adder(lib: &CellLibrary, width: u32) -> HwEstimate {
    // Lookahead costs ~30% area over ripple; delay grows with log width.
    let area = f64::from(width) * lib.fa.area_grids * 1.3;
    let delay = lib.fa.delay_ns * (1.0 + f64::from(log2_ceil(width as usize)) * 0.5);
    HwEstimate::new(area, delay)
}

/// The adder tree of the dynamic manager: sums `inputs` operands of
/// `width` bits into the partial sums `Σ r_j·t_j` (Figure 10).
pub fn adder_tree(lib: &CellLibrary, inputs: usize, width: u32) -> HwEstimate {
    if inputs <= 1 {
        return HwEstimate::ZERO;
    }
    let levels = log2_ceil(inputs);
    let mut total = HwEstimate::ZERO;
    // Operand width grows by one bit per level.
    for level in 0..levels {
        let adders_at_level = (inputs >> (level + 1)).max(1);
        let stage = adder(lib, width + level).replicated(adders_at_level);
        total =
            HwEstimate::new(total.area_grids + stage.area_grids, total.delay_ns + stage.delay_ns);
    }
    total
}

/// The bitwise-AND stage masking ticket registers with request lines.
pub fn and_stage(lib: &CellLibrary, masters: usize, width: u32) -> HwEstimate {
    HwEstimate::new(
        (masters as f64) * f64::from(width) * lib.nand2.area_grids,
        lib.nand2.delay_ns + lib.inv.delay_ns,
    )
}

/// A `depth`-entry, `width`-bit register file with a read port — the
/// look-up table of the static manager, "implemented using a register
/// file" (§5.2).
pub fn register_file(lib: &CellLibrary, depth: usize, width: u32) -> HwEstimate {
    let storage = HwEstimate::new(depth as f64 * f64::from(width) * lib.dff.area_grids, 0.0);
    let addr_bits = log2_ceil(depth);
    let decoder = HwEstimate::new(
        depth as f64 * lib.nand2.area_grids,
        f64::from(addr_bits) * lib.nand2.delay_ns,
    );
    // Read multiplexer: (depth − 1) two-way muxes per output bit.
    let mux_tree = HwEstimate::new(
        (depth.saturating_sub(1)) as f64 * f64::from(width) * lib.mux2.area_grids,
        f64::from(addr_bits) * lib.mux2.delay_ns,
    );
    storage.then(decoder).then(mux_tree)
}

/// A `width`-bit maximal-length LFSR (random number generator).
///
/// The registers update in parallel with the data transfer (the paper
/// pipelines the RNG), so the returned delay is just the clock-to-Q cost
/// of presenting the value.
pub fn lfsr(lib: &CellLibrary, width: u32) -> HwEstimate {
    HwEstimate::new(
        f64::from(width) * lib.dff.area_grids + 4.0 * lib.xor2.area_grids,
        lib.dff.delay_ns,
    )
}

/// The priority selector asserting exactly one of `n` grant lines
/// (Figure 9: multiple comparators may fire; the first wins).
pub fn priority_selector(lib: &CellLibrary, n: usize) -> HwEstimate {
    HwEstimate::new(
        n as f64 * (lib.aoi.area_grids + lib.inv.area_grids),
        f64::from(log2_ceil(n)) * lib.aoi.delay_ns + lib.inv.delay_ns,
    )
}

/// The modulo-reduction unit of the dynamic manager: maps the raw random
/// value into `[0, T)` for a runtime total `T` (Figure 10).
///
/// Modelled as an array of conditional-subtract stages — the standard
/// restoring-division structure — whose delay is *linear* in the operand
/// width. This is the block that makes the dynamic manager
/// "considerably harder" (§4.4) and slower than the static design.
pub fn modulo_unit(lib: &CellLibrary, width: u32) -> HwEstimate {
    let stage = adder(lib, width)
        .then(HwEstimate::new(f64::from(width) * lib.mux2.area_grids, lib.mux2.delay_ns));
    HwEstimate::new(
        stage.area_grids * f64::from(width),
        stage.delay_ns * f64::from(width) * 0.5, // overlapped carry chains
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::cmos035()
    }

    #[test]
    fn log2_ceil_boundaries() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(16), 4);
        assert_eq!(log2_ceil(17), 5);
    }

    #[test]
    fn wider_blocks_cost_more() {
        let lib = lib();
        assert!(comparator(&lib, 16).area_grids > comparator(&lib, 8).area_grids);
        assert!(adder(&lib, 16).delay_ns > adder(&lib, 8).delay_ns);
        assert!(register_file(&lib, 32, 8).area_grids > register_file(&lib, 16, 8).area_grids);
    }

    #[test]
    fn adder_tree_grows_with_inputs() {
        let lib = lib();
        let four = adder_tree(&lib, 4, 8);
        let eight = adder_tree(&lib, 8, 8);
        assert!(eight.area_grids > four.area_grids);
        assert!(eight.delay_ns > four.delay_ns);
        assert_eq!(adder_tree(&lib, 1, 8), HwEstimate::ZERO);
    }

    #[test]
    fn modulo_is_much_slower_than_comparator() {
        let lib = lib();
        // The linear-depth modulo should dominate a log-depth comparator
        // at the same width: this is the static design's advantage.
        assert!(modulo_unit(&lib, 10).delay_ns > 2.0 * comparator(&lib, 10).delay_ns);
    }

    #[test]
    fn lfsr_area_scales_with_width() {
        let lib = lib();
        let a = lfsr(&lib, 8).area_grids;
        let b = lfsr(&lib, 16).area_grids;
        assert!(b > a);
        assert_eq!(lfsr(&lib, 8).delay_ns, lib.dff.delay_ns);
    }
}
