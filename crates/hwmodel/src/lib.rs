//! # hwmodel — standard-cell area/delay estimation for bus arbiters
//!
//! The paper's §5.2 maps the LOTTERYBUS controller onto NEC's 0.35 µm
//! cell-based array technology and reports its area (in *cell grids*) and
//! arbitration delay, concluding that arbitration fits in a single bus
//! cycle for bus speeds up to a few hundred MHz.
//!
//! We cannot use the proprietary CB-C9 library, so this crate provides an
//! abstract 0.35 µm-class standard-cell library ([`CellLibrary`]) and
//! structural estimators that compose the datapaths of Figures 9 and 10
//! block by block:
//!
//! * [`blocks`] — comparators, fast adders, adder trees, register files,
//!   LFSRs, priority selectors, modulo-reduction units;
//! * [`managers`] — full arbiters assembled from those blocks: the static
//!   and dynamic lottery managers plus the static-priority and TDMA
//!   baselines, each returning a [`ManagerReport`] with a per-block
//!   breakdown, total area and critical-path delay.
//!
//! Absolute numbers depend on the (substituted) library constants, but
//! relative comparisons — static vs dynamic lottery, lottery vs
//! conventional arbiters, scaling with master count and ticket width —
//! are structural and technology-independent.
//!
//! ```
//! use hwmodel::{CellLibrary, managers};
//! let lib = CellLibrary::cmos035();
//! let report = managers::static_lottery_manager(&lib, 4, 8);
//! // Single-cycle arbitration at a few hundred MHz, as in the paper.
//! assert!(report.total.max_freq_mhz() > 200.0);
//! ```

pub mod blocks;
pub mod cells;
pub mod estimate;
pub mod managers;
pub mod power;

pub use cells::{Cell, CellLibrary};
pub use estimate::HwEstimate;
pub use managers::{BlockCost, ManagerReport};
pub use power::{ActivityCounts, EnergyModel, EnergyReport};
