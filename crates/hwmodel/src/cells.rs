//! The abstract standard-cell library.

use serde::{Deserialize, Serialize};

/// One library cell: an area in *cell grids* (the paper's unit for NEC's
/// cell-based array) and a typical loaded propagation delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Area in cell grids.
    pub area_grids: f64,
    /// Propagation delay in nanoseconds.
    pub delay_ns: f64,
}

impl Cell {
    /// Creates a cell with the given area and delay.
    pub fn new(area_grids: f64, delay_ns: f64) -> Self {
        Cell { area_grids, delay_ns }
    }
}

/// A minimal standard-cell library sufficient to assemble the arbiter
/// datapaths of the paper's Figures 9 and 10.
///
/// The default constants are calibrated to a generic 0.35 µm process —
/// absolute values substitute for NEC's proprietary CB-C9 VX data, but
/// the ratios between cells are typical, so block-to-block comparisons
/// hold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    /// Inverter.
    pub inv: Cell,
    /// 2-input NAND.
    pub nand2: Cell,
    /// 2-input NOR.
    pub nor2: Cell,
    /// 2-input XOR.
    pub xor2: Cell,
    /// 2-to-1 multiplexer.
    pub mux2: Cell,
    /// AND-OR-invert (complex gate used in compare/select logic).
    pub aoi: Cell,
    /// D flip-flop (delay = clock-to-Q plus setup).
    pub dff: Cell,
    /// Full adder.
    pub fa: Cell,
}

impl CellLibrary {
    /// The 0.35 µm-class library used throughout the reproduction.
    pub fn cmos035() -> Self {
        CellLibrary {
            inv: Cell::new(2.0, 0.08),
            nand2: Cell::new(3.0, 0.12),
            nor2: Cell::new(3.0, 0.14),
            xor2: Cell::new(6.0, 0.22),
            mux2: Cell::new(5.0, 0.18),
            aoi: Cell::new(4.0, 0.15),
            dff: Cell::new(9.0, 0.45),
            fa: Cell::new(14.0, 0.40),
        }
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::cmos035()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_cells_are_physical() {
        let lib = CellLibrary::cmos035();
        for cell in [lib.inv, lib.nand2, lib.nor2, lib.xor2, lib.mux2, lib.aoi, lib.dff, lib.fa] {
            assert!(cell.area_grids > 0.0);
            assert!(cell.delay_ns > 0.0);
        }
    }

    #[test]
    fn relative_sizes_are_sensible() {
        let lib = CellLibrary::cmos035();
        assert!(lib.inv.area_grids < lib.nand2.area_grids);
        assert!(lib.nand2.area_grids < lib.dff.area_grids);
        assert!(lib.fa.area_grids > lib.xor2.area_grids);
        assert!(lib.dff.delay_ns > lib.inv.delay_ns);
    }
}
