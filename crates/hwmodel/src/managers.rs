//! Full arbiter hardware estimates, assembled from [`crate::blocks`].

use crate::blocks;
use crate::cells::CellLibrary;
use crate::estimate::HwEstimate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One named block inside a manager, with its estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockCost {
    /// Block name (e.g. `"range LUT"`).
    pub name: String,
    /// Area/delay of the block.
    pub estimate: HwEstimate,
    /// Whether the block sits on the arbitration critical path (storage
    /// updated off-path, like the LFSR state, does not).
    pub on_critical_path: bool,
}

/// A complete area/critical-path report for one arbiter implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagerReport {
    /// Implementation name.
    pub name: String,
    /// Number of masters served.
    pub masters: usize,
    /// Ticket (or counter) width in bits.
    pub width_bits: u32,
    /// Per-block breakdown.
    pub blocks: Vec<BlockCost>,
    /// Total area and critical-path delay.
    pub total: HwEstimate,
}

impl ManagerReport {
    fn from_blocks(
        name: impl Into<String>,
        masters: usize,
        width_bits: u32,
        blocks: Vec<BlockCost>,
    ) -> Self {
        let area: f64 = blocks.iter().map(|b| b.estimate.area_grids).sum();
        let delay: f64 =
            blocks.iter().filter(|b| b.on_critical_path).map(|b| b.estimate.delay_ns).sum();
        ManagerReport {
            name: name.into(),
            masters,
            width_bits,
            blocks,
            total: HwEstimate::new(area, delay),
        }
    }
}

impl fmt::Display for ManagerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} masters, {}-bit tickets)", self.name, self.masters, self.width_bits)?;
        for block in &self.blocks {
            writeln!(
                f,
                "  {:<22} {:>9.0} grids  {:>6.2} ns{}",
                block.name,
                block.estimate.area_grids,
                block.estimate.delay_ns,
                if block.on_critical_path { "" } else { "  (off critical path)" },
            )?;
        }
        write!(
            f,
            "  {:<22} {:>9.0} grids  {:>6.2} ns  ({:.0} MHz single-cycle)",
            "TOTAL",
            self.total.area_grids,
            self.total.delay_ns,
            self.total.max_freq_mhz(),
        )
    }
}

/// The static lottery manager of Figure 9: request-map-indexed range
/// LUT, LFSR, parallel comparators, priority selector.
pub fn static_lottery_manager(
    lib: &CellLibrary,
    masters: usize,
    ticket_bits: u32,
) -> ManagerReport {
    // Scaled subset totals carry two extra resolution bits (§4.3).
    let range_bits = ticket_bits + 2;
    let lut_depth = 1usize << masters;
    let lut_width = masters as u32 * range_bits;
    let blocks = vec![
        BlockCost {
            name: "range LUT".into(),
            estimate: blocks::register_file(lib, lut_depth, lut_width),
            on_critical_path: true,
        },
        BlockCost {
            name: "LFSR".into(),
            // Pipelined with data transfer: contributes area, and only
            // its clock-to-Q delay lands on the arbitration path.
            estimate: blocks::lfsr(lib, range_bits),
            on_critical_path: false,
        },
        BlockCost {
            name: "comparators".into(),
            estimate: blocks::comparator(lib, range_bits).replicated(masters),
            on_critical_path: true,
        },
        BlockCost {
            name: "priority selector".into(),
            estimate: blocks::priority_selector(lib, masters),
            on_critical_path: true,
        },
    ];
    ManagerReport::from_blocks("static lottery manager", masters, ticket_bits, blocks)
}

/// The dynamic lottery manager of Figure 10: AND stage, adder tree,
/// modulo reduction, comparators, priority selector, plus the ticket
/// registers themselves.
pub fn dynamic_lottery_manager(
    lib: &CellLibrary,
    masters: usize,
    ticket_bits: u32,
) -> ManagerReport {
    let sum_bits = ticket_bits + (usize::BITS - masters.leading_zeros());
    let blocks = vec![
        BlockCost {
            name: "ticket registers".into(),
            estimate: HwEstimate::new(
                masters as f64 * f64::from(ticket_bits) * lib.dff.area_grids,
                0.0,
            ),
            on_critical_path: false,
        },
        BlockCost {
            name: "AND stage".into(),
            estimate: blocks::and_stage(lib, masters, ticket_bits),
            on_critical_path: true,
        },
        BlockCost {
            name: "adder tree".into(),
            estimate: blocks::adder_tree(lib, masters, ticket_bits),
            on_critical_path: true,
        },
        BlockCost {
            name: "RNG (LFSR)".into(),
            estimate: blocks::lfsr(lib, sum_bits),
            on_critical_path: false,
        },
        BlockCost {
            name: "modulo unit".into(),
            estimate: blocks::modulo_unit(lib, sum_bits),
            on_critical_path: true,
        },
        BlockCost {
            name: "comparators".into(),
            estimate: blocks::comparator(lib, sum_bits).replicated(masters),
            on_critical_path: true,
        },
        BlockCost {
            name: "priority selector".into(),
            estimate: blocks::priority_selector(lib, masters),
            on_critical_path: true,
        },
    ];
    ManagerReport::from_blocks("dynamic lottery manager", masters, ticket_bits, blocks)
}

/// A conventional static-priority arbiter: a fixed priority encoder.
pub fn static_priority_arbiter(lib: &CellLibrary, masters: usize) -> ManagerReport {
    let blocks = vec![BlockCost {
        name: "priority encoder".into(),
        estimate: blocks::priority_selector(lib, masters),
        on_critical_path: true,
    }];
    ManagerReport::from_blocks("static-priority arbiter", masters, 0, blocks)
}

/// A two-level TDMA arbiter: slot counter, wheel table and the
/// round-robin reclaim logic.
pub fn tdma_arbiter(lib: &CellLibrary, masters: usize, wheel_slots: usize) -> ManagerReport {
    let slot_bits = (usize::BITS - wheel_slots.saturating_sub(1).leading_zeros()).max(1);
    let master_bits = (usize::BITS - masters.saturating_sub(1).leading_zeros()).max(1);
    let blocks = vec![
        BlockCost {
            name: "slot counter".into(),
            estimate: HwEstimate::new(
                f64::from(slot_bits) * (lib.dff.area_grids + lib.fa.area_grids),
                0.0,
            ),
            on_critical_path: false,
        },
        BlockCost {
            name: "wheel table".into(),
            estimate: blocks::register_file(lib, wheel_slots, master_bits),
            on_critical_path: true,
        },
        BlockCost {
            name: "round-robin reclaim".into(),
            estimate: blocks::priority_selector(lib, masters)
                .then(blocks::priority_selector(lib, masters)),
            on_critical_path: true,
        },
    ];
    ManagerReport::from_blocks("two-level TDMA arbiter", masters, 0, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::cmos035()
    }

    #[test]
    fn static_manager_fits_one_cycle_at_high_speed() {
        // §5.2: arbitration in one cycle for bus speeds of a few hundred
        // MHz on the 4-master system.
        let report = static_lottery_manager(&lib(), 4, 8);
        assert!(report.total.delay_ns < 5.0, "delay {}", report.total.delay_ns);
        assert!(report.total.max_freq_mhz() > 200.0);
        assert!(report.total.area_grids > 100.0);
    }

    #[test]
    fn dynamic_manager_is_larger_and_slower_than_static() {
        let l = lib();
        let s = static_lottery_manager(&l, 4, 8);
        let d = dynamic_lottery_manager(&l, 4, 8);
        assert!(d.total.delay_ns > s.total.delay_ns, "dynamic must be slower (modulo unit)");
    }

    #[test]
    fn lottery_costs_more_than_conventional_arbiters() {
        let l = lib();
        let s = static_lottery_manager(&l, 4, 8);
        let p = static_priority_arbiter(&l, 4);
        assert!(s.total.area_grids > p.total.area_grids);
        assert!(s.total.delay_ns > p.total.delay_ns);
    }

    #[test]
    fn static_lut_grows_exponentially_with_masters() {
        let l = lib();
        let a4 = static_lottery_manager(&l, 4, 8).total.area_grids;
        let a6 = static_lottery_manager(&l, 6, 8).total.area_grids;
        let a8 = static_lottery_manager(&l, 8, 8).total.area_grids;
        assert!(a6 / a4 > 3.0, "LUT growth {a4} -> {a6}");
        assert!(a8 / a6 > 3.0, "LUT growth {a6} -> {a8}");
        // The dynamic design avoids the exponential LUT.
        let d4 = dynamic_lottery_manager(&l, 4, 8).total.area_grids;
        let d8 = dynamic_lottery_manager(&l, 8, 8).total.area_grids;
        assert!(d8 / d4 < 4.0, "adder-tree growth {d4} -> {d8}");
    }

    #[test]
    fn report_display_includes_totals() {
        let text = static_lottery_manager(&lib(), 4, 8).to_string();
        assert!(text.contains("TOTAL"));
        assert!(text.contains("range LUT"));
        assert!(text.contains("MHz"));
    }

    #[test]
    fn tdma_report_scales_with_wheel() {
        let l = lib();
        let small = tdma_arbiter(&l, 4, 10);
        let large = tdma_arbiter(&l, 4, 60);
        assert!(large.total.area_grids > small.total.area_grids);
    }
}
