//! Area/delay estimates and their composition rules.

use serde::{Deserialize, Serialize};
use std::ops::Add;

/// An area/critical-path estimate for a hardware block.
///
/// Estimates compose in two ways: [`HwEstimate::then`] chains blocks in
/// series (areas add, delays add) and [`HwEstimate::beside`] places them
/// in parallel (areas add, delay is the slower path).
///
/// ```
/// use hwmodel::HwEstimate;
/// let a = HwEstimate::new(100.0, 1.0);
/// let b = HwEstimate::new(50.0, 2.0);
/// assert_eq!(a.then(b), HwEstimate::new(150.0, 3.0));
/// assert_eq!(a.beside(b), HwEstimate::new(150.0, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HwEstimate {
    /// Total area in cell grids.
    pub area_grids: f64,
    /// Critical-path delay in nanoseconds.
    pub delay_ns: f64,
}

impl HwEstimate {
    /// The empty block.
    pub const ZERO: HwEstimate = HwEstimate { area_grids: 0.0, delay_ns: 0.0 };

    /// Creates an estimate from raw numbers.
    pub fn new(area_grids: f64, delay_ns: f64) -> Self {
        HwEstimate { area_grids, delay_ns }
    }

    /// Series composition: `other` consumes this block's output.
    #[must_use]
    pub fn then(self, other: HwEstimate) -> HwEstimate {
        HwEstimate {
            area_grids: self.area_grids + other.area_grids,
            delay_ns: self.delay_ns + other.delay_ns,
        }
    }

    /// Parallel composition: both blocks operate side by side.
    #[must_use]
    pub fn beside(self, other: HwEstimate) -> HwEstimate {
        HwEstimate {
            area_grids: self.area_grids + other.area_grids,
            delay_ns: self.delay_ns.max(other.delay_ns),
        }
    }

    /// `n` copies of this block in parallel.
    #[must_use]
    pub fn replicated(self, n: usize) -> HwEstimate {
        HwEstimate { area_grids: self.area_grids * n as f64, delay_ns: self.delay_ns }
    }

    /// Area-only contribution (e.g. storage off the critical path).
    #[must_use]
    pub fn area_only(self) -> HwEstimate {
        HwEstimate { area_grids: self.area_grids, delay_ns: 0.0 }
    }

    /// The highest clock frequency (MHz) at which this block completes
    /// in a single cycle.
    pub fn max_freq_mhz(&self) -> f64 {
        if self.delay_ns <= 0.0 {
            f64::INFINITY
        } else {
            1_000.0 / self.delay_ns
        }
    }
}

impl Add for HwEstimate {
    type Output = HwEstimate;

    /// `+` is series composition ([`HwEstimate::then`]).
    fn add(self, rhs: HwEstimate) -> HwEstimate {
        self.then(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_adds_delay_parallel_takes_max() {
        let a = HwEstimate::new(10.0, 0.5);
        let b = HwEstimate::new(20.0, 0.3);
        assert_eq!((a + b).delay_ns, 0.8);
        assert_eq!(a.beside(b).delay_ns, 0.5);
        assert_eq!((a + b).area_grids, 30.0);
    }

    #[test]
    fn replication_scales_area_only() {
        let a = HwEstimate::new(10.0, 0.5).replicated(4);
        assert_eq!(a.area_grids, 40.0);
        assert_eq!(a.delay_ns, 0.5);
    }

    #[test]
    fn max_freq_is_inverse_delay() {
        let a = HwEstimate::new(1.0, 2.0);
        assert!((a.max_freq_mhz() - 500.0).abs() < 1e-9);
        assert!(HwEstimate::ZERO.max_freq_mhz().is_infinite());
    }

    #[test]
    fn area_only_drops_delay() {
        let a = HwEstimate::new(10.0, 0.5).area_only();
        assert_eq!(a, HwEstimate::new(10.0, 0.0));
    }
}
