//! Property-based tests for the hardware cost model: composition laws
//! and monotonicity of the structural estimators.

use hwmodel::{blocks, managers, CellLibrary, HwEstimate};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn composition_laws_hold(
        a_area in 0.0f64..1e6, a_delay in 0.0f64..100.0,
        b_area in 0.0f64..1e6, b_delay in 0.0f64..100.0,
    ) {
        let a = HwEstimate::new(a_area, a_delay);
        let b = HwEstimate::new(b_area, b_delay);
        // Series: delays add; parallel: slower path dominates.
        prop_assert!((a.then(b).delay_ns - (a_delay + b_delay)).abs() < 1e-9);
        prop_assert!((a.beside(b).delay_ns - a_delay.max(b_delay)).abs() < 1e-9);
        // Area always adds, in either composition.
        prop_assert!((a.then(b).area_grids - a.beside(b).area_grids).abs() < 1e-9);
        // Composition with ZERO is the identity.
        prop_assert_eq!(a.then(HwEstimate::ZERO), a);
        prop_assert_eq!(a.beside(HwEstimate::ZERO), a);
        // `then` and `beside` are commutative in area and delay.
        prop_assert_eq!(a.beside(b), b.beside(a));
        prop_assert!((a.then(b).delay_ns - b.then(a).delay_ns).abs() < 1e-9);
    }

    #[test]
    fn blocks_are_monotone_in_width(width in 1u32..63) {
        let lib = CellLibrary::cmos035();
        let wider = width + 1;
        prop_assert!(
            blocks::comparator(&lib, wider).area_grids >= blocks::comparator(&lib, width).area_grids
        );
        prop_assert!(blocks::adder(&lib, wider).area_grids > blocks::adder(&lib, width).area_grids);
        prop_assert!(blocks::lfsr(&lib, wider).area_grids > blocks::lfsr(&lib, width).area_grids);
        prop_assert!(
            blocks::modulo_unit(&lib, wider).delay_ns > blocks::modulo_unit(&lib, width).delay_ns
        );
    }

    #[test]
    fn managers_are_monotone_in_masters(masters in 2usize..11, ticket_bits in 2u32..16) {
        let lib = CellLibrary::cmos035();
        let s1 = managers::static_lottery_manager(&lib, masters, ticket_bits);
        let s2 = managers::static_lottery_manager(&lib, masters + 1, ticket_bits);
        prop_assert!(s2.total.area_grids > s1.total.area_grids);
        prop_assert!(s2.total.delay_ns >= s1.total.delay_ns);
        let d1 = managers::dynamic_lottery_manager(&lib, masters, ticket_bits);
        let d2 = managers::dynamic_lottery_manager(&lib, masters + 1, ticket_bits);
        prop_assert!(d2.total.area_grids > d1.total.area_grids);
        // The modulo unit keeps the dynamic design slower than static.
        prop_assert!(d1.total.delay_ns > s1.total.delay_ns);
    }

    #[test]
    fn totals_equal_block_sums(masters in 2usize..9, ticket_bits in 2u32..16) {
        let lib = CellLibrary::cmos035();
        for report in [
            managers::static_lottery_manager(&lib, masters, ticket_bits),
            managers::dynamic_lottery_manager(&lib, masters, ticket_bits),
            managers::static_priority_arbiter(&lib, masters),
            managers::tdma_arbiter(&lib, masters, masters * 6),
        ] {
            let area: f64 = report.blocks.iter().map(|b| b.estimate.area_grids).sum();
            let delay: f64 = report
                .blocks
                .iter()
                .filter(|b| b.on_critical_path)
                .map(|b| b.estimate.delay_ns)
                .sum();
            prop_assert!((report.total.area_grids - area).abs() < 1e-9, "{}", report.name);
            prop_assert!((report.total.delay_ns - delay).abs() < 1e-9, "{}", report.name);
            prop_assert!(report.total.area_grids > 0.0);
        }
    }
}
