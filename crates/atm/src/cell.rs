//! ATM cells.

use serde::{Deserialize, Serialize};
use socsim::Cycle;

/// Payload size of one ATM cell in 32-bit bus words: the 48-byte payload
/// of a 53-byte cell (the 5-byte header travels with the queued address,
/// not over the shared payload bus).
pub const PAYLOAD_WORDS: u32 = 12;

/// One ATM cell queued for forwarding: the address of its payload in the
/// shared memory plus bookkeeping for latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtmCell {
    /// Destination output port (dense index).
    pub port: usize,
    /// Word address of the payload in the shared memory.
    pub address: u32,
    /// Cycle at which the cell arrived at the switch.
    pub arrived_at: Cycle,
}

impl AtmCell {
    /// Creates a cell bound for `port`, stored at `address`, arriving at
    /// `arrived_at`.
    pub fn new(port: usize, address: u32, arrived_at: Cycle) -> Self {
        AtmCell { port, address, arrived_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_matches_atm_geometry() {
        // 48 payload bytes on a 32-bit bus.
        assert_eq!(PAYLOAD_WORDS * 4, 48);
    }

    #[test]
    fn cell_round_trips() {
        let c = AtmCell::new(2, 0x100, Cycle::new(5));
        assert_eq!(c.port, 2);
        assert_eq!(c.address, 0x100);
        assert_eq!(c.arrived_at, Cycle::new(5));
    }
}
