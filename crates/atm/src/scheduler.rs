//! The cell scheduler: writes arriving cells into the shared memory and
//! their addresses into per-port queues.

use crate::cell::AtmCell;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use socsim::Cycle;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Cell-arrival pattern for one output port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CellArrivals {
    /// Memoryless arrivals: a cell arrives each cycle with probability
    /// `rate` (heavily loaded data ports).
    Bernoulli {
        /// Expected cells per cycle.
        rate: f64,
    },
    /// Bursty arrivals: trains of `burst_min..=burst_max` back-to-back
    /// cells separated by off periods of `off_min..=off_max` cycles
    /// (the latency-critical port 4 traffic).
    Bursty {
        /// Fewest cells per train.
        burst_min: u32,
        /// Most cells per train.
        burst_max: u32,
        /// Shortest gap between trains.
        off_min: u64,
        /// Longest gap between trains.
        off_max: u64,
    },
}

/// Handle to one port's address queue, shared between the scheduler
/// (producer) and the output port (consumer).
pub type PortQueue = Rc<RefCell<VecDeque<AtmCell>>>;

/// The arrival side of the switch: advances all ports' arrival processes
/// and pushes cell addresses onto the per-port queues. Payload writes go
/// through the shared memory's second port and therefore do not contend
/// for the forwarding bus.
#[derive(Debug)]
pub struct CellScheduler {
    patterns: Vec<CellArrivals>,
    queues: Vec<PortQueue>,
    rng: StdRng,
    /// Next burst start per bursty port (ignored for Bernoulli ports).
    next_burst: Vec<u64>,
    /// First cycle not yet generated.
    horizon: u64,
    next_address: u32,
    scheduled: u64,
    /// Per-port address-queue capacity (`None` = unbounded).
    capacity: Option<usize>,
    /// Cells dropped per port because its queue was full.
    dropped: Vec<u64>,
}

impl CellScheduler {
    /// Creates a scheduler for `patterns.len()` ports with the given
    /// arrival patterns, seeded with `seed`, with unbounded queues.
    pub fn new(patterns: Vec<CellArrivals>, seed: u64) -> Self {
        Self::with_capacity(patterns, None, seed)
    }

    /// Like [`CellScheduler::new`], but with a per-port address-queue
    /// capacity: arriving cells that find their queue full are dropped
    /// and counted — real output-queued switches lose cells this way
    /// when an output is persistently oversubscribed.
    pub fn with_capacity(patterns: Vec<CellArrivals>, capacity: Option<usize>, seed: u64) -> Self {
        let n = patterns.len();
        CellScheduler {
            patterns,
            queues: (0..n).map(|_| Rc::new(RefCell::new(VecDeque::new()))).collect(),
            rng: StdRng::seed_from_u64(seed),
            next_burst: vec![0; n],
            horizon: 0,
            next_address: 0,
            scheduled: 0,
            capacity,
            dropped: vec![0; n],
        }
    }

    /// Cells dropped at `port` because its queue was full.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn dropped(&self, port: usize) -> u64 {
        self.dropped[port]
    }

    /// The shared queue handle for `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn queue(&self, port: usize) -> PortQueue {
        Rc::clone(&self.queues[port])
    }

    /// Total cells scheduled so far.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Generates all arrivals up to and including cycle `now`. Idempotent
    /// within a cycle, so every port may call it safely.
    pub fn advance_to(&mut self, now: Cycle) {
        while self.horizon <= now.index() {
            let cycle = self.horizon;
            for port in 0..self.patterns.len() {
                match self.patterns[port] {
                    CellArrivals::Bernoulli { rate } => {
                        if rate > 0.0 && self.rng.gen_bool(rate.min(1.0)) {
                            self.push_cell(port, cycle);
                        }
                    }
                    CellArrivals::Bursty { burst_min, burst_max, off_min, off_max } => {
                        if self.next_burst[port] == cycle {
                            let cells = self.rng.gen_range(burst_min..=burst_max);
                            for _ in 0..cells {
                                self.push_cell(port, cycle);
                            }
                            let off = self.rng.gen_range(off_min..=off_max);
                            self.next_burst[port] = cycle + 1 + off;
                        }
                    }
                }
            }
            self.horizon += 1;
        }
    }

    fn push_cell(&mut self, port: usize, cycle: u64) {
        self.scheduled += 1;
        if let Some(capacity) = self.capacity {
            if self.queues[port].borrow().len() >= capacity {
                self.dropped[port] += 1;
                return;
            }
        }
        let cell = AtmCell::new(port, self.next_address, Cycle::new(cycle));
        self.next_address = self.next_address.wrapping_add(crate::cell::PAYLOAD_WORDS);
        self.queues[port].borrow_mut().push_back(cell);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_rate_is_respected() {
        let mut sched = CellScheduler::new(vec![CellArrivals::Bernoulli { rate: 0.05 }], 1);
        sched.advance_to(Cycle::new(99_999));
        let got = sched.queue(0).borrow().len() as f64;
        assert!((got / 100_000.0 - 0.05).abs() < 0.005, "rate {}", got / 100_000.0);
        assert_eq!(sched.scheduled(), got as u64);
    }

    #[test]
    fn bursts_arrive_in_trains() {
        let mut sched = CellScheduler::new(
            vec![CellArrivals::Bursty { burst_min: 3, burst_max: 3, off_min: 50, off_max: 50 }],
            2,
        );
        sched.advance_to(Cycle::new(200));
        let queue = sched.queue(0);
        let cells: Vec<AtmCell> = queue.borrow().iter().copied().collect();
        // Trains of 3 cells sharing an arrival stamp, 51 cycles apart.
        assert!(cells.len() >= 9);
        assert_eq!(cells[0].arrived_at, cells[2].arrived_at);
        assert_eq!(cells[3].arrived_at - cells[0].arrived_at, 51);
    }

    #[test]
    fn advance_is_idempotent_within_a_cycle() {
        let mut sched = CellScheduler::new(vec![CellArrivals::Bernoulli { rate: 1.0 }], 3);
        sched.advance_to(Cycle::new(9));
        let after_first = sched.scheduled();
        sched.advance_to(Cycle::new(9));
        assert_eq!(sched.scheduled(), after_first);
        assert_eq!(after_first, 10);
    }

    #[test]
    fn addresses_step_by_payload_size() {
        let mut sched = CellScheduler::new(vec![CellArrivals::Bernoulli { rate: 1.0 }], 4);
        sched.advance_to(Cycle::new(2));
        let queue = sched.queue(0);
        let q = queue.borrow();
        assert_eq!(q[1].address - q[0].address, crate::cell::PAYLOAD_WORDS);
    }
}
