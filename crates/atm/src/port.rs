//! Output ports: consume queued cell addresses and fetch payloads over
//! the shared bus.

use crate::cell::PAYLOAD_WORDS;
use crate::scheduler::{CellScheduler, PortQueue};
use socsim::{Cycle, SlaveId, TrafficSource, Transaction};
use std::cell::RefCell;
use std::rc::Rc;

/// One output port of the switch.
///
/// The port polls its address queue; for every queued cell it issues a
/// bus transaction reading the cell's payload from the shared memory.
/// The transaction is stamped with the *cell's arrival cycle*, so the
/// measured bus latency covers the full queueing delay through the
/// switch, exactly like the paper's "latency (cycles/word)" column.
///
/// Ports share the [`CellScheduler`]; whichever port is polled first in a
/// cycle advances the arrival processes for everyone.
pub struct OutputPort {
    port: usize,
    queue: PortQueue,
    scheduler: Rc<RefCell<CellScheduler>>,
    shared_memory: SlaveId,
    forwarded: u64,
    pipeline_limit: usize,
}

impl std::fmt::Debug for OutputPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutputPort")
            .field("port", &self.port)
            .field("forwarded", &self.forwarded)
            .finish()
    }
}

impl OutputPort {
    /// Creates the output port `port` attached to `scheduler`, reading
    /// payloads from `shared_memory`.
    pub fn new(port: usize, scheduler: Rc<RefCell<CellScheduler>>, shared_memory: SlaveId) -> Self {
        let queue = scheduler.borrow().queue(port);
        OutputPort {
            port,
            queue,
            scheduler,
            shared_memory,
            forwarded: 0,
            pipeline_limit: usize::MAX,
        }
    }

    /// Limits how many cells the port may have outstanding at its bus
    /// interface. `1` models the paper's port literally — poll the
    /// queue, dequeue one cell, fetch it, then poll again — and makes
    /// finite address queues meaningful: cells back up in the queue
    /// rather than at the bus interface.
    #[must_use]
    pub fn with_pipeline_limit(mut self, limit: usize) -> Self {
        self.pipeline_limit = limit.max(1);
        self
    }

    /// Cells this port has begun forwarding (bus transactions issued).
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Cells still waiting in the port's address queue.
    pub fn queued(&self) -> usize {
        self.queue.borrow().len()
    }
}

impl TrafficSource for OutputPort {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        self.poll_with_backlog(now, 0)
    }

    fn poll_with_backlog(&mut self, now: Cycle, backlog: usize) -> Option<Transaction> {
        self.scheduler.borrow_mut().advance_to(now);
        if backlog >= self.pipeline_limit {
            return None;
        }
        let cell = self.queue.borrow_mut().pop_front()?;
        self.forwarded += 1;
        Some(Transaction::new(self.shared_memory, PAYLOAD_WORDS, cell.arrived_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::CellArrivals;

    fn scheduler(patterns: Vec<CellArrivals>) -> Rc<RefCell<CellScheduler>> {
        Rc::new(RefCell::new(CellScheduler::new(patterns, 5)))
    }

    #[test]
    fn port_forwards_queued_cells_in_order() {
        let sched = scheduler(vec![CellArrivals::Bernoulli { rate: 1.0 }]);
        let mut port = OutputPort::new(0, Rc::clone(&sched), SlaveId::new(0));
        let t0 = port.poll(Cycle::new(0)).expect("cell at cycle 0");
        assert_eq!(t0.words(), PAYLOAD_WORDS);
        assert_eq!(t0.issued_at(), Cycle::new(0));
        // One cell per cycle arrives and is drained, so the queue stays
        // shallow and stamps track the poll cycle.
        let t5 = (1..=5).filter_map(|c| port.poll(Cycle::new(c))).last().expect("cells");
        assert!(t5.issued_at() <= Cycle::new(5));
        assert_eq!(port.forwarded(), 6);
    }

    #[test]
    fn ports_only_see_their_own_queue() {
        let sched = scheduler(vec![
            CellArrivals::Bernoulli { rate: 0.0 },
            CellArrivals::Bernoulli { rate: 1.0 },
        ]);
        let mut p0 = OutputPort::new(0, Rc::clone(&sched), SlaveId::new(0));
        let mut p1 = OutputPort::new(1, Rc::clone(&sched), SlaveId::new(0));
        assert!(p0.poll(Cycle::new(0)).is_none());
        assert!(p1.poll(Cycle::new(0)).is_some());
    }

    #[test]
    fn burst_cells_keep_their_arrival_stamp_while_queued() {
        let sched = scheduler(vec![CellArrivals::Bursty {
            burst_min: 4,
            burst_max: 4,
            off_min: 500,
            off_max: 500,
        }]);
        let mut port = OutputPort::new(0, Rc::clone(&sched), SlaveId::new(0));
        let stamps: Vec<u64> = (0..10u64)
            .filter_map(|c| port.poll(Cycle::new(c)).map(|t| t.issued_at().index()))
            .collect();
        // All four cells of the first train carry the train's arrival cycle.
        assert_eq!(stamps, vec![0, 0, 0, 0]);
        assert_eq!(port.queued(), 0);
    }
}
