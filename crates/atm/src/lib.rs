//! # atm-switch — the paper's output-queued ATM switch case study (§5.3)
//!
//! Models the cell-forwarding unit of a 4-port output-queued ATM switch:
//! arriving cell payloads are written into a dual-ported shared memory
//! (consuming no bus bandwidth, since the write side uses the memory's
//! second port), while the starting address of each cell is pushed onto
//! the destination port's local queue. Each output port polls its queue,
//! dequeues a cell address, acquires the shared system bus, reads the
//! payload from the shared memory, and forwards the cell onto its output
//! link.
//!
//! Quality-of-service goals (paper §5.3):
//!
//! * traffic through port 4 must cross the switch with minimum latency;
//! * ports 1, 2 and 3 must share the bus bandwidth in a 1:2:4 ratio.
//!
//! The switch is assembled on the [`socsim`] bus with any arbitration
//! protocol; [`SwitchConfig::run`] reproduces one row of the paper's
//! Table 1.
//!
//! ```
//! use atm_switch::{SwitchConfig, SwitchArbiter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = SwitchConfig::paper_setup().run(SwitchArbiter::Lottery, 200_000, 7)?;
//! // Port 3 (highest-weight data port) receives the largest share.
//! assert!(report.bandwidth_fraction(2) > report.bandwidth_fraction(0));
//! # Ok(())
//! # }
//! ```

pub mod cell;
pub mod port;
pub mod report;
pub mod scheduler;
pub mod switch;

pub use cell::AtmCell;
pub use port::OutputPort;
pub use report::AtmReport;
pub use scheduler::{CellArrivals, CellScheduler};
pub use switch::{SwitchArbiter, SwitchConfig};
