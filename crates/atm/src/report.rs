//! Per-port performance reports (the rows of the paper's Table 1).

use serde::{Deserialize, Serialize};

/// Measured switch performance under one communication architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtmReport {
    /// Architecture name (arbiter protocol).
    pub architecture: String,
    /// Fraction of total bus bandwidth used by each port.
    pub bandwidth: Vec<f64>,
    /// Average bus cycles per word, per port (`None` if a port completed
    /// no cells during the measurement window).
    pub latency_cycles_per_word: Vec<Option<f64>>,
    /// Cells fully forwarded per port.
    pub cells_forwarded: Vec<u64>,
    /// Cells dropped per port at full address queues (always zero with
    /// unbounded queues).
    pub cells_dropped: Vec<u64>,
    /// Cells lost on the bus itself, per port: the payload fetch
    /// exhausted its retries or was aborted by the watchdog under fault
    /// injection (always zero on a fault-free bus).
    pub cells_aborted: Vec<u64>,
    /// Bus utilization over the measurement window.
    pub utilization: f64,
}

impl AtmReport {
    /// Bandwidth fraction of `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn bandwidth_fraction(&self, port: usize) -> f64 {
        self.bandwidth[port]
    }

    /// Latency in cycles/word for `port`, if it forwarded any cells.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn latency(&self, port: usize) -> Option<f64> {
        self.latency_cycles_per_word[port]
    }

    /// Ratio of two ports' bandwidth fractions (`a / b`).
    pub fn bandwidth_ratio(&self, a: usize, b: usize) -> f64 {
        self.bandwidth[a] / self.bandwidth[b]
    }

    /// Cells `port` lost anywhere in the switch: at a full address
    /// queue or aborted on a faulty bus.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn cells_lost(&self, port: usize) -> u64 {
        self.cells_dropped[port] + self.cells_aborted[port]
    }

    /// Fraction of `port`'s cells lost (queue drops plus bus aborts,
    /// over everything that arrived), or zero if nothing arrived.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn cell_loss_ratio(&self, port: usize) -> f64 {
        let lost = self.cells_lost(port);
        let seen = self.cells_forwarded[port] + lost;
        if seen == 0 {
            0.0
        } else {
            lost as f64 / seen as f64
        }
    }
}

impl std::fmt::Display for AtmReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}:", self.architecture)?;
        for (i, bw) in self.bandwidth.iter().enumerate() {
            let lat = self.latency_cycles_per_word[i]
                .map_or_else(|| "   -  ".into(), |l| format!("{l:6.2}"));
            writeln!(
                f,
                "  port {}: bandwidth {:5.1}%  latency {} cycles/word  ({} cells)",
                i + 1,
                bw * 100.0,
                lat,
                self.cells_forwarded[i],
            )?;
        }
        let dropped: u64 = self.cells_dropped.iter().sum();
        let aborted: u64 = self.cells_aborted.iter().sum();
        if dropped + aborted > 0 {
            writeln!(f, "  cell loss: {dropped} queue drops, {aborted} bus aborts")?;
        }
        write!(f, "  bus utilization {:5.1}%", self.utilization * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AtmReport {
        AtmReport {
            architecture: "lottery".into(),
            bandwidth: vec![0.1, 0.2, 0.4, 0.05],
            latency_cycles_per_word: vec![Some(3.0), Some(2.5), Some(2.0), Some(1.8)],
            cells_forwarded: vec![100, 200, 400, 50],
            cells_dropped: vec![0, 0, 100, 0],
            cells_aborted: vec![0, 50, 0, 0],
            utilization: 0.75,
        }
    }

    #[test]
    fn accessors_and_ratio() {
        let r = report();
        assert_eq!(r.bandwidth_fraction(2), 0.4);
        assert_eq!(r.latency(3), Some(1.8));
        assert!((r.bandwidth_ratio(2, 0) - 4.0).abs() < 1e-12);
        assert!((r.cell_loss_ratio(2) - 0.2).abs() < 1e-12);
        assert_eq!(r.cell_loss_ratio(0), 0.0);
    }

    #[test]
    fn loss_ratio_counts_bus_aborts() {
        let r = report();
        // Port 2: 200 forwarded, 50 aborted on the bus.
        assert_eq!(r.cells_lost(1), 50);
        assert!((r.cell_loss_ratio(1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_lists_every_port() {
        let text = report().to_string();
        assert!(text.contains("port 1"));
        assert!(text.contains("port 4"));
        assert!(text.contains("utilization"));
        assert!(text.contains("100 queue drops, 50 bus aborts"));
    }
}
