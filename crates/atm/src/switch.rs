//! Switch assembly and the Table 1 experiment runner.

use crate::port::OutputPort;
use crate::report::AtmReport;
use crate::scheduler::{CellArrivals, CellScheduler};
use arbiters::{StaticPriorityArbiter, TdmaArbiter, WheelLayout};
use lotterybus::{StaticLotteryArbiter, TicketAssignment};
use serde::{Deserialize, Serialize};
use socsim::{Arbiter, BusConfig, FaultConfig, MasterId, RetryPolicy, SlaveId, SystemBuilder};
use std::cell::RefCell;
use std::error::Error;
use std::rc::Rc;

/// Which communication architecture drives the switch's shared bus —
/// the three rows of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchArbiter {
    /// Static priority: port weights become priority levels.
    StaticPriority,
    /// Two-level TDMA: port weights become timing-wheel slot counts.
    Tdma,
    /// LOTTERYBUS: port weights become lottery tickets.
    Lottery,
}

impl SwitchArbiter {
    /// The architecture name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SwitchArbiter::StaticPriority => "static priority",
            SwitchArbiter::Tdma => "TDMA",
            SwitchArbiter::Lottery => "LOTTERYBUS",
        }
    }
}

/// Configuration of the cell-forwarding unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// Cell-arrival pattern per output port.
    pub arrivals: Vec<CellArrivals>,
    /// QoS weights per port, applied uniformly as priorities, slot
    /// counts and lottery tickets (paper §5.3: "assigned uniformly in
    /// the ratio 1:2:4:6 for ports 1, 2, 3, 4").
    pub weights: Vec<u32>,
    /// Shared-bus parameters.
    pub bus: BusConfig,
    /// Warm-up cycles discarded before measurement.
    pub warmup: u64,
    /// TDMA wheel slots per weight unit (contiguous blocks, as in the
    /// paper's Figure 5 reservations).
    pub tdma_block: u32,
    /// Per-port address-queue capacity in cells (`None` = unbounded).
    /// With a bound, cells arriving at a full queue are dropped and
    /// reported as cell loss.
    pub queue_capacity: Option<usize>,
    /// Fault injection on the shared bus (`None` = fault-free). The
    /// plan seed lives inside the config, so a faulty run is exactly
    /// reproducible.
    pub fault: Option<FaultConfig>,
    /// Retry policy for payload fetches that hit injected errors. A
    /// fetch that exhausts its retries is a lost cell.
    pub retry: Option<RetryPolicy>,
    /// Watchdog timeout aborting wedged payload fetches, in cycles.
    pub timeout: Option<u64>,
}

impl SwitchConfig {
    /// The paper's §5.3 setup: ports 1–3 are heavily loaded data ports
    /// wanting bandwidth in ratio 1:2:4; port 4 carries sparse bursty
    /// latency-critical traffic; weights 1:2:4:6.
    ///
    /// The TDMA wheel uses 48 slots per weight unit (a 624-slot frame):
    /// commercial TDMA on-chip buses reserve long contiguous frames, and
    /// it is exactly this coarse slotting that makes TDMA latency suffer
    /// when bursty requests misalign with the reservations — the effect
    /// Table 1 reports (port-4 latency ≈ 7× the static-priority bus).
    pub fn paper_setup() -> Self {
        let payload = f64::from(crate::cell::PAYLOAD_WORDS);
        SwitchConfig {
            arrivals: vec![
                CellArrivals::Bernoulli { rate: 0.20 / payload },
                CellArrivals::Bernoulli { rate: 0.35 / payload },
                CellArrivals::Bernoulli { rate: 0.60 / payload },
                CellArrivals::Bursty { burst_min: 1, burst_max: 2, off_min: 300, off_max: 900 },
            ],
            weights: vec![1, 2, 4, 6],
            bus: BusConfig::default(),
            warmup: 20_000,
            tdma_block: 48,
            queue_capacity: None,
            fault: None,
            retry: None,
            timeout: None,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.arrivals.len()
    }

    /// Builds the arbiter realizing `arch` from the port weights.
    ///
    /// # Errors
    ///
    /// Returns an error if the weights are invalid for the protocol
    /// (e.g. duplicate priorities for static priority).
    pub fn build_arbiter(
        &self,
        arch: SwitchArbiter,
        seed: u64,
    ) -> Result<Box<dyn Arbiter>, Box<dyn Error>> {
        Ok(match arch {
            SwitchArbiter::StaticPriority => {
                Box::new(StaticPriorityArbiter::new(self.weights.clone())?)
            }
            SwitchArbiter::Tdma => {
                let slots: Vec<u32> = self.weights.iter().map(|&w| w * self.tdma_block).collect();
                Box::new(TdmaArbiter::new(&slots, WheelLayout::Contiguous)?)
            }
            SwitchArbiter::Lottery => {
                let tickets = TicketAssignment::new(self.weights.clone())?;
                Box::new(StaticLotteryArbiter::with_seed(tickets, seed as u32 | 1)?)
            }
        })
    }

    /// Runs the switch for `cycles` measured cycles (after warm-up)
    /// under architecture `arch`, reproducing one row of Table 1.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration cannot be assembled (bad
    /// weights or bus parameters).
    pub fn run(
        &self,
        arch: SwitchArbiter,
        cycles: u64,
        seed: u64,
    ) -> Result<AtmReport, Box<dyn Error>> {
        let scheduler = Rc::new(RefCell::new(CellScheduler::with_capacity(
            self.arrivals.clone(),
            self.queue_capacity,
            seed,
        )));
        let shared_memory = SlaveId::new(0);
        let mut builder: SystemBuilder = SystemBuilder::new(self.bus);
        // With bounded address queues the port processes one cell at a
        // time (the paper's poll/dequeue/fetch loop), so overload backs
        // up into the queue and registers as cell loss; with unbounded
        // queues the interface pipelines freely.
        let pipeline = if self.queue_capacity.is_some() { 1 } else { usize::MAX };
        for port in 0..self.ports() {
            builder = builder.master(
                format!("port{}", port + 1),
                Box::new(
                    OutputPort::new(port, Rc::clone(&scheduler), shared_memory)
                        .with_pipeline_limit(pipeline),
                ),
            );
        }
        if let Some(fault) = self.fault {
            builder = builder.faults(fault);
        }
        if let Some(retry) = self.retry {
            builder = builder.retry_policy(retry);
        }
        if let Some(timeout) = self.timeout {
            builder = builder.timeout(timeout);
        }
        let mut system = builder.arbiter(self.build_arbiter(arch, seed)?).build()?;
        system.warm_up(self.warmup);
        system.run(cycles);
        let stats = system.stats();
        let ports = self.ports();
        let cells_dropped = (0..ports).map(|p| scheduler.borrow().dropped(p)).collect();
        let cells_aborted = (0..ports).map(|p| stats.master(MasterId::new(p)).aborted).collect();
        Ok(AtmReport {
            architecture: arch.name().into(),
            bandwidth: (0..ports).map(|p| stats.bandwidth_fraction(MasterId::new(p))).collect(),
            latency_cycles_per_word: (0..ports)
                .map(|p| stats.master(MasterId::new(p)).cycles_per_word())
                .collect(),
            cells_forwarded: (0..ports)
                .map(|p| stats.master(MasterId::new(p)).transactions)
                .collect(),
            cells_dropped,
            cells_aborted,
            utilization: stats.bus_utilization(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_is_consistent() {
        let cfg = SwitchConfig::paper_setup();
        assert_eq!(cfg.ports(), 4);
        assert_eq!(cfg.weights, vec![1, 2, 4, 6]);
    }

    #[test]
    fn lottery_run_shares_bandwidth_by_weight() {
        let cfg = SwitchConfig::paper_setup();
        let report = cfg.run(SwitchArbiter::Lottery, 150_000, 11).expect("runs");
        // Ports 1–3 are saturated relative to entitlement: their shares
        // should be ordered by weight 1 < 2 < 4.
        assert!(report.bandwidth_fraction(1) > report.bandwidth_fraction(0));
        assert!(report.bandwidth_fraction(2) > report.bandwidth_fraction(1));
        assert!(report.utilization > 0.5);
    }

    #[test]
    fn static_priority_starves_port_one() {
        let cfg = SwitchConfig::paper_setup();
        let report = cfg.run(SwitchArbiter::StaticPriority, 150_000, 11).expect("runs");
        // Port 1 has the lowest priority and the bus is oversubscribed.
        assert!(
            report.bandwidth_fraction(0) < 0.08,
            "port 1 got {:.3}",
            report.bandwidth_fraction(0)
        );
        // Port 4 (highest priority) sees near-minimum latency.
        let l4 = report.latency(3).expect("port 4 forwards cells");
        assert!(l4 < 2.5, "port 4 latency {l4}");
    }

    #[test]
    fn tdma_hurts_port_four_latency() {
        let cfg = SwitchConfig::paper_setup();
        let tdma = cfg.run(SwitchArbiter::Tdma, 150_000, 11).expect("runs");
        let lottery = cfg.run(SwitchArbiter::Lottery, 150_000, 11).expect("runs");
        let (lt, ll) = (tdma.latency(3).unwrap(), lottery.latency(3).unwrap());
        assert!(lt > 1.5 * ll, "TDMA latency {lt:.2} should far exceed lottery {ll:.2}");
    }

    #[test]
    fn finite_queues_drop_cells_on_oversubscribed_ports() {
        let mut cfg = SwitchConfig::paper_setup();
        cfg.queue_capacity = Some(8);
        let report = cfg.run(SwitchArbiter::StaticPriority, 150_000, 11).expect("runs");
        // Port 1 is starved by the priority scheme, so its bounded queue
        // overflows and cells are lost; the favoured port 4 loses none.
        assert!(report.cells_dropped[0] > 0, "port 1 drops: {:?}", report.cells_dropped);
        assert!(report.cell_loss_ratio(0) > 0.5);
        assert_eq!(report.cells_dropped[3], 0);

        // The unbounded default never drops.
        let unbounded = SwitchConfig::paper_setup()
            .run(SwitchArbiter::StaticPriority, 50_000, 11)
            .expect("runs");
        assert!(unbounded.cells_dropped.iter().all(|&d| d == 0));
    }

    #[test]
    fn faulty_bus_loses_cells_when_retries_run_out() {
        use socsim::{FaultConfig, RetryPolicy};
        let mut cfg = SwitchConfig::paper_setup();
        cfg.fault = Some(FaultConfig { slave_error_rate: 0.05, ..FaultConfig::with_seed(99) });
        cfg.retry = Some(RetryPolicy::exponential(2, 1));
        let report = cfg.run(SwitchArbiter::Lottery, 100_000, 11).expect("runs");
        let aborted: u64 = report.cells_aborted.iter().sum();
        assert!(aborted > 0, "5% error rate with 2 retries loses cells: {report}");
        // Losses show up in the per-port loss ratio even with unbounded
        // address queues.
        let lossy = (0..4).find(|&p| report.cells_aborted[p] > 0).expect("some port lost");
        assert!(report.cell_loss_ratio(lossy) > 0.0);

        // Bit-for-bit reproducible: same config and seed, same report.
        let again = cfg.run(SwitchArbiter::Lottery, 100_000, 11).expect("runs");
        assert_eq!(report, again);
    }

    #[test]
    fn fault_free_switch_never_aborts_cells() {
        let cfg = SwitchConfig::paper_setup();
        let report = cfg.run(SwitchArbiter::Lottery, 50_000, 11).expect("runs");
        assert!(report.cells_aborted.iter().all(|&a| a == 0));
    }

    #[test]
    fn every_architecture_builds() {
        let cfg = SwitchConfig::paper_setup();
        for arch in [SwitchArbiter::StaticPriority, SwitchArbiter::Tdma, SwitchArbiter::Lottery] {
            assert!(cfg.build_arbiter(arch, 3).is_ok(), "{}", arch.name());
        }
    }
}
