//! Property-based tests for the ATM switch: cell conservation and
//! report sanity under randomized configurations.

use atm_switch::{CellArrivals, CellScheduler, SwitchArbiter, SwitchConfig};
use proptest::prelude::*;
use socsim::Cycle;

fn arrivals_strategy() -> impl Strategy<Value = CellArrivals> {
    prop_oneof![
        (0.001f64..0.05).prop_map(|rate| CellArrivals::Bernoulli { rate }),
        (1u32..4, 0u32..4, 50u64..300, 0u64..300).prop_map(|(bmin, extra, omin, oextra)| {
            CellArrivals::Bursty {
                burst_min: bmin,
                burst_max: bmin + extra,
                off_min: omin,
                off_max: omin + oextra,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cells_are_conserved_by_the_scheduler(
        patterns in prop::collection::vec(arrivals_strategy(), 1..5),
        horizon in 1_000u64..20_000,
        seed in 0u64..1_000_000,
    ) {
        let n = patterns.len();
        let mut scheduler = CellScheduler::new(patterns, seed);
        scheduler.advance_to(Cycle::new(horizon));
        let queued: usize = (0..n).map(|p| scheduler.queue(p).borrow().len()).sum();
        prop_assert_eq!(scheduler.scheduled(), queued as u64);
        // Every queued cell is stamped within the generated horizon and
        // addressed to its own port.
        for p in 0..n {
            let queue = scheduler.queue(p);
            let mut last = 0u64;
            for cell in queue.borrow().iter() {
                prop_assert_eq!(cell.port, p);
                prop_assert!(cell.arrived_at.index() <= horizon);
                prop_assert!(cell.arrived_at.index() >= last, "FIFO order per port");
                last = cell.arrived_at.index();
            }
        }
    }

    #[test]
    fn switch_reports_are_sane_for_any_architecture(
        patterns in prop::collection::vec(arrivals_strategy(), 2..5),
        seed in 0u64..1_000_000,
    ) {
        let n = patterns.len();
        let cfg = SwitchConfig {
            arrivals: patterns,
            weights: (1..=n as u32).collect(),
            bus: socsim::BusConfig::default(),
            warmup: 0,
            tdma_block: 8,
            queue_capacity: None,
            fault: None,
            retry: None,
            timeout: None,
        };
        for arch in [SwitchArbiter::StaticPriority, SwitchArbiter::Tdma, SwitchArbiter::Lottery] {
            let report = cfg.run(arch, 20_000, seed).expect("switch runs");
            let bw_total: f64 = report.bandwidth.iter().sum();
            prop_assert!((bw_total - report.utilization).abs() < 1e-9, "{}", arch.name());
            prop_assert!(report.utilization <= 1.0 + 1e-9);
            for p in 0..n {
                if let Some(lat) = report.latency_cycles_per_word[p] {
                    prop_assert!(lat >= 1.0, "{}: port {} latency {}", arch.name(), p, lat);
                }
            }
        }
    }

    #[test]
    fn static_priority_weights_must_be_unique(
        dup in 1u32..5,
    ) {
        let cfg = SwitchConfig {
            arrivals: vec![CellArrivals::Bernoulli { rate: 0.01 }; 2],
            weights: vec![dup, dup],
            bus: socsim::BusConfig::default(),
            warmup: 0,
            tdma_block: 4,
            queue_capacity: None,
            fault: None,
            retry: None,
            timeout: None,
        };
        prop_assert!(cfg.build_arbiter(SwitchArbiter::StaticPriority, 1).is_err());
        // TDMA and lottery tolerate equal weights.
        prop_assert!(cfg.build_arbiter(SwitchArbiter::Tdma, 1).is_ok());
        prop_assert!(cfg.build_arbiter(SwitchArbiter::Lottery, 1).is_ok());
    }
}
