//! Development aid: sweeps switch parameters to locate a regime that
//! reproduces the paper's Table 1 shape (static ≈ lottery ≪ TDMA for
//! port-4 latency; 1:2:4 bandwidth only under lottery).
//!
//! Every (tdma-block, burst, architecture) cell is an independent
//! simulation, so the whole grid fans out over worker threads via
//! `socsim::pool`; results come back in grid order and the printed
//! table never depends on worker scheduling. Pass `--jobs N` to pin
//! the worker count (default: all cores).

use atm_switch::{AtmReport, CellArrivals, SwitchArbiter, SwitchConfig};
use std::time::Instant;

const TDMA_BLOCKS: [u32; 5] = [1, 6, 12, 24, 48];
const BURSTS: [(u32, u32); 3] = [(1, 2), (2, 4), (4, 6)];
const ARCHS: [SwitchArbiter; 3] =
    [SwitchArbiter::StaticPriority, SwitchArbiter::Tdma, SwitchArbiter::Lottery];

// The switch and its arbiter hold `Rc` internals, so they are built
// inside each job from this plain (Send + Sync) cell description.
fn run_cell(
    tdma_block: u32,
    (burst_min, burst_max): (u32, u32),
    arch: SwitchArbiter,
) -> Result<AtmReport, String> {
    let mut cfg = SwitchConfig::paper_setup();
    cfg.tdma_block = tdma_block;
    cfg.arrivals[3] = CellArrivals::Bursty { burst_min, burst_max, off_min: 300, off_max: 900 };
    cfg.run(arch, 200_000, 11).map_err(|e| e.to_string())
}

fn jobs_arg() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().position(|a| a == "--jobs") {
        Some(i) => args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("usage: tune_sweep [--jobs N]");
            std::process::exit(2);
        }),
        None => 0, // all available cores
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs = jobs_arg();
    let grid: Vec<(u32, (u32, u32), SwitchArbiter)> = TDMA_BLOCKS
        .iter()
        .flat_map(|&block| {
            BURSTS
                .iter()
                .flat_map(move |&burst| ARCHS.iter().map(move |&arch| (block, burst, arch)))
        })
        .collect();

    let start = Instant::now();
    let results = socsim::pool::parallel_map(jobs, &grid, |_, &(block, burst, arch)| {
        run_cell(block, burst, arch)
    });
    let reports: Vec<AtmReport> = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    eprintln!(
        "ran {} switch simulations in {:.3}s with {} worker(s)",
        grid.len(),
        start.elapsed().as_secs_f64(),
        socsim::pool::resolve_jobs(jobs).min(grid.len()),
    );

    for (i, &(block, (bmin, bmax), _)) in grid.iter().enumerate().step_by(ARCHS.len()) {
        let mut row = format!("block={block:>2} burst={bmin}-{bmax}:");
        for (a, arch) in ARCHS.iter().enumerate() {
            let r = &reports[i + a];
            row += &format!(
                "  {}: L4={:5.2} bw=[{:.0}%,{:.0}%,{:.0}%,{:.0}%]",
                match arch {
                    SwitchArbiter::StaticPriority => "SP",
                    SwitchArbiter::Tdma => "TD",
                    SwitchArbiter::Lottery => "LO",
                },
                r.latency(3).unwrap_or(f64::NAN),
                r.bandwidth_fraction(0) * 100.0,
                r.bandwidth_fraction(1) * 100.0,
                r.bandwidth_fraction(2) * 100.0,
                r.bandwidth_fraction(3) * 100.0,
            );
        }
        println!("{row}");
    }
    Ok(())
}
