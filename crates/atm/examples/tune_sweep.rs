//! Development aid: sweeps switch parameters to locate a regime that
//! reproduces the paper's Table 1 shape (static ≈ lottery ≪ TDMA for
//! port-4 latency; 1:2:4 bandwidth only under lottery).

use atm_switch::{CellArrivals, SwitchArbiter, SwitchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for tdma_block in [1u32, 6, 12, 24, 48] {
        for (bmin, bmax) in [(1u32, 2u32), (2, 4), (4, 6)] {
            let mut cfg = SwitchConfig::paper_setup();
            cfg.tdma_block = tdma_block;
            cfg.arrivals[3] = CellArrivals::Bursty {
                burst_min: bmin,
                burst_max: bmax,
                off_min: 300,
                off_max: 900,
            };
            let mut row = format!("block={tdma_block:>2} burst={bmin}-{bmax}:");
            for arch in [SwitchArbiter::StaticPriority, SwitchArbiter::Tdma, SwitchArbiter::Lottery]
            {
                let r = cfg.run(arch, 200_000, 11)?;
                row += &format!(
                    "  {}: L4={:5.2} bw=[{:.0}%,{:.0}%,{:.0}%,{:.0}%]",
                    match arch {
                        SwitchArbiter::StaticPriority => "SP",
                        SwitchArbiter::Tdma => "TD",
                        SwitchArbiter::Lottery => "LO",
                    },
                    r.latency(3).unwrap_or(f64::NAN),
                    r.bandwidth_fraction(0) * 100.0,
                    r.bandwidth_fraction(1) * 100.0,
                    r.bandwidth_fraction(2) * 100.0,
                    r.bandwidth_fraction(3) * 100.0,
                );
            }
            println!("{row}");
        }
    }
    Ok(())
}
