//! Property tests for the closed-form predictors: structural
//! invariants that must hold at every point of the design space the
//! search scans, not just at hand-picked workloads.
//!
//! * **Monotone in tickets** — giving a master more tickets (weight)
//!   never reduces its own predicted bandwidth share, for every
//!   protocol. (Round-robin ignores weights, which satisfies the bound
//!   trivially; DRR's burst clamp flattens it beyond one burst per
//!   round, which still satisfies it.)
//! * **Monotone in load** — raising a master's arrival rate never
//!   reduces its own share, and never *improves* its own latency
//!   (treating an unstable queue as infinite latency).
//! * **Bandwidth conservation** — predicted shares sum to at most the
//!   bus capacity, and utilization stays in [0, 1].
//! * **Graceful at zero load** — an idle master predicts a zero share,
//!   a stable queue, and a finite queueing-free latency.

use analytic::{MasterModel, Protocol, SystemModel};
use proptest::prelude::*;
use traffic_gen::SizeDist;

const PROTOCOLS: [Protocol; 5] = [
    Protocol::StaticPriority,
    Protocol::RoundRobin,
    Protocol::DeficitRoundRobin,
    Protocol::Tdma2Level,
    Protocol::LotteryStatic,
];

/// One randomly drawn master: arrival rate, fixed message size, weight.
#[derive(Debug, Clone)]
struct Draw {
    lambda: f64,
    size: u32,
    weight: u32,
}

fn draw() -> impl Strategy<Value = Draw> {
    (0.0..0.08f64, 1..48u32, 1..24u32).prop_map(|(lambda, size, weight)| Draw {
        lambda,
        size,
        weight,
    })
}

fn system(protocol: Protocol, draws: &[Draw], stall: u32, burst: u32) -> SystemModel {
    let masters = draws
        .iter()
        .map(|d| MasterModel::new(d.lambda, SizeDist::fixed(d.size), d.weight, stall, burst))
        .collect();
    let mut model = SystemModel::new(protocol, masters);
    model.max_burst = burst;
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn share_is_monotone_in_own_tickets(
        draws in prop::collection::vec(draw(), 2..8),
        stall in 0..8u32,
        burst in 1..32u32,
        bump in 1..16u32,
    ) {
        for protocol in PROTOCOLS {
            let before = system(protocol, &draws, stall, burst).predict();
            let mut richer = draws.clone();
            richer[0].weight += bump;
            let after = system(protocol, &richer, stall, burst).predict();
            prop_assert!(
                after.masters[0].share >= before.masters[0].share - 1e-9,
                "{protocol:?}: weight {} -> {} dropped master 0's share {} -> {}",
                draws[0].weight,
                richer[0].weight,
                before.masters[0].share,
                after.masters[0].share,
            );
        }
    }

    #[test]
    fn share_is_monotone_and_latency_anti_monotone_in_own_load(
        draws in prop::collection::vec(draw(), 2..8),
        stall in 0..8u32,
        burst in 1..32u32,
        factor in 1.1..4.0f64,
    ) {
        for protocol in PROTOCOLS {
            let before = system(protocol, &draws, stall, burst).predict();
            let mut hotter = draws.clone();
            hotter[0].lambda *= factor;
            let after = system(protocol, &hotter, stall, burst).predict();
            prop_assert!(
                after.masters[0].share >= before.masters[0].share - 1e-9,
                "{protocol:?}: scaling master 0's load by {factor} dropped its share \
                 {} -> {}",
                before.masters[0].share,
                after.masters[0].share,
            );
            // More of one's own traffic never shortens one's own queue:
            // an unstable queue counts as infinite latency.
            let wait = |p: &analytic::Prediction| p.cycles_per_word.unwrap_or(f64::INFINITY);
            prop_assert!(
                wait(&after.masters[0]) >= wait(&before.masters[0]) - 1e-6,
                "{protocol:?}: extra load improved master 0's latency {:?} -> {:?}",
                before.masters[0].cycles_per_word,
                after.masters[0].cycles_per_word,
            );
        }
    }

    #[test]
    fn shares_conserve_bus_capacity(
        draws in prop::collection::vec(draw(), 1..16),
        stall in 0..8u32,
        burst in 1..32u32,
    ) {
        for protocol in PROTOCOLS {
            let pred = system(protocol, &draws, stall, burst).predict();
            let total: f64 = pred.masters.iter().map(|m| m.share).sum();
            prop_assert!(total <= 1.0 + 1e-9, "{protocol:?}: shares sum to {total}");
            prop_assert!(
                (0.0..=1.0 + 1e-9).contains(&pred.bus_utilization),
                "{protocol:?}: utilization {} out of range",
                pred.bus_utilization,
            );
            for (i, m) in pred.masters.iter().enumerate() {
                prop_assert!(
                    m.share >= 0.0 && m.share <= 1.0 + 1e-9,
                    "{protocol:?}: master {i} share {} out of range",
                    m.share,
                );
                // A master is never granted more than it offers.
                prop_assert!(
                    m.share <= m.demand + 1e-9,
                    "{protocol:?}: master {i} share {} exceeds demand {}",
                    m.share,
                    m.demand,
                );
            }
        }
    }

    #[test]
    fn zero_load_degrades_gracefully(
        draws in prop::collection::vec(draw(), 1..8),
        stall in 0..8u32,
        burst in 1..32u32,
    ) {
        for protocol in PROTOCOLS {
            let mut idle = draws.clone();
            for d in &mut idle {
                d.lambda = 0.0;
            }
            let pred = system(protocol, &idle, stall, burst).predict();
            prop_assert!(!pred.saturated, "{protocol:?}: an idle bus cannot saturate");
            for (i, m) in pred.masters.iter().enumerate() {
                prop_assert!(m.share.abs() < 1e-12, "{protocol:?}: idle master {i} has share");
                prop_assert!(m.stable, "{protocol:?}: idle master {i} predicted unstable");
                let lat = m.cycles_per_word.expect("idle queue has finite latency");
                prop_assert!(
                    lat.is_finite() && lat >= 1.0 - 1e-9,
                    "{protocol:?}: idle master {i} latency {lat} (want finite, >= 1 \
                     cycle/word of pure service)",
                );
                prop_assert!(
                    m.p99_latency.expect("finite p99").is_finite(),
                    "{protocol:?}: idle master {i} p99 not finite",
                );
            }
        }
    }
}
