//! Instant design-space search: scan millions of (tickets, burst,
//! load-scale) points through the closed-form predictors, short-list
//! the candidates that satisfy a set of SLA targets, and hand the
//! survivors to the simulator for confirmation.
//!
//! One point evaluation is a few hundred flops and allocates nothing,
//! so a single thread covers a 4-master × 32-ticket grid (1,048,576
//! points) in well under a second. Equivalent ticket vectors are
//! folded together in the short list: scaling every ticket count by a
//! common factor changes nothing for the lottery, deficit-RR, or
//! priority models (only the order matters for the latter), so the
//! short list reports each *allocation shape* once, at its smallest
//! ticket sum.
//!
//! ```
//! use analytic::{Protocol, SearchSpace, SlaTarget, TargetKind, TrafficInput};
//! use socsim::BusConfig;
//! use traffic_gen::SizeDist;
//!
//! let traffic = vec![
//!     TrafficInput { lambda: 0.04, size: SizeDist::fixed(16), stall: None };
//!     4
//! ];
//! let mut space = SearchSpace::new(Protocol::LotteryStatic, BusConfig::default(), traffic);
//! space.max_tickets = 8; // 8⁴ = 4096 points
//! let targets = [SlaTarget { master: 3, kind: TargetKind::MinShare(0.4) }];
//! let report = analytic::search(&space, &targets, 4).unwrap();
//! assert_eq!(report.scanned, 4096);
//! assert!(report.feasible > 0);
//! // The best candidate skews tickets toward master 3.
//! let best = &report.candidates[0];
//! assert_eq!(best.weights[3], *best.weights.iter().max().unwrap());
//! ```

use crate::model::{MasterModel, Prediction, Protocol, Scratch, SystemModel, MAX_MASTERS};
use socsim::BusConfig;
use traffic_gen::SizeDist;

/// One master's traffic, as the search sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficInput {
    /// Message arrival rate in messages per cycle (at load scale 1.0).
    pub lambda: f64,
    /// Message size distribution.
    pub size: SizeDist,
    /// Per-grant stall override (arbitration overhead + the addressed
    /// slave's wait states); `None` uses the bus default.
    pub stall: Option<u32>,
}

/// An SLA target the analytic scan scores candidates against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetKind {
    /// Bandwidth share (words per cycle) must be at least this.
    MinShare(f64),
    /// Bandwidth share must be at most this.
    MaxShare(f64),
    /// Mean latency in cycles per word must be at most this.
    MaxCyclesPerWord(f64),
    /// p99 per-message latency in cycles must be at most this.
    MaxP99(f64),
}

/// A target bound to one master.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaTarget {
    /// Master index the target constrains.
    pub master: usize,
    /// The constraint.
    pub kind: TargetKind,
}

impl SlaTarget {
    /// Normalized slack of `pred` against this target: positive when
    /// satisfied (1.0 = met with 100% headroom), negative when
    /// violated, `-1.0` when the predictor declares the metric
    /// unbounded (unstable queue).
    pub fn slack(&self, pred: &Prediction) -> f64 {
        fn headroom(limit: f64, value: Option<f64>) -> f64 {
            match value {
                None => -1.0,
                Some(v) => (limit - v) / limit.max(f64::MIN_POSITIVE),
            }
        }
        match self.kind {
            TargetKind::MinShare(min) => (pred.share - min) / min.max(f64::MIN_POSITIVE),
            TargetKind::MaxShare(max) => (max - pred.share) / max.max(f64::MIN_POSITIVE),
            TargetKind::MaxCyclesPerWord(max) => headroom(max, pred.cycles_per_word),
            TargetKind::MaxP99(max) => headroom(max, pred.p99_latency),
        }
    }
}

/// The design space a [`search`] scans exhaustively.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// Arbitration protocol under design.
    pub protocol: Protocol,
    /// TDMA slots per weight unit (used only by [`Protocol::Tdma2Level`]).
    pub tdma_block: u32,
    /// DRR quantum unit in words per weight per round (used only by
    /// [`Protocol::DeficitRoundRobin`]).
    pub drr_quantum: u32,
    /// Bus parameters; `max_burst` is overridden by each scanned burst.
    pub bus: BusConfig,
    /// Per-master traffic at load scale 1.0.
    pub traffic: Vec<TrafficInput>,
    /// Every master's ticket count scans `1..=max_tickets`.
    pub max_tickets: u32,
    /// Burst limits to scan.
    pub bursts: Vec<u32>,
    /// Load multipliers to scan (applied to every master's rate).
    pub load_scales: Vec<f64>,
}

impl SearchSpace {
    /// A space scanning tickets `1..=32` per master at the bus's own
    /// burst limit and nominal load — for four masters, 1,048,576
    /// points.
    pub fn new(protocol: Protocol, bus: BusConfig, traffic: Vec<TrafficInput>) -> Self {
        SearchSpace {
            protocol,
            tdma_block: 6,
            drr_quantum: 8,
            bursts: vec![bus.max_burst],
            bus,
            traffic,
            max_tickets: 32,
            load_scales: vec![1.0],
        }
    }

    /// Number of design points the scan will visit
    /// (`max_tickets^masters × bursts × load_scales`), saturating at
    /// `u64::MAX`.
    pub fn points(&self) -> u64 {
        let per_cell = (u128::from(self.max_tickets))
            .checked_pow(self.traffic.len() as u32)
            .unwrap_or(u128::MAX);
        let cells = (self.bursts.len() as u128).saturating_mul(self.load_scales.len() as u128);
        u64::try_from(per_cell.saturating_mul(cells)).unwrap_or(u64::MAX)
    }

    /// Raises `max_tickets` until the scan covers at least
    /// `target` points (useful to dimension "scan a million points"
    /// requests regardless of master count).
    pub fn dimension_for(&mut self, target: u64) {
        while self.points() < target && self.max_tickets < 4096 {
            self.max_tickets += 1;
        }
    }

    fn validate(&self) -> Result<(), String> {
        let n = self.traffic.len();
        if n == 0 || n > MAX_MASTERS {
            return Err(format!("search supports 1..={MAX_MASTERS} masters, got {n}"));
        }
        if self.max_tickets == 0 {
            return Err("max_tickets must be at least 1".into());
        }
        if self.bursts.is_empty() || self.bursts.contains(&0) {
            return Err("bursts must be non-empty and nonzero".into());
        }
        if self.load_scales.is_empty() {
            return Err("load_scales must be non-empty".into());
        }
        if self.load_scales.iter().any(|&s| s.is_nan() || s < 0.0 || !s.is_finite()) {
            return Err("load scales must be finite and >= 0".into());
        }
        Ok(())
    }
}

/// One short-listed design point with its predicted metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Ticket/weight vector, in master order.
    pub weights: Vec<u32>,
    /// Burst limit of this point.
    pub burst: u32,
    /// Load multiplier of this point.
    pub load_scale: f64,
    /// Worst normalized target slack (higher = more headroom).
    pub margin: f64,
    /// Predicted per-master metrics at this point.
    pub predicted: Vec<Prediction>,
}

/// The result of an analytic design-space scan.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Design points evaluated.
    pub scanned: u64,
    /// Points satisfying every target.
    pub feasible: u64,
    /// Best feasible candidates, one per allocation shape, by
    /// descending margin.
    pub candidates: Vec<Candidate>,
}

/// Exhaustively scans `space`, scoring every point against `targets`,
/// and returns up to `top` shape-deduplicated feasible candidates by
/// descending worst-target slack.
///
/// # Errors
///
/// Returns a description when the space is degenerate (no masters,
/// zero tickets or bursts, a target naming an out-of-range master).
pub fn search(
    space: &SearchSpace,
    targets: &[SlaTarget],
    top: usize,
) -> Result<SearchReport, String> {
    space.validate()?;
    let n = space.traffic.len();
    if let Some(t) = targets.iter().find(|t| t.master >= n) {
        return Err(format!("target names master {} but the system has {n}", t.master));
    }

    let mut scratch = Scratch::new();
    let mut scanned = 0u64;
    let mut feasible = 0u64;
    let mut shortlist: Vec<Candidate> = Vec::new();

    for &burst in &space.bursts {
        let bus = BusConfig { max_burst: burst, ..space.bus };
        let base: Vec<MasterModel> = space
            .traffic
            .iter()
            .map(|t| {
                MasterModel::new(
                    t.lambda,
                    t.size,
                    1,
                    t.stall.unwrap_or_else(|| bus.per_grant_overhead()),
                    burst,
                )
            })
            .collect();
        for &scale in &space.load_scales {
            let masters: Vec<MasterModel> =
                base.iter().map(|m| MasterModel { lambda: m.lambda * scale, ..*m }).collect();
            let mut model = SystemModel::new(space.protocol, masters)
                .with_tdma_block(space.tdma_block)
                .with_drr_quantum(space.drr_quantum);
            model.max_burst = burst;
            let mut weights = [1u32; MAX_MASTERS];
            loop {
                for (m, &w) in model.masters.iter_mut().zip(&weights[..n]) {
                    m.weight = w;
                }
                model.evaluate(&mut scratch);
                let margin = targets
                    .iter()
                    .map(|t| t.slack(&scratch.preds[t.master]))
                    .fold(f64::INFINITY, f64::min);
                scanned += 1;
                if margin >= 0.0 {
                    feasible += 1;
                    let ctx = ShapeCtx {
                        protocol: space.protocol,
                        drr_quantum: space.drr_quantum,
                        burst,
                    };
                    offer(
                        &mut shortlist,
                        top,
                        ctx,
                        &weights[..n],
                        burst,
                        scale,
                        margin,
                        &scratch.preds[..n],
                    );
                }
                // Odometer over the ticket grid.
                let mut digit = 0;
                while digit < n {
                    weights[digit] += 1;
                    if weights[digit] <= space.max_tickets {
                        break;
                    }
                    weights[digit] = 1;
                    digit += 1;
                }
                if digit == n {
                    break;
                }
            }
        }
    }

    shortlist.sort_by(|a, b| b.margin.partial_cmp(&a.margin).expect("finite margins"));
    Ok(SearchReport { scanned, feasible, candidates: shortlist })
}

/// The dedup context of one scan cell: the protocol plus the knobs
/// that decide when two weight vectors predict identically.
#[derive(Clone, Copy)]
struct ShapeCtx {
    protocol: Protocol,
    drr_quantum: u32,
    burst: u32,
}

/// The shape under which a weight vector is deduplicated: ticket
/// ratios are what the models respond to, so `(2,4,6,8)` folds into
/// `(1,2,3,4)`. Static priority only reacts to the weight *order*, so
/// its shape is the dense rank vector. DRR first clamps each weight to
/// its effective per-round words `min(w · quantum, burst)` — beyond
/// one full burst per round, more tickets change nothing. TDMA keeps
/// exact weights — its slot-alignment wait grows with absolute frame
/// length.
fn shape(ctx: ShapeCtx, weights: &[u32], out: &mut [u32; MAX_MASTERS]) {
    let n = weights.len();
    match ctx.protocol {
        Protocol::Tdma2Level => out[..n].copy_from_slice(weights),
        Protocol::RoundRobin => out[..n].fill(1),
        Protocol::StaticPriority => {
            for i in 0..n {
                out[i] = weights.iter().filter(|&&w| w < weights[i]).count() as u32;
            }
        }
        _ => {
            let eff = |w: u32| match ctx.protocol {
                Protocol::DeficitRoundRobin => {
                    w.saturating_mul(ctx.drr_quantum.max(1)).min(ctx.burst.max(1))
                }
                _ => w,
            };
            let g = weights.iter().fold(0u32, |g, &w| gcd(g, eff(w))).max(1);
            for i in 0..n {
                out[i] = eff(weights[i]) / g;
            }
        }
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[allow(clippy::too_many_arguments)]
fn offer(
    shortlist: &mut Vec<Candidate>,
    top: usize,
    ctx: ShapeCtx,
    weights: &[u32],
    burst: u32,
    load_scale: f64,
    margin: f64,
    preds: &[Prediction],
) {
    if top == 0 {
        return;
    }
    let mut sig = [0u32; MAX_MASTERS];
    shape(ctx, weights, &mut sig);
    let mut other = [0u32; MAX_MASTERS];
    // Same shape in the same (burst, scale) cell: keep the best margin,
    // and at equal margin the smallest ticket sum (the cheapest wheel).
    if let Some(existing) = shortlist.iter_mut().find(|c| {
        shape(ctx, &c.weights, &mut other);
        c.burst == burst
            && c.load_scale == load_scale
            && other[..weights.len()] == sig[..weights.len()]
    }) {
        let sum: u32 = weights.iter().sum();
        let existing_sum: u32 = existing.weights.iter().sum();
        if margin > existing.margin + f64::EPSILON
            || (margin >= existing.margin - f64::EPSILON && sum < existing_sum)
        {
            existing.weights.copy_from_slice(weights);
            existing.margin = margin;
            existing.predicted.copy_from_slice(preds);
        }
        return;
    }
    if shortlist.len() >= top {
        let (worst_idx, worst) = shortlist
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.margin.partial_cmp(&b.1.margin).expect("finite"))
            .expect("non-empty");
        if margin <= worst.margin {
            return;
        }
        shortlist.swap_remove(worst_idx);
    }
    shortlist.push(Candidate {
        weights: weights.to_vec(),
        burst,
        load_scale,
        margin,
        predicted: preds.to_vec(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(n: usize, lambda: f64) -> Vec<TrafficInput> {
        vec![TrafficInput { lambda, size: SizeDist::fixed(16), stall: None }; n]
    }

    fn space(max_tickets: u32) -> SearchSpace {
        let mut s =
            SearchSpace::new(Protocol::LotteryStatic, BusConfig::default(), traffic(4, 0.09));
        s.max_tickets = max_tickets;
        s
    }

    #[test]
    fn points_counts_the_grid() {
        let mut s = space(32);
        assert_eq!(s.points(), 1 << 20);
        s.bursts = vec![8, 16];
        s.load_scales = vec![0.8, 1.0, 1.2];
        assert_eq!(s.points(), 6 << 20);
    }

    #[test]
    fn dimension_for_reaches_the_target() {
        let mut s = space(1);
        s.dimension_for(1_000_000);
        assert!(s.points() >= 1_000_000);
        assert_eq!(s.max_tickets, 32, "4 masters need 32 tickets for 1M points");
    }

    #[test]
    fn feasible_share_target_produces_candidates() {
        let targets = [SlaTarget { master: 0, kind: TargetKind::MinShare(0.5) }];
        let report = search(&space(6), &targets, 5).unwrap();
        assert_eq!(report.scanned, 1296);
        assert!(report.feasible > 0);
        assert!(!report.candidates.is_empty());
        for c in &report.candidates {
            assert!(c.margin >= 0.0);
            assert!(c.predicted[0].share >= 0.5 - 1e-9, "{c:?}");
            // Master 0 must out-ticket the field to win half the bus.
            assert!(c.weights[0] > c.weights[1]);
        }
        // Sorted by descending margin.
        for pair in report.candidates.windows(2) {
            assert!(pair[0].margin >= pair[1].margin);
        }
    }

    #[test]
    fn impossible_target_reports_zero_feasible() {
        // Four saturating masters: nobody can hold 99% of the bus with
        // at most 6 tickets against three 1-ticket competitors.
        let targets = [SlaTarget { master: 0, kind: TargetKind::MinShare(0.99) }];
        let report = search(&space(6), &targets, 5).unwrap();
        assert_eq!(report.feasible, 0);
        assert!(report.candidates.is_empty());
    }

    #[test]
    fn shortlist_dedups_scaled_ticket_vectors() {
        // Every feasible point with shape k:1:1:1 collapses; distinct
        // shapes remain.
        let targets = [SlaTarget { master: 0, kind: TargetKind::MinShare(0.25) }];
        let report = search(&space(4), &targets, 16).unwrap();
        let mut shapes: Vec<Vec<u32>> = Vec::new();
        for c in &report.candidates {
            let mut sig = [0u32; MAX_MASTERS];
            let ctx = ShapeCtx { protocol: Protocol::LotteryStatic, drr_quantum: 8, burst: 16 };
            shape(ctx, &c.weights, &mut sig);
            let sig = sig[..4].to_vec();
            assert!(!shapes.contains(&sig), "duplicate shape {sig:?}");
            shapes.push(sig);
        }
    }

    #[test]
    fn latency_targets_reject_unstable_points() {
        // Saturated lottery queues are unstable: no point satisfies a
        // finite mean-latency ceiling.
        let targets = [SlaTarget { master: 0, kind: TargetKind::MaxCyclesPerWord(100.0) }];
        let report = search(&space(4), &targets, 5).unwrap();
        assert_eq!(report.feasible, 0);
        // At a third of the load the queues are stable and candidates
        // appear.
        let mut light = space(4);
        light.traffic = traffic(4, 0.01);
        let report = search(&light, &targets, 5).unwrap();
        assert!(report.feasible > 0);
    }

    #[test]
    fn degenerate_spaces_are_rejected() {
        let mut s = space(4);
        s.traffic.clear();
        assert!(search(&s, &[], 5).is_err());
        let mut s = space(0);
        s.max_tickets = 0;
        assert!(search(&s, &[], 5).is_err());
        let s = space(4);
        let bad = [SlaTarget { master: 9, kind: TargetKind::MinShare(0.1) }];
        assert!(search(&s, &bad, 5).is_err());
    }

    #[test]
    fn load_scale_zero_is_graceful() {
        let mut s = space(2);
        s.load_scales = vec![0.0];
        let targets = [SlaTarget { master: 0, kind: TargetKind::MaxCyclesPerWord(100.0) }];
        let report = search(&s, &targets, 3).unwrap();
        assert_eq!(report.scanned, 16);
        assert_eq!(report.feasible, 16, "an idle bus satisfies any latency ceiling");
    }
}
