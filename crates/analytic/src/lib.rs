//! Closed-form performance predictors for the LOTTERYBUS protocol
//! lineup, and the instant design-space search built on them.
//!
//! The simulator measures bandwidth shares and latencies; this crate
//! *predicts* them in O(masters) arithmetic from the same inputs — the
//! traffic specs of [`traffic_gen`] and the bus parameters of
//! [`socsim::BusConfig`] — in the spirit of Mandal et al.'s analytic
//! NoC models. One evaluation costs well under a microsecond, which
//! turns ticket-allocation tuning from an overnight sweep into a scan
//! of millions of design points per second ([`search()`]).
//!
//! The model rests on three explicit approximations, stated once here
//! and assumed everywhere:
//!
//! 1. **Bernoulli independence** — arrivals are treated as memoryless
//!    per-cycle coin flips at the spec's long-run rate. Periodic and
//!    on–off sources are mapped to the same rate; their correlation
//!    structure (and TDMA's sensitivity to it) is only partially
//!    captured, and the validation grid records the resulting error.
//! 2. **Saturation water-filling** — when offered load exceeds bus
//!    capacity, each protocol is modelled as weighted max-min
//!    fair sharing in its natural resource space (cycles for
//!    TDMA, grants for round-robin and lottery, burst-clamped words
//!    for deficit round-robin, a strict waterfall for static
//!    priority).
//! 3. **Reduced-rate M/G/1 queueing** — below saturation each master
//!    sees the bus as a private server running at the rate its
//!    competitors leave behind; waiting times follow
//!    Pollaczek–Khinchine on the stretched service times, Cobham's
//!    formula for static priority.
//!
//! Every prediction is validated against simulation across the
//! experiment sweep grid (`suite --validate-analytic`); the measured
//! per-cell error table lives in EXPERIMENTS.md and is regression-gated
//! through BENCH_PR8.json.
//!
//! ```
//! use analytic::{MasterModel, Protocol, SystemModel};
//! use socsim::BusConfig;
//! use traffic_gen::{GeneratorSpec, SizeDist};
//!
//! // Four saturating masters, tickets 1:2:3:4, static lottery.
//! let bus = BusConfig::default();
//! let spec = GeneratorSpec::poisson(0.09, SizeDist::fixed(16));
//! let model = SystemModel::from_specs(
//!     Protocol::LotteryStatic,
//!     &vec![spec; 4],
//!     &[1, 2, 3, 4],
//!     &bus,
//! );
//! let p = model.predict();
//! assert!(p.saturated);
//! // Bandwidth divides like tickets: the 4-ticket master gets 40%.
//! assert!((p.masters[3].share - 0.4).abs() < 1e-9);
//! ```

#![deny(missing_docs)]

pub mod alloc;
pub mod latency;
pub mod model;
pub mod search;

pub use model::{
    MasterModel, Prediction, Protocol, Scratch, SystemModel, SystemPrediction, MAX_MASTERS,
};
pub use search::{
    search, Candidate, SearchReport, SearchSpace, SlaTarget, TargetKind, TrafficInput,
};
