//! Saturated-bus bandwidth allocation: weighted max-min water-filling
//! and the static-priority waterfall.
//!
//! Under saturation the arbiter alone decides who gets the bus. Each
//! protocol divides some resource — cycles, grants, or words — in
//! proportion to weights among backlogged masters, while masters whose
//! demand is met drop out of the competition and return their surplus.
//! That is exactly weighted max-min fairness, computed here by
//! progressive filling.

use crate::model::{EPS, MAX_MASTERS};

/// Divides `capacity` bus cycles among masters demanding
/// `units[i]` resource units per cycle at `cost[i]` cycles per unit,
/// weighted max-min fair with the given weights. Writes each master's
/// granted units into `alloc`.
///
/// The water level θ rises uniformly: master `i` holds `θ · weight[i]`
/// units until its demand is met, at which point it caps and the rest
/// keep filling. Terminates in at most `n` rounds.
///
/// # Panics
///
/// Panics if slice lengths differ or exceed [`MAX_MASTERS`].
pub fn weighted_water_fill(
    units: &[f64],
    cost: &[f64],
    weight: &[f64],
    capacity: f64,
    alloc: &mut [f64],
) {
    let n = units.len();
    assert!(n <= MAX_MASTERS, "at most {MAX_MASTERS} masters");
    assert!(cost.len() == n && weight.len() == n && alloc.len() == n, "slice lengths must match");
    alloc.fill(0.0);
    let mut active: u32 = 0;
    for i in 0..n {
        if units[i] > EPS && weight[i] > EPS {
            active |= 1 << i;
        }
    }
    let mut level = 0.0f64;
    let mut cap = capacity;
    while active != 0 && cap > EPS {
        // Weighted cycle cost of raising the level by dθ, and the next
        // level at which some master's demand saturates.
        let mut wcost = 0.0;
        let mut next_level = f64::INFINITY;
        let mut bits = active;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            wcost += weight[i] * cost[i];
            next_level = next_level.min(units[i] / weight[i]);
        }
        if wcost <= EPS {
            break;
        }
        let need = (next_level - level) * wcost;
        if need >= cap {
            // Capacity runs out before the next demand saturates: every
            // remaining master stays backlogged at the final level.
            level += cap / wcost;
            let mut bits = active;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                alloc[i] = level * weight[i];
            }
            return;
        }
        cap -= need;
        level = next_level;
        let mut bits = active;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if units[i] / weight[i] <= level + EPS {
                alloc[i] = units[i];
                active &= !(1 << i);
            } else {
                alloc[i] = level * weight[i];
            }
        }
    }
}

/// Strict-priority allocation of `capacity` bus cycles: masters are
/// served in descending weight order (ties broken by lower index, the
/// simulator's `StaticPriorityArbiter` convention), each taking
/// `min(demand, remaining)`. Demands and allocations are in cycles.
///
/// # Panics
///
/// Panics if slice lengths differ or exceed [`MAX_MASTERS`].
pub fn priority_fill(demand: &[f64], weight: &[f64], capacity: f64, alloc: &mut [f64]) {
    let n = demand.len();
    assert!(n <= MAX_MASTERS, "at most {MAX_MASTERS} masters");
    assert!(weight.len() == n && alloc.len() == n, "slice lengths must match");
    alloc.fill(0.0);
    let mut order = [0usize; MAX_MASTERS];
    for (i, slot) in order.iter_mut().take(n).enumerate() {
        *slot = i;
    }
    order[..n].sort_by(|&a, &b| {
        weight[b].partial_cmp(&weight[a]).expect("finite weights").then(a.cmp(&b))
    });
    let mut rem = capacity;
    for &i in &order[..n] {
        let take = demand[i].min(rem).max(0.0);
        alloc[i] = take;
        rem -= take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_everyone_gets_their_demand() {
        let units = [0.2, 0.3, 0.1];
        let cost = [1.0, 1.0, 1.0];
        let weight = [1.0, 1.0, 1.0];
        let mut alloc = [0.0; 3];
        weighted_water_fill(&units, &cost, &weight, 1.0, &mut alloc);
        assert_eq!(alloc, units);
    }

    #[test]
    fn over_capacity_divides_by_weight() {
        let units = [10.0, 10.0, 10.0, 10.0];
        let cost = [1.0, 1.0, 1.0, 1.0];
        let weight = [1.0, 2.0, 3.0, 4.0];
        let mut alloc = [0.0; 4];
        weighted_water_fill(&units, &cost, &weight, 1.0, &mut alloc);
        for (i, a) in alloc.iter().enumerate() {
            assert!((a - (i + 1) as f64 / 10.0).abs() < 1e-12, "alloc {alloc:?}");
        }
    }

    #[test]
    fn satisfied_masters_return_their_surplus() {
        // Master 0 only wants 0.05 of its 0.25 fair share; the other
        // three split the surplus 1:1:1 → (1 - 0.05) / 3 each.
        let units = [0.05, 9.0, 9.0, 9.0];
        let cost = [1.0; 4];
        let weight = [1.0; 4];
        let mut alloc = [0.0; 4];
        weighted_water_fill(&units, &cost, &weight, 1.0, &mut alloc);
        assert!((alloc[0] - 0.05).abs() < 1e-12);
        for a in &alloc[1..] {
            assert!((a - 0.95 / 3.0).abs() < 1e-12, "alloc {alloc:?}");
        }
    }

    #[test]
    fn costs_shrink_unit_allocations() {
        // Equal weights but master 1's units cost twice the cycles:
        // equal unit rates ν with ν(1 + 2) = 1 → ν = 1/3.
        let units = [9.0, 9.0];
        let cost = [1.0, 2.0];
        let weight = [1.0, 1.0];
        let mut alloc = [0.0; 2];
        weighted_water_fill(&units, &cost, &weight, 1.0, &mut alloc);
        assert!((alloc[0] - 1.0 / 3.0).abs() < 1e-12, "alloc {alloc:?}");
        assert!((alloc[1] - 1.0 / 3.0).abs() < 1e-12, "alloc {alloc:?}");
    }

    #[test]
    fn conservation_always_holds() {
        let units = [0.4, 0.9, 0.2, 1.5];
        let cost = [1.0, 2.0, 0.5, 1.0];
        let weight = [1.0, 3.0, 2.0, 4.0];
        let mut alloc = [0.0; 4];
        weighted_water_fill(&units, &cost, &weight, 1.0, &mut alloc);
        let spent: f64 = alloc.iter().zip(&cost).map(|(a, c)| a * c).sum();
        assert!(spent <= 1.0 + 1e-9, "over-allocated: {spent}");
        for (a, u) in alloc.iter().zip(&units) {
            assert!(*a <= u + 1e-9, "allocated beyond demand");
        }
    }

    #[test]
    fn waterfall_serves_high_weight_first() {
        let demand = [0.5, 0.5, 0.5];
        let weight = [1.0, 3.0, 2.0];
        let mut alloc = [0.0; 3];
        priority_fill(&demand, &weight, 1.0, &mut alloc);
        assert_eq!(alloc[1], 0.5, "top priority fully served");
        assert_eq!(alloc[2], 0.5, "second priority takes the rest");
        assert_eq!(alloc[0], 0.0, "lowest priority starves");
    }

    #[test]
    fn waterfall_ties_break_by_lower_index() {
        let demand = [0.8, 0.8];
        let weight = [1.0, 1.0];
        let mut alloc = [0.0; 2];
        priority_fill(&demand, &weight, 1.0, &mut alloc);
        assert_eq!(alloc[0], 0.8);
        assert!((alloc[1] - 0.2).abs() < 1e-12);
    }
}
