//! The predictor inputs and outputs: per-master traffic moments, the
//! protocol lineup, and closed-form system predictions.

use crate::{alloc, latency};
use socsim::BusConfig;
use traffic_gen::{GeneratorSpec, SizeDist};

/// Most masters a [`SystemModel`] accepts. The evaluator keeps all of
/// its working state in fixed-size stack arrays of this length so the
/// design-space search never allocates per point.
pub const MAX_MASTERS: usize = 16;

/// Numerical slack used when comparing allocations against demands.
pub(crate) const EPS: f64 = 1e-9;

/// The arbitration protocols the predictors cover — the simulator's
/// five-protocol comparison lineup plus the dynamic lottery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Strict static priority: higher weight always wins.
    StaticPriority,
    /// Plain round-robin. Weights are ignored, exactly as the
    /// simulator's `RoundRobinArbiter` ignores them.
    RoundRobin,
    /// Deficit round-robin: service quanta proportional to weight, so
    /// bandwidth divides in *word* space — by the **effective** weight
    /// `min(weight · quantum, max_burst)`, because the bus clamps
    /// every grant to `max_burst` words and the arbiter visits each
    /// backlogged master once per round.
    DeficitRoundRobin,
    /// Two-level TDMA: reserved slots proportional to weight, unclaimed
    /// slots reclaimed round-robin by the second level.
    Tdma2Level,
    /// Static lottery: each arbitration picks a requester with
    /// probability proportional to its tickets.
    LotteryStatic,
    /// Dynamic lottery. In expectation the grant stream matches the
    /// static lottery (tickets decide win probabilities either way),
    /// so both share one model; the validation grid measures how far
    /// that stretches.
    LotteryDynamic,
}

/// Which resource space a protocol divides fairly under saturation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Space {
    /// Strict waterfall in descending weight order (static priority).
    Waterfall,
    /// Bus cycles divide by weight (TDMA slot reservations).
    Cycle,
    /// Grants (tenures) divide by weight (round-robin, lottery).
    Grant,
    /// Words divide by weight (deficit round-robin quanta).
    Word,
}

impl Protocol {
    /// All covered protocols, in the experiment lineup's order.
    pub const ALL: [Protocol; 6] = [
        Protocol::StaticPriority,
        Protocol::RoundRobin,
        Protocol::DeficitRoundRobin,
        Protocol::Tdma2Level,
        Protocol::LotteryStatic,
        Protocol::LotteryDynamic,
    ];

    /// The canonical name, matching the experiment suite's labels.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::StaticPriority => "static-priority",
            Protocol::RoundRobin => "round-robin",
            Protocol::DeficitRoundRobin => "deficit-rr",
            Protocol::Tdma2Level => "tdma-2level",
            Protocol::LotteryStatic => "lottery-static",
            Protocol::LotteryDynamic => "lottery-dynamic",
        }
    }

    /// Parses a protocol name. Accepts both the experiment suite's
    /// labels ([`Protocol::name`]) and the `.scenario` grammar's
    /// arbiter keywords (`lottery`, `rr`, `priority`, `tdma`, …).
    /// `token` maps to [`Protocol::RoundRobin`]: a token ring serves
    /// backlogged masters in cyclic order, which is round-robin in
    /// expectation.
    pub fn parse(name: &str) -> Option<Protocol> {
        Some(match name {
            "static-priority" | "priority" => Protocol::StaticPriority,
            "round-robin" | "rr" | "token" | "token-ring" => Protocol::RoundRobin,
            "deficit-rr" | "drr" => Protocol::DeficitRoundRobin,
            "tdma-2level" | "tdma" => Protocol::Tdma2Level,
            "lottery-static" | "lottery" => Protocol::LotteryStatic,
            "lottery-dynamic" => Protocol::LotteryDynamic,
            _ => return None,
        })
    }

    pub(crate) fn space(self) -> Space {
        match self {
            Protocol::StaticPriority => Space::Waterfall,
            Protocol::Tdma2Level => Space::Cycle,
            Protocol::RoundRobin => Space::Grant,
            Protocol::LotteryStatic | Protocol::LotteryDynamic => Space::Grant,
            Protocol::DeficitRoundRobin => Space::Word,
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One master's traffic, reduced to the moments the closed forms need.
///
/// A message of `L` words occupies the bus for
/// `t(L) = L + stall · ⌈L / max_burst⌉` cycles — the same tenure
/// duration the TLM kernel batches (`L` data cycles plus the per-grant
/// stall of [`BusConfig::grant_stall`] for each of the `⌈L / B⌉`
/// grants the burst limit splits the message into). All moments are
/// computed exactly by enumerating the size distribution's finite
/// support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterModel {
    /// Message arrival rate in messages per cycle.
    pub lambda: f64,
    /// Arbitration weight: tickets, priority level, or slot weight.
    pub weight: u32,
    /// Mean message size `E[L]` in words.
    pub mean_words: f64,
    /// Mean grants per message `E[⌈L/B⌉]`.
    pub mean_grants: f64,
    /// Mean bus tenure per message `E[t]` in cycles.
    pub mean_tenure: f64,
    /// Second tenure moment `E[t²]` in cycles².
    pub tenure_sq: f64,
}

impl MasterModel {
    /// Builds the moments for a master issuing `lambda` messages per
    /// cycle with the given size distribution, per-grant `stall`
    /// cycles, and burst limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_burst` is zero or `lambda` is negative or not
    /// finite.
    pub fn new(lambda: f64, size: SizeDist, weight: u32, stall: u32, max_burst: u32) -> Self {
        assert!(max_burst > 0, "max_burst must be at least 1");
        assert!(lambda >= 0.0 && lambda.is_finite(), "arrival rate must be finite and >= 0");
        let tenure = |words: u32| -> f64 {
            let grants = words.div_ceil(max_burst);
            f64::from(words) + f64::from(stall) * f64::from(grants)
        };
        MasterModel {
            lambda,
            weight,
            mean_words: size.mean(),
            mean_grants: size.expect(|w| f64::from(w.div_ceil(max_burst))),
            mean_tenure: size.expect(tenure),
            tenure_sq: size.expect(|w| tenure(w) * tenure(w)),
        }
    }

    /// Builds the moments from a traffic spec: the arrival rate is the
    /// spec's long-run message rate (its offered load divided by its
    /// mean size), the per-grant stall is the bus's default
    /// [`BusConfig::per_grant_overhead`].
    pub fn from_spec(spec: &GeneratorSpec, weight: u32, bus: &BusConfig) -> Self {
        let lambda = spec.offered_load() / spec.size.mean();
        MasterModel::new(lambda, spec.size, weight, bus.per_grant_overhead(), bus.max_burst)
    }

    /// Offered bus-cycle demand `λ · E[t]`: the fraction of all cycles
    /// this master needs to drain its queue.
    pub fn demand(&self) -> f64 {
        self.lambda * self.mean_tenure
    }

    /// Offered word rate `λ · E[L]`: the bandwidth share the master
    /// would consume on an uncontended bus.
    pub fn word_rate(&self) -> f64 {
        self.lambda * self.mean_words
    }
}

/// The closed-form prediction for one master.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prediction {
    /// Predicted bandwidth share in words per bus cycle — directly
    /// comparable to the simulator's `BusStats::bandwidth_fraction`.
    pub share: f64,
    /// Offered cycle demand `λ · E[t]` (1.0 = the whole bus).
    pub demand: f64,
    /// Whether the master's queue is predicted to be stable (it
    /// receives its full demand).
    pub stable: bool,
    /// Predicted mean latency in cycles per word — comparable to
    /// `MasterStats::cycles_per_word`. `None` when the queue is
    /// unstable (latency grows without bound).
    pub cycles_per_word: Option<f64>,
    /// Predicted p99 per-message latency in cycles, under an
    /// exponential waiting-tail approximation
    /// (`p99 ≈ service + ln(100) · wait`). `None` when unstable.
    pub p99_latency: Option<f64>,
}

/// A whole-system prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPrediction {
    /// Total offered cycle demand (1.0 = bus capacity).
    pub total_demand: f64,
    /// Predicted bus utilization: the sum of all granted word rates
    /// (busy cycles per cycle, stalls excluded).
    pub bus_utilization: f64,
    /// Whether offered demand meets or exceeds capacity.
    pub saturated: bool,
    /// Per-master predictions, in master order.
    pub masters: Vec<Prediction>,
}

/// Reusable evaluation workspace. One instance serves any number of
/// [`SystemModel::evaluate`] calls without allocating, which is what
/// lets the design-space search visit millions of points per second.
#[derive(Debug, Clone)]
pub struct Scratch {
    pub(crate) units: [f64; MAX_MASTERS],
    pub(crate) cost: [f64; MAX_MASTERS],
    pub(crate) weight: [f64; MAX_MASTERS],
    pub(crate) alloc: [f64; MAX_MASTERS],
    /// Per-master predictions of the last `evaluate` call; only the
    /// first `masters.len()` entries are meaningful.
    pub preds: [Prediction; MAX_MASTERS],
}

impl Scratch {
    /// A fresh workspace.
    pub fn new() -> Self {
        Scratch {
            units: [0.0; MAX_MASTERS],
            cost: [0.0; MAX_MASTERS],
            weight: [0.0; MAX_MASTERS],
            alloc: [0.0; MAX_MASTERS],
            preds: [Prediction::default(); MAX_MASTERS],
        }
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch::new()
    }
}

/// System-level evaluation summary (the scalar part of a
/// [`SystemPrediction`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total offered cycle demand.
    pub total_demand: f64,
    /// Predicted bus utilization (busy fraction).
    pub bus_utilization: f64,
    /// Whether offered demand meets or exceeds capacity.
    pub saturated: bool,
}

/// A bus, its protocol, and its masters — everything the closed forms
/// need.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemModel {
    /// The arbitration protocol under prediction.
    pub protocol: Protocol,
    /// TDMA slots per weight unit (the scenario grammar's
    /// `tdma_block`); only the slot-alignment latency term uses it.
    pub tdma_block: u32,
    /// Deficit round-robin quantum unit in words per weight per round;
    /// only [`Protocol::DeficitRoundRobin`] uses it.
    pub drr_quantum: u32,
    /// The bus's burst limit in words. Caps a DRR master's per-round
    /// service at one grant of `max_burst` words, which is why DRR's
    /// effective weight is `min(weight · drr_quantum, max_burst)`.
    pub max_burst: u32,
    /// The masters, in bus order.
    pub masters: Vec<MasterModel>,
}

impl SystemModel {
    /// A model with the experiment lineup's protocol parameters: a
    /// TDMA block of 6 slots per weight unit (the `[6, 12, 18, 24]`
    /// wheel), a DRR quantum unit of 8 words, and the default 16-word
    /// burst limit.
    ///
    /// # Panics
    ///
    /// Panics if there are no masters or more than [`MAX_MASTERS`].
    pub fn new(protocol: Protocol, masters: Vec<MasterModel>) -> Self {
        assert!(
            !masters.is_empty() && masters.len() <= MAX_MASTERS,
            "1..={MAX_MASTERS} masters supported"
        );
        SystemModel { protocol, tdma_block: 6, drr_quantum: 8, max_burst: 16, masters }
    }

    /// Builds the model straight from traffic specs and a weight
    /// vector, using the bus's burst limit and default per-grant
    /// overhead.
    ///
    /// # Panics
    ///
    /// Panics if `specs` and `weights` differ in length, are empty, or
    /// exceed [`MAX_MASTERS`].
    pub fn from_specs(
        protocol: Protocol,
        specs: &[GeneratorSpec],
        weights: &[u32],
        bus: &BusConfig,
    ) -> Self {
        assert_eq!(specs.len(), weights.len(), "one weight per master");
        let masters = specs
            .iter()
            .zip(weights)
            .map(|(spec, &w)| MasterModel::from_spec(spec, w, bus))
            .collect();
        let mut model = SystemModel::new(protocol, masters);
        model.max_burst = bus.max_burst;
        model
    }

    /// This model with an explicit TDMA block size.
    pub fn with_tdma_block(mut self, block: u32) -> Self {
        self.tdma_block = block;
        self
    }

    /// This model with an explicit DRR quantum unit (words per weight
    /// per round).
    pub fn with_drr_quantum(mut self, quantum: u32) -> Self {
        self.drr_quantum = quantum;
        self
    }

    /// The effective word-space weight of master `i` under deficit
    /// round-robin: `min(weight · drr_quantum, max_burst)`. The bus
    /// clamps every grant to `max_burst` words and the arbiter visits
    /// each backlogged master once per round, so quantum beyond one
    /// full burst buys nothing.
    pub fn drr_effective_weight(&self, i: usize) -> u32 {
        self.masters[i].weight.saturating_mul(self.drr_quantum.max(1)).min(self.max_burst.max(1))
    }

    /// Evaluates the closed forms into `scratch` (alloc-free) and
    /// returns the system summary. Per-master results land in
    /// `scratch.preds[..masters.len()]`.
    pub fn evaluate(&self, scratch: &mut Scratch) -> Summary {
        let n = self.masters.len();
        debug_assert!((1..=MAX_MASTERS).contains(&n));
        let space = self.protocol.space();

        // Resource units demanded per cycle and bus cycles per unit.
        for (i, m) in self.masters.iter().enumerate() {
            let (units, cost) = match space {
                Space::Waterfall | Space::Cycle => (m.demand(), 1.0),
                Space::Grant => (m.lambda * m.mean_grants, m.mean_tenure / m.mean_grants),
                Space::Word => (m.word_rate(), m.mean_tenure / m.mean_words),
            };
            scratch.units[i] = units;
            scratch.cost[i] = cost;
            scratch.weight[i] = match self.protocol {
                // Plain round-robin serves backlogged masters equally
                // regardless of declared weights.
                Protocol::RoundRobin => 1.0,
                // DRR's per-round service is one burst-clamped grant.
                Protocol::DeficitRoundRobin => f64::from(self.drr_effective_weight(i)),
                _ => f64::from(m.weight),
            };
        }

        let total_demand: f64 = self.masters.iter().map(MasterModel::demand).sum();
        match space {
            Space::Waterfall => alloc::priority_fill(
                &scratch.units[..n],
                &scratch.weight[..n],
                1.0,
                &mut scratch.alloc[..n],
            ),
            _ => alloc::weighted_water_fill(
                &scratch.units[..n],
                &scratch.cost[..n],
                &scratch.weight[..n],
                1.0,
                &mut scratch.alloc[..n],
            ),
        }

        // Convert granted units to bandwidth shares and stability.
        let mut bus_utilization = 0.0;
        for i in 0..n {
            let m = &self.masters[i];
            let cycle_alloc = scratch.alloc[i] * scratch.cost[i];
            let share = cycle_alloc * m.mean_words / m.mean_tenure;
            let stable = scratch.alloc[i] + EPS >= scratch.units[i];
            bus_utilization += share;
            scratch.preds[i] =
                Prediction { share, demand: m.demand(), stable, ..Prediction::default() };
            // Stash granted cycles for the latency pass.
            scratch.alloc[i] = cycle_alloc;
        }

        latency::fill(self, scratch, n);

        Summary { total_demand, bus_utilization, saturated: total_demand >= 1.0 - EPS }
    }

    /// Evaluates the closed forms and returns an owned prediction.
    pub fn predict(&self) -> SystemPrediction {
        let mut scratch = Scratch::new();
        let summary = self.evaluate(&mut scratch);
        SystemPrediction {
            total_demand: summary.total_demand,
            bus_utilization: summary.bus_utilization,
            saturated: summary.saturated,
            masters: scratch.preds[..self.masters.len()].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saturating(weights: &[u32], protocol: Protocol) -> SystemModel {
        let bus = BusConfig::default();
        let spec = GeneratorSpec::poisson(0.09, SizeDist::fixed(16));
        SystemModel::from_specs(protocol, &vec![spec; weights.len()], weights, &bus)
    }

    #[test]
    fn tenure_moments_match_hand_computation() {
        // 20-word messages, burst 16, stall 2: two grants, t = 20 + 4.
        let m = MasterModel::new(0.01, SizeDist::fixed(20), 1, 2, 16);
        assert_eq!(m.mean_grants, 2.0);
        assert_eq!(m.mean_tenure, 24.0);
        assert_eq!(m.tenure_sq, 576.0);
        assert!((m.demand() - 0.24).abs() < 1e-12);
    }

    #[test]
    fn bimodal_moments_are_probability_weighted() {
        let size = SizeDist::bimodal(2, 32, 0.25);
        let m = MasterModel::new(0.0, size, 1, 0, 16);
        assert!((m.mean_words - (0.75 * 2.0 + 0.25 * 32.0)).abs() < 1e-12);
        assert!((m.mean_grants - (0.75 + 0.25 * 2.0)).abs() < 1e-12);
        assert!((m.tenure_sq - (0.75 * 4.0 + 0.25 * 1024.0)).abs() < 1e-12);
    }

    #[test]
    fn lottery_divides_saturated_bandwidth_by_tickets() {
        let p = saturating(&[1, 2, 3, 4], Protocol::LotteryStatic).predict();
        assert!(p.saturated);
        for (i, pred) in p.masters.iter().enumerate() {
            let entitled = (i + 1) as f64 / 10.0;
            assert!((pred.share - entitled).abs() < 1e-9, "master {i}: {pred:?}");
            assert!(!pred.stable, "saturated masters are unstable");
        }
        assert!((p.bus_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn granularity_curve_matches_entitlement() {
        for k in [1u32, 2, 3, 5, 8, 13, 21, 34, 64] {
            let p = saturating(&[k, 1, 1, 1], Protocol::LotteryStatic).predict();
            let entitled = f64::from(k) / f64::from(k + 3);
            assert!(
                (p.masters[0].share - entitled).abs() < 1e-9,
                "tickets {k}: {:?}",
                p.masters[0]
            );
        }
    }

    #[test]
    fn drr_weights_are_burst_clamped() {
        // Quantum 8, burst 16: weights 1:2:3:4 move 8:16:16:16 words
        // per round, so the saturated split is 1:2:2:2 — not 1:2:3:4.
        let p = saturating(&[1, 2, 3, 4], Protocol::DeficitRoundRobin).predict();
        let eff = [8.0, 16.0, 16.0, 16.0];
        let total: f64 = eff.iter().sum();
        for (pred, e) in p.masters.iter().zip(&eff) {
            assert!((pred.share - e / total).abs() < 1e-9, "{pred:?}");
        }
        // A burst wide enough for every quantum restores 1:2:3:4.
        let mut model = saturating(&[1, 2, 3, 4], Protocol::DeficitRoundRobin);
        model.max_burst = 64;
        let p = model.predict();
        for (i, pred) in p.masters.iter().enumerate() {
            assert!((pred.share - (i + 1) as f64 / 10.0).abs() < 1e-9, "{pred:?}");
        }
    }

    #[test]
    fn round_robin_ignores_weights() {
        let p = saturating(&[1, 2, 3, 4], Protocol::RoundRobin).predict();
        for pred in &p.masters {
            assert!((pred.share - 0.25).abs() < 1e-9, "{pred:?}");
        }
    }

    #[test]
    fn priority_starves_the_lowest_class_under_saturation() {
        let p = saturating(&[1, 2, 3, 4], Protocol::StaticPriority).predict();
        // Demands are 1.44 each: the top class takes the whole bus.
        assert!((p.masters[3].share - 1.0).abs() < 1e-9);
        assert!((p.masters[0].share).abs() < 1e-9);
        assert!(p.masters[0].cycles_per_word.is_none(), "starved class has no finite latency");
    }

    #[test]
    fn unsaturated_masters_get_their_offered_load() {
        let bus = BusConfig::default();
        let spec = GeneratorSpec::poisson(0.005, SizeDist::fixed(16));
        for protocol in Protocol::ALL {
            let model = SystemModel::from_specs(protocol, &vec![spec; 4], &[1, 2, 3, 4], &bus);
            let p = model.predict();
            assert!(!p.saturated);
            for pred in &p.masters {
                assert!(pred.stable);
                assert!((pred.share - 0.08).abs() < 1e-9, "{protocol}: {pred:?}");
                let cpw = pred.cycles_per_word.expect("stable queues have finite latency");
                assert!(cpw >= 1.0, "{protocol}: cycles/word {cpw}");
            }
        }
    }

    #[test]
    fn zero_load_is_graceful() {
        let bus = BusConfig::default();
        let spec = GeneratorSpec::poisson(0.0, SizeDist::fixed(16));
        for protocol in Protocol::ALL {
            let p = SystemModel::from_specs(protocol, &[spec; 2], &[1, 1], &bus).predict();
            assert_eq!(p.total_demand, 0.0);
            for pred in &p.masters {
                assert_eq!(pred.share, 0.0);
                assert!(pred.stable);
                let cpw = pred.cycles_per_word.expect("an idle bus serves at full speed");
                // TDMA still pays its slot-alignment wait on an idle
                // bus; every other protocol serves at one cycle/word.
                if protocol == Protocol::Tdma2Level {
                    assert!(cpw > 1.0 && cpw < 2.0, "{protocol}: {cpw}");
                } else {
                    assert!((cpw - 1.0).abs() < 1e-9, "{protocol}: {cpw}");
                }
            }
        }
    }

    #[test]
    fn protocol_names_round_trip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::parse(p.name()), Some(p));
        }
        assert_eq!(Protocol::parse("lottery"), Some(Protocol::LotteryStatic));
        assert_eq!(Protocol::parse("token"), Some(Protocol::RoundRobin));
        assert_eq!(Protocol::parse("nonsense"), None);
    }
}
