//! Closed-form waiting times: reduced-rate Pollaczek–Khinchine for the
//! fair protocols, Cobham's formula for static priority, and the TDMA
//! slot-alignment term.
//!
//! All formulas treat arrivals as memoryless (Bernoulli) at the
//! modelled rate and predict the simulator's latency metric
//! `cycles_per_word = Σ (completion − issue) / Σ words`, i.e. the mean
//! per-message sojourn divided by the mean message size.

use crate::model::{Protocol, Scratch, SystemModel, EPS};

/// `ln(100)` — the exponential-tail factor taking a mean waiting time
/// to its 99th percentile.
const LN_100: f64 = 4.605_170_185_988_092;

/// Fills `scratch.preds[..n].{cycles_per_word, p99_latency}` from the
/// granted cycle allocations stashed in `scratch.alloc[..n]`.
pub(crate) fn fill(model: &SystemModel, scratch: &mut Scratch, n: usize) {
    match model.protocol {
        Protocol::StaticPriority => priority(model, scratch, n),
        _ => reduced_rate(model, scratch, n),
    }
}

/// Reduced-rate M/G/1: master *i* sees a private server running at the
/// rate its competitors' granted allocations leave behind,
/// `rᵢ = 1 − Σ_{j≠i} cⱼ`. Its service times stretch by `1/rᵢ` and the
/// Pollaczek–Khinchine mean wait applies to the stretched moments:
/// `Wᵢ = λᵢ E[s²] / (2 (1 − λᵢ E[s]))`. For two-level TDMA an extra
/// slot-alignment wait is added (see [`tdma_slot_wait`]).
fn reduced_rate(model: &SystemModel, scratch: &mut Scratch, n: usize) {
    let granted: f64 = scratch.alloc[..n].iter().sum();
    for i in 0..n {
        let m = &model.masters[i];
        let rate = 1.0 - (granted - scratch.alloc[i]);
        let extra =
            if model.protocol == Protocol::Tdma2Level { tdma_slot_wait(model, i) } else { 0.0 };
        let (cpw, p99) = mg1(m.lambda, m.mean_tenure, m.tenure_sq, m.mean_words, rate, extra);
        let pred = &mut scratch.preds[i];
        pred.cycles_per_word = cpw;
        pred.p99_latency = p99;
        if cpw.is_none() {
            pred.stable = false;
        }
    }
}

/// One master's reduced-rate M/G/1 sojourn: returns
/// `(cycles_per_word, p99)` or `(None, None)` when the queue is
/// unstable at the residual rate.
fn mg1(
    lambda: f64,
    mean_tenure: f64,
    tenure_sq: f64,
    mean_words: f64,
    rate: f64,
    extra_wait: f64,
) -> (Option<f64>, Option<f64>) {
    if rate <= EPS {
        return (None, None);
    }
    let s = mean_tenure / rate;
    let s_sq = tenure_sq / (rate * rate);
    let rho = lambda * s;
    if rho >= 1.0 - EPS {
        return (None, None);
    }
    let wait = lambda * s_sq / (2.0 * (1.0 - rho)) + extra_wait;
    (Some((wait + s) / mean_words), Some(s + LN_100 * wait))
}

/// Mean cycles a random arrival waits for its reserved TDMA block:
/// with a frame of `F` cycles and an own block of `b`, a uniformly
/// placed arrival outside the block waits `(F − b)² / (2F)` on
/// average. The second-level round-robin reclaims unclaimed slots, so
/// this is an upper-bound flavour of the alignment penalty; the
/// validation grid measures how tight it is.
fn tdma_slot_wait(model: &SystemModel, i: usize) -> f64 {
    let block = f64::from(model.tdma_block);
    let frame: f64 = model.masters.iter().map(|m| block * f64::from(m.weight)).sum();
    if frame <= EPS {
        return 0.0;
    }
    let own = block * f64::from(model.masters[i].weight);
    let foreign = (frame - own).max(0.0);
    foreign * foreign / (2.0 * frame)
}

/// Cobham's mean waits for non-preemptive M/G/1 priority queueing:
/// `Wₖ = R / ((1 − σₖ₋₁)(1 − σₖ))` with residual service
/// `R = Σⱼ λⱼ E[tⱼ²] / 2` over *all* classes and `σₖ` the demand of
/// classes at priority ≥ k. Classes are ordered by descending weight,
/// ties broken by lower index (the simulator's tie-break). A class
/// whose cumulative demand reaches capacity is unstable: its latency —
/// and every lower class's — is unbounded.
fn priority(model: &SystemModel, scratch: &mut Scratch, n: usize) {
    let residual: f64 = model.masters.iter().map(|m| m.lambda * m.tenure_sq / 2.0).sum::<f64>();
    let mut order = [0usize; crate::MAX_MASTERS];
    for (i, slot) in order.iter_mut().take(n).enumerate() {
        *slot = i;
    }
    order[..n]
        .sort_by(|&a, &b| model.masters[b].weight.cmp(&model.masters[a].weight).then(a.cmp(&b)));
    let mut sigma_above = 0.0;
    for &i in &order[..n] {
        let m = &model.masters[i];
        let sigma_incl = sigma_above + m.demand();
        let pred = &mut scratch.preds[i];
        if sigma_incl >= 1.0 - EPS {
            pred.cycles_per_word = None;
            pred.p99_latency = None;
            pred.stable = false;
        } else {
            let wait = residual / ((1.0 - sigma_above) * (1.0 - sigma_incl));
            pred.cycles_per_word = Some((wait + m.mean_tenure) / m.mean_words);
            pred.p99_latency = Some(m.mean_tenure + LN_100 * wait);
        }
        sigma_above = sigma_incl;
    }
}

#[cfg(test)]
mod tests {
    use crate::{MasterModel, Protocol, SystemModel};
    use traffic_gen::SizeDist;

    fn master(lambda: f64, weight: u32) -> MasterModel {
        MasterModel::new(lambda, SizeDist::fixed(16), weight, 0, 16)
    }

    #[test]
    fn an_uncontended_master_transfers_at_one_cycle_per_word() {
        let model = SystemModel::new(Protocol::RoundRobin, vec![master(0.0001, 1)]);
        let p = model.predict();
        let cpw = p.masters[0].cycles_per_word.expect("stable");
        // λ E[t²] / 2(1−ρ) ≈ 0.0128 wait on a 16-cycle service.
        assert!(cpw < 1.01, "cycles/word {cpw}");
        let p99 = p.masters[0].p99_latency.expect("stable");
        assert!((16.0..17.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn latency_rises_with_competitor_load() {
        let mut last = 0.0;
        for competitor_load in [0.01, 0.02, 0.03, 0.04] {
            let model = SystemModel::new(
                Protocol::LotteryStatic,
                vec![master(0.005, 1), master(competitor_load, 1)],
            );
            let cpw = model.predict().masters[0].cycles_per_word.expect("stable");
            assert!(cpw > last, "cycles/word must rise: {cpw} after {last}");
            last = cpw;
        }
    }

    #[test]
    fn priority_wait_orders_by_weight() {
        let model = SystemModel::new(
            Protocol::StaticPriority,
            vec![master(0.01, 1), master(0.01, 2), master(0.01, 3)],
        );
        let p = model.predict();
        let cpw: Vec<f64> = p.masters.iter().map(|m| m.cycles_per_word.expect("stable")).collect();
        assert!(cpw[2] < cpw[1] && cpw[1] < cpw[0], "latencies {cpw:?}");
    }

    #[test]
    fn priority_saturation_unbounds_lower_classes_only() {
        // Demands: 0.64 + 0.64 > 1 — the top class stays finite.
        let model =
            SystemModel::new(Protocol::StaticPriority, vec![master(0.04, 1), master(0.04, 2)]);
        let p = model.predict();
        assert!(p.masters[1].cycles_per_word.is_some());
        assert!(p.masters[0].cycles_per_word.is_none());
    }

    #[test]
    fn tdma_pays_a_slot_alignment_penalty_over_lottery() {
        let masters = vec![master(0.002, 1), master(0.002, 2), master(0.002, 3)];
        let tdma = SystemModel::new(Protocol::Tdma2Level, masters.clone()).predict();
        let lottery = SystemModel::new(Protocol::LotteryStatic, masters).predict();
        for (t, l) in tdma.masters.iter().zip(&lottery.masters) {
            assert!(
                t.cycles_per_word.expect("stable") > l.cycles_per_word.expect("stable"),
                "TDMA should wait for its block"
            );
        }
    }
}
