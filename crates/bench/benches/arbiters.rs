//! Single-decision throughput of each arbitration protocol under full
//! contention — the software analogue of the paper's arbitration-delay
//! comparison (§5.2).

use arbiters::{
    RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter, TokenRingArbiter, WheelLayout,
};
use bench::saturated_requests;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lotterybus::{DynamicLotteryArbiter, StaticLotteryArbiter, TicketAssignment};
use socsim::{Arbiter, Cycle};
use std::hint::black_box;

fn arbiter_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbitrate_4_masters");
    let requests = saturated_requests(4);

    let mut fixed: Vec<(&str, Box<dyn Arbiter>)> = vec![
        ("static-priority", Box::new(StaticPriorityArbiter::new(vec![1, 2, 3, 4]).unwrap())),
        ("round-robin", Box::new(RoundRobinArbiter::new(4).unwrap())),
        ("token-ring", Box::new(TokenRingArbiter::new(4).unwrap())),
        (
            "tdma-2level",
            Box::new(TdmaArbiter::new(&[6, 12, 18, 24], WheelLayout::Contiguous).unwrap()),
        ),
        (
            "lottery-static",
            Box::new(
                StaticLotteryArbiter::with_seed(
                    TicketAssignment::new(vec![1, 2, 3, 4]).unwrap(),
                    7,
                )
                .unwrap(),
            ),
        ),
        (
            "lottery-dynamic",
            Box::new(
                DynamicLotteryArbiter::with_seed(
                    TicketAssignment::new(vec![1, 2, 3, 4]).unwrap(),
                    7,
                )
                .unwrap(),
            ),
        ),
    ];

    for (name, arbiter) in fixed.iter_mut() {
        let mut cycle = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                cycle += 1;
                black_box(arbiter.arbitrate(black_box(&requests), Cycle::new(cycle)))
            })
        });
    }
    group.finish();
}

fn lottery_scaling_with_masters(c: &mut Criterion) {
    let mut group = c.benchmark_group("lottery_static_vs_masters");
    for n in [2usize, 4, 8, 12] {
        let tickets = TicketAssignment::new((1..=n as u32).collect()).unwrap();
        let mut arbiter = StaticLotteryArbiter::with_seed(tickets, 5).unwrap();
        let requests = saturated_requests(n);
        let mut cycle = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                cycle += 1;
                black_box(arbiter.arbitrate(black_box(&requests), Cycle::new(cycle)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, arbiter_decisions, lottery_scaling_with_masters);
criterion_main!(benches);
