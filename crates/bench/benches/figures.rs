//! End-to-end regeneration cost of every paper table and figure, at a
//! reduced simulation scale so `cargo bench` stays tractable. The
//! full-scale series are produced by `cargo run -p experiments --bin all`.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::RunSettings;
use std::hint::black_box;

fn reduced() -> RunSettings {
    RunSettings { warmup: 2_000, measure: 10_000, ..RunSettings::new() }
}

fn figure_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    let s = reduced();
    group.bench_function("fig4_priority_bandwidth", |b| {
        b.iter(|| black_box(experiments::fig4::run(&s)))
    });
    group.bench_function("fig5_tdma_alignment", |b| b.iter(|| black_box(experiments::fig5::run())));
    group.bench_function("fig6a_lottery_bandwidth", |b| {
        b.iter(|| black_box(experiments::fig6::run_bandwidth(&s)))
    });
    group.bench_function("fig6b_latency_t6", |b| {
        b.iter(|| black_box(experiments::fig6::run_latency(traffic_gen::TrafficClass::T6, &s)))
    });
    group.bench_function("fig12a_class_bandwidth", |b| {
        b.iter(|| black_box(experiments::fig12::run_bandwidth(&s)))
    });
    group.bench_function("fig12b_tdma_latency", |b| {
        b.iter(|| black_box(experiments::fig12::run_tdma_latency(&s)))
    });
    group.bench_function("fig12c_lottery_latency", |b| {
        b.iter(|| black_box(experiments::fig12::run_lottery_latency(&s)))
    });
    group.bench_function("table1_atm_switch", |b| {
        b.iter(|| black_box(experiments::table1::run(10_000, 17).expect("runs")))
    });
    group.bench_function("hw_table", |b| b.iter(|| black_box(experiments::hw_table::run())));
    group.finish();
}

criterion_group!(benches, figure_benches);
criterion_main!(benches);
