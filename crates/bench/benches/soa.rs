//! Scalar vs grouped-SoA decision throughput for every [`ArbiterKind`]
//! protocol: a pack of identically-configured lanes decided one
//! `arbitrate` call at a time against the same pack lowered into one
//! SoA decision kernel and decided slot by slot. The kernels must win
//! (or tie) for the fleet's grouped-arbitration lowering to pay off.

use arbiters::{
    ArbiterKind, DeficitRoundRobinArbiter, RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter,
    WheelLayout,
};
use bench::saturated_requests;
use criterion::{criterion_group, criterion_main, Criterion};
use lotterybus::{DynamicLotteryArbiter, StaticLotteryArbiter, TicketAssignment};
use socsim::{Arbiter, Cycle};
use std::hint::black_box;

/// Lanes per pack: enough slots that shared-table reuse shows, small
/// enough that each decision stays cache-resident like a real fleet.
const SLOTS: usize = 8;

fn pack(protocol: &str) -> Vec<ArbiterKind> {
    let tickets = || TicketAssignment::new(vec![1, 2, 3, 4]).unwrap();
    (0..SLOTS)
        .map(|slot| {
            let seed = 7 + slot as u32;
            match protocol {
                "static-priority" => StaticPriorityArbiter::new(vec![1, 2, 3, 4]).unwrap().into(),
                "round-robin" => RoundRobinArbiter::new(4).unwrap().into(),
                "deficit-rr" => DeficitRoundRobinArbiter::new(&[1, 2, 3, 4], 8).unwrap().into(),
                "tdma-2level" => {
                    TdmaArbiter::new(&[6, 12, 18, 24], WheelLayout::Contiguous).unwrap().into()
                }
                "lottery-static" => {
                    StaticLotteryArbiter::with_seed(tickets(), seed).unwrap().into()
                }
                "lottery-dynamic" => {
                    DynamicLotteryArbiter::with_seed(tickets(), seed).unwrap().into()
                }
                other => panic!("unknown protocol {other:?}"),
            }
        })
        .collect()
}

fn scalar_vs_soa_decisions(c: &mut Criterion) {
    for protocol in [
        "static-priority",
        "round-robin",
        "deficit-rr",
        "tdma-2level",
        "lottery-static",
        "lottery-dynamic",
    ] {
        let mut group = c.benchmark_group(&format!("decide8_{protocol}"));
        let requests = saturated_requests(4);

        let mut scalars = pack(protocol);
        let mut cycle = 0u64;
        group.bench_function("scalar", |b| {
            b.iter(|| {
                cycle += 1;
                let now = Cycle::new(cycle);
                for arbiter in scalars.iter_mut() {
                    black_box(arbiter.arbitrate(black_box(&requests), now));
                }
            })
        });

        let lanes = pack(protocol);
        let peers: Vec<&ArbiterKind> = lanes.iter().collect();
        let mut kernel =
            <ArbiterKind as Arbiter>::lower_group(&peers).expect("every builtin protocol lowers");
        let mut cycle = 0u64;
        group.bench_function("soa", |b| {
            b.iter(|| {
                cycle += 1;
                let now = Cycle::new(cycle);
                for slot in 0..SLOTS {
                    black_box(kernel.arbitrate_slot(slot, black_box(&requests), now));
                }
            })
        });
        group.finish();
    }
}

criterion_group!(benches, scalar_vs_soa_decisions);
criterion_main!(benches);
