//! The lottery datapath in isolation: draw generation, range LUT
//! construction and the design-choice ablations called out in DESIGN.md
//! (LFSR vs ideal uniform draws, static LUT vs dynamic adder tree).

use bench::saturated_requests;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lotterybus::{
    draw_winner, partial_sums, Lfsr, LfsrSource, RandomSource, StaticLotteryArbiter, StdRngSource,
    TicketAssignment,
};
use std::hint::black_box;

fn lfsr_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfsr");
    let mut lfsr = Lfsr::new(32, 0xACE1);
    group.bench_function("step", |b| b.iter(|| black_box(lfsr.step())));
    group.bench_function("next_bits_16", |b| b.iter(|| black_box(lfsr.next_bits(16))));
    group.finish();
}

fn draw_sources(c: &mut Criterion) {
    // Ablation: hardware-faithful LFSR draws vs ideal uniform draws.
    let mut group = c.benchmark_group("draw_source");
    let mut lfsr = LfsrSource::new(32, 0xACE1);
    let mut std = StdRngSource::new(7);
    for bound in [16u32, 100] {
        group.bench_with_input(BenchmarkId::new("lfsr", bound), &bound, |b, &bound| {
            b.iter(|| black_box(lfsr.draw(bound)))
        });
        group.bench_with_input(BenchmarkId::new("stdrng", bound), &bound, |b, &bound| {
            b.iter(|| black_box(std.draw(bound)))
        });
    }
    group.finish();
}

fn ticket_operations(c: &mut Criterion) {
    let mut group = c.benchmark_group("tickets");
    let tickets = TicketAssignment::new(vec![3, 5, 7, 11, 13, 17, 19, 23]).unwrap();
    group.bench_function("scale_to_power_of_two", |b| {
        b.iter(|| black_box(tickets.scaled_to_power_of_two()))
    });
    group.bench_function("build_8_master_lut", |b| {
        b.iter(|| {
            black_box(StaticLotteryArbiter::with_seed(tickets.clone(), 3).expect("8 masters fit"))
        })
    });
    group.finish();
}

fn winner_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("winner_selection");
    let requests = saturated_requests(8);
    let tickets: Vec<u32> = (1..=8).collect();
    group.bench_function("partial_sums_8", |b| {
        b.iter(|| black_box(partial_sums(black_box(&requests), black_box(&tickets))))
    });
    group.bench_function("draw_winner_8", |b| {
        b.iter(|| black_box(draw_winner(black_box(&requests), black_box(&tickets), 17)))
    });
    group.finish();
}

criterion_group!(benches, lfsr_steps, draw_sources, ticket_operations, winner_selection);
criterion_main!(benches);
