//! Simulator throughput and the burst-size / master-count / wheel-layout
//! ablations from DESIGN.md.

use arbiters::{DeficitRoundRobinArbiter, TdmaArbiter, WheelLayout};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lotterybus::{StaticLotteryArbiter, TicketAssignment};
use socsim::{Arbiter, BusConfig, SystemBuilder};
use std::hint::black_box;
use traffic_gen::classes::saturating_specs;

const CYCLES: u64 = 10_000;

fn run_cycles(masters: usize, bus: BusConfig, arbiter: Box<dyn Arbiter>) -> f64 {
    let mut builder = SystemBuilder::new(bus);
    for (i, spec) in saturating_specs(masters).into_iter().enumerate() {
        builder = builder.master(format!("m{i}"), spec.build_source(i as u64 + 1));
    }
    let mut system = builder.arbiter(arbiter).build().expect("valid");
    system.run(CYCLES);
    system.stats().bus_utilization()
}

fn lottery_arbiter(masters: usize) -> Box<dyn Arbiter> {
    let tickets = TicketAssignment::new((1..=masters as u32).collect()).unwrap();
    Box::new(StaticLotteryArbiter::with_seed(tickets, 7).unwrap())
}

fn throughput_vs_masters(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_cycles_vs_masters");
    group.throughput(Throughput::Elements(CYCLES));
    for masters in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(masters), &masters, |b, &m| {
            b.iter(|| black_box(run_cycles(m, BusConfig::default(), lottery_arbiter(m))))
        });
    }
    group.finish();
}

fn burst_size_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: how the max burst size affects simulation
    // behaviour (and cost): smaller bursts mean more arbitration events.
    let mut group = c.benchmark_group("burst_size_ablation");
    group.throughput(Throughput::Elements(CYCLES));
    for burst in [1u32, 4, 16, 64] {
        let bus = BusConfig { max_burst: burst, ..BusConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(burst), &burst, |b, _| {
            b.iter(|| black_box(run_cycles(4, bus, lottery_arbiter(4))))
        });
    }
    group.finish();
}

fn wheel_layout_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: contiguous vs interleaved TDMA wheels.
    let mut group = c.benchmark_group("tdma_wheel_layout");
    group.throughput(Throughput::Elements(CYCLES));
    for (name, layout) in
        [("contiguous", WheelLayout::Contiguous), ("interleaved", WheelLayout::Interleaved)]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                let arb = TdmaArbiter::new(&[6, 12, 18, 24], layout).expect("valid wheel");
                black_box(run_cycles(4, BusConfig::default(), Box::new(arb)))
            })
        });
    }
    group.finish();
}

fn drr_vs_lottery(c: &mut Criterion) {
    // Decision-cost comparison of the two weighted protocols end to end.
    let mut group = c.benchmark_group("weighted_protocols");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("lottery", |b| {
        b.iter(|| black_box(run_cycles(4, BusConfig::default(), lottery_arbiter(4))))
    });
    group.bench_function("deficit-rr", |b| {
        b.iter(|| {
            let arb = DeficitRoundRobinArbiter::new(&[1, 2, 3, 4], 8).expect("valid");
            black_box(run_cycles(4, BusConfig::default(), Box::new(arb)))
        })
    });
    group.finish();
}

fn split_and_multichannel(c: &mut Criterion) {
    use socsim::multichannel::{ChannelId, MultiChannelBuilder};
    use socsim::split::SplitSystemBuilder;
    use socsim::{Slave, SlaveId};

    let mut group = c.benchmark_group("extended_topologies");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("split_transactions", |b| {
        b.iter(|| {
            let mut system = SplitSystemBuilder::new(BusConfig::default())
                .master("a", saturating_specs(1).remove(0).build_source(1))
                .master("b", saturating_specs(1).remove(0).build_source(2))
                .split_slave("mem", 8, 4)
                .arbiter(lottery_arbiter(3))
                .build()
                .expect("valid");
            system.run(CYCLES);
            black_box(system.master_stats(0).completed_words)
        })
    });
    group.bench_function("two_channel_bridge", |b| {
        b.iter(|| {
            let mut system = MultiChannelBuilder::new()
                .channel(BusConfig::default(), lottery_arbiter(2))
                .channel(BusConfig::default(), lottery_arbiter(2))
                .master(
                    "local",
                    ChannelId::new(0),
                    saturating_specs(1).remove(0).to_slave(0).build_source(1),
                )
                .master(
                    "remote",
                    ChannelId::new(1),
                    saturating_specs(1).remove(0).to_slave(0).build_source(2),
                )
                .slave(Slave::new(SlaveId::new(0), "mem"), ChannelId::new(0))
                .bridge(ChannelId::new(1), ChannelId::new(0), 4)
                .build()
                .expect("valid");
            system.run(CYCLES);
            black_box(system.master_stats(1).completed_words)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    throughput_vs_masters,
    burst_size_ablation,
    wheel_layout_ablation,
    drr_vs_lottery,
    split_and_multichannel
);
criterion_main!(benches);
