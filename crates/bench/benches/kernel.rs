//! The three simulation kernels (cycle, fast-forward, TLM) on the
//! paper's workload shapes (Figures 4/5/6): mostly-idle periodic
//! traffic (the skipping kernels' best case), the Figure 5 TDMA
//! replay, and a saturated four-master system (their worst case — the
//! skip paths must cost nothing when there is nothing to skip).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use experiments::common::{low_utilization_specs, protocol_arbiter};
use socsim::{BusConfig, Kernel, SystemBuilder};
use std::hint::black_box;
use traffic_gen::classes::saturating_specs;
use traffic_gen::GeneratorSpec;

const CYCLES: u64 = 50_000;
const KERNELS: [Kernel; 3] = [Kernel::Cycle, Kernel::Fast, Kernel::Tlm];

fn run_workload(specs: &[GeneratorSpec], kernel: Kernel) -> f64 {
    let mut builder = SystemBuilder::new(BusConfig::default()).kernel(kernel);
    for (i, spec) in specs.iter().enumerate() {
        builder = builder.master(format!("m{i}"), spec.build_source(i as u64 + 1));
    }
    let mut system = builder.arbiter(protocol_arbiter(4, 7)).build().expect("valid");
    system.run(CYCLES);
    system.stats().bus_utilization()
}

fn kernel_comparison(c: &mut Criterion) {
    let workloads: [(&str, Vec<GeneratorSpec>); 2] =
        [("low_utilization", low_utilization_specs(4)), ("saturated", saturating_specs(4))];
    for (name, specs) in &workloads {
        let group_name = format!("kernel_{name}");
        let mut group = c.benchmark_group(&group_name);
        group.throughput(Throughput::Elements(CYCLES));
        for kernel in KERNELS {
            group.bench_with_input(
                BenchmarkId::from_parameter(kernel.name()),
                &kernel,
                |b, &kernel| b.iter(|| black_box(run_workload(specs, kernel))),
            );
        }
        group.finish();
    }
}

fn kernel_fig5_replay(c: &mut Criterion) {
    // The Figure 5 TDMA replay through the public experiment entry
    // point: deterministic periodic traffic with long reserved-slot
    // gaps, a realistic middle ground between the two extremes above.
    let mut group = c.benchmark_group("kernel_fig5");
    for kernel in KERNELS {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &kernel,
            |b, &kernel| b.iter(|| black_box(experiments::fig5::run_kernel(1, kernel))),
        );
    }
    group.finish();
}

criterion_group!(benches, kernel_comparison, kernel_fig5_replay);
criterion_main!(benches);
