//! # bench — criterion benchmarks for the LOTTERYBUS reproduction
//!
//! Shared helpers for the benchmark targets:
//!
//! * `arbiters` — single-decision throughput of every arbitration
//!   protocol under full contention.
//! * `lottery` — the lottery datapath in isolation: LFSR draws, LUT
//!   construction, power-of-two scaling, and the LFSR-vs-ideal-RNG
//!   ablation.
//! * `figures` — end-to-end regeneration cost of each paper figure and
//!   table at reduced scale.
//! * `simulation` — simulator throughput, including the burst-size and
//!   master-count ablations.

use socsim::{MasterId, RequestMap};

/// A fully-contended request map for `n` masters (everyone pending with
/// a deep backlog) — the worst case for every arbiter's decision logic.
pub fn saturated_requests(n: usize) -> RequestMap {
    let mut map = RequestMap::new(n);
    for i in 0..n {
        map.set_pending(MasterId::new(i), 64);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturated_map_has_everyone_pending() {
        let map = saturated_requests(5);
        assert_eq!(map.pending_count(), 5);
    }
}
