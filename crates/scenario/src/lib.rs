//! Declarative robustness scenarios for the LOTTERYBUS simulator.
//!
//! A `.scenario` file names a complete robustness experiment: the
//! topology (masters, slaves, arbiter), per-master traffic classes, a
//! phase schedule (load ramps, flash crowds, drain phases), a fault
//! plan (stochastic fault classes plus deterministic arbiter-wedge
//! windows that trip failover), and SLA assertions that evaluate to a
//! structured pass/fail verdict. Scenarios compose into plans with
//! `after` dependencies and execute in parallel through the job pool
//! under any of the three simulation kernels.
//!
//! The crate also ships a seeded fuzzer ([`fuzz()`]) that generates
//! random-but-valid scenarios, checks cross-kernel determinism,
//! conservation and starvation invariants, and shrinks any failure to
//! a minimal reproducing `.scenario` file.
//!
//! ```
//! use scenario::{run_scenario, Scenario};
//! use socsim::Kernel;
//!
//! let sc = Scenario::parse(
//!     "scenario smoke\n\
//!      master cpu load=0.3 weight=2 size=8 poisson\n\
//!      master dma load=0.2 weight=1 size=16 burst\n\
//!      phase steady duration=20000\n\
//!      sla utilization min=0.1\n\
//!      sla losses max=0\n",
//! )
//! .expect("valid scenario");
//! let verdict = run_scenario(&sc, Kernel::Cycle).expect("runs");
//! assert!(verdict.passed);
//! ```

#![deny(missing_docs)]

pub mod fleet;
pub mod fuzz;
pub mod model;
pub mod parse;
pub mod phased;
pub mod plan;
pub mod run;
pub mod sla;
pub mod wedge;

pub use fleet::{fleet_eligible, run_scenarios_fleet};
pub use fuzz::{fuzz, shrink, Finding, FuzzConfig, FuzzReport};
pub use model::{
    ArbiterSel, Arrival, DepCondition, Dependency, Expectation, FailoverDecl, MasterDecl,
    PhaseDecl, Scenario, Sla, SlaKind, SlaveDecl, WedgeWindow,
};
pub use parse::ScenarioError;
pub use phased::PhasedSource;
pub use plan::{run_plan, run_plan_fleet, PlanOutcome, PlanReport};
pub use run::{build_arbiter, run_scenario, run_scenario_profiled, Outcome, PhaseReport};
pub use sla::Violation;
pub use wedge::WedgingArbiter;
