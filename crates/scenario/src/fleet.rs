//! Fleet-packed scenario execution.
//!
//! [`run_scenarios_fleet`] simulates a whole set of scenarios as lanes
//! of one SoA [`Fleet`] (see `socsim::fleet`) instead of spawning one
//! scalar [`socsim::System`] per scenario. Lanes never interact; the
//! pack is purely an execution structure. Verdicts are byte-identical
//! to [`crate::run_scenario`] under any kernel: the fleet kernel is
//! lane-exact against the scalar cycle kernel, and both paths assemble
//! their [`Outcome`] through the same code.
//!
//! Scenarios whose configuration the fleet does not carry — active
//! fault plans, retry policies, watchdog timeouts — fall back to a
//! scalar cycle-kernel run transparently, so any scenario set can be
//! handed to the fleet runner.

use crate::model::Scenario;
use crate::phased::PhasedSource;
use crate::run::{assemble_outcome, build_arbiter, probe, run_scenario, Outcome};
use arbiters::kind::ArbiterKind;
use socsim::fleet::{Fleet, LaneBuilder};
use socsim::{BusConfig, BusStats, Cycle, Kernel, MasterId, Slave, SlaveId};

/// Whether a scenario can run as a fleet lane. Lanes carry the full
/// phase/wedge/failover machinery (those live in sources and the
/// arbiter chain) but not fault injection, retry policies or watchdog
/// timeouts — scenarios using those run on the scalar system.
pub fn fleet_eligible(sc: &Scenario) -> bool {
    !sc.fault.is_active() && sc.retry.is_none() && sc.timeout.is_none()
}

/// Builds the fleet lane for one (eligible) scenario, mirroring the
/// scalar runner's system assembly exactly.
fn lane_builder(sc: &Scenario) -> Result<LaneBuilder<ArbiterKind, PhasedSource>, String> {
    let config = BusConfig { max_burst: sc.burst, ..BusConfig::new() };
    let mut lane: LaneBuilder<ArbiterKind, PhasedSource> = LaneBuilder::new(config);
    for (i, s) in sc.slaves.iter().enumerate() {
        lane = lane.slave(Slave::with_wait_states(SlaveId::new(i), s.name.clone(), s.wait));
    }
    for (i, m) in sc.masters.iter().enumerate() {
        lane = lane.master(m.name.clone(), PhasedSource::build(i, m, &sc.phases, sc.seed));
    }
    Ok(lane.metrics_window(sc.metrics_window).arbiter(build_arbiter(sc)?))
}

/// Runs every scenario and returns its verdict, in input order,
/// packing all fleet-eligible scenarios into one lockstep [`Fleet`].
/// Ineligible scenarios (active faults, retry, timeout) run through
/// the scalar cycle kernel. All verdicts are byte-identical to
/// [`crate::run_scenario`] on the same scenario.
///
/// # Errors
///
/// Returns the first validation or build error, formatted like the
/// scalar runner's.
pub fn run_scenarios_fleet(scs: &[&Scenario]) -> Result<Vec<Outcome>, String> {
    let mut outcomes: Vec<Option<Outcome>> = vec![None; scs.len()];
    let mut lanes: Vec<LaneBuilder<ArbiterKind, PhasedSource>> = Vec::new();
    let mut lane_scenario: Vec<usize> = Vec::new();
    for (i, sc) in scs.iter().enumerate() {
        sc.validate()?;
        if fleet_eligible(sc) {
            lanes.push(lane_builder(sc)?);
            lane_scenario.push(i);
        } else {
            outcomes[i] = Some(run_scenario(sc, Kernel::Cycle)?);
        }
    }
    let mut fleet = Fleet::build(lanes)
        .map_err(|e| format!("scenario `{}`: {}", scs[lane_scenario[e.lane]].name, e.error))?;

    // Each lane snapshots its statistics at its own phase boundaries.
    // Drive the whole fleet through the sorted union of boundaries so
    // lanes advance in lockstep regardless of differing schedules.
    let boundaries: Vec<Vec<u64>> = lane_scenario
        .iter()
        .map(|&i| {
            scs[i]
                .phases
                .iter()
                .scan(0u64, |acc, p| {
                    *acc += p.duration;
                    Some(*acc)
                })
                .collect()
        })
        .collect();
    let mut union: Vec<u64> = boundaries.iter().flatten().copied().collect();
    union.sort_unstable();
    union.dedup();

    let mut snaps: Vec<Vec<BusStats>> = vec![Vec::new(); lane_scenario.len()];
    let mut probes: Vec<Vec<(u64, u64)>> = vec![Vec::new(); lane_scenario.len()];
    let mut next: Vec<usize> = vec![0; lane_scenario.len()];
    for &t in &union {
        for (lane, bounds) in boundaries.iter().enumerate() {
            // Never advance a lane past its own schedule end: its
            // backlog and port counters must freeze exactly where the
            // scalar runner's do.
            let cap = *bounds.last().expect("at least one phase");
            fleet.run_lane_until(lane, Cycle::new(t.min(cap)));
            while next[lane] < bounds.len() && bounds[next[lane]] == t {
                snaps[lane].push(fleet.stats(lane).clone());
                probes[lane].push(probe(fleet.arbiter(lane)));
                next[lane] += 1;
            }
        }
    }
    fleet.flush_metrics();

    for (lane, &i) in lane_scenario.iter().enumerate() {
        let sc = scs[i];
        let samples = fleet.metrics(lane).map(|m| m.samples().to_vec()).unwrap_or_default();
        let counts: Vec<(u64, u64)> = (0..sc.masters.len())
            .map(|m| {
                let port = fleet.master(lane, MasterId::new(m));
                (port.issued_transactions(), port.backlog_transactions() as u64)
            })
            .collect();
        outcomes[i] = Some(assemble_outcome(sc, &snaps[lane], &probes[lane], &samples, &counts));
    }
    Ok(outcomes.into_iter().map(|o| o.expect("every scenario ran")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Scenario {
        Scenario::parse(text).expect("valid scenario")
    }

    #[test]
    fn fleet_pack_matches_scalar_verdicts_byte_for_byte() {
        let a = parse(
            "scenario pack-a\n\
             seed = 11\n\
             arbiter = lottery\n\
             master cpu load=0.4 weight=3 size=8 poisson\n\
             master dma load=0.2 weight=1 size=16 burst\n\
             phase warm duration=4000\n\
             phase surge duration=3000 scale=2.0\n\
             sla losses max=0\n",
        );
        let b = parse(
            "scenario pack-b\n\
             seed = 5\n\
             arbiter = rr\n\
             master a load=0.8 weight=1 size=4\n\
             master b load=0.8 weight=1 size=4\n\
             master c load=0.8 weight=1 size=4\n\
             phase steady duration=9000\n\
             sla utilization min=0.3\n",
        );
        // Faulted: must take the scalar fallback, still byte-identical.
        let c = parse(
            "scenario pack-c\n\
             seed = 3\n\
             arbiter = priority\n\
             master hi load=0.5 weight=4 size=8\n\
             master lo load=0.5 weight=1 size=8\n\
             fault slave-error rate=0.01\n\
             retry max=3 base=4 factor=2\n\
             phase steady duration=5000\n\
             sla losses max=1000000\n",
        );
        assert!(fleet_eligible(&a));
        assert!(fleet_eligible(&b));
        assert!(!fleet_eligible(&c));
        let packed = run_scenarios_fleet(&[&a, &b, &c]).expect("fleet runs");
        for (sc, fleet_outcome) in [&a, &b, &c].into_iter().zip(&packed) {
            let scalar = run_scenario(sc, Kernel::Cycle).expect("scalar runs");
            assert_eq!(
                fleet_outcome.to_json().render(),
                scalar.to_json().render(),
                "verdict for `{}` diverges",
                sc.name
            );
        }
    }

    #[test]
    fn single_lane_fleet_equals_scalar() {
        let sc = parse(
            "scenario solo\n\
             seed = 77\n\
             arbiter = tdma\n\
             master cpu load=0.6 weight=2 size=8\n\
             master dsp load=0.3 weight=1 size=8 burst\n\
             phase one duration=2500\n\
             phase two duration=2500 scale=0.5\n\
             sla losses max=0\n",
        );
        let packed = run_scenarios_fleet(&[&sc]).expect("fleet runs");
        let scalar = run_scenario(&sc, Kernel::Cycle).expect("scalar runs");
        assert_eq!(packed[0].to_json().render(), scalar.to_json().render());
    }
}
