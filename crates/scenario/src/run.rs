//! Executes one scenario and renders its verdict.
//!
//! The runner assembles a fully concrete
//! `System<ArbiterKind, PhasedSource>` (no virtual dispatch in the
//! hot loop), runs the phase schedule with a statistics snapshot at
//! every phase boundary, and feeds the snapshots plus the windowed
//! metrics into the SLA evaluator. On top of the declared SLAs every
//! run gets a built-in conservation check: each master's issued
//! transactions must equal completed + aborted + still-queued.
//!
//! Verdicts serialize to deterministic JSON via
//! [`experiments::json::Json`] and deliberately contain no wall-clock
//! or kernel information — the same scenario run under the
//! cycle-accurate, fast-forward and TLM kernels must produce
//! byte-identical verdicts, and CI diffs exactly that.

use crate::model::{ArbiterSel, Expectation, Scenario};
use crate::phased::{mix, PhasedSource};
use crate::sla::{evaluate, EvalInput, Violation};
use crate::wedge::WedgingArbiter;
use arbiters::kind::ArbiterKind;
use arbiters::{
    FailoverArbiter, RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter, TokenRingArbiter,
    WheelLayout,
};
use experiments::json::Json;
use lotterybus::{DynamicLotteryArbiter, StaticLotteryArbiter, TicketAssignment};
use socsim::{
    Arbiter, BusConfig, BusStats, FaultConfig, Kernel, MasterId, Slave, SlaveId, System,
    SystemBuilder,
};

/// Per-phase slice of the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase name.
    pub name: String,
    /// First cycle of the phase.
    pub start: u64,
    /// Cycles the phase ran.
    pub cycles: u64,
    /// Busy fraction of the phase.
    pub utilization: f64,
    /// Per-master bandwidth share of the phase (words / cycles).
    pub shares: Vec<f64>,
    /// Transactions lost in the phase.
    pub aborted: u64,
    /// Failovers fired in the phase.
    pub failovers: u64,
    /// Primary re-promotions in the phase.
    pub recoveries: u64,
}

/// The verdict of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Scenario name.
    pub name: String,
    /// The verdict the scenario said it expects.
    pub expected: Expectation,
    /// Whether every assertion (SLAs and conservation) held.
    pub passed: bool,
    /// Cycles simulated (sum of phase durations).
    pub total_cycles: u64,
    /// Transactions issued by all sources.
    pub issued: u64,
    /// Transactions completed.
    pub completed: u64,
    /// Transactions lost to retry exhaustion or watchdog timeout.
    pub aborted: u64,
    /// Transactions still queued when the schedule ended.
    pub backlog: u64,
    /// Times the failover fallback took over.
    pub failovers: u64,
    /// Times the primary was re-promoted.
    pub recoveries: u64,
    /// Every violated assertion, in declaration order.
    pub violations: Vec<Violation>,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseReport>,
}

impl Outcome {
    /// Whether the verdict matches the scenario's `expect` line.
    pub fn as_expected(&self) -> bool {
        match self.expected {
            Expectation::Pass => self.passed,
            Expectation::Fail => !self.passed,
        }
    }

    /// Serializes the verdict as deterministic JSON. Contains no
    /// wall-clock or kernel identification: both kernels must render
    /// byte-identical verdicts for the same scenario.
    pub fn to_json(&self) -> Json {
        let verdict = |pass: bool| if pass { "pass" } else { "fail" };
        Json::obj()
            .field("name", self.name.as_str())
            .field("verdict", verdict(self.passed))
            .field("expected", verdict(self.expected == Expectation::Pass))
            .field("as_expected", self.as_expected())
            .field("total_cycles", self.total_cycles)
            .field(
                "transactions",
                Json::obj()
                    .field("issued", self.issued)
                    .field("completed", self.completed)
                    .field("aborted", self.aborted)
                    .field("backlog", self.backlog),
            )
            .field("failovers", self.failovers)
            .field("recoveries", self.recoveries)
            .field("violations", Json::Arr(self.violations.iter().map(violation_json).collect()))
            .field("phases", Json::Arr(self.phases.iter().map(phase_json).collect()))
    }
}

fn violation_json(v: &Violation) -> Json {
    Json::obj()
        .field("sla", v.sla.as_str())
        .field("phase", v.phase.as_deref().map_or(Json::Null, Json::from))
        .field("master", v.master.as_deref().map_or(Json::Null, Json::from))
        .field("observed", v.observed)
        .field("bound", v.bound)
        .field("message", v.message.as_str())
}

fn phase_json(p: &PhaseReport) -> Json {
    Json::obj()
        .field("name", p.name.as_str())
        .field("start", p.start)
        .field("cycles", p.cycles)
        .field("utilization", p.utilization)
        .field("shares", Json::Arr(p.shares.iter().map(|&s| Json::from(s)).collect()))
        .field("aborted", p.aborted)
        .field("failovers", p.failovers)
        .field("recoveries", p.recoveries)
}

/// Builds the scenario's arbiter chain:
/// `primary → [wedge wrapper] → [failover protection]`.
pub fn build_arbiter(sc: &Scenario) -> Result<ArbiterKind, String> {
    let weights: Vec<u32> = sc.masters.iter().map(|m| m.weight).collect();
    let n = sc.masters.len();
    let seed = sc.seed as u32 | 1;
    let primary: ArbiterKind = match sc.arbiter {
        ArbiterSel::Lottery => {
            let tickets = TicketAssignment::new(weights).map_err(|e| e.to_string())?;
            StaticLotteryArbiter::with_seed(tickets, seed).map_err(|e| e.to_string())?.into()
        }
        ArbiterSel::LotteryDynamic => {
            let tickets = TicketAssignment::new(weights).map_err(|e| e.to_string())?;
            DynamicLotteryArbiter::with_seed(tickets, seed).map_err(|e| e.to_string())?.into()
        }
        ArbiterSel::Priority => {
            StaticPriorityArbiter::new(weights).map_err(|e| e.to_string())?.into()
        }
        ArbiterSel::Tdma => {
            let slots: Vec<u32> = weights.iter().map(|w| w * sc.tdma_block).collect();
            TdmaArbiter::new(&slots, WheelLayout::Contiguous).map_err(|e| e.to_string())?.into()
        }
        ArbiterSel::RoundRobin => RoundRobinArbiter::new(n).map_err(|e| e.to_string())?.into(),
        ArbiterSel::TokenRing => TokenRingArbiter::new(n).map_err(|e| e.to_string())?.into(),
    };
    let wrapped: ArbiterKind = if sc.wedges.is_empty() {
        primary
    } else {
        let windows = sc.wedges.iter().map(|w| (w.from, w.until)).collect();
        ArbiterKind::Custom(Box::new(WedgingArbiter::new(windows, primary)))
    };
    match &sc.failover {
        None => Ok(wrapped),
        Some(f) => {
            let arb = match f.recovery {
                None => FailoverArbiter::with_patience(Box::new(wrapped), n, f.patience),
                Some(r) => FailoverArbiter::with_recovery(Box::new(wrapped), n, f.patience, r),
            }
            .map_err(|e| e.to_string())?;
            Ok(arb.into())
        }
    }
}

/// Cumulative (failovers, recoveries) of the arbiter chain.
pub(crate) fn probe(arb: &ArbiterKind) -> (u64, u64) {
    match arb {
        ArbiterKind::Failover(f) => (f.failovers(), f.recoveries()),
        other => (other.failovers(), 0),
    }
}

/// Runs one scenario under the chosen kernel and evaluates its SLAs.
///
/// Scenario runs always sample windowed metrics (SLA starvation
/// checks need them), so [`Kernel::Tlm`] degrades to the exact
/// fast-forward path here: verdicts are byte-identical across all
/// three kernels by construction. The TLM tenure-batching win shows
/// up in the experiment suite, which runs without metrics.
pub fn run_scenario(sc: &Scenario, kernel: Kernel) -> Result<Outcome, String> {
    run_scenario_inner(sc, kernel, false).map(|(outcome, _)| outcome)
}

/// Like [`run_scenario`], but with the simulator's phase profiler
/// enabled; additionally returns the run's simulation wall-clock.
/// Verdicts are unaffected — profiling only observes. The scenario
/// bench (`lotterybus-sim scenario --bench`) sums these.
pub fn run_scenario_profiled(
    sc: &Scenario,
    kernel: Kernel,
) -> Result<(Outcome, std::time::Duration), String> {
    run_scenario_inner(sc, kernel, true)
}

fn run_scenario_inner(
    sc: &Scenario,
    kernel: Kernel,
    profiling: bool,
) -> Result<(Outcome, std::time::Duration), String> {
    sc.validate()?;
    let config = BusConfig { max_burst: sc.burst, ..BusConfig::new() };
    let mut builder: SystemBuilder<ArbiterKind, PhasedSource> = SystemBuilder::new(config);
    for (i, s) in sc.slaves.iter().enumerate() {
        builder = builder.slave(Slave::with_wait_states(SlaveId::new(i), s.name.clone(), s.wait));
    }
    for (i, m) in sc.masters.iter().enumerate() {
        builder = builder.master(m.name.clone(), PhasedSource::build(i, m, &sc.phases, sc.seed));
    }
    if sc.fault.is_active() {
        builder = builder.faults(FaultConfig { seed: mix(sc.seed), ..sc.fault });
    }
    if let Some(retry) = sc.retry {
        builder = builder.retry_policy(retry);
    }
    if let Some(timeout) = sc.timeout {
        builder = builder.timeout(timeout);
    }
    let mut system: System<ArbiterKind, PhasedSource> = builder
        .metrics_window(sc.metrics_window)
        .profiling(profiling)
        .kernel(kernel)
        .arbiter(build_arbiter(sc)?)
        .build()
        .map_err(|e| format!("scenario `{}`: {e}", sc.name))?;

    let mut snaps: Vec<BusStats> = Vec::with_capacity(sc.phases.len());
    let mut probes: Vec<(u64, u64)> = Vec::with_capacity(sc.phases.len());
    for phase in &sc.phases {
        system.run(phase.duration);
        snaps.push(system.stats().clone());
        probes.push(probe(system.arbiter_mut()));
    }
    system.flush_metrics();
    let samples = system.metrics().map(|m| m.samples().to_vec()).unwrap_or_default();
    let counts: Vec<(u64, u64)> = (0..sc.masters.len())
        .map(|i| {
            let port = system.master(MasterId::new(i));
            (port.issued_transactions(), port.backlog_transactions() as u64)
        })
        .collect();
    let outcome = assemble_outcome(sc, &snaps, &probes, &samples, &counts);
    Ok((outcome, system.profiler().total_wall()))
}

/// Evaluates the SLAs and the conservation check and assembles the
/// verdict from a finished run's observations: per-phase statistics
/// snapshots, arbiter probes, windowed metrics samples and per-master
/// `(issued, backlog)` transaction counts. Shared by the scalar runner
/// and the fleet runner ([`crate::fleet`]) so both assemble verdicts
/// through the identical code path.
pub(crate) fn assemble_outcome(
    sc: &Scenario,
    snaps: &[BusStats],
    probes: &[(u64, u64)],
    samples: &[socsim::WindowSample],
    counts: &[(u64, u64)],
) -> Outcome {
    let mut violations = evaluate(&EvalInput { sc, snaps, probes, samples });
    let last = snaps.last().expect("at least one phase");
    conservation_check(sc, last, counts, &mut violations);
    let issued: u64 = counts.iter().map(|&(issued, _)| issued).sum();
    let backlog: u64 = counts.iter().map(|&(_, backlog)| backlog).sum();
    let completed: u64 = last.masters().iter().map(|m| m.transactions).sum();
    let (failovers, recoveries) = *probes.last().expect("at least one phase");
    let phases = phase_reports(sc, snaps, probes);
    let passed = violations.is_empty();
    Outcome {
        name: sc.name.clone(),
        expected: sc.expect,
        passed,
        total_cycles: sc.total_cycles(),
        issued,
        completed,
        aborted: last.aborted_transactions,
        backlog,
        failovers,
        recoveries,
        violations,
        phases,
    }
}

/// Issued must equal completed + aborted + backlog, per master. A
/// mismatch means the simulator lost or double-counted a transaction
/// and the verdict can't be trusted.
fn conservation_check(
    sc: &Scenario,
    last: &BusStats,
    counts: &[(u64, u64)],
    out: &mut Vec<Violation>,
) {
    for (i, m) in sc.masters.iter().enumerate() {
        let stats = last.master(MasterId::new(i));
        let (issued, backlog) = counts[i];
        let accounted = stats.transactions + stats.aborted + backlog;
        if issued != accounted {
            out.push(Violation {
                sla: "conservation".to_owned(),
                phase: None,
                master: Some(m.name.clone()),
                observed: accounted as f64,
                bound: issued as f64,
                message: format!(
                    "{}: issued {issued} transactions but completed + aborted + backlog \
                     accounts for {accounted}",
                    m.name
                ),
            });
        }
    }
}

fn phase_reports(sc: &Scenario, snaps: &[BusStats], probes: &[(u64, u64)]) -> Vec<PhaseReport> {
    let mut reports = Vec::with_capacity(sc.phases.len());
    let mut start = 0u64;
    for (k, phase) in sc.phases.iter().enumerate() {
        let delta = |f: &dyn Fn(&BusStats) -> u64| -> u64 {
            f(&snaps[k]) - if k == 0 { 0 } else { f(&snaps[k - 1]) }
        };
        let cycles = delta(&|s| s.cycles);
        let busy = delta(&|s| s.busy_cycles);
        let shares = (0..sc.masters.len())
            .map(|i| {
                let words = delta(&|s| s.master(MasterId::new(i)).words);
                if cycles == 0 {
                    0.0
                } else {
                    words as f64 / cycles as f64
                }
            })
            .collect();
        let (fo_end, rec_end) = probes[k];
        let (fo_start, rec_start) = if k == 0 { (0, 0) } else { probes[k - 1] };
        reports.push(PhaseReport {
            name: phase.name.clone(),
            start,
            cycles,
            utilization: if cycles == 0 { 0.0 } else { busy as f64 / cycles as f64 },
            shares,
            aborted: delta(&|s| s.aborted_transactions),
            failovers: fo_end - fo_start,
            recoveries: rec_end - rec_start,
        });
        start += phase.duration;
    }
    reports
}
