//! The declarative scenario data model.
//!
//! A [`Scenario`] is the in-memory form of one `.scenario` file: a
//! complete robustness experiment naming the topology (masters,
//! slaves, arbiter), a phase schedule, an optional fault plan, and a
//! list of SLA assertions. The model is plain data — running one is
//! [`crate::run_scenario`]'s job — and every scenario can be rendered
//! back to canonical text with [`Scenario::render`], which is
//! guaranteed to round-trip through [`Scenario::parse`]. The fuzzer
//! leans on that guarantee to emit minimal reproducing files.

use socsim::{FaultConfig, RetryPolicy};
use std::fmt::Write as _;

/// Which built-in arbiter drives the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterSel {
    /// Static lottery (the paper's §3 architecture).
    Lottery,
    /// Dynamic lottery (§5, per-arbitration ticket updates).
    LotteryDynamic,
    /// Static priority.
    Priority,
    /// Two-level TDMA.
    Tdma,
    /// Round-robin.
    RoundRobin,
    /// Token ring.
    TokenRing,
}

impl ArbiterSel {
    /// The keyword used in `.scenario` files.
    pub fn keyword(self) -> &'static str {
        match self {
            ArbiterSel::Lottery => "lottery",
            ArbiterSel::LotteryDynamic => "lottery-dynamic",
            ArbiterSel::Priority => "priority",
            ArbiterSel::Tdma => "tdma",
            ArbiterSel::RoundRobin => "rr",
            ArbiterSel::TokenRing => "token",
        }
    }

    /// All keywords, for error messages and the fuzzer.
    pub const ALL: [ArbiterSel; 6] = [
        ArbiterSel::Lottery,
        ArbiterSel::LotteryDynamic,
        ArbiterSel::Priority,
        ArbiterSel::Tdma,
        ArbiterSel::RoundRobin,
        ArbiterSel::TokenRing,
    ];
}

/// Arrival process of one master's traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Bernoulli arrivals (memoryless, one draw per cycle).
    Poisson,
    /// On/off bursty trains.
    Burst,
    /// Fixed-period arrivals (hard real-time flavour).
    Periodic,
}

impl Arrival {
    /// The keyword used in `.scenario` files.
    pub fn keyword(self) -> &'static str {
        match self {
            Arrival::Poisson => "poisson",
            Arrival::Burst => "burst",
            Arrival::Periodic => "periodic",
        }
    }
}

/// One bus master and its traffic class.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterDecl {
    /// Master name (single token; referenced by SLAs and `focus=`).
    pub name: String,
    /// Lottery tickets / priority level / TDMA slot weight.
    pub weight: u32,
    /// Offered load in words per cycle, before phase scaling.
    pub load: f64,
    /// Transaction size in words.
    pub size: u32,
    /// Arrival process.
    pub arrival: Arrival,
    /// Index of the addressed slave.
    pub slave: usize,
}

/// One declared slave. Slaves only need declaring when they model
/// wait states (e.g. a slow bridge); otherwise a default single-cycle
/// slave 0 is implied.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaveDecl {
    /// Slave name (single token).
    pub name: String,
    /// Wait states inserted before the first word of each grant.
    pub wait: u32,
}

/// One entry of the phase schedule. Phases run back to back in
/// declaration order; each scales the offered load of every master
/// (or of one `focus` master) for `duration` cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDecl {
    /// Phase name (single token; referenced by `phase=` SLA filters).
    pub name: String,
    /// Length of the phase in cycles.
    pub duration: u64,
    /// Load multiplier applied during the phase (0 silences traffic).
    pub scale: f64,
    /// When set, `scale` applies only to this master (flash crowd);
    /// all other masters run at their base load.
    pub focus: Option<String>,
}

/// A deterministic arbiter outage: the decision logic returns no
/// grant for every cycle in `[from, until)`. This is the scenario
/// subsystem's failover trigger — all built-in arbiters are
/// work-conserving, so a wedge is the only way a healthy bus can
/// starve and trip [`arbiters::FailoverArbiter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WedgeWindow {
    /// First wedged cycle.
    pub from: u64,
    /// First healthy cycle after the window.
    pub until: u64,
}

/// Failover protection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverDecl {
    /// Consecutive starved-but-pending cycles before the fallback
    /// round-robin takes over.
    pub patience: u64,
    /// When set, consecutive healthy shadow decisions before the
    /// primary is re-promoted (graceful recovery).
    pub recovery: Option<u64>,
}

/// Condition under which a dependent scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepCondition {
    /// Run only if the parent scenario's verdict was `pass`.
    Passed,
    /// Run only if the parent scenario's verdict was `fail`.
    Failed,
    /// Run only if the parent tripped its failover at least once.
    FailoverFired,
}

impl DepCondition {
    /// The keyword used in `.scenario` files.
    pub fn keyword(self) -> &'static str {
        match self {
            DepCondition::Passed => "passed",
            DepCondition::Failed => "failed",
            DepCondition::FailoverFired => "failover-fired",
        }
    }
}

/// A dependency edge in a scenario plan: `after <parent> <condition>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dependency {
    /// Name of the parent scenario (must be in the same plan).
    pub parent: String,
    /// Condition gating this scenario on the parent's outcome.
    pub condition: DepCondition,
}

/// Whether the scenario is expected to pass or fail its SLAs. A
/// scenario that fails as expected (e.g. a committed regression
/// reproducer, or a starvation demonstration) still counts as a
/// successful suite run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The verdict should be pass (the default).
    Pass,
    /// The verdict should be fail.
    Fail,
}

/// The assertion kind of one SLA line.
#[derive(Debug, Clone, PartialEq)]
pub enum SlaKind {
    /// Bandwidth share of one master (completed words per bus cycle)
    /// must stay within `[min, max]`.
    Bandwidth {
        /// Master under assertion.
        master: String,
        /// Lower bound on the share, if any.
        min: Option<f64>,
        /// Upper bound on the share, if any.
        max: Option<f64>,
    },
    /// Bus-wide p99 transaction latency (from windowed metrics; the
    /// worst window in scope is compared) must not exceed `p99`.
    LatencyBus {
        /// Ceiling in cycles.
        p99: u64,
    },
    /// One master's whole-run p99 latency must not exceed `p99`.
    /// Per-master latency histograms are whole-run, so this kind
    /// cannot take a `phase=` filter.
    LatencyMaster {
        /// Master under assertion.
        master: String,
        /// Ceiling in cycles.
        p99: u64,
    },
    /// At most `max_windows` metric windows may show the master with
    /// work queued but zero grants (a starvation bound).
    Starvation {
        /// Master under assertion.
        master: String,
        /// Allowed fully-starved windows.
        max_windows: u64,
    },
    /// At most `max` transactions may be lost to retry exhaustion or
    /// watchdog timeout (bus-wide, or one master's).
    Losses {
        /// Restrict to one master; `None` asserts the bus-wide count.
        master: Option<String>,
        /// Allowed aborted transactions.
        max: u64,
    },
    /// The failover count must lie within `[min, max]` (use
    /// `min=0 max=0` to assert the bus never degraded).
    Failover {
        /// Required failovers.
        min: u64,
        /// Allowed failovers, if bounded above.
        max: Option<u64>,
    },
    /// At least `min` primary re-promotions must have happened.
    Recovery {
        /// Required recoveries.
        min: u64,
    },
    /// Bus utilization (busy cycles / cycles) must stay in `[min, max]`.
    Utilization {
        /// Lower bound, if any.
        min: Option<f64>,
        /// Upper bound, if any.
        max: Option<f64>,
    },
}

impl SlaKind {
    /// The keyword naming this SLA kind in files and verdicts.
    pub fn keyword(&self) -> &'static str {
        match self {
            SlaKind::Bandwidth { .. } => "bandwidth",
            SlaKind::LatencyBus { .. } | SlaKind::LatencyMaster { .. } => "latency",
            SlaKind::Starvation { .. } => "starvation",
            SlaKind::Losses { .. } => "losses",
            SlaKind::Failover { .. } => "failover",
            SlaKind::Recovery { .. } => "recovery",
            SlaKind::Utilization { .. } => "utilization",
        }
    }
}

/// One SLA assertion, optionally scoped to a single phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Sla {
    /// What is asserted.
    pub kind: SlaKind,
    /// Restrict the assertion to one phase's delta; `None` asserts
    /// over the whole run.
    pub phase: Option<String>,
}

/// A complete declarative robustness experiment — the in-memory form
/// of one `.scenario` file.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (single token, unique within a plan).
    pub name: String,
    /// Master seed; traffic and fault streams derive from it.
    pub seed: u64,
    /// Arbiter selection.
    pub arbiter: ArbiterSel,
    /// Maximum burst length in words.
    pub burst: u32,
    /// TDMA slots per weight unit.
    pub tdma_block: u32,
    /// Metrics window length in cycles.
    pub metrics_window: u64,
    /// Expected verdict.
    pub expect: Expectation,
    /// Optional dependency on another scenario in the same plan.
    pub after: Option<Dependency>,
    /// Bus masters (at least one).
    pub masters: Vec<MasterDecl>,
    /// Declared slaves (may be empty: a single-cycle slave 0 is implied).
    pub slaves: Vec<SlaveDecl>,
    /// Phase schedule (at least one phase).
    pub phases: Vec<PhaseDecl>,
    /// Stochastic fault plan (all-zero rates = no faults).
    pub fault: FaultConfig,
    /// Deterministic arbiter outage windows.
    pub wedges: Vec<WedgeWindow>,
    /// Retry policy; `None` aborts on first error.
    pub retry: Option<RetryPolicy>,
    /// Watchdog timeout in cycles, if any.
    pub timeout: Option<u64>,
    /// Failover protection, if any.
    pub failover: Option<FailoverDecl>,
    /// SLA assertions, evaluated in declaration order.
    pub slas: Vec<Sla>,
}

/// Default metrics window when a scenario does not set one.
pub const DEFAULT_METRICS_WINDOW: u64 = 512;

impl Scenario {
    /// A scenario with the given name and every knob at its default.
    /// The result is not yet valid — it has no masters or phases.
    pub fn empty(name: &str) -> Scenario {
        Scenario {
            name: name.to_owned(),
            seed: 7,
            arbiter: ArbiterSel::Lottery,
            burst: 16,
            tdma_block: 6,
            metrics_window: DEFAULT_METRICS_WINDOW,
            expect: Expectation::Pass,
            after: None,
            masters: Vec::new(),
            slaves: Vec::new(),
            phases: Vec::new(),
            fault: FaultConfig::default(),
            wedges: Vec::new(),
            retry: None,
            timeout: None,
            failover: None,
            slas: Vec::new(),
        }
    }

    /// Total scheduled cycles (sum of phase durations).
    pub fn total_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Index of the named master, if declared.
    pub fn master_index(&self, name: &str) -> Option<usize> {
        self.masters.iter().position(|m| m.name == name)
    }

    /// Index of the named phase, if declared.
    pub fn phase_index(&self, name: &str) -> Option<usize> {
        self.phases.iter().position(|p| p.name == name)
    }

    /// Whether any stochastic fault class has a nonzero rate.
    pub fn has_stochastic_faults(&self) -> bool {
        self.fault.is_active()
    }

    /// Whether the scenario injects any failure mechanism at all
    /// (stochastic faults, wedge windows, or a watchdog that can
    /// abort legitimate waits). The fuzzer's "no silent loss" and
    /// "no silent starvation" invariants only apply when this is
    /// false.
    pub fn has_fault_machinery(&self) -> bool {
        self.has_stochastic_faults() || !self.wedges.is_empty() || self.timeout.is_some()
    }

    /// Semantic validation beyond what the grammar enforces. Returns
    /// the first problem found. Parsed scenarios are always validated;
    /// the fuzzer also validates every shrink candidate.
    pub fn validate(&self) -> Result<(), String> {
        fn token(what: &str, s: &str) -> Result<(), String> {
            if s.is_empty() || s.chars().any(|c| c.is_whitespace() || c == '=' || c == '#') {
                return Err(format!(
                    "{what} name {s:?} must be a single token without '=', '#' or spaces"
                ));
            }
            Ok(())
        }
        token("scenario", &self.name)?;
        if self.masters.is_empty() {
            return Err("scenario declares no masters (need at least one `master` line)".into());
        }
        if self.phases.is_empty() {
            return Err("scenario declares no phases (need at least one `phase` line)".into());
        }
        for (i, m) in self.masters.iter().enumerate() {
            token("master", &m.name)?;
            if self.masters.iter().skip(i + 1).any(|o| o.name == m.name) {
                return Err(format!("master {:?} declared twice", m.name));
            }
            if m.weight == 0 {
                return Err(format!("master {:?}: weight must be at least 1", m.name));
            }
            if !(m.load > 0.0 && m.load <= 1.0) {
                return Err(format!("master {:?}: load must be in (0, 1]", m.name));
            }
            if m.size == 0 {
                return Err(format!("master {:?}: size must be at least 1 word", m.name));
            }
            let slaves = self.slaves.len().max(1);
            if m.slave >= slaves {
                return Err(format!(
                    "master {:?} addresses slave {} but only {} declared",
                    m.name, m.slave, slaves
                ));
            }
        }
        for (i, s) in self.slaves.iter().enumerate() {
            token("slave", &s.name)?;
            if self.slaves.iter().skip(i + 1).any(|o| o.name == s.name) {
                return Err(format!("slave {:?} declared twice", s.name));
            }
        }
        for (i, p) in self.phases.iter().enumerate() {
            token("phase", &p.name)?;
            if self.phases.iter().skip(i + 1).any(|o| o.name == p.name) {
                return Err(format!("phase {:?} declared twice", p.name));
            }
            if p.duration == 0 {
                return Err(format!("phase {:?}: duration must be at least 1 cycle", p.name));
            }
            if !(p.scale >= 0.0 && p.scale.is_finite()) {
                return Err(format!("phase {:?}: scale must be finite and >= 0", p.name));
            }
            if let Some(f) = &p.focus {
                if self.master_index(f).is_none() {
                    return Err(format!("phase {:?} focuses unknown master {:?}", p.name, f));
                }
            }
        }
        self.fault.validate()?;
        for w in &self.wedges {
            if w.from >= w.until {
                return Err(format!(
                    "arbiter-wedge window [{}, {}) is empty (need from < until)",
                    w.from, w.until
                ));
            }
        }
        if let Some(f) = &self.failover {
            if f.patience == 0 {
                return Err("failover patience must be at least 1 cycle".into());
            }
            if f.recovery == Some(0) {
                return Err("failover recovery window must be at least 1 decision".into());
            }
        }
        if self.metrics_window == 0 {
            return Err("metrics window must be at least 1 cycle".into());
        }
        if let Some(r) = &self.retry {
            if r.backoff_factor == 0 {
                return Err("retry factor must be at least 1".into());
            }
        }
        for sla in &self.slas {
            self.validate_sla(sla)?;
        }
        Ok(())
    }

    fn validate_sla(&self, sla: &Sla) -> Result<(), String> {
        let kw = sla.kind.keyword();
        if let Some(p) = &sla.phase {
            if self.phase_index(p).is_none() {
                return Err(format!("sla {kw} references unknown phase {p:?}"));
            }
        }
        let check_master = |name: &str| {
            if self.master_index(name).is_none() {
                Err(format!("sla {kw} references unknown master {name:?}"))
            } else {
                Ok(())
            }
        };
        match &sla.kind {
            SlaKind::Bandwidth { master, min, max } => {
                check_master(master)?;
                if min.is_none() && max.is_none() {
                    return Err("sla bandwidth needs a `min=` or `max=` bound".into());
                }
            }
            SlaKind::LatencyBus { .. } => {}
            SlaKind::LatencyMaster { master, .. } => {
                check_master(master)?;
                if sla.phase.is_some() {
                    return Err(
                        "sla latency with `master=` is whole-run only (per-master latency \
                         histograms are not windowed); drop the `phase=` filter"
                            .into(),
                    );
                }
            }
            SlaKind::Starvation { master, .. } => check_master(master)?,
            SlaKind::Losses { master, .. } => {
                if let Some(m) = master {
                    check_master(m)?;
                }
            }
            SlaKind::Failover { min, max } => {
                if let Some(max) = max {
                    if min > max {
                        return Err(format!("sla failover has min={min} > max={max}"));
                    }
                }
            }
            SlaKind::Recovery { .. } => {}
            SlaKind::Utilization { min, max } => {
                if min.is_none() && max.is_none() {
                    return Err("sla utilization needs a `min=` or `max=` bound".into());
                }
            }
        }
        Ok(())
    }

    /// Renders the scenario as canonical `.scenario` text. The output
    /// parses back to an equal `Scenario` — the fuzzer's round-trip
    /// invariant and the shrinker's output format both rely on this.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "scenario {}", self.name);
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "arbiter = {}", self.arbiter.keyword());
        if self.burst != 16 {
            let _ = writeln!(out, "burst = {}", self.burst);
        }
        if self.tdma_block != 6 {
            let _ = writeln!(out, "tdma-block = {}", self.tdma_block);
        }
        if self.metrics_window != DEFAULT_METRICS_WINDOW {
            let _ = writeln!(out, "metrics window={}", self.metrics_window);
        }
        if self.expect == Expectation::Fail {
            let _ = writeln!(out, "expect = fail");
        }
        if let Some(dep) = &self.after {
            let _ = writeln!(out, "after {} {}", dep.parent, dep.condition.keyword());
        }
        for s in &self.slaves {
            let _ = writeln!(out, "slave {} wait={}", s.name, s.wait);
        }
        for m in &self.masters {
            let _ = write!(
                out,
                "master {} weight={} load={} size={} {}",
                m.name,
                m.weight,
                m.load,
                m.size,
                m.arrival.keyword()
            );
            if m.slave != 0 {
                let _ = write!(out, " slave={}", m.slave);
            }
            out.push('\n');
        }
        for p in &self.phases {
            let _ = write!(out, "phase {} duration={}", p.name, p.duration);
            if p.scale != 1.0 {
                let _ = write!(out, " scale={}", p.scale);
            }
            if let Some(f) = &p.focus {
                let _ = write!(out, " focus={f}");
            }
            out.push('\n');
        }
        self.render_faults(&mut out);
        if let Some(r) = &self.retry {
            let _ = writeln!(
                out,
                "retry max={} base={} factor={}",
                r.max_retries, r.backoff_base, r.backoff_factor
            );
        }
        if let Some(t) = self.timeout {
            let _ = writeln!(out, "timeout = {t}");
        }
        if let Some(f) = &self.failover {
            let _ = write!(out, "failover patience={}", f.patience);
            if let Some(r) = f.recovery {
                let _ = write!(out, " recovery={r}");
            }
            out.push('\n');
        }
        for sla in &self.slas {
            self.render_sla(sla, &mut out);
        }
        out
    }

    fn render_faults(&self, out: &mut String) {
        let f = &self.fault;
        if f.slave_error_rate > 0.0 {
            let _ = writeln!(out, "fault slave-error rate={}", f.slave_error_rate);
        }
        if f.slave_outage_rate > 0.0 {
            let _ = writeln!(
                out,
                "fault slave-outage rate={} duration={}",
                f.slave_outage_rate, f.slave_outage_duration
            );
        }
        if f.grant_drop_rate > 0.0 {
            let _ = writeln!(out, "fault grant-drop rate={}", f.grant_drop_rate);
        }
        if f.grant_corrupt_rate > 0.0 {
            let _ = writeln!(out, "fault grant-corrupt rate={}", f.grant_corrupt_rate);
        }
        if f.master_stall_rate > 0.0 {
            let _ = writeln!(
                out,
                "fault master-stall rate={} max={}",
                f.master_stall_rate, f.master_stall_max
            );
        }
        for w in &self.wedges {
            let _ = writeln!(out, "fault arbiter-wedge from={} until={}", w.from, w.until);
        }
    }

    fn render_sla(&self, sla: &Sla, out: &mut String) {
        let _ = write!(out, "sla {}", sla.kind.keyword());
        match &sla.kind {
            SlaKind::Bandwidth { master, min, max } => {
                let _ = write!(out, " master={master}");
                if let Some(v) = min {
                    let _ = write!(out, " min={v}");
                }
                if let Some(v) = max {
                    let _ = write!(out, " max={v}");
                }
            }
            SlaKind::LatencyBus { p99 } => {
                let _ = write!(out, " p99={p99}");
            }
            SlaKind::LatencyMaster { master, p99 } => {
                let _ = write!(out, " master={master} p99={p99}");
            }
            SlaKind::Starvation { master, max_windows } => {
                let _ = write!(out, " master={master} max-windows={max_windows}");
            }
            SlaKind::Losses { master, max } => {
                if let Some(m) = master {
                    let _ = write!(out, " master={m}");
                }
                let _ = write!(out, " max={max}");
            }
            SlaKind::Failover { min, max } => {
                let _ = write!(out, " min={min}");
                if let Some(v) = max {
                    let _ = write!(out, " max={v}");
                }
            }
            SlaKind::Recovery { min } => {
                let _ = write!(out, " min={min}");
            }
            SlaKind::Utilization { min, max } => {
                if let Some(v) = min {
                    let _ = write!(out, " min={v}");
                }
                if let Some(v) = max {
                    let _ = write!(out, " max={v}");
                }
            }
        }
        if let Some(p) = &sla.phase {
            let _ = write!(out, " phase={p}");
        }
        out.push('\n');
    }
}
