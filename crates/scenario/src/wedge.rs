//! Deterministic arbiter outages (`fault arbiter-wedge`).
//!
//! Every built-in arbiter is work-conserving — with any master
//! pending, *some* master is granted — so a healthy scenario can
//! never trip [`arbiters::FailoverArbiter`] organically. The wedge is
//! the scenario subsystem's way to script that failure: inside each
//! window the wrapped arbiter's decision logic is down and no grant
//! is issued, which starves pending masters and (with failover
//! configured) deterministically fires the fallback.

use arbiters::kind::ArbiterKind;
use socsim::{Arbiter, Cycle, Grant, RequestMap};

/// Wraps an arbiter and suppresses every grant inside the configured
/// windows, delegating untouched otherwise.
///
/// The wrapper is kernel-safe: while a window is open (or upcoming)
/// [`Arbiter::next_event`] refuses to report a horizon past the
/// window start, so the fast-forward kernel can never skip over a
/// span in which the inner arbiter would have been frozen. Outside
/// windows, skips map one-to-one onto inner [`Arbiter::skip_idle`]
/// replays, exactly as without the wrapper.
pub struct WedgingArbiter {
    windows: Vec<(u64, u64)>,
    inner: ArbiterKind,
}

impl WedgingArbiter {
    /// Wraps `inner`, wedging it for every `[from, until)` window.
    pub fn new(windows: Vec<(u64, u64)>, inner: ArbiterKind) -> Self {
        WedgingArbiter { windows, inner }
    }

    fn wedged(&self, cycle: u64) -> bool {
        self.windows.iter().any(|&(from, until)| cycle >= from && cycle < until)
    }

    /// Start of the earliest window that has not yet closed at
    /// `cycle`, if any.
    fn next_window_start(&self, cycle: u64) -> Option<u64> {
        self.windows.iter().filter(|&&(_, until)| until > cycle).map(|&(from, _)| from).min()
    }
}

impl Arbiter for WedgingArbiter {
    fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
        if self.wedged(now.index()) {
            // The decision logic is down: no grant, and the inner
            // arbiter's state is frozen (it never sees the cycle).
            return None;
        }
        self.inner.arbitrate(requests, now)
    }

    fn name(&self) -> &str {
        "wedged"
    }

    fn failovers(&self) -> u64 {
        self.inner.failovers()
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        let cycle = now.index();
        let inner = self.inner.next_event(now);
        match self.next_window_start(cycle) {
            // Inside a window: deny all skipping so the frozen span is
            // stepped cycle by cycle in both kernels.
            Some(from) if from <= cycle => now,
            // A window is coming: let the kernel skip at most up to it.
            Some(from) => inner.min(Cycle::new(from)),
            None => inner,
        }
    }

    fn skip_idle(&mut self, delta: u64) {
        // next_event() guarantees a skipped span never overlaps a
        // window, so the whole span replays onto the inner arbiter.
        self.inner.skip_idle(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbiters::RoundRobinArbiter;
    use socsim::MasterId;

    fn rr(masters: usize) -> ArbiterKind {
        RoundRobinArbiter::new(masters).expect("valid").into()
    }

    fn pending(masters: usize) -> RequestMap {
        let mut map = RequestMap::new(masters);
        for m in 0..masters {
            map.set_pending(MasterId::new(m), 4);
        }
        map
    }

    #[test]
    fn grants_are_suppressed_exactly_inside_the_window() {
        let mut arb = WedgingArbiter::new(vec![(10, 20)], rr(2));
        let map = pending(2);
        for c in 0..30u64 {
            let grant = arb.arbitrate(&map, Cycle::new(c));
            if (10..20).contains(&c) {
                assert!(grant.is_none(), "cycle {c} should be wedged");
            } else {
                assert!(grant.is_some(), "cycle {c} should grant");
            }
        }
    }

    #[test]
    fn inner_state_freezes_during_the_wedge() {
        // Round-robin must resume exactly where it left off: the
        // wedged cycles never reach the inner arbiter.
        let mut wedged = WedgingArbiter::new(vec![(3, 100)], rr(3));
        let mut plain = rr(3);
        let map = pending(3);
        let mut wedged_grants = Vec::new();
        let mut plain_grants = Vec::new();
        for c in 0..6u64 {
            if let Some(g) = wedged.arbitrate(&map, Cycle::new(c)) {
                wedged_grants.push(g.master);
            }
        }
        for c in 100..103u64 {
            if let Some(g) = wedged.arbitrate(&map, Cycle::new(c)) {
                wedged_grants.push(g.master);
            }
        }
        for c in 0..6u64 {
            if let Some(g) = plain.arbitrate(&map, Cycle::new(c)) {
                plain_grants.push(g.master);
            }
        }
        assert_eq!(wedged_grants, plain_grants);
    }

    #[test]
    fn horizon_never_skips_into_or_across_a_window() {
        let arb = WedgingArbiter::new(vec![(50, 60)], rr(2));
        // Before the window: may skip at most to the window start.
        assert!(arb.next_event(Cycle::new(10)).index() <= 50);
        // Inside: pinned to now.
        assert_eq!(arb.next_event(Cycle::new(55)), Cycle::new(55));
        // After: unconstrained (delegates to the inner arbiter).
        assert_eq!(arb.next_event(Cycle::new(60)), rr(2).next_event(Cycle::new(60)));
    }

    #[test]
    fn skips_outside_windows_replay_onto_the_inner_arbiter() {
        let mut skipped = WedgingArbiter::new(vec![(50, 60)], rr(3));
        let mut stepped = WedgingArbiter::new(vec![(50, 60)], rr(3));
        let empty = RequestMap::new(3);
        for c in 0..7u64 {
            assert!(stepped.arbitrate(&empty, Cycle::new(c)).is_none());
        }
        skipped.skip_idle(7);
        let map = pending(3);
        for c in 7..10u64 {
            assert_eq!(
                skipped.arbitrate(&map, Cycle::new(c)).map(|g| g.master),
                stepped.arbitrate(&map, Cycle::new(c)).map(|g| g.master),
            );
        }
    }
}
