//! Seeded scenario fuzzer with shrinking.
//!
//! The fuzzer generates random-but-valid scenarios from a splitmix64
//! counter stream (fully deterministic for a given seed), runs each
//! one under every kernel, and checks five invariants:
//!
//! 1. **round-trip** — `parse(render(s)) == s`.
//! 2. **kernel-equivalence** — the cycle-accurate, fast-forward and
//!    TLM kernels render byte-identical verdict JSON.
//! 3. **fleet-equivalence** — packing the scenario into a two-lane
//!    lockstep fleet next to a seed-shifted twin renders the same
//!    verdict JSON as the scalar cycle run (lane exactness).
//! 4. **verdict** — no assertion (generated SLAs are chosen to be
//!    satisfiable, and conservation always holds) may be violated.
//! 5. **no silent loss/starvation** — a scenario with no fault
//!    machinery must end with zero aborted transactions and an empty
//!    backlog after its drain phase.
//!
//! A failing scenario is *shrunk*: deterministic passes drop masters,
//! phases, SLAs and fault classes, and halve durations, as long as
//! the same invariant keeps failing. The fixpoint is rendered as a
//! minimal reproducing `.scenario` file, ready to commit as a
//! regression (see `scenarios/regressions/`).

use crate::model::{
    Arrival, Expectation, MasterDecl, PhaseDecl, Scenario, Sla, SlaKind, SlaveDecl,
};
use crate::phased::mix;
use crate::run::run_scenario;
use experiments::json::Json;
use socsim::{Kernel, RetryPolicy};

/// Deterministic counter-mode RNG (splitmix64).
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng { state: mix(seed ^ 0x5EED_5EED_5EED_5EED) }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Inclusive range.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Fuzzer configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Seed of the whole campaign.
    pub seed: u64,
    /// Scenarios to generate and check.
    pub iterations: u32,
    /// When set, every scenario gets a deliberately impossible SLA
    /// (`losses max=0` against a 100% slave-error rate with no
    /// retries) so the find-and-shrink pipeline itself can be
    /// demonstrated and regression-tested deterministically.
    pub demo_failure: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { seed: 7, iterations: 20, demo_failure: false }
    }
}

/// One invariant breach found by the fuzzer.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Iteration that produced the scenario.
    pub iteration: u32,
    /// Which invariant broke (`round-trip`, `kernel-divergence`,
    /// `fleet-divergence`, `verdict-fail`, `loss-without-fault`,
    /// `silent-starvation`, `run-error`).
    pub invariant: String,
    /// Details of the breach.
    pub detail: String,
    /// The original failing scenario.
    pub scenario: Scenario,
    /// The shrunk minimal reproducer.
    pub shrunk: Scenario,
}

/// The result of one fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Scenarios generated and checked.
    pub iterations: u32,
    /// Invariant breaches, with shrunk reproducers.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// Deterministic JSON summary (no wall-clock).
    pub fn to_json(&self) -> Json {
        Json::obj().field("iterations", self.iterations).field(
            "findings",
            Json::Arr(
                self.findings
                    .iter()
                    .map(|f| {
                        Json::obj()
                            .field("iteration", f.iteration)
                            .field("invariant", f.invariant.as_str())
                            .field("detail", f.detail.as_str())
                            .field("scenario", f.scenario.name.as_str())
                            .field("shrunk", f.shrunk.render())
                    })
                    .collect(),
            ),
        )
    }
}

/// Generates one random-but-valid scenario.
fn generate(rng: &mut Rng, iteration: u32) -> Scenario {
    let mut sc = Scenario::empty(&format!("fuzz-{iteration:04}"));
    sc.seed = rng.next() & 0xFFFF;
    sc.arbiter = *rng.pick(&crate::model::ArbiterSel::ALL);
    let masters = rng.range(2, 4);
    for i in 0..masters {
        sc.masters.push(MasterDecl {
            name: format!("m{i}"),
            weight: rng.range(1, 8) as u32,
            load: 0.05 + 0.15 * rng.unit(),
            size: *rng.pick(&[4u32, 8, 16]),
            arrival: *rng.pick(&[Arrival::Poisson, Arrival::Burst, Arrival::Periodic]),
            slave: 0,
        });
    }
    if rng.chance(0.3) {
        sc.slaves.push(SlaveDecl { name: "bridge".into(), wait: rng.range(1, 3) as u32 });
    }
    let phases = rng.range(1, 3);
    for k in 0..phases {
        let focus = if rng.chance(0.3) { Some(format!("m{}", rng.below(masters))) } else { None };
        sc.phases.push(PhaseDecl {
            name: format!("p{k}"),
            duration: rng.range(1000, 5000),
            scale: *rng.pick(&[0.5, 1.0, 2.0]),
            focus,
        });
    }
    // Always end with a drain phase so the no-starvation invariant
    // (empty backlog at the end) is meaningful.
    sc.phases.push(PhaseDecl { name: "drain".into(), duration: 30_000, scale: 0.0, focus: None });
    if rng.chance(0.4) {
        match rng.below(5) {
            0 => sc.fault.slave_error_rate = 0.02 + 0.1 * rng.unit(),
            1 => {
                sc.fault.slave_outage_rate = 0.02 + 0.1 * rng.unit();
                sc.fault.slave_outage_duration = rng.range(32, 128) as u32;
            }
            2 => sc.fault.grant_drop_rate = 0.02 + 0.1 * rng.unit(),
            3 => sc.fault.grant_corrupt_rate = 0.02 + 0.1 * rng.unit(),
            _ => {
                sc.fault.master_stall_rate = 0.01 + 0.05 * rng.unit();
                sc.fault.master_stall_max = rng.range(4, 16) as u32;
            }
        }
        sc.retry = Some(RetryPolicy {
            max_retries: rng.range(1, 4) as u32,
            backoff_base: rng.range(4, 16),
            backoff_factor: 2,
        });
        if rng.chance(0.5) {
            sc.timeout = Some(rng.range(4096, 8192));
        }
    }
    // A couple of generous SLAs for grammar coverage; they hold for
    // any healthy run (losses are bounded by issued transactions, and
    // a master can't starve for more windows than the run contains).
    if rng.chance(0.5) {
        sc.slas.push(Sla { kind: SlaKind::Utilization { min: None, max: Some(1.0) }, phase: None });
    }
    if rng.chance(0.3) {
        let m = sc.masters[rng.below(masters) as usize].name.clone();
        sc.slas.push(Sla {
            kind: SlaKind::Starvation { master: m, max_windows: 1_000_000 },
            phase: None,
        });
    }
    sc
}

/// Arms the demo failure: a 100% slave-error rate with no retry
/// budget guarantees every transaction aborts, against a zero-loss
/// SLA.
fn arm_demo_failure(sc: &mut Scenario) {
    sc.fault.slave_error_rate = 1.0;
    sc.retry = None;
    sc.timeout = None;
    sc.slas.push(Sla { kind: SlaKind::Losses { master: None, max: 0 }, phase: None });
}

/// Checks every invariant; returns the first breach as
/// `(invariant, detail)`.
fn check(sc: &Scenario) -> Option<(String, String)> {
    match Scenario::parse(&sc.render()) {
        Err(e) => return Some(("round-trip".into(), format!("rendered text fails to parse: {e}"))),
        Ok(parsed) => {
            if parsed != *sc {
                return Some((
                    "round-trip".into(),
                    "rendered text parses to a different scenario".into(),
                ));
            }
        }
    }
    let cycle = match run_scenario(sc, Kernel::Cycle) {
        Ok(o) => o,
        Err(e) => return Some(("run-error".into(), e)),
    };
    let cycle_json = cycle.to_json().render();
    for kernel in [Kernel::Fast, Kernel::Tlm] {
        let other = match run_scenario(sc, kernel) {
            Ok(o) => o,
            Err(e) => return Some(("run-error".into(), format!("{} kernel: {e}", kernel.name()))),
        };
        if other.to_json().render() != cycle_json {
            return Some((
                "kernel-divergence".into(),
                format!("cycle-accurate and {} kernels render different verdicts", kernel.name()),
            ));
        }
    }
    // Fleet lane exactness: pack the scenario next to a seed-shifted
    // twin so the lane actually shares a fleet with heterogeneous
    // state, and require the lane's verdict to match the scalar run.
    // (Fleet-ineligible scenarios exercise the scalar fallback path.)
    let mut twin = sc.clone();
    twin.name = format!("{}-twin", sc.name);
    twin.seed = sc.seed.wrapping_add(0x5EED);
    match crate::fleet::run_scenarios_fleet(&[sc, &twin]) {
        Err(e) => return Some(("run-error".into(), format!("fleet runner: {e}"))),
        Ok(outcomes) => {
            if outcomes[0].to_json().render() != cycle_json {
                return Some((
                    "fleet-divergence".into(),
                    "fleet lane and scalar cycle kernel render different verdicts".into(),
                ));
            }
        }
    }
    if !cycle.passed {
        let first = cycle.violations.first().expect("failed verdict has a violation");
        return Some(("verdict-fail".into(), first.message.clone()));
    }
    if !sc.has_fault_machinery() {
        if cycle.aborted > 0 {
            return Some((
                "loss-without-fault".into(),
                format!("{} transactions aborted with no fault configured", cycle.aborted),
            ));
        }
        if cycle.backlog > 0 {
            return Some((
                "silent-starvation".into(),
                format!("{} transactions still queued after the drain phase", cycle.backlog),
            ));
        }
    }
    None
}

/// All single-step shrink candidates of `sc`, in a fixed order.
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    for i in 0..sc.slas.len() {
        let mut c = sc.clone();
        c.slas.remove(i);
        out.push(c);
    }
    if sc.masters.len() > 1 {
        for i in 0..sc.masters.len() {
            let mut c = sc.clone();
            let gone = c.masters.remove(i).name;
            c.slas.retain(|s| !sla_mentions(s, &gone));
            for p in &mut c.phases {
                if p.focus.as_deref() == Some(&gone) {
                    p.focus = None;
                }
            }
            out.push(c);
        }
    }
    if sc.phases.len() > 1 {
        for i in 0..sc.phases.len() {
            let mut c = sc.clone();
            let gone = c.phases.remove(i).name;
            c.slas.retain(|s| s.phase.as_deref() != Some(&gone));
            out.push(c);
        }
    }
    if !sc.slaves.is_empty() && sc.masters.iter().all(|m| m.slave == 0) {
        let mut c = sc.clone();
        c.slaves.clear();
        out.push(c);
    }
    for zero in fault_zeroers() {
        let mut c = sc.clone();
        zero(&mut c);
        if c != *sc {
            out.push(c);
        }
    }
    if !sc.wedges.is_empty() {
        let mut c = sc.clone();
        c.wedges.clear();
        out.push(c);
    }
    if sc.retry.is_some() {
        let mut c = sc.clone();
        c.retry = None;
        out.push(c);
    }
    if sc.timeout.is_some() {
        let mut c = sc.clone();
        c.timeout = None;
        out.push(c);
    }
    if sc.failover.is_some() {
        let mut c = sc.clone();
        c.failover = None;
        out.push(c);
    }
    for i in 0..sc.phases.len() {
        if sc.phases[i].duration > 64 {
            let mut c = sc.clone();
            c.phases[i].duration = (c.phases[i].duration / 2).max(64);
            out.push(c);
        }
        if sc.phases[i].scale != 1.0 {
            let mut c = sc.clone();
            c.phases[i].scale = 1.0;
            out.push(c);
        }
        if sc.phases[i].focus.is_some() {
            let mut c = sc.clone();
            c.phases[i].focus = None;
            out.push(c);
        }
    }
    for i in 0..sc.masters.len() {
        let m = &sc.masters[i];
        if m.weight != 1 || m.size != 4 || m.arrival != Arrival::Poisson || m.slave != 0 {
            let mut c = sc.clone();
            c.masters[i].weight = 1;
            c.masters[i].size = 4;
            c.masters[i].arrival = Arrival::Poisson;
            c.masters[i].slave = 0;
            out.push(c);
        }
        // Round the generated load to something a human can read.
        if m.load != 0.25 {
            let mut c = sc.clone();
            c.masters[i].load = 0.25;
            out.push(c);
        }
    }
    let mut defaults = sc.clone();
    defaults.burst = 16;
    defaults.tdma_block = 6;
    defaults.arbiter = crate::model::ArbiterSel::Lottery;
    if defaults != *sc {
        out.push(defaults);
    }
    out
}

fn sla_mentions(sla: &Sla, master: &str) -> bool {
    match &sla.kind {
        SlaKind::Bandwidth { master: m, .. }
        | SlaKind::LatencyMaster { master: m, .. }
        | SlaKind::Starvation { master: m, .. } => m == master,
        SlaKind::Losses { master: m, .. } => m.as_deref() == Some(master),
        _ => false,
    }
}

fn fault_zeroers() -> [fn(&mut Scenario); 5] {
    [
        |c| c.fault.slave_error_rate = 0.0,
        |c| c.fault.slave_outage_rate = 0.0,
        |c| c.fault.grant_drop_rate = 0.0,
        |c| c.fault.grant_corrupt_rate = 0.0,
        |c| c.fault.master_stall_rate = 0.0,
    ]
}

/// Greedily shrinks `sc` while the same invariant keeps failing.
/// Deterministic: candidates are tried in a fixed order and the first
/// still-failing one restarts the sweep.
pub fn shrink(sc: &Scenario, invariant: &str) -> Scenario {
    let still_fails = |c: &Scenario| -> bool {
        c.validate().is_ok() && check(c).map(|(inv, _)| inv == invariant).unwrap_or(false)
    };
    let mut best = sc.clone();
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if still_fails(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Runs a fuzzing campaign.
pub fn fuzz(config: &FuzzConfig) -> FuzzReport {
    let mut rng = Rng::new(config.seed);
    let mut report = FuzzReport { iterations: config.iterations, ..Default::default() };
    for iteration in 0..config.iterations {
        let mut sc = generate(&mut rng, iteration);
        if config.demo_failure {
            arm_demo_failure(&mut sc);
        }
        debug_assert_eq!(sc.validate(), Ok(()), "generator must emit valid scenarios");
        if let Some((invariant, detail)) = check(&sc) {
            let mut shrunk = shrink(&sc, &invariant);
            shrunk.name = format!("{}-min", sc.name);
            if invariant == "verdict-fail" {
                // The reproducer *should* fail its SLA; mark it so the
                // scenario suite treats the failure as the expected
                // verdict once the file is committed as a regression.
                shrunk.expect = Expectation::Fail;
            }
            report.findings.push(Finding { iteration, invariant, detail, scenario: sc, shrunk });
        }
    }
    report
}
