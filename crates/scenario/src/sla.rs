//! SLA evaluation: turns phase-boundary statistics snapshots and
//! windowed metric samples into structured pass/fail violations.
//!
//! Every assertion evaluates against a *scope*: the whole run, or one
//! phase's delta (cumulative counters at the phase's end minus those
//! at its start). Windowed assertions (latency percentile ceilings,
//! starvation bounds) assign each metrics window to the phase
//! containing the window's first cycle.

use crate::model::{Scenario, Sla, SlaKind};
use socsim::metrics::WindowSample;
use socsim::{BusStats, MasterId};

/// One violated assertion, with the observed value and the bound it
/// crossed.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The SLA keyword (`bandwidth`, `latency`, …) or `conservation`
    /// for the built-in accounting check.
    pub sla: String,
    /// Phase the assertion was scoped to, if any.
    pub phase: Option<String>,
    /// Master the assertion named, if any.
    pub master: Option<String>,
    /// The measured value.
    pub observed: f64,
    /// The bound it violated.
    pub bound: f64,
    /// Human-readable one-liner.
    pub message: String,
}

/// Everything the evaluator needs about one finished run.
pub(crate) struct EvalInput<'a> {
    /// The scenario under evaluation.
    pub sc: &'a Scenario,
    /// Cumulative statistics at the end of each phase.
    pub snaps: &'a [BusStats],
    /// Cumulative (failovers, recoveries) at the end of each phase.
    pub probes: &'a [(u64, u64)],
    /// All windowed metric samples of the run.
    pub samples: &'a [WindowSample],
}

impl EvalInput<'_> {
    /// First cycle of phase `k`.
    fn phase_start(&self, k: usize) -> u64 {
        self.sc.phases[..k].iter().map(|p| p.duration).sum()
    }

    /// Delta of a cumulative counter over the scope.
    fn delta(&self, scope: Option<usize>, f: impl Fn(&BusStats) -> u64) -> u64 {
        match scope {
            None => f(self.snaps.last().expect("at least one phase")),
            Some(k) => {
                let end = f(&self.snaps[k]);
                let start = if k == 0 { 0 } else { f(&self.snaps[k - 1]) };
                end - start
            }
        }
    }

    /// Delta of the (failovers, recoveries) probe over the scope.
    fn probe_delta(&self, scope: Option<usize>) -> (u64, u64) {
        match scope {
            None => *self.probes.last().expect("at least one phase"),
            Some(k) => {
                let end = self.probes[k];
                let start = if k == 0 { (0, 0) } else { self.probes[k - 1] };
                (end.0 - start.0, end.1 - start.1)
            }
        }
    }

    /// Samples whose window starts inside the scope.
    fn samples_in(&self, scope: Option<usize>) -> impl Iterator<Item = &WindowSample> {
        let range = match scope {
            None => 0..u64::MAX,
            Some(k) => self.phase_start(k)..self.phase_start(k) + self.sc.phases[k].duration,
        };
        self.samples.iter().filter(move |s| range.contains(&s.start.index()))
    }
}

/// Evaluates every SLA of the scenario in declaration order.
pub(crate) fn evaluate(input: &EvalInput<'_>) -> Vec<Violation> {
    let mut violations = Vec::new();
    for sla in &input.sc.slas {
        check_sla(input, sla, &mut violations);
    }
    violations
}

fn scope_label(phase: &Option<String>) -> String {
    match phase {
        Some(p) => format!("phase {p}"),
        None => "the whole run".to_owned(),
    }
}

fn check_sla(input: &EvalInput<'_>, sla: &Sla, out: &mut Vec<Violation>) {
    let scope = sla.phase.as_ref().and_then(|p| input.sc.phase_index(p));
    let at = scope_label(&sla.phase);
    let mut violate = |master: Option<&str>, observed: f64, bound: f64, message: String| {
        out.push(Violation {
            sla: sla.kind.keyword().to_owned(),
            phase: sla.phase.clone(),
            master: master.map(str::to_owned),
            observed,
            bound,
            message,
        });
    };
    match &sla.kind {
        SlaKind::Bandwidth { master, min, max } => {
            let id = input.sc.master_index(master).expect("validated");
            let cycles = input.delta(scope, |s| s.cycles);
            let words = input.delta(scope, |s| s.master(MasterId::new(id)).words);
            let share = if cycles == 0 { 0.0 } else { words as f64 / cycles as f64 };
            if let Some(min) = min {
                if share < *min {
                    violate(
                        Some(master),
                        share,
                        *min,
                        format!("bandwidth share of {master} in {at} is {share}, below min {min}"),
                    );
                }
            }
            if let Some(max) = max {
                if share > *max {
                    violate(
                        Some(master),
                        share,
                        *max,
                        format!("bandwidth share of {master} in {at} is {share}, above max {max}"),
                    );
                }
            }
        }
        SlaKind::LatencyBus { p99 } => {
            let worst = input
                .samples_in(scope)
                .filter(|s| s.latency.count > 0)
                .map(|s| s.latency.p99)
                .max()
                .unwrap_or(0);
            if worst > *p99 {
                violate(
                    None,
                    worst as f64,
                    *p99 as f64,
                    format!("worst windowed p99 latency in {at} is {worst} cycles, above {p99}"),
                );
            }
        }
        SlaKind::LatencyMaster { master, p99 } => {
            let id = input.sc.master_index(master).expect("validated");
            let snap = input.snaps.last().expect("at least one phase");
            let observed = snap.master(MasterId::new(id)).latency_quantile(0.99).unwrap_or(0);
            if observed > *p99 {
                violate(
                    Some(master),
                    observed as f64,
                    *p99 as f64,
                    format!("p99 latency of {master} is {observed} cycles, above {p99}"),
                );
            }
        }
        SlaKind::Starvation { master, max_windows } => {
            let id = input.sc.master_index(master).expect("validated");
            let starved = input
                .samples_in(scope)
                .filter(|s| s.per_master[id].queue_depth > 0 && s.per_master[id].grants == 0)
                .count() as u64;
            if starved > *max_windows {
                violate(
                    Some(master),
                    starved as f64,
                    *max_windows as f64,
                    format!(
                        "{master} was fully starved for {starved} windows in {at}, \
                         above the allowed {max_windows}"
                    ),
                );
            }
        }
        SlaKind::Losses { master, max } => {
            let lost = match master {
                Some(m) => {
                    let id = input.sc.master_index(m).expect("validated");
                    input.delta(scope, |s| s.master(MasterId::new(id)).aborted)
                }
                None => input.delta(scope, |s| s.aborted_transactions),
            };
            if lost > *max {
                let who = master.as_deref().unwrap_or("the bus");
                violate(
                    master.as_deref(),
                    lost as f64,
                    *max as f64,
                    format!("{who} lost {lost} transactions in {at}, above the allowed {max}"),
                );
            }
        }
        SlaKind::Failover { min, max } => {
            let (fired, _) = input.probe_delta(scope);
            if fired < *min {
                violate(
                    None,
                    fired as f64,
                    *min as f64,
                    format!("failover fired {fired} times in {at}, below the required {min}"),
                );
            }
            if let Some(max) = max {
                if fired > *max {
                    violate(
                        None,
                        fired as f64,
                        *max as f64,
                        format!("failover fired {fired} times in {at}, above the allowed {max}"),
                    );
                }
            }
        }
        SlaKind::Recovery { min } => {
            let (_, recovered) = input.probe_delta(scope);
            if recovered < *min {
                violate(
                    None,
                    recovered as f64,
                    *min as f64,
                    format!(
                        "the primary was re-promoted {recovered} times in {at}, \
                         below the required {min}"
                    ),
                );
            }
        }
        SlaKind::Utilization { min, max } => {
            let cycles = input.delta(scope, |s| s.cycles);
            let busy = input.delta(scope, |s| s.busy_cycles);
            let util = if cycles == 0 { 0.0 } else { busy as f64 / cycles as f64 };
            if let Some(min) = min {
                if util < *min {
                    violate(
                        None,
                        util,
                        *min,
                        format!("bus utilization in {at} is {util}, below min {min}"),
                    );
                }
            }
            if let Some(max) = max {
                if util > *max {
                    violate(
                        None,
                        util,
                        *max,
                        format!("bus utilization in {at} is {util}, above max {max}"),
                    );
                }
            }
        }
    }
}
