//! Phase-scheduled traffic: one [`TrafficSource`] per master that
//! switches between per-phase stochastic generators at the scenario's
//! phase boundaries.
//!
//! Each (master, phase) pair gets its own seeded [`SourceKind`] built
//! from the master's traffic class with the phase's load scaling
//! applied. Switching is a pure function of the polled cycle, so the
//! cycle-accurate and fast-forward kernels see identical arrival
//! streams — the fuzzer's kernel-equivalence invariant depends on it.
//!
//! Two subtleties keep the streams byte-identical across kernels:
//!
//! * Periodic and on–off generators catch up when first polled at a
//!   late cycle: they emit every arrival their schedule placed in the
//!   skipped span, stamped in the past. (Bernoulli generators do not
//!   — they draw once per poll and stamp at the polled cycle.) A
//!   phase's generator is first polled at the phase start, so
//!   arrivals stamped before the phase went live are discarded here.
//! * [`PhasedSource::next_event`] never reports a horizon past the
//!   current phase's end, so the fast kernel cannot skip a boundary
//!   and miss the generator switch.

use crate::model::{Arrival, MasterDecl, PhaseDecl};
use socsim::{Cycle, TrafficSource, Transaction};
use traffic_gen::{GeneratorSpec, SizeDist, SourceKind};

/// Splitmix64 finalizer; used to give every (master, phase) pair an
/// independent seed derived from the scenario seed.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A master's traffic across the whole phase schedule.
pub struct PhasedSource {
    /// First cycle of each phase.
    starts: Vec<u64>,
    /// One-past-last cycle of each phase.
    ends: Vec<u64>,
    /// Per-phase generator; `None` while the master is silent.
    inner: Vec<Option<SourceKind>>,
}

impl PhasedSource {
    /// Builds master `index`'s source for the given phase schedule,
    /// deriving per-phase seeds from `seed`.
    pub fn build(index: usize, master: &MasterDecl, phases: &[PhaseDecl], seed: u64) -> Self {
        let mut starts = Vec::with_capacity(phases.len());
        let mut ends = Vec::with_capacity(phases.len());
        let mut inner = Vec::with_capacity(phases.len());
        let mut start = 0u64;
        for (k, phase) in phases.iter().enumerate() {
            let scale = match &phase.focus {
                Some(focus) if *focus != master.name => 1.0,
                _ => phase.scale,
            };
            let load = master.load * scale;
            let phase_seed = mix(seed ^ mix((index as u64) << 32 | k as u64));
            starts.push(start);
            ends.push(start + phase.duration);
            inner.push(
                Self::generator(index, master, load, start)
                    .map(|g| g.to_slave(master.slave).build_kind(phase_seed)),
            );
            start += phase.duration;
        }
        PhasedSource { starts, ends, inner }
    }

    /// The generator spec for one phase, or `None` when the scaled
    /// load silences the master.
    fn generator(
        index: usize,
        master: &MasterDecl,
        load: f64,
        phase_start: u64,
    ) -> Option<GeneratorSpec> {
        if load <= 0.0 {
            return None;
        }
        let size = master.size;
        let spec = match master.arrival {
            Arrival::Poisson => {
                let rate = (load / size as f64).min(1.0);
                GeneratorSpec::poisson(rate, SizeDist::fixed(size))
            }
            Arrival::Periodic => {
                let period = (size as f64 / load).round().max(1.0) as u64;
                GeneratorSpec::periodic(
                    period,
                    phase_start + 3 * index as u64,
                    SizeDist::fixed(size),
                )
            }
            Arrival::Burst => {
                // A train of 2–6 back-to-back transactions, sized so the
                // long-run offered load matches `load` (mirrors the CLI's
                // bursty mapping).
                let off = (4.0 * size as f64 / load - 1.0).max(1.0);
                GeneratorSpec::bursty(
                    2,
                    6,
                    0,
                    (off * 0.5) as u64,
                    (off * 1.5) as u64,
                    phase_start + 7 * index as u64,
                    SizeDist::fixed(size),
                )
            }
        };
        Some(spec)
    }

    /// Index of the phase containing `now`, or `None` after the
    /// schedule has run out.
    fn phase_of(&self, now: Cycle) -> Option<usize> {
        let c = now.index();
        self.ends.iter().position(|&end| c < end)
    }
}

impl TrafficSource for PhasedSource {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        self.poll_with_backlog(now, 0)
    }

    fn poll_with_backlog(&mut self, now: Cycle, backlog: usize) -> Option<Transaction> {
        let k = self.phase_of(now)?;
        let start = self.starts[k];
        let src = self.inner[k].as_mut()?;
        loop {
            let txn = src.poll_with_backlog(now, backlog)?;
            if txn.issued_at().index() >= start {
                return Some(txn);
            }
            // Catch-up arrival stamped before this phase went live (a
            // periodic/on–off schedule emits arrivals for cycles it
            // was never polled at); drop it and keep draining.
        }
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        let Some(k) = self.phase_of(now) else {
            return Cycle::NEVER;
        };
        let boundary = Cycle::new(self.ends[k]);
        match &self.inner[k] {
            // Silent phase: nothing can happen before the next phase
            // boundary (where the generator may switch on).
            None => boundary,
            Some(src) => src.next_event(now).min(boundary),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Scenario;

    fn master(load: f64, arrival: Arrival) -> MasterDecl {
        MasterDecl { name: "m".into(), weight: 1, load, size: 4, arrival, slave: 0 }
    }

    fn phases() -> Vec<PhaseDecl> {
        vec![
            PhaseDecl { name: "warm".into(), duration: 1000, scale: 1.0, focus: None },
            PhaseDecl { name: "quiet".into(), duration: 1000, scale: 0.0, focus: None },
            PhaseDecl { name: "flash".into(), duration: 1000, scale: 2.0, focus: None },
        ]
    }

    /// Drains the source cycle by cycle, recording arrival stamps.
    fn drain(src: &mut PhasedSource, cycles: u64) -> Vec<u64> {
        let mut stamps = Vec::new();
        for c in 0..cycles {
            while let Some(txn) = src.poll(Cycle::new(c)) {
                stamps.push(txn.issued_at().index());
            }
        }
        stamps
    }

    #[test]
    fn silent_phase_emits_nothing_and_later_phases_resume() {
        let m = master(0.5, Arrival::Poisson);
        let mut src = PhasedSource::build(0, &m, &phases(), 11);
        let stamps = drain(&mut src, 3000);
        assert!(stamps.iter().any(|&s| s < 1000), "phase 1 should emit");
        assert!(!stamps.iter().any(|&s| (1000..2000).contains(&s)), "scale=0 phase must be silent");
        assert!(stamps.iter().any(|&s| s >= 2000), "phase 3 should resume");
    }

    #[test]
    fn no_arrival_is_stamped_before_its_phase_started() {
        // First poll of the flash phase happens at cycle 2000; the
        // Bernoulli generator back-fills everything since cycle 0 and
        // the wrapper must discard those stale stamps.
        let m = master(0.5, Arrival::Poisson);
        let mut src = PhasedSource::build(0, &m, &phases(), 11);
        let mut stamps = Vec::new();
        // Skip straight to the flash phase without polling earlier
        // cycles, as the fast kernel would after an idle skip.
        while let Some(txn) = src.poll(Cycle::new(2000)) {
            stamps.push(txn.issued_at().index());
        }
        assert!(stamps.iter().all(|&s| s == 2000), "stale catch-up stamps leaked: {stamps:?}");
    }

    #[test]
    fn next_event_never_reports_past_the_phase_boundary() {
        let m = master(0.01, Arrival::Periodic);
        let src = PhasedSource::build(0, &m, &phases(), 11);
        for c in [0u64, 500, 999, 1000, 1500, 2999] {
            let horizon = src.next_event(Cycle::new(c)).index();
            let boundary = 1000 * (c / 1000 + 1);
            assert!(horizon <= boundary, "horizon {horizon} skips boundary {boundary}");
        }
        assert_eq!(src.next_event(Cycle::new(3000)), Cycle::NEVER);
    }

    #[test]
    fn focus_scaling_applies_only_to_the_named_master() {
        let mut sched = phases();
        sched[2].focus = Some("other".into());
        let focused = master(0.5, Arrival::Poisson);
        let mut with_focus = PhasedSource::build(0, &focused, &sched, 11);
        let mut without = PhasedSource::build(0, &focused, &phases()[..2], 11);
        // Phase 3 focuses a different master, so this master runs at
        // base load there — the first two phases are identical either
        // way.
        let a = drain(&mut with_focus, 2000);
        let b = drain(&mut without, 2000);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ_across_masters_and_phases() {
        let m = master(0.5, Arrival::Poisson);
        let mut a = PhasedSource::build(0, &m, &phases(), 11);
        let mut b = PhasedSource::build(1, &m, &phases(), 11);
        assert_ne!(drain(&mut a, 1000), drain(&mut b, 1000));
    }

    #[test]
    fn validate_catches_model_errors_used_by_these_fixtures() {
        // Guard: the fixtures above stay in sync with the model's
        // validation rules.
        let mut sc = Scenario::empty("phased-fixture");
        sc.masters.push(master(0.5, Arrival::Poisson));
        sc.phases = phases();
        assert!(sc.validate().is_ok());
    }
}
