//! Scenario plans: running a set of scenarios with dependencies.
//!
//! A plan is simply every scenario passed to one invocation. `after`
//! lines turn the set into a DAG: a dependent scenario runs only once
//! its parent has run and the declared condition holds ("degraded-mode
//! checks run only after failover fired"). Scenarios at the same
//! dependency depth run in parallel through the job pool, and the
//! report lists every scenario in input order regardless of execution
//! order, so plan output is deterministic for a fixed input.

use crate::fleet::run_scenarios_fleet;
use crate::model::{DepCondition, Scenario};
use crate::run::{run_scenario, Outcome};
use experiments::json::Json;
use socsim::pool::parallel_map;
use socsim::Kernel;

/// What happened to one scenario of a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOutcome {
    /// The scenario ran to a verdict.
    Ran(Outcome),
    /// The scenario was skipped (unmet dependency condition).
    Skipped {
        /// Why it did not run.
        reason: String,
    },
}

/// The result of executing a whole plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// One entry per scenario, in input order.
    pub entries: Vec<(String, PlanOutcome)>,
}

impl PlanReport {
    /// Whether every executed scenario's verdict matched its `expect`
    /// line. Skipped scenarios don't count against the plan — their
    /// reason is recorded in the report.
    pub fn all_as_expected(&self) -> bool {
        self.entries.iter().all(|(_, outcome)| match outcome {
            PlanOutcome::Ran(o) => o.as_expected(),
            PlanOutcome::Skipped { .. } => true,
        })
    }

    /// Serializes the report as deterministic JSON (scenarios in
    /// input order; no wall-clock or kernel information).
    pub fn to_json(&self) -> Json {
        let mut ran = 0u64;
        let mut passed = 0u64;
        let mut skipped = 0u64;
        let mut scenarios = Vec::with_capacity(self.entries.len());
        for (name, outcome) in &self.entries {
            match outcome {
                PlanOutcome::Ran(o) => {
                    ran += 1;
                    if o.passed {
                        passed += 1;
                    }
                    scenarios
                        .push(Json::obj().field("status", "ran").field("outcome", o.to_json()));
                }
                PlanOutcome::Skipped { reason } => {
                    skipped += 1;
                    scenarios.push(
                        Json::obj()
                            .field("status", "skipped")
                            .field("name", name.as_str())
                            .field("reason", reason.as_str()),
                    );
                }
            }
        }
        Json::obj()
            .field("scenarios", Json::Arr(scenarios))
            .field("ran", ran)
            .field("passed", passed)
            .field("failed", ran - passed)
            .field("skipped", skipped)
            .field("all_as_expected", self.all_as_expected())
    }
}

/// Dependency depth of every scenario, with cycle and unknown-parent
/// detection. Depth 0 scenarios have no parent.
fn depths(scenarios: &[Scenario]) -> Result<Vec<usize>, String> {
    let index_of = |name: &str| scenarios.iter().position(|s| s.name == name);
    for (i, sc) in scenarios.iter().enumerate() {
        if scenarios.iter().skip(i + 1).any(|o| o.name == sc.name) {
            return Err(format!("plan contains two scenarios named `{}`", sc.name));
        }
    }
    let mut depth = vec![usize::MAX; scenarios.len()];
    for start in 0..scenarios.len() {
        if depth[start] != usize::MAX {
            continue;
        }
        // Walk the parent chain, marking the path to detect cycles.
        let mut path = Vec::new();
        let mut cur = start;
        let d = loop {
            if depth[cur] != usize::MAX {
                break depth[cur] + 1;
            }
            if path.contains(&cur) {
                return Err(format!("dependency cycle through scenario `{}`", scenarios[cur].name));
            }
            path.push(cur);
            match &scenarios[cur].after {
                None => break 0,
                Some(dep) => {
                    cur = index_of(&dep.parent).ok_or_else(|| {
                        format!(
                            "scenario `{}` depends on unknown scenario `{}`",
                            scenarios[cur].name, dep.parent
                        )
                    })?;
                }
            }
        };
        // Unwind: the deepest path element got depth d-... assign in
        // reverse order.
        for (offset, &i) in path.iter().rev().enumerate() {
            depth[i] = d + offset;
        }
    }
    Ok(depth)
}

/// Whether the dependency condition holds given the parent's outcome,
/// or the skip reason if it doesn't.
fn condition_met(
    child: &Scenario,
    condition: DepCondition,
    parent: &PlanOutcome,
) -> Result<(), String> {
    let dep = child.after.as_ref().expect("caller checked");
    match parent {
        PlanOutcome::Skipped { .. } => Err(format!("parent `{}` was skipped", dep.parent)),
        PlanOutcome::Ran(o) => {
            let met = match condition {
                DepCondition::Passed => o.passed,
                DepCondition::Failed => !o.passed,
                DepCondition::FailoverFired => o.failovers >= 1,
            };
            if met {
                Ok(())
            } else {
                Err(format!("parent `{}` did not satisfy `{}`", dep.parent, condition.keyword()))
            }
        }
    }
}

/// Executes a plan: validates the dependency DAG, runs scenarios
/// level by level (parallel within a level, `jobs = 0` = all cores),
/// and reports every scenario in input order.
pub fn run_plan(scenarios: &[Scenario], kernel: Kernel, jobs: usize) -> Result<PlanReport, String> {
    run_plan_inner(scenarios, |runnable| {
        Ok(parallel_map(jobs, runnable, |_worker, &i| run_scenario(&scenarios[i], kernel)))
    })
}

/// Executes a plan with every level's runnable scenarios packed into
/// one lockstep fleet ([`run_scenarios_fleet`]) instead of one scalar
/// system per scenario. The report is byte-identical to
/// [`run_plan`]'s under any kernel — the fleet kernel is lane-exact —
/// so `--fleet` is a pure execution-strategy switch.
pub fn run_plan_fleet(scenarios: &[Scenario]) -> Result<PlanReport, String> {
    run_plan_inner(scenarios, |runnable| {
        let set: Vec<&Scenario> = runnable.iter().map(|&i| &scenarios[i]).collect();
        run_scenarios_fleet(&set).map(|outcomes| outcomes.into_iter().map(Ok).collect())
    })
}

/// Shared plan executor: validates the dependency DAG, walks levels in
/// order, gates each dependent scenario on its parent's outcome, and
/// hands every level's runnable set to `run_level` (which returns one
/// result per index, in order). Reports every scenario in input order.
fn run_plan_inner(
    scenarios: &[Scenario],
    mut run_level: impl FnMut(&[usize]) -> Result<Vec<Result<Outcome, String>>, String>,
) -> Result<PlanReport, String> {
    if scenarios.is_empty() {
        return Err("plan contains no scenarios".to_owned());
    }
    let depth = depths(scenarios)?;
    let max_depth = *depth.iter().max().expect("non-empty");
    let mut slots: Vec<Option<PlanOutcome>> = vec![None; scenarios.len()];
    for level in 0..=max_depth {
        let mut runnable = Vec::new();
        for (i, sc) in scenarios.iter().enumerate() {
            if depth[i] != level {
                continue;
            }
            match &sc.after {
                None => runnable.push(i),
                Some(dep) => {
                    let parent_idx =
                        scenarios.iter().position(|s| s.name == dep.parent).expect("validated");
                    let parent = slots[parent_idx].as_ref().expect("parent level already ran");
                    match condition_met(sc, dep.condition, parent) {
                        Ok(()) => runnable.push(i),
                        Err(reason) => slots[i] = Some(PlanOutcome::Skipped { reason }),
                    }
                }
            }
        }
        let results = run_level(&runnable)?;
        for (&i, result) in runnable.iter().zip(results) {
            slots[i] = Some(PlanOutcome::Ran(result?));
        }
    }
    let entries = scenarios
        .iter()
        .zip(slots)
        .map(|(sc, slot)| (sc.name.clone(), slot.expect("every level filled")))
        .collect();
    Ok(PlanReport { entries })
}
