//! Parser for `.scenario` files.
//!
//! The format is line-oriented: `#` starts a comment, blank lines are
//! ignored, and every other line is one directive. Errors carry the
//! 1-based line number and name both the offending token and the
//! accepted alternatives, so a typo in a 40-line scenario file points
//! straight at itself.

use crate::model::{
    ArbiterSel, Arrival, DepCondition, Dependency, Expectation, FailoverDecl, MasterDecl,
    PhaseDecl, Scenario, Sla, SlaKind, SlaveDecl, WedgeWindow,
};
use socsim::RetryPolicy;
use std::error::Error;
use std::fmt;

/// A parse or validation error, with the 1-based line it points at
/// (line 0 for whole-file semantic errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number; 0 when the error spans the whole file.
    pub line: usize,
    /// Human-readable description naming the key and accepted values.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "scenario: {}", self.message)
        } else {
            write!(f, "scenario line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ScenarioError {}

fn err(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError { line, message: message.into() }
}

fn parse_u64(line: usize, key: &str, value: &str) -> Result<u64, ScenarioError> {
    value
        .parse::<u64>()
        .map_err(|_| err(line, format!("`{key}` needs a non-negative integer, got {value:?}")))
}

fn parse_u32(line: usize, key: &str, value: &str) -> Result<u32, ScenarioError> {
    value
        .parse::<u32>()
        .map_err(|_| err(line, format!("`{key}` needs a non-negative integer, got {value:?}")))
}

fn parse_f64(line: usize, key: &str, value: &str) -> Result<f64, ScenarioError> {
    value.parse::<f64>().map_err(|_| err(line, format!("`{key}` needs a number, got {value:?}")))
}

fn parse_rate(line: usize, key: &str, value: &str) -> Result<f64, ScenarioError> {
    let rate = parse_f64(line, key, value)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(err(line, format!("`{key}` must be a probability in [0, 1], got {value}")));
    }
    Ok(rate)
}

/// Splits `key=value`, or returns `None` for a bare token.
fn split_kv(token: &str) -> Option<(&str, &str)> {
    token.split_once('=')
}

impl Scenario {
    /// Parses and validates the text of one `.scenario` file.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        let mut sc: Option<Scenario> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            match &mut sc {
                None => {
                    let Some(rest) = body.strip_prefix("scenario ") else {
                        return Err(err(
                            line,
                            format!("the first directive must be `scenario <name>`, got {body:?}"),
                        ));
                    };
                    let name = rest.trim();
                    if name.split_whitespace().count() != 1 {
                        return Err(err(
                            line,
                            format!("`scenario` needs exactly one name token, got {rest:?}"),
                        ));
                    }
                    sc = Some(Scenario::empty(name));
                }
                Some(sc) => parse_directive(sc, line, body)?,
            }
        }
        let sc = sc.ok_or_else(|| {
            err(0, "empty file: a scenario needs at least `scenario <name>`, masters and phases")
        })?;
        sc.validate().map_err(|m| err(0, format!("in scenario `{}`: {m}", sc.name)))?;
        Ok(sc)
    }
}

fn parse_directive(sc: &mut Scenario, line: usize, body: &str) -> Result<(), ScenarioError> {
    if body.starts_with("scenario ") {
        return Err(err(line, "duplicate `scenario` line; one scenario per file"));
    }
    if let Some((key, value)) = body.split_once('=').filter(|(k, _)| !k.trim().contains(' ')) {
        return parse_assignment(sc, line, key.trim(), value.trim());
    }
    let (word, rest) = body.split_once(' ').unwrap_or((body, ""));
    let rest = rest.trim();
    match word {
        "master" => parse_master(sc, line, rest),
        "slave" => parse_slave(sc, line, rest),
        "phase" => parse_phase(sc, line, rest),
        "fault" => parse_fault(sc, line, rest),
        "retry" => parse_retry(sc, line, rest),
        "failover" => parse_failover(sc, line, rest),
        "sla" => parse_sla(sc, line, rest),
        "after" => parse_after(sc, line, rest),
        "metrics" => parse_metrics(sc, line, rest),
        other => Err(err(
            line,
            format!(
                "unknown directive `{other}`: expected `<key> = <value>` (seed, arbiter, burst, \
                 tdma-block, expect, timeout) or a `master`, `slave`, `phase`, `fault`, `retry`, \
                 `failover`, `sla`, `after` or `metrics` line"
            ),
        )),
    }
}

fn parse_assignment(
    sc: &mut Scenario,
    line: usize,
    key: &str,
    value: &str,
) -> Result<(), ScenarioError> {
    match key {
        "seed" => sc.seed = parse_u64(line, "seed", value)?,
        "burst" => sc.burst = parse_u32(line, "burst", value)?,
        "tdma-block" => sc.tdma_block = parse_u32(line, "tdma-block", value)?,
        "timeout" => sc.timeout = Some(parse_u64(line, "timeout", value)?),
        "arbiter" => {
            sc.arbiter =
                ArbiterSel::ALL.into_iter().find(|a| a.keyword() == value).ok_or_else(|| {
                    let all: Vec<&str> = ArbiterSel::ALL.iter().map(|a| a.keyword()).collect();
                    err(
                        line,
                        format!("unknown arbiter {value:?}: expected one of {}", all.join(", ")),
                    )
                })?;
        }
        "expect" => {
            sc.expect = match value {
                "pass" => Expectation::Pass,
                "fail" => Expectation::Fail,
                other => {
                    return Err(err(
                        line,
                        format!("`expect` must be `pass` or `fail`, got {other:?}"),
                    ))
                }
            };
        }
        other => {
            return Err(err(
                line,
                format!(
                    "unknown key `{other}`: assignable keys are seed, arbiter, burst, \
                     tdma-block, timeout and expect"
                ),
            ))
        }
    }
    Ok(())
}

fn parse_master(sc: &mut Scenario, line: usize, rest: &str) -> Result<(), ScenarioError> {
    let mut tokens = rest.split_whitespace();
    let name = tokens
        .next()
        .ok_or_else(|| err(line, "`master` needs a name: `master <name> load=<f> ...`"))?;
    if sc.masters.iter().any(|m| m.name == name) {
        return Err(err(
            line,
            format!("duplicate master name {name:?}: master names must be unique"),
        ));
    }
    let mut m = MasterDecl {
        name: name.to_owned(),
        weight: 1,
        load: 0.0,
        size: 8,
        arrival: Arrival::Poisson,
        slave: 0,
    };
    let mut has_load = false;
    for token in tokens {
        match split_kv(token) {
            Some(("weight", v)) => m.weight = parse_u32(line, "weight", v)?,
            Some(("size", v)) => m.size = parse_u32(line, "size", v)?,
            Some(("slave", v)) => m.slave = parse_u64(line, "slave", v)? as usize,
            Some(("load", v)) => {
                m.load = parse_f64(line, "load", v)?;
                has_load = true;
            }
            Some((other, _)) => {
                return Err(err(
                    line,
                    format!(
                        "unknown master key `{other}=`: expected weight=, load=, size= or slave="
                    ),
                ))
            }
            None => {
                m.arrival = match token {
                    "poisson" => Arrival::Poisson,
                    "burst" => Arrival::Burst,
                    "periodic" => Arrival::Periodic,
                    other => {
                        return Err(err(
                            line,
                            format!(
                                "unknown master token `{other}`: arrival must be poisson, \
                                 burst or periodic"
                            ),
                        ))
                    }
                };
            }
        }
    }
    if !has_load {
        return Err(err(line, format!("master {name:?} needs a `load=` (words per cycle)")));
    }
    sc.masters.push(m);
    Ok(())
}

fn parse_slave(sc: &mut Scenario, line: usize, rest: &str) -> Result<(), ScenarioError> {
    let mut tokens = rest.split_whitespace();
    let name = tokens
        .next()
        .ok_or_else(|| err(line, "`slave` needs a name: `slave <name> wait=<cycles>`"))?;
    if sc.slaves.iter().any(|s| s.name == name) {
        return Err(err(
            line,
            format!("duplicate slave name {name:?}: slave names must be unique"),
        ));
    }
    let mut s = SlaveDecl { name: name.to_owned(), wait: 0 };
    for token in tokens {
        match split_kv(token) {
            Some(("wait", v)) => s.wait = parse_u32(line, "wait", v)?,
            _ => {
                return Err(err(
                    line,
                    format!("unknown slave token `{token}`: the only slave key is wait=<cycles>"),
                ))
            }
        }
    }
    sc.slaves.push(s);
    Ok(())
}

fn parse_phase(sc: &mut Scenario, line: usize, rest: &str) -> Result<(), ScenarioError> {
    let mut tokens = rest.split_whitespace();
    let name = tokens
        .next()
        .ok_or_else(|| err(line, "`phase` needs a name: `phase <name> duration=<cycles>`"))?;
    if sc.phases.iter().any(|p| p.name == name) {
        return Err(err(
            line,
            format!("duplicate phase name {name:?}: phase names must be unique"),
        ));
    }
    let mut p = PhaseDecl { name: name.to_owned(), duration: 0, scale: 1.0, focus: None };
    let mut has_duration = false;
    for token in tokens {
        match split_kv(token) {
            Some(("duration", v)) => {
                p.duration = parse_u64(line, "duration", v)?;
                has_duration = true;
            }
            Some(("scale", v)) => p.scale = parse_f64(line, "scale", v)?,
            Some(("focus", v)) => p.focus = Some(v.to_owned()),
            _ => {
                return Err(err(
                    line,
                    format!(
                        "unknown phase token `{token}`: expected duration=<cycles>, \
                         scale=<factor> or focus=<master>"
                    ),
                ))
            }
        }
    }
    if !has_duration {
        return Err(err(line, format!("phase {name:?} needs a `duration=` in cycles")));
    }
    sc.phases.push(p);
    Ok(())
}

fn parse_fault(sc: &mut Scenario, line: usize, rest: &str) -> Result<(), ScenarioError> {
    let mut tokens = rest.split_whitespace();
    let class = tokens.next().ok_or_else(|| {
        err(
            line,
            "`fault` needs a class: slave-error, slave-outage, grant-drop, grant-corrupt, \
             master-stall or arbiter-wedge",
        )
    })?;
    if class == "arbiter-wedge" {
        let (mut from, mut until) = (None, None);
        for token in tokens {
            match split_kv(token) {
                Some(("from", v)) => from = Some(parse_u64(line, "from", v)?),
                Some(("until", v)) => until = Some(parse_u64(line, "until", v)?),
                _ => {
                    return Err(err(
                        line,
                        format!(
                            "unknown arbiter-wedge token `{token}`: expected from=<cycle> \
                             and until=<cycle>"
                        ),
                    ))
                }
            }
        }
        let (Some(from), Some(until)) = (from, until) else {
            return Err(err(
                line,
                "fault arbiter-wedge needs both `from=<cycle>` and `until=<cycle>`",
            ));
        };
        sc.wedges.push(WedgeWindow { from, until });
        return Ok(());
    }
    let mut rate = None;
    let mut duration = None;
    let mut max = None;
    for token in tokens {
        match split_kv(token) {
            Some(("rate", v)) => rate = Some(parse_rate(line, "rate", v)?),
            Some(("duration", v)) => duration = Some(parse_u32(line, "duration", v)?),
            Some(("max", v)) => max = Some(parse_u32(line, "max", v)?),
            _ => {
                return Err(err(
                    line,
                    format!(
                        "unknown fault token `{token}`: expected rate=<p>, duration=<cycles> \
                         (slave-outage) or max=<cycles> (master-stall)"
                    ),
                ))
            }
        }
    }
    let rate =
        rate.ok_or_else(|| err(line, format!("fault {class} needs a `rate=` probability")))?;
    let f = &mut sc.fault;
    match class {
        "slave-error" => f.slave_error_rate = rate,
        "slave-outage" => {
            f.slave_outage_rate = rate;
            if let Some(d) = duration {
                f.slave_outage_duration = d;
            }
        }
        "grant-drop" => f.grant_drop_rate = rate,
        "grant-corrupt" => f.grant_corrupt_rate = rate,
        "master-stall" => {
            f.master_stall_rate = rate;
            if let Some(m) = max {
                f.master_stall_max = m;
            }
        }
        other => {
            return Err(err(
                line,
                format!(
                    "unknown fault class `{other}`: expected slave-error, slave-outage, \
                     grant-drop, grant-corrupt, master-stall or arbiter-wedge"
                ),
            ))
        }
    }
    if duration.is_some() && class != "slave-outage" {
        return Err(err(line, "`duration=` only applies to fault slave-outage"));
    }
    if max.is_some() && class != "master-stall" {
        return Err(err(line, "`max=` only applies to fault master-stall"));
    }
    Ok(())
}

fn parse_retry(sc: &mut Scenario, line: usize, rest: &str) -> Result<(), ScenarioError> {
    let mut policy = RetryPolicy { max_retries: 0, backoff_base: 8, backoff_factor: 2 };
    let mut has_max = false;
    for token in rest.split_whitespace() {
        match split_kv(token) {
            Some(("max", v)) => {
                policy.max_retries = parse_u32(line, "max", v)?;
                has_max = true;
            }
            Some(("base", v)) => policy.backoff_base = parse_u64(line, "base", v)?,
            Some(("factor", v)) => policy.backoff_factor = parse_u64(line, "factor", v)?,
            _ => {
                return Err(err(
                    line,
                    format!(
                        "unknown retry token `{token}`: expected max=<retries>, base=<cycles> \
                         and factor=<multiplier>"
                    ),
                ))
            }
        }
    }
    if !has_max {
        return Err(err(line, "`retry` needs a `max=` retry budget"));
    }
    sc.retry = Some(policy);
    Ok(())
}

fn parse_failover(sc: &mut Scenario, line: usize, rest: &str) -> Result<(), ScenarioError> {
    let mut decl = FailoverDecl { patience: 0, recovery: None };
    let mut has_patience = false;
    for token in rest.split_whitespace() {
        match split_kv(token) {
            Some(("patience", v)) => {
                decl.patience = parse_u64(line, "patience", v)?;
                has_patience = true;
            }
            Some(("recovery", v)) => decl.recovery = Some(parse_u64(line, "recovery", v)?),
            _ => {
                return Err(err(
                    line,
                    format!(
                        "unknown failover token `{token}`: expected patience=<cycles> and \
                         optionally recovery=<decisions>"
                    ),
                ))
            }
        }
    }
    if !has_patience {
        return Err(err(line, "`failover` needs a `patience=` in starved cycles"));
    }
    sc.failover = Some(decl);
    Ok(())
}

fn parse_after(sc: &mut Scenario, line: usize, rest: &str) -> Result<(), ScenarioError> {
    let mut tokens = rest.split_whitespace();
    let parent = tokens.next().ok_or_else(|| {
        err(line, "`after` needs a parent scenario: `after <name> [passed|failed|failover-fired]`")
    })?;
    let condition = match tokens.next() {
        None | Some("passed") => DepCondition::Passed,
        Some("failed") => DepCondition::Failed,
        Some("failover-fired") => DepCondition::FailoverFired,
        Some(other) => {
            return Err(err(
                line,
                format!(
                    "unknown after-condition `{other}`: expected passed, failed or \
                     failover-fired"
                ),
            ))
        }
    };
    if tokens.next().is_some() {
        return Err(err(line, "`after` takes at most a parent name and one condition"));
    }
    if sc.after.is_some() {
        return Err(err(line, "duplicate `after` line; a scenario has at most one parent"));
    }
    sc.after = Some(Dependency { parent: parent.to_owned(), condition });
    Ok(())
}

fn parse_metrics(sc: &mut Scenario, line: usize, rest: &str) -> Result<(), ScenarioError> {
    for token in rest.split_whitespace() {
        match split_kv(token) {
            Some(("window", v)) => sc.metrics_window = parse_u64(line, "window", v)?,
            _ => {
                return Err(err(
                    line,
                    format!("unknown metrics token `{token}`: the only key is window=<cycles>"),
                ))
            }
        }
    }
    Ok(())
}

fn parse_sla(sc: &mut Scenario, line: usize, rest: &str) -> Result<(), ScenarioError> {
    let mut tokens = rest.split_whitespace();
    let kind_kw = tokens.next().ok_or_else(|| {
        err(
            line,
            "`sla` needs a kind: bandwidth, latency, starvation, losses, failover, recovery \
             or utilization",
        )
    })?;
    let mut master = None;
    let mut phase = None;
    let mut min = None;
    let mut max = None;
    let mut p99 = None;
    let mut max_windows = None;
    for token in tokens {
        match split_kv(token) {
            Some(("master", v)) => master = Some(v.to_owned()),
            Some(("phase", v)) => phase = Some(v.to_owned()),
            Some(("min", v)) => min = Some(parse_f64(line, "min", v)?),
            Some(("max", v)) => max = Some(parse_f64(line, "max", v)?),
            Some(("p99", v)) => p99 = Some(parse_u64(line, "p99", v)?),
            Some(("max-windows", v)) => max_windows = Some(parse_u64(line, "max-windows", v)?),
            _ => {
                return Err(err(
                    line,
                    format!(
                        "unknown sla token `{token}`: expected master=, phase=, min=, max=, \
                         p99= or max-windows="
                    ),
                ))
            }
        }
    }
    let need_master = |master: Option<String>| {
        master.ok_or_else(|| err(line, format!("sla {kind_kw} needs a `master=<name>`")))
    };
    let as_count = |v: Option<f64>, key: &str| -> Result<Option<u64>, ScenarioError> {
        match v {
            None => Ok(None),
            Some(f) if f >= 0.0 && f.fract() == 0.0 => Ok(Some(f as u64)),
            Some(f) => {
                Err(err(line, format!("`{key}` must be a non-negative whole count, got {f}")))
            }
        }
    };
    let kind = match kind_kw {
        "bandwidth" => SlaKind::Bandwidth { master: need_master(master)?, min, max },
        "latency" => {
            let p99 = p99.ok_or_else(|| err(line, "sla latency needs a `p99=<cycles>` ceiling"))?;
            match master {
                Some(master) => SlaKind::LatencyMaster { master, p99 },
                None => SlaKind::LatencyBus { p99 },
            }
        }
        "starvation" => {
            let master = need_master(master)?;
            SlaKind::Starvation { master, max_windows: max_windows.unwrap_or(0) }
        }
        "losses" => {
            let max = as_count(max, "max")?
                .ok_or_else(|| err(line, "sla losses needs a `max=<transactions>` bound"))?;
            SlaKind::Losses { master, max }
        }
        "failover" => SlaKind::Failover {
            min: as_count(min, "min")?.unwrap_or(0),
            max: as_count(max, "max")?,
        },
        "recovery" => SlaKind::Recovery {
            min: as_count(min, "min")?
                .ok_or_else(|| err(line, "sla recovery needs a `min=<count>`"))?,
        },
        "utilization" => SlaKind::Utilization { min, max },
        other => {
            return Err(err(
                line,
                format!(
                    "unknown sla kind `{other}`: expected bandwidth, latency, starvation, \
                     losses, failover, recovery or utilization"
                ),
            ))
        }
    };
    sc.slas.push(Sla { kind, phase });
    Ok(())
}
