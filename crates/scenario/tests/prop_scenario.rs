//! Property-based tests for the `.scenario` parser: it must never
//! panic, and anything it accepts must survive a render/parse round
//! trip unchanged.

use proptest::prelude::*;
use scenario::Scenario;

/// Fragments the generator splices into candidate files — a mix of
/// valid directives, near-miss typos and junk.
const LINES: &[&str] = &[
    "scenario prop",
    "scenario two words",
    "seed = 42",
    "seed = -1",
    "burst = 8",
    "arbiter = lottery",
    "arbiter = warp",
    "expect = fail",
    "master cpu load=0.3 weight=2 size=8",
    "master cpu load=0.3 poisson",
    "master dup load=2.0",
    "master nameless",
    "slave mem wait=2",
    "phase p duration=1000",
    "phase p duration=1000 scale=0.5 focus=cpu",
    "phase q",
    "fault slave-error rate=0.5",
    "fault slave-outage rate=0.5 duration=0",
    "fault arbiter-wedge from=10 until=5",
    "retry max=2 base=8 factor=2",
    "retry base=8",
    "failover patience=32 recovery=16",
    "after parent failover-fired",
    "metrics window=256",
    "sla utilization min=0.5",
    "sla losses max=0",
    "sla latency p99=100 master=cpu",
    "sla bandwidth master=cpu",
    "sla nonsense",
    "# a comment",
    "",
    "garbage ===",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_and_accepted_files_round_trip(
        picks in proptest::collection::vec(0..LINES.len(), 0..12),
    ) {
        let text: String =
            picks.iter().map(|&i| format!("{}\n", LINES[i])).collect();
        if let Ok(sc) = Scenario::parse(&text) {
            let rendered = sc.render();
            let reparsed = Scenario::parse(&rendered)
                .expect("canonical render must re-parse");
            prop_assert_eq!(reparsed, sc);
        }
    }
}
