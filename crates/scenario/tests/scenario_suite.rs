//! Integration tests over the committed scenario library and the
//! fuzzer: every `.scenario` file in `scenarios/` must parse, run to
//! its expected verdict under BOTH kernels with byte-identical
//! verdict JSON, and survive a render/parse round trip. The fuzzer's
//! demo campaign must keep shrinking to the committed regression
//! file.

use scenario::{fuzz, run_plan, run_scenario, FuzzConfig, PlanOutcome, Scenario};
use std::path::PathBuf;

/// Repo-root `scenarios/` directory, resolved from the crate root.
fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Loads the committed library in name order, as the CLI would.
fn load_library() -> Vec<Scenario> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "scenario"))
        .collect();
    files.sort();
    assert!(files.len() >= 15, "the library ships at least 15 scenarios, found {}", files.len());
    files
        .iter()
        .map(|f| {
            let text = std::fs::read_to_string(f).expect("readable");
            Scenario::parse(&text).unwrap_or_else(|e| panic!("{} does not parse: {e}", f.display()))
        })
        .collect()
}

#[test]
fn library_verdicts_match_expectations_and_kernels_agree_bytewise() {
    let library = load_library();
    let cycle = run_plan(&library, false, 0).expect("cycle plan runs");
    let fast = run_plan(&library, true, 0).expect("fast plan runs");
    assert!(cycle.all_as_expected(), "cycle verdicts: {}", cycle.to_json().render());
    assert_eq!(
        cycle.to_json().render(),
        fast.to_json().render(),
        "verdict JSON must be byte-identical across kernels"
    );
}

#[test]
fn library_round_trips_through_render_and_parse() {
    for sc in load_library() {
        let rendered = sc.render();
        let reparsed = Scenario::parse(&rendered)
            .unwrap_or_else(|e| panic!("render of `{}` does not re-parse: {e}", sc.name));
        assert_eq!(reparsed, sc, "`{}` round trip changed the scenario", sc.name);
    }
}

#[test]
fn failover_recovery_scenario_fires_both_transitions_in_the_degraded_phase() {
    let text = std::fs::read_to_string(scenarios_dir().join("failover-recovery.scenario"))
        .expect("library file");
    let sc = Scenario::parse(&text).expect("parses");
    let outcome = run_scenario(&sc, false).expect("runs");
    assert!(outcome.passed, "violations: {:?}", outcome.violations);
    assert_eq!(outcome.failovers, 1, "exactly one failover");
    assert_eq!(outcome.recoveries, 1, "exactly one re-promotion");
    let degraded = outcome.phases.iter().find(|p| p.name == "degraded").expect("phase exists");
    assert_eq!((degraded.failovers, degraded.recoveries), (1, 1));
    let healthy = outcome.phases.iter().find(|p| p.name == "healthy").expect("phase exists");
    assert_eq!((healthy.failovers, healthy.recoveries), (0, 0));
}

#[test]
fn plan_dependencies_gate_execution() {
    let parent_fails = Scenario::parse(
        "scenario parent\n\
         expect = fail\n\
         master cpu load=0.3\n\
         phase p duration=2000\n\
         sla utilization min=0.99\n",
    )
    .expect("valid");
    let child = Scenario::parse(
        "scenario child\n\
         after parent\n\
         master cpu load=0.3\n\
         phase p duration=2000\n",
    )
    .expect("valid");
    let rescue = Scenario::parse(
        "scenario rescue\n\
         after parent failed\n\
         master cpu load=0.3\n\
         phase p duration=2000\n",
    )
    .expect("valid");
    let report = run_plan(&[parent_fails, child, rescue], false, 0).expect("plan runs");
    assert!(report.all_as_expected(), "{}", report.to_json().render());
    let get = |name: &str| &report.entries.iter().find(|(n, _)| n == name).expect("entry exists").1;
    assert!(matches!(get("parent"), PlanOutcome::Ran(o) if !o.passed));
    assert!(
        matches!(get("child"), PlanOutcome::Skipped { reason } if reason.contains("passed")),
        "child needs `passed` and must be skipped"
    );
    assert!(matches!(get("rescue"), PlanOutcome::Ran(o) if o.passed));
}

#[test]
fn fuzz_smoke_finds_nothing_organically() {
    let report = fuzz(&FuzzConfig { seed: 7, iterations: 10, demo_failure: false });
    assert_eq!(report.iterations, 10);
    assert!(
        report.findings.is_empty(),
        "seed 7 must stay clean; findings: {}",
        report.to_json().render()
    );
}

#[test]
fn demo_failure_shrinks_to_the_committed_regression_file() {
    let report = fuzz(&FuzzConfig { seed: 7, iterations: 1, demo_failure: true });
    assert_eq!(report.findings.len(), 1, "the armed failure must be found");
    let finding = &report.findings[0];
    assert_eq!(finding.invariant, "verdict-fail");
    let committed =
        std::fs::read_to_string(scenarios_dir().join("regressions/fuzz-0000-min.scenario"))
            .expect("committed regression file");
    assert_eq!(
        finding.shrunk.render(),
        committed,
        "the shrinker drifted from the committed reproducer — \
         regenerate scenarios/regressions/ or fix the regression"
    );
    // The reproducer itself runs to its recorded (failing) verdict.
    let sc = Scenario::parse(&committed).expect("parses");
    let outcome = run_scenario(&sc, false).expect("runs");
    assert!(outcome.as_expected(), "reproducer no longer reproduces");
}
