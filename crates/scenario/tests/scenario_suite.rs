//! Integration tests over the committed scenario library and the
//! fuzzer: every `.scenario` file in `scenarios/` must parse, run to
//! its expected verdict under ALL THREE kernels with byte-identical
//! verdict JSON, and survive a render/parse round trip. The fuzzer's
//! demo campaign must keep shrinking to the committed regression
//! file.

use scenario::{fuzz, run_plan, run_scenario, FuzzConfig, PlanOutcome, Scenario};
use socsim::Kernel;
use std::path::PathBuf;

/// Repo-root `scenarios/` directory, resolved from the crate root.
fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Loads the committed library in name order, as the CLI would.
fn load_library() -> Vec<Scenario> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "scenario"))
        .collect();
    files.sort();
    assert!(files.len() >= 15, "the library ships at least 15 scenarios, found {}", files.len());
    files
        .iter()
        .map(|f| {
            let text = std::fs::read_to_string(f).expect("readable");
            Scenario::parse(&text).unwrap_or_else(|e| panic!("{} does not parse: {e}", f.display()))
        })
        .collect()
}

#[test]
fn library_verdicts_match_expectations_and_kernels_agree_bytewise() {
    let library = load_library();
    let cycle = run_plan(&library, Kernel::Cycle, 0).expect("cycle plan runs");
    assert!(cycle.all_as_expected(), "cycle verdicts: {}", cycle.to_json().render());
    for kernel in [Kernel::Fast, Kernel::Tlm] {
        let other = run_plan(&library, kernel, 0)
            .unwrap_or_else(|e| panic!("{} plan runs: {e}", kernel.name()));
        assert_eq!(
            cycle.to_json().render(),
            other.to_json().render(),
            "verdict JSON must be byte-identical between cycle and {}",
            kernel.name()
        );
    }
}

#[test]
fn library_round_trips_through_render_and_parse() {
    for sc in load_library() {
        let rendered = sc.render();
        let reparsed = Scenario::parse(&rendered)
            .unwrap_or_else(|e| panic!("render of `{}` does not re-parse: {e}", sc.name));
        assert_eq!(reparsed, sc, "`{}` round trip changed the scenario", sc.name);
    }
}

#[test]
fn failover_recovery_scenario_fires_both_transitions_in_the_degraded_phase() {
    let text = std::fs::read_to_string(scenarios_dir().join("failover-recovery.scenario"))
        .expect("library file");
    let sc = Scenario::parse(&text).expect("parses");
    let outcome = run_scenario(&sc, Kernel::Cycle).expect("runs");
    assert!(outcome.passed, "violations: {:?}", outcome.violations);
    assert_eq!(outcome.failovers, 1, "exactly one failover");
    assert_eq!(outcome.recoveries, 1, "exactly one re-promotion");
    let degraded = outcome.phases.iter().find(|p| p.name == "degraded").expect("phase exists");
    assert_eq!((degraded.failovers, degraded.recoveries), (1, 1));
    let healthy = outcome.phases.iter().find(|p| p.name == "healthy").expect("phase exists");
    assert_eq!((healthy.failovers, healthy.recoveries), (0, 0));
}

#[test]
fn plan_dependencies_gate_execution() {
    let parent_fails = Scenario::parse(
        "scenario parent\n\
         expect = fail\n\
         master cpu load=0.3\n\
         phase p duration=2000\n\
         sla utilization min=0.99\n",
    )
    .expect("valid");
    let child = Scenario::parse(
        "scenario child\n\
         after parent\n\
         master cpu load=0.3\n\
         phase p duration=2000\n",
    )
    .expect("valid");
    let rescue = Scenario::parse(
        "scenario rescue\n\
         after parent failed\n\
         master cpu load=0.3\n\
         phase p duration=2000\n",
    )
    .expect("valid");
    let report = run_plan(&[parent_fails, child, rescue], Kernel::Cycle, 0).expect("plan runs");
    assert!(report.all_as_expected(), "{}", report.to_json().render());
    let get = |name: &str| &report.entries.iter().find(|(n, _)| n == name).expect("entry exists").1;
    assert!(matches!(get("parent"), PlanOutcome::Ran(o) if !o.passed));
    assert!(
        matches!(get("child"), PlanOutcome::Skipped { reason } if reason.contains("passed")),
        "child needs `passed` and must be skipped"
    );
    assert!(matches!(get("rescue"), PlanOutcome::Ran(o) if o.passed));
}

#[test]
fn duplicate_declaration_names_are_hard_parse_errors_with_line_numbers() {
    let dup_master = "scenario dup\n\
                      master cpu load=0.3\n\
                      master cpu load=0.2\n\
                      phase p duration=1000\n";
    let err = Scenario::parse(dup_master).expect_err("duplicate master must not parse");
    assert_eq!(err.line, 3, "error must point at the second declaration");
    assert!(err.message.contains("duplicate master name \"cpu\""), "got: {}", err.message);

    let dup_slave = "scenario dup\n\
                     master cpu load=0.3\n\
                     slave mem wait=1\n\
                     slave mem wait=2\n\
                     phase p duration=1000\n";
    let err = Scenario::parse(dup_slave).expect_err("duplicate slave must not parse");
    assert_eq!(err.line, 4);
    assert!(err.message.contains("duplicate slave name \"mem\""), "got: {}", err.message);

    let dup_phase = "scenario dup\n\
                     master cpu load=0.3\n\
                     phase p duration=1000\n\
                     phase p duration=2000\n";
    let err = Scenario::parse(dup_phase).expect_err("duplicate phase must not parse");
    assert_eq!(err.line, 4);
    assert!(err.message.contains("duplicate phase name \"p\""), "got: {}", err.message);
}

#[test]
fn fuzz_smoke_finds_nothing_organically() {
    let report = fuzz(&FuzzConfig { seed: 7, iterations: 10, demo_failure: false });
    assert_eq!(report.iterations, 10);
    assert!(
        report.findings.is_empty(),
        "seed 7 must stay clean; findings: {}",
        report.to_json().render()
    );
}

#[test]
fn fuzzer_reproducers_never_contain_duplicate_names() {
    // Duplicate master/slave/phase names are hard parse errors, so a
    // shrunk reproducer carrying one would be unloadable as a
    // committed regression file. Every finding's scenario and shrunk
    // form must validate and survive a render/parse round trip
    // (which now rejects duplicates with a line number).
    for seed in [7u64, 11, 99] {
        let report = fuzz(&FuzzConfig { seed, iterations: 3, demo_failure: true });
        for finding in &report.findings {
            for sc in [&finding.scenario, &finding.shrunk] {
                sc.validate().unwrap_or_else(|e| panic!("seed {seed}: invalid scenario: {e}"));
                let reparsed = Scenario::parse(&sc.render())
                    .unwrap_or_else(|e| panic!("seed {seed}: reproducer does not re-parse: {e}"));
                assert_eq!(&reparsed, sc, "seed {seed}: reproducer round-trip drifted");
            }
        }
    }
}

#[test]
fn demo_failure_shrinks_to_the_committed_regression_file() {
    let report = fuzz(&FuzzConfig { seed: 7, iterations: 1, demo_failure: true });
    assert_eq!(report.findings.len(), 1, "the armed failure must be found");
    let finding = &report.findings[0];
    assert_eq!(finding.invariant, "verdict-fail");
    let committed =
        std::fs::read_to_string(scenarios_dir().join("regressions/fuzz-0000-min.scenario"))
            .expect("committed regression file");
    assert_eq!(
        finding.shrunk.render(),
        committed,
        "the shrinker drifted from the committed reproducer — \
         regenerate scenarios/regressions/ or fix the regression"
    );
    // The reproducer itself runs to its recorded (failing) verdict.
    let sc = Scenario::parse(&committed).expect("parses");
    let outcome = run_scenario(&sc, Kernel::Cycle).expect("runs");
    assert!(outcome.as_expected(), "reproducer no longer reproduces");
}
