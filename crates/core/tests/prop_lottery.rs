//! Property-based tests for the lottery managers: statistical
//! proportionality, LUT structure, and static/dynamic agreement.

use lotterybus::{DynamicLotteryArbiter, StaticLotteryArbiter, StdRngSource, TicketAssignment};
use proptest::prelude::*;
use socsim::{Arbiter, Cycle, MasterId, RequestMap};

fn full_map(n: usize) -> RequestMap {
    let mut map = RequestMap::new(n);
    for i in 0..n {
        map.set_pending(MasterId::new(i), 16);
    }
    map
}

fn win_shares(arbiter: &mut dyn Arbiter, n: usize, draws: u32) -> Vec<f64> {
    let map = full_map(n);
    let mut wins = vec![0u32; n];
    for k in 0..draws {
        let grant = arbiter.arbitrate(&map, Cycle::new(u64::from(k))).expect("grant");
        wins[grant.master.index()] += 1;
    }
    wins.into_iter().map(|w| f64::from(w) / f64::from(draws)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn static_manager_win_rates_track_ticket_fractions(
        tickets in prop::collection::vec(1u32..20, 2..6),
        seed in 1u32..u32::MAX,
    ) {
        let n = tickets.len();
        let assignment = TicketAssignment::new(tickets.clone()).unwrap();
        let mut arbiter = StaticLotteryArbiter::with_seed(assignment, seed).unwrap();
        let shares = win_shares(&mut arbiter, n, 30_000);
        let total: u32 = tickets.iter().sum();
        for i in 0..n {
            let entitled = f64::from(tickets[i]) / f64::from(total);
            prop_assert!(
                (shares[i] - entitled).abs() < 0.05,
                "master {}: share {:.3} vs entitled {:.3} (tickets {:?})",
                i, shares[i], entitled, tickets,
            );
        }
    }

    #[test]
    fn dynamic_manager_agrees_with_static_distribution(
        tickets in prop::collection::vec(1u32..20, 2..6),
        seed in 1u32..u32::MAX,
    ) {
        let n = tickets.len();
        let assignment = TicketAssignment::new(tickets).unwrap();
        let mut s = StaticLotteryArbiter::with_seed(assignment.clone(), seed).unwrap();
        let mut d = DynamicLotteryArbiter::with_seed(assignment, seed).unwrap();
        let s_shares = win_shares(&mut s, n, 20_000);
        let d_shares = win_shares(&mut d, n, 20_000);
        for i in 0..n {
            prop_assert!(
                (s_shares[i] - d_shares[i]).abs() < 0.06,
                "master {}: static {:.3} vs dynamic {:.3}",
                i, s_shares[i], d_shares[i],
            );
        }
    }

    #[test]
    fn lfsr_draws_match_ideal_rng_distribution(
        tickets in prop::collection::vec(1u32..10, 2..5),
        seed in 1u64..1_000_000,
    ) {
        // Ablation property: the hardware LFSR draw source produces the
        // same long-run allocation as an ideal uniform source.
        let n = tickets.len();
        let assignment = TicketAssignment::new(tickets).unwrap();
        let mut hw = StaticLotteryArbiter::with_seed(assignment.clone(), seed as u32 | 1).unwrap();
        let mut ideal = StaticLotteryArbiter::with_source(
            assignment,
            Box::new(StdRngSource::new(seed)),
        )
        .unwrap();
        let hw_shares = win_shares(&mut hw, n, 20_000);
        let ideal_shares = win_shares(&mut ideal, n, 20_000);
        for i in 0..n {
            prop_assert!(
                (hw_shares[i] - ideal_shares[i]).abs() < 0.05,
                "master {}: lfsr {:.3} vs ideal {:.3}",
                i, hw_shares[i], ideal_shares[i],
            );
        }
    }

    #[test]
    fn lut_scales_every_contending_subset_to_a_power_of_two(
        tickets in prop::collection::vec(1u32..50, 2..6),
    ) {
        let n = tickets.len();
        let assignment = TicketAssignment::new(tickets).unwrap();
        let arbiter = StaticLotteryArbiter::with_seed(assignment, 1).unwrap();
        for bits in 1u32..(1 << n) {
            let scaled = arbiter.scaled_tickets(bits);
            let total: u32 = scaled.iter().sum();
            prop_assert!(total.is_power_of_two(), "map {:b}: total {}", bits, total);
            for (i, &t) in scaled.iter().enumerate() {
                if (bits >> i) & 1 == 0 {
                    prop_assert_eq!(t, 0, "idle master {} holds scaled tickets", i);
                } else {
                    prop_assert!(t > 0, "contender {} lost all tickets", i);
                }
            }
        }
    }

    #[test]
    fn ticket_updates_take_effect_immediately(
        before in prop::collection::vec(1u32..10, 3),
        after in prop::collection::vec(1u32..10, 3),
        seed in 1u32..u32::MAX,
    ) {
        let mut arbiter =
            DynamicLotteryArbiter::with_seed(TicketAssignment::new(before).unwrap(), seed)
                .unwrap();
        arbiter.set_tickets(after.clone()).unwrap();
        let shares = win_shares(&mut arbiter, 3, 20_000);
        let total: u32 = after.iter().sum();
        for i in 0..3 {
            let entitled = f64::from(after[i]) / f64::from(total);
            prop_assert!(
                (shares[i] - entitled).abs() < 0.06,
                "master {}: share {:.3} vs new entitlement {:.3}",
                i, shares[i], entitled,
            );
        }
    }
}
