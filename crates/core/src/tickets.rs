//! Lottery-ticket assignments and power-of-two scaling.

use crate::error::LotteryError;
use serde::{Deserialize, Serialize};
use socsim::{MasterId, MAX_MASTERS};

/// Largest ticket count a single master may hold. Bounding individual
/// counts keeps every partial sum comfortably inside `u32`, matching the
/// fixed ticket-register width of the hardware design.
pub const MAX_TICKETS_PER_MASTER: u32 = 1 << 20;

/// A validated assignment of lottery tickets to masters.
///
/// Master *i* holds `tickets()[i]` tickets; its long-run bandwidth share
/// under saturation is `tickets()[i] / total()`. Individual masters may
/// hold zero tickets (they can then only win when no ticket holder
/// requests — i.e. never), but the total must be positive.
///
/// ```
/// use lotterybus::TicketAssignment;
/// # fn main() -> Result<(), lotterybus::LotteryError> {
/// let t = TicketAssignment::new(vec![1, 2, 4])?;
/// assert_eq!(t.total(), 7);
/// // §4.3: scaled so the total is a power of two while preserving ratios.
/// let scaled = t.scaled_to_power_of_two();
/// assert_eq!(scaled.tickets(), &[5, 9, 18]);
/// assert_eq!(scaled.total(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TicketAssignment {
    tickets: Vec<u32>,
}

impl TicketAssignment {
    /// Creates an assignment giving `tickets[i]` tickets to master *i*.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty, exceeds
    /// [`socsim::MAX_MASTERS`] masters, sums to zero, or any count
    /// exceeds [`MAX_TICKETS_PER_MASTER`].
    pub fn new(tickets: Vec<u32>) -> Result<Self, LotteryError> {
        if tickets.is_empty() {
            return Err(LotteryError::NoMasters);
        }
        if tickets.len() > MAX_MASTERS {
            return Err(LotteryError::TooManyMasters { got: tickets.len(), max: MAX_MASTERS });
        }
        if let Some((master, &t)) =
            tickets.iter().enumerate().find(|(_, &t)| t > MAX_TICKETS_PER_MASTER)
        {
            return Err(LotteryError::TicketTooLarge {
                master,
                tickets: t,
                max: MAX_TICKETS_PER_MASTER,
            });
        }
        if tickets.iter().all(|&t| t == 0) {
            return Err(LotteryError::ZeroTotalTickets);
        }
        Ok(TicketAssignment { tickets })
    }

    /// The per-master ticket counts.
    pub fn tickets(&self) -> &[u32] {
        &self.tickets
    }

    /// Number of masters covered by the assignment.
    pub fn masters(&self) -> usize {
        self.tickets.len()
    }

    /// Tickets held by `master` (zero if out of range).
    pub fn get(&self, master: MasterId) -> u32 {
        self.tickets.get(master.index()).copied().unwrap_or(0)
    }

    /// Total number of tickets.
    pub fn total(&self) -> u32 {
        self.tickets.iter().sum()
    }

    /// The bandwidth fraction `master` is entitled to: `t_i / T`.
    pub fn fraction(&self, master: MasterId) -> f64 {
        f64::from(self.get(master)) / f64::from(self.total())
    }

    /// Rescales the assignment so the total is the next power of two,
    /// preserving ticket ratios as closely as possible (paper §4.3, which
    /// scales 1:2:4 with `T = 7` to 5:9:18 with `T = 32`).
    ///
    /// Masters holding at least one ticket keep at least one ticket, so
    /// scaling never disenfranchises anyone. The largest-remainder method
    /// guarantees the scaled counts hit the power-of-two total exactly.
    pub fn scaled_to_power_of_two(&self) -> TicketAssignment {
        // Two extra bits of resolution reproduce the paper's example
        // exactly: 1:2:4 (T = 7) → target 32 → 5:9:18.
        self.scaled_to_power_of_two_with_resolution(2)
    }

    /// Like [`TicketAssignment::scaled_to_power_of_two`] but with an
    /// explicit resolution: the target total is the next power of two at
    /// least `2^extra_bits` times the original total. More bits preserve
    /// the ratios more precisely at the cost of wider comparators; the
    /// `scaling_resolution` ablation quantifies the trade-off.
    pub fn scaled_to_power_of_two_with_resolution(&self, extra_bits: u32) -> TicketAssignment {
        let total = u64::from(self.total());
        if total.is_power_of_two() {
            return self.clone();
        }
        // The ticket-holder list is fixed for this assignment: build it
        // once and reuse the buffer across doubling retries instead of
        // reallocating (and re-filtering) inside every attempt. The
        // remainder sort itself depends on `target`, so it runs lazily
        // inside `try_scale_to` — only when a shortfall actually needs
        // distributing.
        let mut order: Vec<usize> =
            (0..self.tickets.len()).filter(|&i| self.tickets[i] > 0).collect();
        let mut target = (total << extra_bits).next_power_of_two();
        loop {
            if let Some(scaled) = self.try_scale_to(target, &mut order) {
                return scaled;
            }
            // Tiny ticket holders forced every entry to 1 and overflowed
            // the target; doubling makes room while staying a power of 2.
            target = target.checked_mul(2).expect("scaling target overflowed u64");
        }
    }

    fn try_scale_to(&self, target: u64, order: &mut [usize]) -> Option<TicketAssignment> {
        let total = u128::from(self.total());
        let wide = u128::from(target);
        // Floor of the exact share, with nonzero holders kept >= 1. The
        // product is taken in u128: with wide resolutions (large
        // `extra_bits`) `tickets[i] * target` can overflow u64.
        let mut scaled: Vec<u64> = self
            .tickets
            .iter()
            .map(|&t| if t == 0 { 0 } else { ((u128::from(t) * wide / total) as u64).max(1) })
            .collect();
        let assigned: u64 = scaled.iter().sum();
        if assigned > target {
            return None;
        }
        let mut short = target - assigned;
        if short > 0 {
            // Distribute the shortfall by largest fractional remainder,
            // ties broken by master index — the index tiebreak makes the
            // result independent of the buffer's incoming permutation
            // (it may carry a previous attempt's order on retries).
            order.sort_by_key(|&i| {
                (std::cmp::Reverse(u128::from(self.tickets[i]) * wide % total), i)
            });
            let mut next = 0usize;
            while short > 0 {
                scaled[order[next % order.len()]] += 1;
                next += 1;
                short -= 1;
            }
        }
        let tickets: Vec<u32> = scaled.into_iter().map(|t| t as u32).collect();
        // Construct directly: scaled holdings live in the lottery
        // manager's (wider) internal registers, so the per-master cap on
        // user-supplied assignments does not apply to them.
        Some(TicketAssignment { tickets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scaling_example() {
        // §4.3: "if the ticket holdings of three components are in the
        // ratio 1:2:4 (T=7), they would be scaled to 5:9:18 (T=32)".
        let t = TicketAssignment::new(vec![1, 2, 4]).expect("valid");
        let scaled = t.scaled_to_power_of_two();
        assert_eq!(scaled.tickets(), &[5, 9, 18]);
    }

    #[test]
    fn power_of_two_totals_are_untouched_in_total() {
        let t = TicketAssignment::new(vec![1, 3]).expect("valid");
        let scaled = t.scaled_to_power_of_two();
        assert_eq!(scaled.total(), 4);
        assert_eq!(scaled.tickets(), &[1, 3]);
    }

    #[test]
    fn zero_holders_stay_zero_and_others_stay_positive() {
        let t = TicketAssignment::new(vec![0, 1, 100]).expect("valid");
        let scaled = t.scaled_to_power_of_two();
        assert_eq!(scaled.tickets()[0], 0);
        assert!(scaled.tickets()[1] >= 1);
        assert!(scaled.total().is_power_of_two());
    }

    #[test]
    fn scaling_preserves_ratios_closely() {
        let t = TicketAssignment::new(vec![3, 5, 7, 11]).expect("valid");
        let scaled = t.scaled_to_power_of_two();
        assert!(scaled.total().is_power_of_two());
        for i in 0..4 {
            let before = t.fraction(MasterId::new(i));
            let after = scaled.fraction(MasterId::new(i));
            assert!(
                (before - after).abs() < 0.05,
                "master {i}: fraction {before:.3} became {after:.3}"
            );
        }
    }

    #[test]
    fn validation_rejects_bad_assignments() {
        assert_eq!(TicketAssignment::new(vec![]).unwrap_err(), LotteryError::NoMasters);
        assert_eq!(TicketAssignment::new(vec![0, 0]).unwrap_err(), LotteryError::ZeroTotalTickets);
        assert!(matches!(
            TicketAssignment::new(vec![MAX_TICKETS_PER_MASTER + 1]).unwrap_err(),
            LotteryError::TicketTooLarge { .. }
        ));
        assert!(matches!(
            TicketAssignment::new(vec![1; MAX_MASTERS + 1]).unwrap_err(),
            LotteryError::TooManyMasters { .. }
        ));
    }

    #[test]
    fn accessors() {
        let t = TicketAssignment::new(vec![2, 6]).expect("valid");
        assert_eq!(t.get(MasterId::new(1)), 6);
        assert_eq!(t.get(MasterId::new(9)), 0);
        assert!((t.fraction(MasterId::new(0)) - 0.25).abs() < 1e-12);
        assert_eq!(t.masters(), 2);
    }
}
