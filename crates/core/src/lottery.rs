//! The core lottery draw: partial ticket sums and winner selection.
//!
//! Implements the paper's §4.2 principle of operation: with pending
//! request indicators `r_i` and ticket holdings `t_i`, the current ticket
//! total is `T = Σ r_i·t_i`, and a draw `r ∈ [0, T)` selects the unique
//! component `C_{i+1}` whose range `[Σ_{k≤i} r_k·t_k, Σ_{k≤i+1} r_k·t_k)`
//! contains `r`.

use socsim::{MasterId, RequestMap, MAX_MASTERS};

/// Computes the running partial sums `Σ_{k≤i} r_k·t_k` for every master,
/// plus the grand total of currently contending tickets.
///
/// Masters whose request line is idle contribute zero — this is the
/// bitwise-AND stage of the dynamic manager's datapath (Figure 10).
///
/// ```
/// use lotterybus::partial_sums;
/// use socsim::{RequestMap, MasterId};
/// let mut map = RequestMap::new(4);
/// map.set_pending(MasterId::new(0), 1);
/// map.set_pending(MasterId::new(2), 1);
/// map.set_pending(MasterId::new(3), 1);
/// // Paper Figure 8: tickets 1,2,3,4; request map 1011 (M1, M3, M4).
/// let (sums, total) = partial_sums(&map, &[1, 2, 3, 4]);
/// assert_eq!(&sums[..4], &[1, 1, 4, 8]);
/// assert_eq!(total, 8);
/// ```
pub fn partial_sums(requests: &RequestMap, tickets: &[u32]) -> ([u64; MAX_MASTERS], u64) {
    let mut sums = [0u64; MAX_MASTERS];
    let mut acc = 0u64;
    for (i, &t) in tickets.iter().enumerate().take(MAX_MASTERS) {
        if requests.is_pending(MasterId::new(i)) {
            acc += u64::from(t);
        }
        sums[i] = acc;
    }
    (sums, acc)
}

/// Selects the lottery winner for a given draw.
///
/// Returns the master whose ticket range contains `draw`, or `None` when
/// no requesting master holds tickets or `draw` falls outside `[0, T)`.
/// The scan mirrors the hardware's parallel comparators followed by a
/// priority selector: the *first* partial sum exceeding the draw wins.
///
/// ```
/// use lotterybus::draw_winner;
/// use socsim::{RequestMap, MasterId};
/// let mut map = RequestMap::new(4);
/// for m in [0, 2, 3] { map.set_pending(MasterId::new(m), 1); }
/// // Paper Figure 8: draw 5 falls in C4's range [4, 8).
/// assert_eq!(draw_winner(&map, &[1, 2, 3, 4], 5), Some(MasterId::new(3)));
/// // A draw of 0 lands in C1's range [0, 1).
/// assert_eq!(draw_winner(&map, &[1, 2, 3, 4], 0), Some(MasterId::new(0)));
/// ```
pub fn draw_winner(requests: &RequestMap, tickets: &[u32], draw: u64) -> Option<MasterId> {
    let mut acc = 0u64;
    for (i, &t) in tickets.iter().enumerate().take(MAX_MASTERS) {
        let id = MasterId::new(i);
        if requests.is_pending(id) {
            acc += u64::from(t);
            if draw < acc {
                return Some(id);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with(masters: usize, pending: &[usize]) -> RequestMap {
        let mut map = RequestMap::new(masters);
        for &m in pending {
            map.set_pending(MasterId::new(m), 1);
        }
        map
    }

    #[test]
    fn figure8_example_end_to_end() {
        // Components hold 1, 2, 3, 4 tickets; C1, C3, C4 pending; the
        // draw 5 lies between r1t1+r2t2+r3t3 = 4 and +r4t4 = 8 => C4.
        let map = map_with(4, &[0, 2, 3]);
        let (sums, total) = partial_sums(&map, &[1, 2, 3, 4]);
        assert_eq!(total, 8);
        assert_eq!(&sums[..4], &[1, 1, 4, 8]);
        assert_eq!(draw_winner(&map, &[1, 2, 3, 4], 5), Some(MasterId::new(3)));
    }

    #[test]
    fn winner_is_never_an_idle_master() {
        let map = map_with(4, &[1, 3]);
        for draw in 0..6 {
            let winner = draw_winner(&map, &[1, 2, 3, 4], draw).expect("in range");
            assert!(map.is_pending(winner), "draw {draw} granted idle {winner}");
        }
    }

    #[test]
    fn draw_out_of_range_selects_nobody() {
        let map = map_with(2, &[0, 1]);
        assert_eq!(draw_winner(&map, &[3, 4], 7), None);
        assert_eq!(draw_winner(&map, &[3, 4], 6), Some(MasterId::new(1)));
    }

    #[test]
    fn empty_request_map_has_no_winner() {
        let map = RequestMap::new(3);
        let (_, total) = partial_sums(&map, &[1, 1, 1]);
        assert_eq!(total, 0);
        assert_eq!(draw_winner(&map, &[1, 1, 1], 0), None);
    }

    #[test]
    fn zero_ticket_masters_cannot_win() {
        let map = map_with(3, &[0, 1, 2]);
        let tickets = [0, 5, 0];
        for draw in 0..5 {
            assert_eq!(draw_winner(&map, &tickets, draw), Some(MasterId::new(1)));
        }
    }

    #[test]
    fn boundaries_are_inclusive_exclusive() {
        // Ranges per the paper footnote: [a, b) includes a, excludes b.
        let map = map_with(2, &[0, 1]);
        let tickets = [2, 3];
        assert_eq!(draw_winner(&map, &tickets, 1), Some(MasterId::new(0)));
        assert_eq!(draw_winner(&map, &tickets, 2), Some(MasterId::new(1)));
        assert_eq!(draw_winner(&map, &tickets, 4), Some(MasterId::new(1)));
    }
}
