//! Error type for lottery-manager construction and reconfiguration.

use std::error::Error;
use std::fmt;

/// Error returned when a lottery manager is configured with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LotteryError {
    /// No masters were given tickets.
    NoMasters,
    /// More masters than the bus supports.
    TooManyMasters {
        /// Number of masters requested.
        got: usize,
        /// Maximum supported.
        max: usize,
    },
    /// Every ticket count is zero, so no lottery can ever be drawn.
    ZeroTotalTickets,
    /// A single ticket count exceeds the supported width.
    TicketTooLarge {
        /// Offending master index.
        master: usize,
        /// The oversized count.
        tickets: u32,
        /// Largest supported count.
        max: u32,
    },
    /// The static manager's look-up table would be too large for this
    /// many masters (it has `2^n` entries).
    LutTooLarge {
        /// Number of masters requested.
        masters: usize,
        /// Largest number of masters the LUT design supports.
        max: usize,
    },
    /// Ticket updates must keep the number of masters fixed.
    MasterCountChanged {
        /// Masters in the new assignment.
        got: usize,
        /// Masters the manager was built for.
        expected: usize,
    },
}

impl fmt::Display for LotteryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LotteryError::NoMasters => write!(f, "no masters hold tickets"),
            LotteryError::TooManyMasters { got, max } => {
                write!(f, "{got} masters hold tickets but at most {max} supported")
            }
            LotteryError::ZeroTotalTickets => write!(f, "total ticket count is zero"),
            LotteryError::TicketTooLarge { master, tickets, max } => {
                write!(f, "master {master} holds {tickets} tickets, more than the supported {max}")
            }
            LotteryError::LutTooLarge { masters, max } => {
                write!(
                    f,
                    "static lottery LUT for {masters} masters would have 2^{masters} entries; \
                     at most {max} masters supported"
                )
            }
            LotteryError::MasterCountChanged { got, expected } => {
                write!(f, "ticket update has {got} masters but the manager serves {expected}")
            }
        }
    }
}

impl Error for LotteryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(LotteryError::ZeroTotalTickets.to_string().contains("zero"));
        let e = LotteryError::TicketTooLarge { master: 1, tickets: 99, max: 10 };
        assert!(e.to_string().contains("99"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync>() {}
        assert_error::<LotteryError>();
    }
}
