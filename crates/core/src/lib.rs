#![deny(missing_docs)]
//! # lotterybus — lottery-based SoC bus arbitration (the paper's contribution)
//!
//! This crate implements the LOTTERYBUS communication architecture of
//! Lahiri, Raghunathan and Lakshminarayana (DAC 2001): a randomized bus
//! arbitration protocol in which each master holds a number of *lottery
//! tickets* and, every arbitration, a centralized *lottery manager* picks
//! a winning ticket uniformly among the tickets of the currently
//! requesting masters. A master with `t` of the `T` current tickets wins
//! with probability `t/T`, so:
//!
//! * bus **bandwidth shares converge to the ticket ratios** under load
//!   (fine-grained proportional allocation, unlike static priority), and
//! * expected **waiting time is low and phase-independent** (unlike TDMA,
//!   whose latency depends on request/slot alignment), while the
//!   probability of a master waiting more than `n` lotteries decays
//!   geometrically — no starvation.
//!
//! Two hardware embodiments are provided, mirroring the paper's §4.3/§4.4:
//!
//! * [`StaticLotteryArbiter`] — tickets fixed at design time; all ticket
//!   ranges are precomputed into a look-up table indexed by the request
//!   map, and the random draw comes from a maximal-length LFSR over a
//!   power-of-two range (Figure 9).
//! * [`DynamicLotteryArbiter`] — tickets vary at run time; partial sums
//!   are formed by an AND stage and adder tree, and the draw is reduced
//!   into `[0, T)` by modulo hardware (Figure 10). Ticket-update policies
//!   plug in via [`TicketPolicy`].
//!
//! ```
//! use lotterybus::{StaticLotteryArbiter, TicketAssignment};
//! use socsim::{Arbiter, RequestMap, MasterId, Cycle};
//!
//! # fn main() -> Result<(), lotterybus::LotteryError> {
//! let tickets = TicketAssignment::new(vec![1, 2, 3, 4])?;
//! let mut arb = StaticLotteryArbiter::with_seed(tickets, 42)?;
//! let mut map = RequestMap::new(4);
//! map.set_pending(MasterId::new(0), 8);
//! map.set_pending(MasterId::new(3), 8);
//! let grant = arb.arbitrate(&map, Cycle::ZERO).expect("someone pending");
//! assert!(grant.master == MasterId::new(0) || grant.master == MasterId::new(3));
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod dynamic_mgr;
pub mod error;
pub mod lfsr;
pub mod lottery;
pub mod policy;
pub mod rng;
pub mod static_mgr;
pub mod tickets;

pub use analysis::{expected_lotteries_to_win, win_within_probability};
pub use dynamic_mgr::DynamicLotteryArbiter;
pub use error::LotteryError;
pub use lfsr::Lfsr;
pub use lottery::{draw_winner, partial_sums};
pub use policy::{ConstantPolicy, QueueProportionalPolicy, TicketPolicy};
pub use rng::{LfsrSource, RandomSource, RandomSourceKind, StdRngSource};
pub use static_mgr::StaticLotteryArbiter;
pub use tickets::TicketAssignment;
