//! The static lottery manager (paper §4.3, Figure 9).

use crate::error::LotteryError;
use crate::rng::{LfsrSource, RandomSource, RandomSourceKind};
use crate::tickets::TicketAssignment;
use socsim::{Arbiter, Cycle, Grant, MasterId, RequestMap};
use std::fmt;

/// Largest number of masters the static design supports: the look-up
/// table has `2^n` entries, which the paper notes is practical because
/// ticket assignments are known at design time.
pub const MAX_LUT_MASTERS: usize = 12;

/// One precomputed LUT row: cumulative scaled ticket sums for a request
/// map, plus the (power-of-two) total to draw from.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LutEntry {
    cumsum: Vec<u32>,
    total: u32,
}

/// Lottery-manager hardware with **statically assigned tickets**.
///
/// Because ticket holdings are fixed at design time, every possible
/// ticket range is precomputed: the request bitmap indexes a look-up
/// table holding the partial sums `Σ_{k≤i} r_k·t_k` for that subset of
/// contenders (Figure 9). Within each subset the holdings are rescaled so
/// the subset total is a power of two — the paper's trick for drawing the
/// random number with a bare LFSR instead of modulo hardware — using the
/// same largest-remainder scaling as
/// [`TicketAssignment::scaled_to_power_of_two`].
///
/// The draw is compared in parallel against all partial sums and a
/// priority selector asserts exactly one grant line; in software this is
/// the linear scan of [`crate::draw_winner`].
///
/// ```
/// use lotterybus::{StaticLotteryArbiter, TicketAssignment};
/// use socsim::{Arbiter, RequestMap, MasterId, Cycle};
///
/// # fn main() -> Result<(), lotterybus::LotteryError> {
/// let tickets = TicketAssignment::new(vec![1, 2, 3, 4])?;
/// let mut arb = StaticLotteryArbiter::with_seed(tickets, 7)?;
/// let mut map = RequestMap::new(4);
/// map.set_pending(MasterId::new(1), 16);
/// // Sole contender always wins, whatever the draw.
/// assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(1));
/// # Ok(())
/// # }
/// ```
pub struct StaticLotteryArbiter {
    tickets: TicketAssignment,
    lut: Vec<LutEntry>,
    /// Enum-dispatched so the hot LFSR draw is a direct (inlinable)
    /// call; `Custom` sources from ablations still dispatch virtually.
    source: RandomSourceKind,
}

impl fmt::Debug for StaticLotteryArbiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StaticLotteryArbiter")
            .field("tickets", &self.tickets)
            .field("lut_entries", &self.lut.len())
            .field("source", &self.source.name())
            .finish()
    }
}

impl StaticLotteryArbiter {
    /// Creates a static lottery manager drawing from a 32-bit LFSR
    /// seeded with 1.
    ///
    /// # Errors
    ///
    /// Returns [`LotteryError::LutTooLarge`] if the assignment covers
    /// more than [`MAX_LUT_MASTERS`] masters.
    pub fn new(tickets: TicketAssignment) -> Result<Self, LotteryError> {
        Self::with_seed(tickets, 1)
    }

    /// Creates a static lottery manager drawing from a 32-bit LFSR with
    /// the given seed.
    ///
    /// # Errors
    ///
    /// See [`StaticLotteryArbiter::new`].
    pub fn with_seed(tickets: TicketAssignment, seed: u32) -> Result<Self, LotteryError> {
        Self::with_source_kind(tickets, RandomSourceKind::Lfsr(LfsrSource::new(32, seed)))
    }

    /// Creates a static lottery manager with an explicit draw source
    /// (used by ablations comparing LFSR draws with ideal uniform draws).
    /// The boxed source is dispatched virtually; see
    /// [`StaticLotteryArbiter::with_source_kind`] for the direct path.
    ///
    /// # Errors
    ///
    /// See [`StaticLotteryArbiter::new`].
    pub fn with_source(
        tickets: TicketAssignment,
        source: Box<dyn RandomSource>,
    ) -> Result<Self, LotteryError> {
        Self::with_source_kind(tickets, RandomSourceKind::Custom(source))
    }

    /// Creates a static lottery manager with an enum-dispatched built-in
    /// draw source.
    ///
    /// # Errors
    ///
    /// See [`StaticLotteryArbiter::new`].
    pub fn with_source_kind(
        tickets: TicketAssignment,
        source: RandomSourceKind,
    ) -> Result<Self, LotteryError> {
        let n = tickets.masters();
        if n > MAX_LUT_MASTERS {
            return Err(LotteryError::LutTooLarge { masters: n, max: MAX_LUT_MASTERS });
        }
        let lut = build_lut(&tickets);
        Ok(StaticLotteryArbiter { tickets, lut, source })
    }

    /// The design-time ticket assignment.
    pub fn tickets(&self) -> &TicketAssignment {
        &self.tickets
    }

    /// The scaled per-master ticket holdings the LUT stores for a given
    /// request bitmap — exposed for inspection and tests.
    ///
    /// # Panics
    ///
    /// Panics if `bits` has bits set beyond the number of masters.
    pub fn scaled_tickets(&self, bits: u32) -> Vec<u32> {
        let entry = &self.lut[bits as usize];
        let mut prev = 0;
        entry
            .cumsum
            .iter()
            .map(|&c| {
                let t = c - prev;
                prev = c;
                t
            })
            .collect()
    }

    /// The draw source, register state included.
    pub fn random_source(&self) -> &RandomSourceKind {
        &self.source
    }

    /// Replaces the draw source. Used by SoA fleet lowering to write a
    /// kernel slot's register state back into the scalar arbiter.
    pub fn set_random_source(&mut self, source: RandomSourceKind) {
        self.source = source;
    }

    /// The arbitration decision taken against an *external* draw
    /// source: identical LUT walk, identical draw cadence.
    /// [`Arbiter::arbitrate`] is exactly this with `self.source`; SoA
    /// fleet kernels share one arbiter's LUT across many per-lane
    /// sources.
    pub fn decide_with(
        &self,
        requests: &RequestMap,
        source: &mut RandomSourceKind,
    ) -> Option<Grant> {
        decide(&self.lut, requests, source)
    }
}

/// The shared decision body: LUT row lookup, zero-ticket fallback, one
/// draw, priority-select against the partial sums.
fn decide(lut: &[LutEntry], requests: &RequestMap, source: &mut RandomSourceKind) -> Option<Grant> {
    if requests.is_empty() {
        return None;
    }
    let entry = &lut[requests.bits() as usize];
    if entry.total == 0 {
        // Only zero-ticket masters are requesting; fall back to a
        // default grant so the bus cannot livelock. The paper assumes
        // every master holds at least one ticket.
        return requests.iter_pending().next().map(Grant::whole_burst);
    }
    let draw = u64::from(source.draw(entry.total));
    let winner = entry
        .cumsum
        .iter()
        .position(|&c| draw < u64::from(c))
        .map(MasterId::new)
        .expect("draw below total always selects a winner");
    debug_assert!(requests.is_pending(winner));
    Some(Grant::whole_burst(winner))
}

fn build_lut(tickets: &TicketAssignment) -> Vec<LutEntry> {
    let n = tickets.masters();
    (0u32..(1 << n))
        .map(|bits| {
            let subset: Vec<u32> = tickets
                .tickets()
                .iter()
                .enumerate()
                .map(|(i, &t)| if (bits >> i) & 1 == 1 { t } else { 0 })
                .collect();
            let scaled = match TicketAssignment::new(subset) {
                Ok(subset) => subset.scaled_to_power_of_two().tickets().to_vec(),
                // No contending tickets for this map (e.g. bits == 0).
                Err(_) => vec![0; n],
            };
            let mut acc = 0u32;
            let cumsum: Vec<u32> = scaled
                .iter()
                .map(|&t| {
                    acc += t;
                    acc
                })
                .collect();
            LutEntry { cumsum, total: acc }
        })
        .collect()
}

impl Arbiter for StaticLotteryArbiter {
    fn arbitrate(&mut self, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        decide(&self.lut, requests, &mut self.source)
    }

    fn name(&self) -> &str {
        "lottery-static"
    }

    /// An empty arbitration returns before the LFSR draws, so the random
    /// stream's cadence is untouched by idle cycles: never pins the
    /// fast-forward horizon.
    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with(masters: usize, pending: &[usize]) -> RequestMap {
        let mut map = RequestMap::new(masters);
        for &m in pending {
            map.set_pending(MasterId::new(m), 8);
        }
        map
    }

    fn arbiter(tickets: Vec<u32>) -> StaticLotteryArbiter {
        StaticLotteryArbiter::with_seed(TicketAssignment::new(tickets).expect("valid"), 0xACE1)
            .expect("valid")
    }

    #[test]
    fn idle_cycles_never_consume_the_random_stream() {
        // The fast-forward kernel skips idle arbitrations entirely (the
        // default `skip_idle` is a no-op); that is only sound because an
        // empty map returns before the LFSR draws.
        let mut stepped = arbiter(vec![1, 2, 3]);
        let mut fresh = arbiter(vec![1, 2, 3]);
        let empty = map_with(3, &[]);
        for c in 0..1_000u64 {
            assert!(stepped.arbitrate(&empty, Cycle::new(c)).is_none());
        }
        let map = map_with(3, &[0, 1, 2]);
        for c in 0..50u64 {
            assert_eq!(
                stepped.arbitrate(&map, Cycle::new(1_000 + c)),
                fresh.arbitrate(&map, Cycle::new(c)),
                "idle span shifted the draw cadence"
            );
        }
    }

    #[test]
    fn lut_subsets_are_power_of_two_scaled() {
        let arb = arbiter(vec![1, 2, 4]);
        // Full map: 1:2:4 scales to 5:9:18 per the paper.
        assert_eq!(arb.scaled_tickets(0b111), vec![5, 9, 18]);
        // Subset {0, 1}: total 3 scales to the power of two ≥ 4×3,
        // preserving the 1:2 ratio to within the rounding resolution.
        let sub = arb.scaled_tickets(0b011);
        assert_eq!(sub[2], 0);
        assert_eq!(sub[0] + sub[1], 16);
        let share = f64::from(sub[0]) / 16.0;
        assert!((share - 1.0 / 3.0).abs() < 0.07, "share {share}");
        // Empty map carries no tickets.
        assert_eq!(arb.scaled_tickets(0), vec![0, 0, 0]);
    }

    #[test]
    fn empty_requests_grant_nothing() {
        let mut arb = arbiter(vec![1, 1]);
        assert!(arb.arbitrate(&RequestMap::new(2), Cycle::ZERO).is_none());
    }

    #[test]
    fn sole_contender_always_wins() {
        let mut arb = arbiter(vec![1, 2, 3, 4]);
        let map = map_with(4, &[2]);
        for _ in 0..50 {
            assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(2));
        }
    }

    #[test]
    fn win_frequencies_track_ticket_ratios() {
        let mut arb = arbiter(vec![1, 2, 3, 4]);
        let map = map_with(4, &[0, 1, 2, 3]);
        let mut wins = [0u32; 4];
        let draws = 40_000;
        for _ in 0..draws {
            wins[arb.arbitrate(&map, Cycle::ZERO).unwrap().master.index()] += 1;
        }
        for (i, &w) in wins.iter().enumerate() {
            let expected = f64::from(draws) * (i as f64 + 1.0) / 10.0;
            let got = f64::from(w);
            assert!(
                (got - expected).abs() < expected * 0.1,
                "master {i}: {got} wins, expected ~{expected}"
            );
        }
    }

    #[test]
    fn subset_frequencies_track_subset_ratios() {
        let mut arb = arbiter(vec![1, 2, 3, 4]);
        // Only masters 0 and 3 contend: shares should be 1/5 and 4/5.
        let map = map_with(4, &[0, 3]);
        let mut wins = [0u32; 4];
        for _ in 0..20_000 {
            wins[arb.arbitrate(&map, Cycle::ZERO).unwrap().master.index()] += 1;
        }
        assert_eq!(wins[1] + wins[2], 0);
        let share0 = f64::from(wins[0]) / 20_000.0;
        assert!((share0 - 0.2).abs() < 0.03, "share {share0}");
    }

    #[test]
    fn zero_ticket_requesters_fall_back_instead_of_livelocking() {
        let mut arb = arbiter(vec![0, 5]);
        let map = map_with(2, &[0]);
        assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(0));
    }

    #[test]
    fn too_many_masters_for_lut_rejected() {
        let tickets = TicketAssignment::new(vec![1; MAX_LUT_MASTERS + 1]).expect("valid");
        assert!(matches!(
            StaticLotteryArbiter::new(tickets).unwrap_err(),
            LotteryError::LutTooLarge { .. }
        ));
    }
}
