//! Random draw sources for the lottery managers.

use crate::lfsr::Lfsr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A source of bounded uniform random draws — the "pick a winning
/// ticket" step of the lottery.
pub trait RandomSource {
    /// Draws a value uniformly from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `bound` is zero.
    fn draw(&mut self, bound: u32) -> u32;

    /// A short name for reports ("lfsr", "stdrng", …).
    fn name(&self) -> &str;
}

impl<T: RandomSource + ?Sized> RandomSource for Box<T> {
    fn draw(&mut self, bound: u32) -> u32 {
        (**self).draw(bound)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Enum dispatch over the built-in draw sources.
///
/// The lottery managers draw once per contended arbitration — a hot-path
/// call. Holding the source as this enum lets the compiler resolve the
/// built-in cases statically (and inline the LFSR step) instead of going
/// through a `Box<dyn RandomSource>` vtable; [`RandomSourceKind::Custom`]
/// keeps arbitrary user sources pluggable at the old cost.
pub enum RandomSourceKind {
    /// Hardware-faithful maximal-length LFSR draws.
    Lfsr(LfsrSource),
    /// Ideal uniform software draws (ablations).
    StdRng(StdRngSource),
    /// Any other [`RandomSource`], dispatched virtually.
    Custom(Box<dyn RandomSource>),
}

impl fmt::Debug for RandomSourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RandomSourceKind::Lfsr(s) => f.debug_tuple("Lfsr").field(s).finish(),
            RandomSourceKind::StdRng(s) => f.debug_tuple("StdRng").field(s).finish(),
            RandomSourceKind::Custom(s) => f.debug_tuple("Custom").field(&s.name()).finish(),
        }
    }
}

impl RandomSourceKind {
    /// A clone of a built-in (enum-dispatched) source, register state
    /// included; `None` for virtually-dispatched custom sources, which
    /// cannot be duplicated. SoA fleet lowering uses this to move each
    /// lane's draw state into a batched kernel slot.
    pub fn clone_builtin(&self) -> Option<RandomSourceKind> {
        match self {
            RandomSourceKind::Lfsr(s) => Some(RandomSourceKind::Lfsr(s.clone())),
            RandomSourceKind::StdRng(s) => Some(RandomSourceKind::StdRng(s.clone())),
            RandomSourceKind::Custom(_) => None,
        }
    }
}

impl RandomSource for RandomSourceKind {
    #[inline]
    fn draw(&mut self, bound: u32) -> u32 {
        match self {
            RandomSourceKind::Lfsr(s) => s.draw(bound),
            RandomSourceKind::StdRng(s) => s.draw(bound),
            RandomSourceKind::Custom(s) => s.draw(bound),
        }
    }

    fn name(&self) -> &str {
        match self {
            RandomSourceKind::Lfsr(s) => s.name(),
            RandomSourceKind::StdRng(s) => s.name(),
            RandomSourceKind::Custom(s) => s.name(),
        }
    }
}

impl From<LfsrSource> for RandomSourceKind {
    fn from(source: LfsrSource) -> Self {
        RandomSourceKind::Lfsr(source)
    }
}

impl From<StdRngSource> for RandomSourceKind {
    fn from(source: StdRngSource) -> Self {
        RandomSourceKind::StdRng(source)
    }
}

impl From<Box<dyn RandomSource>> for RandomSourceKind {
    fn from(source: Box<dyn RandomSource>) -> Self {
        RandomSourceKind::Custom(source)
    }
}

/// Reduces `x` into `[0, d)` with a multiply-shift reciprocal, producing
/// exactly `x % d` for every 32-bit `x` (Lemire's exact-division trick).
///
/// `m` must be the cached reciprocal `u64::MAX / d + 1` for `d >= 2`.
/// Correctness: `m = ceil(2^64 / d)`, so `m·x = x·2^64/d + e·x` with
/// `0 <= e < 1`; the low 64 bits of `m·x` are `(x mod d)·2^64/d` plus an
/// error term below `2^64/d`, and multiplying by `d` and taking the high
/// word recovers `x mod d` exactly because both operands fit in 32 bits.
/// The exhaustive test below checks every bound up to `2^16` against the
/// hardware modulo.
#[inline]
pub(crate) fn mul_shift_mod(x: u32, d: u32, m: u64) -> u32 {
    let low = m.wrapping_mul(u64::from(x));
    ((u128::from(low) * u128::from(d)) >> 64) as u32
}

/// The reciprocal `mul_shift_mod` expects for divisor `d >= 2`.
#[inline]
pub(crate) fn mod_reciprocal(d: u32) -> u64 {
    debug_assert!(d >= 2);
    u64::MAX / u64::from(d) + 1
}

/// Hardware-faithful draw source: a maximal-length [`Lfsr`].
///
/// For power-of-two bounds it collects `log2(bound)` output bits — the
/// static manager's fast path (§4.3). For other bounds it samples one
/// register-width word (`max(width, ceil(log2(bound)))` bits, so the
/// sample always covers the bound) and reduces it modulo the bound,
/// mirroring the dynamic manager's modulo hardware (§4.4), which
/// latches the whole register and feeds it to the modulo unit.
///
/// The modulo introduces the same slight bias the hardware would have:
/// with `b` collected bits the probability of any residue deviates from
/// `1/bound` by less than `bound / 2^b ≤ bound / 2^width`. Use a
/// power-of-two bound (via ticket scaling) when exact proportionality
/// matters.
#[derive(Debug, Clone)]
pub struct LfsrSource {
    lfsr: Lfsr,
    /// Cached `(bound, reciprocal)` for the modulo path: arbitration
    /// draws reuse the same bound for long stretches (the ticket total
    /// only changes when the contender set does), so the division in
    /// [`mod_reciprocal`] is paid once per distinct bound, and each draw
    /// reduces with two multiplies instead of a hardware divide.
    reciprocal: (u32, u64),
}

/// Equality is the register state alone; the reciprocal cache is a pure
/// function of the last bound and carries no entropy.
impl PartialEq for LfsrSource {
    fn eq(&self, other: &Self) -> bool {
        self.lfsr == other.lfsr
    }
}

impl Eq for LfsrSource {}

impl LfsrSource {
    /// Creates a source backed by a `width`-bit LFSR.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=32`.
    pub fn new(width: u32, seed: u32) -> Self {
        LfsrSource { lfsr: Lfsr::new(width, seed), reciprocal: (0, 0) }
    }

    /// Access to the underlying register (e.g. to inspect its state).
    pub fn lfsr(&self) -> &Lfsr {
        &self.lfsr
    }
}

impl RandomSource for LfsrSource {
    fn draw(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "draw bound must be nonzero");
        if bound == 1 {
            return 0;
        }
        if bound.is_power_of_two() {
            // Static-manager fast path: exactly log2(bound) output bits.
            self.lfsr.next_bits(31 - (bound - 1).leading_zeros() + 1)
        } else {
            // Dynamic-manager path: one register-width sample reduced
            // modulo the bound, exactly as the hardware latches the
            // register into the modulo unit. Collecting a fixed 32 bits
            // here (the old behaviour) would span multiple periods of a
            // narrow register and correlate successive draws; width
            // bits shift the whole register once per draw instead. When
            // the bound needs more bits than the register holds, widen
            // the sample just enough to cover it (bias < bound / 2^bits).
            let need = 32 - (bound - 1).leading_zeros();
            let bits = self.lfsr.width().max(need);
            let sample = self.lfsr.next_bits(bits);
            if self.reciprocal.0 != bound {
                self.reciprocal = (bound, mod_reciprocal(bound));
            }
            mul_shift_mod(sample, bound, self.reciprocal.1)
        }
    }

    fn name(&self) -> &str {
        "lfsr"
    }
}

/// Software draw source backed by [`rand::rngs::StdRng`]; produces
/// exactly uniform draws for any bound. Used in ablations to isolate the
/// effect of LFSR-based draws.
#[derive(Clone)]
pub struct StdRngSource {
    rng: StdRng,
}

impl StdRngSource {
    /// Creates a source seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        StdRngSource { rng: StdRng::seed_from_u64(seed) }
    }
}

impl fmt::Debug for StdRngSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StdRngSource").finish_non_exhaustive()
    }
}

impl RandomSource for StdRngSource {
    fn draw(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "draw bound must be nonzero");
        self.rng.gen_range(0..bound)
    }

    fn name(&self) -> &str {
        "stdrng"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bounds(source: &mut dyn RandomSource) {
        for bound in [1u32, 2, 3, 7, 8, 10, 100, 1 << 16] {
            for _ in 0..200 {
                assert!(source.draw(bound) < bound, "draw out of range for bound {bound}");
            }
        }
    }

    #[test]
    fn lfsr_draws_stay_in_bounds() {
        check_bounds(&mut LfsrSource::new(20, 7));
    }

    #[test]
    fn stdrng_draws_stay_in_bounds() {
        check_bounds(&mut StdRngSource::new(3));
    }

    #[test]
    fn lfsr_power_of_two_draws_are_balanced() {
        let mut source = LfsrSource::new(16, 0xACE1);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[source.draw(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn non_power_of_two_draw_consumes_one_register_width() {
        // Regression: the modulo path collected a fixed 32 bits, so a
        // width-8 register was wound through its period 32/8 = 4 times
        // per draw and successive draws were correlated. One draw must
        // advance the register exactly `width` steps (the hardware
        // latches the whole register once into the modulo unit).
        let mut source = LfsrSource::new(8, 0x5A);
        let mut shadow = Lfsr::new(8, 0x5A);
        let expected = shadow.next_bits(8) % 10;
        assert_eq!(source.draw(10), expected);
        assert_eq!(source.lfsr().state(), shadow.state(), "register advanced past one width");
    }

    #[test]
    fn wide_bounds_on_narrow_registers_still_cover_the_range() {
        // A 4-bit register asked for draws in [0, 100): the sample is
        // widened to ceil(log2(100)) = 7 bits so every value is
        // reachable; values above 15 must actually occur.
        let mut source = LfsrSource::new(4, 0xE);
        let mut above_register_range = 0;
        for _ in 0..200 {
            let draw = source.draw(100);
            assert!(draw < 100);
            if draw > 15 {
                above_register_range += 1;
            }
        }
        assert!(above_register_range > 50, "only {above_register_range}/200 draws above 15");
    }

    #[test]
    fn narrow_register_modulo_draws_are_balanced() {
        // Width 7 steps its full 127-state period over 127 draws (7 is
        // coprime to 127), so the empirical distribution over one full
        // sweep is the exact distribution of state % bound.
        let mut source = LfsrSource::new(7, 0x2B);
        let mut counts = [0u32; 5];
        const DRAWS: u32 = 635; // 5 full periods
        for _ in 0..DRAWS {
            counts[source.draw(5) as usize] += 1;
        }
        let expected = DRAWS / 5;
        for (residue, &count) in counts.iter().enumerate() {
            assert!(
                count >= expected / 2 && count <= expected * 2,
                "residue {residue}: {count}/{DRAWS} draws"
            );
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bound_panics() {
        LfsrSource::new(8, 1).draw(0);
    }

    #[test]
    fn names_identify_sources() {
        assert_eq!(LfsrSource::new(8, 1).name(), "lfsr");
        assert_eq!(StdRngSource::new(1).name(), "stdrng");
    }

    #[test]
    fn kind_delegates_to_wrapped_sources() {
        let mut kinds = [
            RandomSourceKind::from(LfsrSource::new(16, 0xACE1)),
            RandomSourceKind::from(StdRngSource::new(5)),
            RandomSourceKind::from(Box::new(LfsrSource::new(16, 0xACE1)) as Box<dyn RandomSource>),
        ];
        assert_eq!(kinds[0].name(), "lfsr");
        assert_eq!(kinds[1].name(), "stdrng");
        assert_eq!(kinds[2].name(), "lfsr");
        for kind in &mut kinds {
            check_bounds(kind);
        }
        // Enum-wrapped and boxed LFSRs draw the identical stream.
        let mut direct = LfsrSource::new(20, 0xBEEF);
        let mut wrapped = RandomSourceKind::from(LfsrSource::new(20, 0xBEEF));
        let mut boxed =
            RandomSourceKind::from(Box::new(LfsrSource::new(20, 0xBEEF)) as Box<dyn RandomSource>);
        for bound in [2u32, 3, 7, 10, 100, 1000, 1 << 12] {
            for _ in 0..50 {
                let want = direct.draw(bound);
                assert_eq!(wrapped.draw(bound), want);
                assert_eq!(boxed.draw(bound), want);
            }
        }
    }

    /// The multiply-shift reduction must equal the hardware modulo
    /// bit-for-bit. Every bound up to 2^16 is checked against a
    /// structured sample set: an exhaustive low region, values straddling
    /// every small multiple of the bound (where floor/ceiling errors
    /// would surface), and the extremes of every LFSR register width
    /// (2..=32) — the exact values `next_bits` can hand the reducer.
    /// Small bounds additionally get a fully exhaustive 16-bit sweep.
    #[test]
    fn multiply_shift_reduction_matches_modulo_exactly() {
        fn check(x: u32, bound: u32, m: u64) {
            assert_eq!(mul_shift_mod(x, bound, m), x % bound, "x={x} bound={bound}");
        }
        for bound in 2u32..=(1 << 16) {
            let m = mod_reciprocal(bound);
            for x in 0..48u32 {
                check(x, bound, m);
            }
            // Straddle k·bound for small k and for the largest k that
            // fits in 32 bits: the carry boundaries of the reduction.
            let top_k = u32::MAX / bound;
            for k in [1u32, 2, 3, top_k.saturating_sub(1), top_k] {
                let base = bound.wrapping_mul(k);
                for delta in 0..3u32 {
                    check(base.wrapping_sub(delta), bound, m);
                    check(base.wrapping_add(delta), bound, m);
                }
            }
            // Register-width extremes: an LFSR never emits 0 from a full
            // register, but `next_bits` widens past the register for
            // large bounds, so cover all-ones and the half point of
            // every width the source can be built with.
            for width in 2u32..=32 {
                let ones = (((1u64 << width) - 1) & 0xFFFF_FFFF) as u32;
                check(ones, bound, m);
                check(ones >> 1, bound, m);
                check(1u32 << (width - 1), bound, m);
            }
        }
        // Fully exhaustive slab: every 16-bit sample for every bound the
        // narrow registers (width <= 7) would pair with small totals.
        for bound in 2u32..=128 {
            let m = mod_reciprocal(bound);
            for x in 0..=u16::MAX {
                check(u32::from(x), bound, m);
            }
        }
    }

    #[test]
    fn reciprocal_cache_does_not_perturb_the_draw_stream() {
        // Alternate between two non-power-of-two bounds so the cache
        // misses every draw; results must match a cache-cold source.
        let mut source = LfsrSource::new(16, 0x1234);
        let mut shadow = Lfsr::new(16, 0x1234);
        for i in 0..500u32 {
            let bound = if i % 2 == 0 { 10 } else { 23 };
            let expected = shadow.next_bits(16) % bound;
            assert_eq!(source.draw(bound), expected);
        }
    }
}
