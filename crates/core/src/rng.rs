//! Random draw sources for the lottery managers.

use crate::lfsr::Lfsr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A source of bounded uniform random draws — the "pick a winning
/// ticket" step of the lottery.
pub trait RandomSource {
    /// Draws a value uniformly from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `bound` is zero.
    fn draw(&mut self, bound: u32) -> u32;

    /// A short name for reports ("lfsr", "stdrng", …).
    fn name(&self) -> &str;
}

impl<T: RandomSource + ?Sized> RandomSource for Box<T> {
    fn draw(&mut self, bound: u32) -> u32 {
        (**self).draw(bound)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Hardware-faithful draw source: a maximal-length [`Lfsr`].
///
/// For power-of-two bounds it collects `log2(bound)` output bits — the
/// static manager's fast path (§4.3). For other bounds it samples one
/// register-width word (`max(width, ceil(log2(bound)))` bits, so the
/// sample always covers the bound) and reduces it modulo the bound,
/// mirroring the dynamic manager's modulo hardware (§4.4), which
/// latches the whole register and feeds it to the modulo unit.
///
/// The modulo introduces the same slight bias the hardware would have:
/// with `b` collected bits the probability of any residue deviates from
/// `1/bound` by less than `bound / 2^b ≤ bound / 2^width`. Use a
/// power-of-two bound (via ticket scaling) when exact proportionality
/// matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LfsrSource {
    lfsr: Lfsr,
}

impl LfsrSource {
    /// Creates a source backed by a `width`-bit LFSR.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=32`.
    pub fn new(width: u32, seed: u32) -> Self {
        LfsrSource { lfsr: Lfsr::new(width, seed) }
    }

    /// Access to the underlying register (e.g. to inspect its state).
    pub fn lfsr(&self) -> &Lfsr {
        &self.lfsr
    }
}

impl RandomSource for LfsrSource {
    fn draw(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "draw bound must be nonzero");
        if bound == 1 {
            return 0;
        }
        if bound.is_power_of_two() {
            // Static-manager fast path: exactly log2(bound) output bits.
            self.lfsr.next_bits(31 - (bound - 1).leading_zeros() + 1)
        } else {
            // Dynamic-manager path: one register-width sample reduced
            // modulo the bound, exactly as the hardware latches the
            // register into the modulo unit. Collecting a fixed 32 bits
            // here (the old behaviour) would span multiple periods of a
            // narrow register and correlate successive draws; width
            // bits shift the whole register once per draw instead. When
            // the bound needs more bits than the register holds, widen
            // the sample just enough to cover it (bias < bound / 2^bits).
            let need = 32 - (bound - 1).leading_zeros();
            let bits = self.lfsr.width().max(need);
            self.lfsr.next_bits(bits) % bound
        }
    }

    fn name(&self) -> &str {
        "lfsr"
    }
}

/// Software draw source backed by [`rand::rngs::StdRng`]; produces
/// exactly uniform draws for any bound. Used in ablations to isolate the
/// effect of LFSR-based draws.
pub struct StdRngSource {
    rng: StdRng,
}

impl StdRngSource {
    /// Creates a source seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        StdRngSource { rng: StdRng::seed_from_u64(seed) }
    }
}

impl fmt::Debug for StdRngSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StdRngSource").finish_non_exhaustive()
    }
}

impl RandomSource for StdRngSource {
    fn draw(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "draw bound must be nonzero");
        self.rng.gen_range(0..bound)
    }

    fn name(&self) -> &str {
        "stdrng"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bounds(source: &mut dyn RandomSource) {
        for bound in [1u32, 2, 3, 7, 8, 10, 100, 1 << 16] {
            for _ in 0..200 {
                assert!(source.draw(bound) < bound, "draw out of range for bound {bound}");
            }
        }
    }

    #[test]
    fn lfsr_draws_stay_in_bounds() {
        check_bounds(&mut LfsrSource::new(20, 7));
    }

    #[test]
    fn stdrng_draws_stay_in_bounds() {
        check_bounds(&mut StdRngSource::new(3));
    }

    #[test]
    fn lfsr_power_of_two_draws_are_balanced() {
        let mut source = LfsrSource::new(16, 0xACE1);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[source.draw(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn non_power_of_two_draw_consumes_one_register_width() {
        // Regression: the modulo path collected a fixed 32 bits, so a
        // width-8 register was wound through its period 32/8 = 4 times
        // per draw and successive draws were correlated. One draw must
        // advance the register exactly `width` steps (the hardware
        // latches the whole register once into the modulo unit).
        let mut source = LfsrSource::new(8, 0x5A);
        let mut shadow = Lfsr::new(8, 0x5A);
        let expected = shadow.next_bits(8) % 10;
        assert_eq!(source.draw(10), expected);
        assert_eq!(source.lfsr().state(), shadow.state(), "register advanced past one width");
    }

    #[test]
    fn wide_bounds_on_narrow_registers_still_cover_the_range() {
        // A 4-bit register asked for draws in [0, 100): the sample is
        // widened to ceil(log2(100)) = 7 bits so every value is
        // reachable; values above 15 must actually occur.
        let mut source = LfsrSource::new(4, 0xE);
        let mut above_register_range = 0;
        for _ in 0..200 {
            let draw = source.draw(100);
            assert!(draw < 100);
            if draw > 15 {
                above_register_range += 1;
            }
        }
        assert!(above_register_range > 50, "only {above_register_range}/200 draws above 15");
    }

    #[test]
    fn narrow_register_modulo_draws_are_balanced() {
        // Width 7 steps its full 127-state period over 127 draws (7 is
        // coprime to 127), so the empirical distribution over one full
        // sweep is the exact distribution of state % bound.
        let mut source = LfsrSource::new(7, 0x2B);
        let mut counts = [0u32; 5];
        const DRAWS: u32 = 635; // 5 full periods
        for _ in 0..DRAWS {
            counts[source.draw(5) as usize] += 1;
        }
        let expected = DRAWS / 5;
        for (residue, &count) in counts.iter().enumerate() {
            assert!(
                count >= expected / 2 && count <= expected * 2,
                "residue {residue}: {count}/{DRAWS} draws"
            );
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bound_panics() {
        LfsrSource::new(8, 1).draw(0);
    }

    #[test]
    fn names_identify_sources() {
        assert_eq!(LfsrSource::new(8, 1).name(), "lfsr");
        assert_eq!(StdRngSource::new(1).name(), "stdrng");
    }
}
