//! Random draw sources for the lottery managers.

use crate::lfsr::Lfsr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A source of bounded uniform random draws — the "pick a winning
/// ticket" step of the lottery.
pub trait RandomSource {
    /// Draws a value uniformly from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `bound` is zero.
    fn draw(&mut self, bound: u32) -> u32;

    /// A short name for reports ("lfsr", "stdrng", …).
    fn name(&self) -> &str;
}

impl<T: RandomSource + ?Sized> RandomSource for Box<T> {
    fn draw(&mut self, bound: u32) -> u32 {
        (**self).draw(bound)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Hardware-faithful draw source: a maximal-length [`Lfsr`].
///
/// For power-of-two bounds it collects `log2(bound)` output bits — the
/// static manager's fast path (§4.3). For other bounds it collects
/// `ceil(log2(bound))` bits and reduces them with a modulo, mirroring the
/// dynamic manager's modulo hardware (§4.4). The modulo introduces the
/// same slight bias the hardware would have; use a power-of-two bound
/// (via ticket scaling) when exact proportionality matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LfsrSource {
    lfsr: Lfsr,
}

impl LfsrSource {
    /// Creates a source backed by a `width`-bit LFSR.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=32`.
    pub fn new(width: u32, seed: u32) -> Self {
        LfsrSource { lfsr: Lfsr::new(width, seed) }
    }

    /// Access to the underlying register (e.g. to inspect its state).
    pub fn lfsr(&self) -> &Lfsr {
        &self.lfsr
    }
}

impl RandomSource for LfsrSource {
    fn draw(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "draw bound must be nonzero");
        if bound == 1 {
            return 0;
        }
        if bound.is_power_of_two() {
            // Static-manager fast path: exactly log2(bound) output bits.
            self.lfsr.next_bits(31 - (bound - 1).leading_zeros() + 1)
        } else {
            // Dynamic-manager path: reduce a full-width register value
            // modulo the bound. Using all 32 bits keeps the modulo bias
            // below bound / 2^32.
            self.lfsr.next_bits(32) % bound
        }
    }

    fn name(&self) -> &str {
        "lfsr"
    }
}

/// Software draw source backed by [`rand::rngs::StdRng`]; produces
/// exactly uniform draws for any bound. Used in ablations to isolate the
/// effect of LFSR-based draws.
pub struct StdRngSource {
    rng: StdRng,
}

impl StdRngSource {
    /// Creates a source seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        StdRngSource { rng: StdRng::seed_from_u64(seed) }
    }
}

impl fmt::Debug for StdRngSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StdRngSource").finish_non_exhaustive()
    }
}

impl RandomSource for StdRngSource {
    fn draw(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "draw bound must be nonzero");
        self.rng.gen_range(0..bound)
    }

    fn name(&self) -> &str {
        "stdrng"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bounds(source: &mut dyn RandomSource) {
        for bound in [1u32, 2, 3, 7, 8, 10, 100, 1 << 16] {
            for _ in 0..200 {
                assert!(source.draw(bound) < bound, "draw out of range for bound {bound}");
            }
        }
    }

    #[test]
    fn lfsr_draws_stay_in_bounds() {
        check_bounds(&mut LfsrSource::new(20, 7));
    }

    #[test]
    fn stdrng_draws_stay_in_bounds() {
        check_bounds(&mut StdRngSource::new(3));
    }

    #[test]
    fn lfsr_power_of_two_draws_are_balanced() {
        let mut source = LfsrSource::new(16, 0xACE1);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[source.draw(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bound_panics() {
        LfsrSource::new(8, 1).draw(0);
    }

    #[test]
    fn names_identify_sources() {
        assert_eq!(LfsrSource::new(8, 1).name(), "lfsr");
        assert_eq!(StdRngSource::new(1).name(), "stdrng");
    }
}
