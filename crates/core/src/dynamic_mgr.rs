//! The dynamic lottery manager (paper §4.4, Figure 10).

use crate::error::LotteryError;
use crate::policy::TicketPolicy;
use crate::rng::{LfsrSource, RandomSource, RandomSourceKind};
use crate::tickets::{TicketAssignment, MAX_TICKETS_PER_MASTER};
use socsim::{Arbiter, Cycle, Grant, MasterId, RequestMap, MAX_MASTERS};
use std::fmt;

/// Memoized AND-stage + adder-tree output for one request bitmap.
///
/// Under contention the same contender set recurs for long stretches, so
/// the cumulative ticket ranges only change when the request bitmap or
/// the ticket holdings do. The cache key is `(bits, epoch)`: `epoch` is a
/// monotonic counter the arbiter bumps on *every* mutation of effective
/// holdings (external `set_tickets`, a policy update firing, a
/// compensation-boost write, enabling compensation), so a stale entry can
/// never be observed.
#[derive(Debug, Clone)]
struct DecisionCache {
    /// Request bitmap the entry was built for.
    bits: u32,
    /// Ticket epoch the entry was built at.
    epoch: u64,
    valid: bool,
    /// `cumsum[i]` = Σ_{k≤i, k pending} effective_tickets[k] — the same
    /// running partial sums [`crate::partial_sums`] computes.
    cumsum: [u64; MAX_MASTERS],
    /// Grand total of contending effective tickets.
    total: u64,
}

impl DecisionCache {
    fn new() -> Self {
        DecisionCache { bits: 0, epoch: 0, valid: false, cumsum: [0; MAX_MASTERS], total: 0 }
    }
}

/// Lottery-manager hardware with **dynamically assigned tickets**.
///
/// Unlike the static design, ticket holdings are inputs: the manager
/// cannot precompute ranges, so each lottery recomputes the partial sums
/// `Σ r_j·t_j` with a bitwise-AND stage and an adder tree, and the random
/// draw is reduced into `[0, T)` by modulo hardware (Figure 10). The rest
/// of the datapath (parallel comparators + priority selector) matches the
/// static manager.
///
/// Ticket updates arrive in two ways:
///
/// * externally, via [`DynamicLotteryArbiter::set_tickets`] — "the number
///   of tickets … is periodically communicated by the component to the
///   lottery manager";
/// * or from an attached [`TicketPolicy`] re-evaluated every
///   `update_period` cycles, modelling component-side logic such as
///   backlog-proportional shares.
///
/// ```
/// use lotterybus::{DynamicLotteryArbiter, TicketAssignment};
/// use socsim::{Arbiter, RequestMap, MasterId, Cycle};
///
/// # fn main() -> Result<(), lotterybus::LotteryError> {
/// let tickets = TicketAssignment::new(vec![1, 1])?;
/// let mut arb = DynamicLotteryArbiter::with_seed(tickets, 9)?;
/// // Shift all weight onto master 1 at run time.
/// arb.set_tickets(vec![0, 8])?;
/// let mut map = RequestMap::new(2);
/// map.set_pending(MasterId::new(0), 4);
/// map.set_pending(MasterId::new(1), 4);
/// assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(1));
/// # Ok(())
/// # }
/// ```
pub struct DynamicLotteryArbiter {
    tickets: Vec<u32>,
    policy: Option<Box<dyn TicketPolicy>>,
    update_period: u64,
    source: RandomSourceKind,
    /// Compensation-ticket quantum in words (`None` = disabled).
    compensation_quantum: Option<u32>,
    /// Per-master compensation multiplier (×256 fixed point), active
    /// until the master's next win.
    boost: Vec<u32>,
    /// Bumped whenever effective holdings change; see [`DecisionCache`].
    epoch: u64,
    cache: DecisionCache,
}

impl fmt::Debug for DynamicLotteryArbiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynamicLotteryArbiter")
            .field("tickets", &self.tickets)
            .field("policy", &self.policy.as_ref().map(|p| p.name()))
            .field("update_period", &self.update_period)
            .field("source", &self.source.name())
            .finish()
    }
}

impl DynamicLotteryArbiter {
    /// Creates a dynamic lottery manager with initial holdings `tickets`,
    /// no update policy, drawing from a 32-bit LFSR seeded with 1.
    pub fn new(tickets: TicketAssignment) -> Self {
        Self::with_seed_infallible(tickets, 1)
    }

    /// Creates a dynamic lottery manager drawing from a 32-bit LFSR with
    /// the given seed.
    ///
    /// # Errors
    ///
    /// Currently infallible for any valid [`TicketAssignment`]; the
    /// `Result` keeps the signature parallel to the static manager.
    pub fn with_seed(tickets: TicketAssignment, seed: u32) -> Result<Self, LotteryError> {
        Ok(Self::with_seed_infallible(tickets, seed))
    }

    fn with_seed_infallible(tickets: TicketAssignment, seed: u32) -> Self {
        let n = tickets.masters();
        DynamicLotteryArbiter {
            tickets: tickets.tickets().to_vec(),
            policy: None,
            update_period: 1,
            source: RandomSourceKind::Lfsr(LfsrSource::new(32, seed)),
            compensation_quantum: None,
            boost: vec![256; n],
            epoch: 0,
            cache: DecisionCache::new(),
        }
    }

    /// Enables Waldspurger-style *compensation tickets* (the lottery
    /// scheduling technique of the paper's reference \[16\]) with the
    /// given quantum in words — typically the bus's maximum burst size.
    ///
    /// A master that consumes only a fraction `f` of the quantum when it
    /// wins has its tickets inflated by `1/f` until its next win, so
    /// components with short messages still receive their full
    /// ticket-proportional share of *bandwidth*, not merely of wins.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn enable_compensation(&mut self, quantum: u32) {
        assert!(quantum > 0, "compensation quantum must be nonzero");
        self.compensation_quantum = Some(quantum);
        self.epoch += 1;
    }

    /// Replaces the draw source (for ablations). The boxed source is
    /// dispatched virtually; use [`DynamicLotteryArbiter::set_source_kind`]
    /// for a built-in source on the devirtualized path.
    pub fn set_source(&mut self, source: Box<dyn RandomSource>) {
        self.source = RandomSourceKind::Custom(source);
    }

    /// Replaces the draw source with an enum-dispatched built-in.
    pub fn set_source_kind(&mut self, source: RandomSourceKind) {
        self.source = source;
    }

    /// Attaches a ticket-update policy re-evaluated every `period`
    /// arbitration cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn set_policy(&mut self, policy: Box<dyn TicketPolicy>, period: u64) {
        assert!(period > 0, "update period must be nonzero");
        self.policy = Some(policy);
        self.update_period = period;
        self.epoch += 1;
    }

    /// The current ticket holdings.
    pub fn tickets(&self) -> &[u32] {
        &self.tickets
    }

    /// Overwrites the ticket holdings (an external ticket communication).
    ///
    /// # Errors
    ///
    /// Returns an error if the master count changes, the total is zero,
    /// or a holding exceeds [`MAX_TICKETS_PER_MASTER`].
    pub fn set_tickets(&mut self, tickets: Vec<u32>) -> Result<(), LotteryError> {
        if tickets.len() != self.tickets.len() {
            return Err(LotteryError::MasterCountChanged {
                got: tickets.len(),
                expected: self.tickets.len(),
            });
        }
        let validated = TicketAssignment::new(tickets)?;
        self.tickets = validated.tickets().to_vec();
        self.epoch += 1;
        Ok(())
    }

    /// `true` when no policy and no compensation are attached: the
    /// effective holdings can never change behind the caller's back, so
    /// the decision is a pure function of `(tickets, requests, source)`.
    /// Only frozen managers are eligible for SoA fleet lowering.
    pub fn is_frozen(&self) -> bool {
        self.policy.is_none() && self.compensation_quantum.is_none()
    }

    /// The draw source, register state included.
    pub fn random_source(&self) -> &RandomSourceKind {
        &self.source
    }

    /// The arbitration decision of a *frozen* manager taken against an
    /// external draw source. Recomputes the partial sums directly (the
    /// scalar path's memo cache is a pure optimization — it never alters
    /// the draw cadence), so the grant stream is bit-identical to
    /// [`Arbiter::arbitrate`] fed the same source.
    ///
    /// Debug-asserts [`DynamicLotteryArbiter::is_frozen`].
    pub fn decide_frozen(
        &self,
        requests: &RequestMap,
        source: &mut RandomSourceKind,
    ) -> Option<Grant> {
        debug_assert!(self.is_frozen(), "decide_frozen on a non-frozen manager");
        if requests.is_empty() {
            return None;
        }
        let n = self.tickets.len().min(MAX_MASTERS);
        let mut cumsum = [0u64; MAX_MASTERS];
        let mut acc = 0u64;
        for (i, slot) in cumsum.iter_mut().enumerate().take(n) {
            if requests.is_pending(MasterId::new(i)) {
                acc += u64::from(self.tickets[i]);
            }
            *slot = acc;
        }
        if acc == 0 {
            return requests.iter_pending().next().map(Grant::whole_burst);
        }
        let draw = u64::from(source.draw(acc as u32));
        let winner = (0..n)
            .map(MasterId::new)
            .find(|&id| requests.is_pending(id) && draw < cumsum[id.index()])
            .expect("draw below total has a winner");
        Some(Grant::whole_burst(winner))
    }

    /// Rebuilds the memoized partial sums for the current `(bits, epoch)`
    /// key. Effective holdings are materialized into a stack scratch
    /// array — the steady-state arbitration path performs no heap
    /// allocation.
    #[cold]
    fn rebuild_cache(&mut self, requests: &RequestMap) {
        let mut effective = [0u32; MAX_MASTERS];
        let n = self.tickets.len().min(MAX_MASTERS);
        if self.compensation_quantum.is_some() {
            for (i, slot) in effective.iter_mut().enumerate().take(n) {
                // Boost is always >= 1.0 (×256), so nonzero holdings stay
                // nonzero and the product stays well inside u32.
                *slot = ((u64::from(self.tickets[i]) * u64::from(self.boost[i])) / 256) as u32;
            }
        } else {
            effective[..n].copy_from_slice(&self.tickets[..n]);
        }
        let mut acc = 0u64;
        for (i, &t) in effective.iter().enumerate().take(n) {
            if requests.is_pending(MasterId::new(i)) {
                acc += u64::from(t);
            }
            self.cache.cumsum[i] = acc;
        }
        self.cache.total = acc;
        self.cache.bits = requests.bits();
        self.cache.epoch = self.epoch;
        self.cache.valid = true;
    }
}

impl Arbiter for DynamicLotteryArbiter {
    fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
        if let Some(policy) = self.policy.as_mut() {
            if now.index().is_multiple_of(self.update_period) {
                policy.update(requests, now, &mut self.tickets);
                for t in &mut self.tickets {
                    *t = (*t).min(MAX_TICKETS_PER_MASTER);
                }
                // The policy may have rewritten any holding.
                self.epoch += 1;
            }
        }
        if requests.is_empty() {
            return None;
        }
        // The AND stage + adder tree only runs when the contender set or
        // the (effective) holdings changed since the memoized pass.
        if !(self.cache.valid
            && self.cache.bits == requests.bits()
            && self.cache.epoch == self.epoch)
        {
            self.rebuild_cache(requests);
        }
        let total = self.cache.total;
        if total == 0 {
            // Zero-ticket contenders only: default grant, as in the
            // static manager, to avoid livelock.
            return requests.iter_pending().next().map(Grant::whole_burst);
        }
        let draw = u64::from(self.source.draw(total as u32));
        // Parallel comparators + priority selector: the first pending
        // master whose partial sum exceeds the draw wins — identical to
        // [`crate::draw_winner`] over the effective holdings.
        let n = self.tickets.len().min(MAX_MASTERS);
        let winner = (0..n)
            .map(MasterId::new)
            .find(|&id| requests.is_pending(id) && draw < self.cache.cumsum[id.index()])
            .expect("draw below total has a winner");
        if let Some(quantum) = self.compensation_quantum {
            // The winner will transfer min(quantum, pending) words; if
            // that underuses the quantum, inflate its tickets by the
            // inverse fraction until it wins again.
            let served = requests.pending_words(winner).min(quantum).max(1);
            let boost = ((u64::from(quantum) * 256) / u64::from(served)).min(256 * 64) as u32;
            if self.boost[winner.index()] != boost {
                self.boost[winner.index()] = boost;
                self.epoch += 1;
            }
        }
        Some(Grant::whole_burst(winner))
    }

    fn name(&self) -> &str {
        "lottery-dynamic"
    }

    /// Without a policy the manager is stateless on an empty map (the
    /// LFSR only draws once contenders exist) — never pins the horizon.
    /// With a policy attached, ticket updates fire on every multiple of
    /// the update period *even when nothing is pending*, so the horizon
    /// is the next such multiple: the kernel fast-forwards between
    /// updates and replays each update at its exact cycle.
    fn next_event(&self, now: Cycle) -> Cycle {
        if self.policy.is_none() {
            return Cycle::NEVER;
        }
        let idx = now.index();
        let rem = idx % self.update_period;
        if rem == 0 {
            now
        } else {
            Cycle::new(idx + self.update_period - rem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::QueueProportionalPolicy;
    use socsim::MasterId;

    fn map_with(masters: usize, pending: &[(usize, u32)]) -> RequestMap {
        let mut map = RequestMap::new(masters);
        for &(m, w) in pending {
            map.set_pending(MasterId::new(m), w);
        }
        map
    }

    fn arbiter(tickets: Vec<u32>) -> DynamicLotteryArbiter {
        DynamicLotteryArbiter::with_seed(TicketAssignment::new(tickets).expect("valid"), 0xBEEF)
            .expect("valid")
    }

    #[test]
    fn win_frequencies_track_current_tickets() {
        let mut arb = arbiter(vec![3, 1]);
        let map = map_with(2, &[(0, 8), (1, 8)]);
        let mut wins = [0u32; 2];
        for c in 0..20_000u64 {
            wins[arb.arbitrate(&map, Cycle::new(c)).unwrap().master.index()] += 1;
        }
        let share0 = f64::from(wins[0]) / 20_000.0;
        assert!((share0 - 0.75).abs() < 0.03, "share {share0}");
    }

    #[test]
    fn set_tickets_changes_shares_mid_run() {
        let mut arb = arbiter(vec![1, 1]);
        arb.set_tickets(vec![1, 9]).expect("valid update");
        let map = map_with(2, &[(0, 8), (1, 8)]);
        let mut wins = [0u32; 2];
        for c in 0..10_000u64 {
            wins[arb.arbitrate(&map, Cycle::new(c)).unwrap().master.index()] += 1;
        }
        let share1 = f64::from(wins[1]) / 10_000.0;
        assert!((share1 - 0.9).abs() < 0.03, "share {share1}");
    }

    #[test]
    fn horizon_lands_on_policy_update_cycles() {
        let mut arb = arbiter(vec![1, 1]);
        assert_eq!(arb.next_event(Cycle::new(7)), Cycle::NEVER, "no policy, no schedule");
        arb.set_policy(Box::new(QueueProportionalPolicy::new(vec![1, 1])), 10);
        assert_eq!(arb.next_event(Cycle::new(7)), Cycle::new(10));
        assert_eq!(arb.next_event(Cycle::new(10)), Cycle::new(10), "on a multiple: unskippable");
        assert_eq!(arb.next_event(Cycle::new(11)), Cycle::new(20));
    }

    #[test]
    fn set_tickets_validates() {
        let mut arb = arbiter(vec![1, 1]);
        assert!(matches!(
            arb.set_tickets(vec![1, 2, 3]).unwrap_err(),
            LotteryError::MasterCountChanged { .. }
        ));
        assert_eq!(arb.set_tickets(vec![0, 0]).unwrap_err(), LotteryError::ZeroTotalTickets);
        assert_eq!(arb.tickets(), &[1, 1], "failed updates leave holdings unchanged");
    }

    #[test]
    fn queue_proportional_policy_biases_toward_backlog() {
        let mut arb = arbiter(vec![1, 1]);
        arb.set_policy(Box::new(QueueProportionalPolicy::new(vec![1, 1])), 1);
        // Master 1 has a 15-word backlog, master 0 a single word.
        let map = map_with(2, &[(0, 1), (1, 15)]);
        let mut wins = [0u32; 2];
        for c in 0..10_000u64 {
            wins[arb.arbitrate(&map, Cycle::new(c)).unwrap().master.index()] += 1;
        }
        // Expected shares 2/18 vs 16/18.
        let share1 = f64::from(wins[1]) / 10_000.0;
        assert!(share1 > 0.8, "share {share1}");
    }

    #[test]
    fn empty_requests_grant_nothing() {
        let mut arb = arbiter(vec![1, 1]);
        assert!(arb.arbitrate(&RequestMap::new(2), Cycle::ZERO).is_none());
    }

    #[test]
    fn compensation_restores_bandwidth_for_short_messages() {
        // Master 0 always has 4-word messages pending; master 1 always
        // 16-word messages; equal tickets and a 16-word quantum. Without
        // compensation master 1 moves ~4x the words; with compensation
        // master 0's win rate quadruples, equalizing word shares.
        let measure = |compensate: bool| -> (u64, u64) {
            let mut arb = arbiter(vec![1, 1]);
            if compensate {
                arb.enable_compensation(16);
            }
            let mut words = [0u64; 2];
            let map = map_with(2, &[(0, 4), (1, 16)]);
            for c in 0..40_000u64 {
                let g = arb.arbitrate(&map, Cycle::new(c)).expect("grant");
                // The bus would serve min(quantum, pending) words.
                words[g.master.index()] += u64::from(map.pending_words(g.master).min(16));
            }
            (words[0], words[1])
        };
        let (plain_short, plain_long) = measure(false);
        let ratio_plain = plain_long as f64 / plain_short as f64;
        assert!((ratio_plain - 4.0).abs() < 0.5, "plain ratio {ratio_plain:.2}");

        let (comp_short, comp_long) = measure(true);
        let ratio_comp = comp_long as f64 / comp_short as f64;
        assert!(ratio_comp < 1.3, "compensated ratio {ratio_comp:.2}");
        assert!(comp_short > plain_short, "short-message master gained bandwidth");
    }

    #[test]
    fn compensation_is_neutral_for_homogeneous_sizes() {
        let mut arb = arbiter(vec![1, 3]);
        arb.enable_compensation(16);
        let map = map_with(2, &[(0, 16), (1, 16)]);
        let mut wins = [0u32; 2];
        for c in 0..20_000u64 {
            wins[arb.arbitrate(&map, Cycle::new(c)).unwrap().master.index()] += 1;
        }
        let share1 = f64::from(wins[1]) / 20_000.0;
        assert!((share1 - 0.75).abs() < 0.03, "share {share1}");
    }

    #[test]
    fn zero_ticket_contenders_fall_back() {
        let mut arb = arbiter(vec![0, 1]);
        let map = map_with(2, &[(0, 4)]);
        assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(0));
    }
}
