//! Ticket-update policies for the dynamic lottery manager.
//!
//! In the dynamic architecture (§4.4) the number of tickets a component
//! holds "varies dynamically, and is periodically communicated by the
//! component to the lottery manager". A [`TicketPolicy`] models the
//! component-side logic that decides those updates.

use crate::tickets::MAX_TICKETS_PER_MASTER;
use socsim::{Cycle, MasterId, RequestMap};

/// Component-side logic that periodically recomputes ticket holdings for
/// the dynamic lottery manager.
pub trait TicketPolicy {
    /// Rewrites `tickets` in place based on the current request state.
    /// Called by the manager every update period.
    fn update(&mut self, requests: &RequestMap, now: Cycle, tickets: &mut [u32]);

    /// A short policy name for reports.
    fn name(&self) -> &str;
}

impl<T: TicketPolicy + ?Sized> TicketPolicy for Box<T> {
    fn update(&mut self, requests: &RequestMap, now: Cycle, tickets: &mut [u32]) {
        (**self).update(requests, now, tickets)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Keeps ticket holdings fixed — the dynamic datapath with static
/// behaviour, useful for isolating the hardware difference in ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstantPolicy;

impl TicketPolicy for ConstantPolicy {
    fn update(&mut self, _requests: &RequestMap, _now: Cycle, _tickets: &mut [u32]) {}

    fn name(&self) -> &str {
        "constant"
    }
}

/// Scales each master's base ticket holding by its current backlog, so
/// congested components temporarily receive more bandwidth:
/// `t_i = base_i · (1 + pending_words_i)`, clamped to the supported
/// maximum.
///
/// ```
/// use lotterybus::{QueueProportionalPolicy, TicketPolicy};
/// use socsim::{RequestMap, MasterId, Cycle};
/// let mut policy = QueueProportionalPolicy::new(vec![1, 2]);
/// let mut map = RequestMap::new(2);
/// map.set_pending(MasterId::new(0), 9);
/// let mut tickets = vec![1, 2];
/// policy.update(&map, Cycle::ZERO, &mut tickets);
/// assert_eq!(tickets, vec![10, 2]); // 1·(1+9), 2·(1+0)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueProportionalPolicy {
    base: Vec<u32>,
}

impl QueueProportionalPolicy {
    /// Creates a policy with per-master base holdings `base`.
    pub fn new(base: Vec<u32>) -> Self {
        QueueProportionalPolicy { base }
    }

    /// The base holdings the backlog multiplies.
    pub fn base(&self) -> &[u32] {
        &self.base
    }
}

impl TicketPolicy for QueueProportionalPolicy {
    fn update(&mut self, requests: &RequestMap, _now: Cycle, tickets: &mut [u32]) {
        for (i, ticket) in tickets.iter_mut().enumerate() {
            let base = self.base.get(i).copied().unwrap_or(1);
            let backlog = u64::from(requests.pending_words(MasterId::new(i)));
            let scaled = u64::from(base) * (1 + backlog);
            *ticket = scaled.min(u64::from(MAX_TICKETS_PER_MASTER)) as u32;
        }
    }

    fn name(&self) -> &str {
        "queue-proportional"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_policy_changes_nothing() {
        let mut policy = ConstantPolicy;
        let mut tickets = vec![3, 4];
        policy.update(&RequestMap::new(2), Cycle::ZERO, &mut tickets);
        assert_eq!(tickets, vec![3, 4]);
        assert_eq!(policy.name(), "constant");
    }

    #[test]
    fn queue_proportional_scales_with_backlog() {
        let mut policy = QueueProportionalPolicy::new(vec![2, 2]);
        let mut map = RequestMap::new(2);
        map.set_pending(MasterId::new(1), 4);
        let mut tickets = vec![0, 0];
        policy.update(&map, Cycle::ZERO, &mut tickets);
        assert_eq!(tickets, vec![2, 10]);
    }

    #[test]
    fn queue_proportional_clamps_at_max() {
        let mut policy = QueueProportionalPolicy::new(vec![MAX_TICKETS_PER_MASTER]);
        let mut map = RequestMap::new(1);
        map.set_pending(MasterId::new(0), 1000);
        let mut tickets = vec![0];
        policy.update(&map, Cycle::ZERO, &mut tickets);
        assert_eq!(tickets, vec![MAX_TICKETS_PER_MASTER]);
    }
}
