//! Maximal-length Galois linear-feedback shift registers.
//!
//! The paper's static lottery manager generates its random draws with an
//! LFSR (§4.3: "If T is a power of two, random numbers can be efficiently
//! generated using a linear feedback shift register"). This module
//! provides software-exact models of maximal-length Galois LFSRs for
//! widths 2–32 bits.

use serde::{Deserialize, Serialize};

/// Feedback masks for maximal-length Galois LFSRs of width 2..=32.
///
/// Index `w - 2` holds the mask for width `w`. Each mask corresponds to a
/// primitive polynomial (taps from the standard XAPP052 table), so the
/// register cycles through all `2^w − 1` nonzero states.
const MAX_LEN_MASKS: [u32; 31] = [
    mask(&[2, 1]),           // w = 2
    mask(&[3, 2]),           // w = 3
    mask(&[4, 3]),           // w = 4
    mask(&[5, 3]),           // w = 5
    mask(&[6, 5]),           // w = 6
    mask(&[7, 6]),           // w = 7
    mask(&[8, 6, 5, 4]),     // w = 8
    mask(&[9, 5]),           // w = 9
    mask(&[10, 7]),          // w = 10
    mask(&[11, 9]),          // w = 11
    mask(&[12, 6, 4, 1]),    // w = 12
    mask(&[13, 4, 3, 1]),    // w = 13
    mask(&[14, 5, 3, 1]),    // w = 14
    mask(&[15, 14]),         // w = 15
    mask(&[16, 15, 13, 4]),  // w = 16
    mask(&[17, 14]),         // w = 17
    mask(&[18, 11]),         // w = 18
    mask(&[19, 6, 2, 1]),    // w = 19
    mask(&[20, 17]),         // w = 20
    mask(&[21, 19]),         // w = 21
    mask(&[22, 21]),         // w = 22
    mask(&[23, 18]),         // w = 23
    mask(&[24, 23, 22, 17]), // w = 24
    mask(&[25, 22]),         // w = 25
    mask(&[26, 6, 2, 1]),    // w = 26
    mask(&[27, 5, 2, 1]),    // w = 27
    mask(&[28, 25]),         // w = 28
    mask(&[29, 27]),         // w = 29
    mask(&[30, 6, 4, 1]),    // w = 30
    mask(&[31, 28]),         // w = 31
    mask(&[32, 22, 2, 1]),   // w = 32
];

const fn mask(taps: &[u32]) -> u32 {
    let mut m = 0u32;
    let mut i = 0;
    while i < taps.len() {
        m |= 1 << (taps[i] - 1);
        i += 1;
    }
    m
}

/// Precomputed effect of eight Galois steps as a function of the low
/// register byte.
///
/// The Galois step `s ← (s >> 1) ^ (s & 1)·mask` is linear over GF(2),
/// so eight steps factor as `L⁸(s) = (s >> 8) ^ L⁸(s & 0xff)`: the high
/// bits only shift down (their low eight bits are zero, so no feedback
/// fires on their account), and the low byte's contribution — both the
/// eight output bits and the feedback XORs it injects — is a pure
/// function of that byte. One table per width (the mask differs), built
/// once and cached in a `OnceLock` (inline storage, no heap).
struct StepTable {
    /// `state[b]` = the register after eight steps from state `b`.
    state: [u32; 256],
    /// `out[b]` = the eight output bits, MSB-first (first bit out in
    /// bit 7), matching `next_bits`'s accumulation order.
    out: [u8; 256],
}

impl StepTable {
    fn build(mask: u32) -> Self {
        let mut table = StepTable { state: [0; 256], out: [0; 256] };
        for b in 0..256u32 {
            let mut s = b;
            let mut o = 0u8;
            for _ in 0..8 {
                let bit = s & 1;
                s >>= 1;
                if bit == 1 {
                    s ^= mask;
                }
                o = (o << 1) | bit as u8;
            }
            table.state[b as usize] = s;
            table.out[b as usize] = o;
        }
        table
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_TABLE: std::sync::OnceLock<StepTable> = std::sync::OnceLock::new();
static STEP_TABLES: [std::sync::OnceLock<StepTable>; 31] = [EMPTY_TABLE; 31];

fn step_table(width: u32) -> &'static StepTable {
    let slot = (width - 2) as usize;
    STEP_TABLES[slot].get_or_init(|| StepTable::build(MAX_LEN_MASKS[slot]))
}

/// A Galois LFSR of configurable width with maximal-length feedback.
///
/// ```
/// use lotterybus::Lfsr;
/// let mut lfsr = Lfsr::new(4, 1);
/// // A 4-bit maximal LFSR revisits its seed after exactly 15 steps.
/// let seed = lfsr.state();
/// for _ in 0..15 { lfsr.step(); }
/// assert_eq!(lfsr.state(), seed);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lfsr {
    state: u32,
    mask: u32,
    width: u32,
}

impl Lfsr {
    /// Creates a `width`-bit maximal-length LFSR seeded with `seed`.
    ///
    /// The seed is truncated to `width` bits; a zero seed (the one dead
    /// state of an LFSR) is mapped to all-ones, mirroring hardware
    /// practice of resetting the register to a nonzero value.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=32`.
    pub fn new(width: u32, seed: u32) -> Self {
        assert!((2..=32).contains(&width), "LFSR width must be in 2..=32");
        let wrap = if width == 32 { u32::MAX } else { (1 << width) - 1 };
        let state = seed & wrap;
        Lfsr {
            state: if state == 0 { wrap } else { state },
            mask: MAX_LEN_MASKS[(width - 2) as usize],
            width,
        }
    }

    /// The register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Advances the register one step and returns the output bit that
    /// was shifted out.
    pub fn step(&mut self) -> u32 {
        let out = self.state & 1;
        self.state >>= 1;
        if out == 1 {
            self.state ^= self.mask;
        }
        out
    }

    /// Collects `bits` output bits into an integer in `[0, 2^bits)`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 32.
    pub fn next_bits(&mut self, bits: u32) -> u32 {
        assert!((1..=32).contains(&bits), "can collect 1..=32 bits");
        let mut value: u32 = 0;
        let mut remaining = bits;
        if remaining >= 8 {
            // Table-stepped fast path: eight steps per lookup, exact by
            // the linearity argument on [`StepTable`]. Output order is
            // identical to the per-bit loop (MSB-first).
            let table = step_table(self.width);
            while remaining >= 8 {
                let b = (self.state & 0xff) as usize;
                value = (value << 8) | u32::from(table.out[b]);
                self.state = (self.state >> 8) ^ table.state[b];
                remaining -= 8;
            }
        }
        for _ in 0..remaining {
            value = (value << 1) | self.step();
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_widths_are_maximal_up_to_16() {
        // Exhaustively verify the period for every width we can afford.
        for width in 2..=16u32 {
            let mut lfsr = Lfsr::new(width, 1);
            let start = lfsr.state();
            let period = (1u64 << width) - 1;
            let mut seen = HashSet::new();
            for step in 0..period {
                assert!(seen.insert(lfsr.state()), "width {width} repeats early at {step}");
                lfsr.step();
            }
            assert_eq!(lfsr.state(), start, "width {width} period is not 2^w-1");
        }
    }

    #[test]
    fn wide_registers_do_not_repeat_quickly() {
        for width in [17u32, 20, 24, 32] {
            let mut lfsr = Lfsr::new(width, 0xDEAD_BEEF);
            let start = lfsr.state();
            for _ in 0..100_000 {
                lfsr.step();
                assert_ne!(lfsr.state(), 0, "LFSR entered dead state");
            }
            assert_ne!(lfsr.state(), start);
        }
    }

    #[test]
    fn zero_seed_is_mapped_to_nonzero() {
        let lfsr = Lfsr::new(8, 0);
        assert_ne!(lfsr.state(), 0);
        let lfsr = Lfsr::new(8, 256); // truncates to 0
        assert_ne!(lfsr.state(), 0);
    }

    #[test]
    fn next_bits_covers_the_range_uniformly() {
        let mut lfsr = Lfsr::new(16, 0xACE1);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[lfsr.next_bits(3) as usize] += 1;
        }
        for (value, &count) in counts.iter().enumerate() {
            assert!((800..1200).contains(&count), "value {value} drawn {count} times out of 8000");
        }
    }

    #[test]
    #[should_panic(expected = "width must be in")]
    fn width_one_rejected() {
        let _ = Lfsr::new(1, 1);
    }

    #[test]
    fn table_stepped_next_bits_matches_the_per_bit_loop() {
        // The >= 8 bit path goes through the precomputed step tables;
        // replay every draw against a per-bit reference on a clone.
        for width in 2..=32u32 {
            let mut fast = Lfsr::new(width, 0xACE1_F00D ^ width);
            let mut slow = fast.clone();
            for round in 0..200u32 {
                let bits = 1 + (round * 7 + width) % 32;
                let mut reference = 0u32;
                for _ in 0..bits {
                    reference = (reference << 1) | slow.step();
                }
                assert_eq!(
                    fast.next_bits(bits),
                    reference,
                    "width {width} bits {bits} diverge"
                );
                assert_eq!(fast.state(), slow.state(), "width {width} register diverges");
            }
        }
    }
}
