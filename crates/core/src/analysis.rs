//! Closed-form analysis of the lottery protocol (paper §4.2).
//!
//! The paper argues LOTTERYBUS is starvation-free: "the probability `p`
//! that a component with `t` tickets is able to access the bus within `n`
//! lottery drawings is given by `1 − (1 − t/T)^n`", which converges
//! rapidly to one. These helpers expose that bound and its inverses; the
//! test suite cross-checks them against Monte Carlo simulation of the
//! actual managers.

/// Probability that a contender holding `tickets` of `total` tickets
/// wins at least once within `drawings` lotteries: `1 − (1 − t/T)^n`.
///
/// # Panics
///
/// Panics if `total` is zero or `tickets > total`.
///
/// ```
/// use lotterybus::win_within_probability;
/// // A 10%-ticket holder is served within 44 lotteries with p > 0.99.
/// assert!(win_within_probability(1, 10, 44) > 0.99);
/// ```
pub fn win_within_probability(tickets: u32, total: u32, drawings: u32) -> f64 {
    assert!(total > 0, "total tickets must be nonzero");
    assert!(tickets <= total, "a contender cannot hold more than all tickets");
    let loss = 1.0 - f64::from(tickets) / f64::from(total);
    1.0 - loss.powi(drawings as i32)
}

/// Expected number of lotteries until a contender holding `tickets` of
/// `total` wins (geometric distribution mean `T/t`).
///
/// # Panics
///
/// Panics if `tickets` is zero or `tickets > total`.
pub fn expected_lotteries_to_win(tickets: u32, total: u32) -> f64 {
    assert!(tickets > 0, "a zero-ticket contender never wins");
    assert!(tickets <= total, "a contender cannot hold more than all tickets");
    f64::from(total) / f64::from(tickets)
}

/// Smallest number of lotteries after which a contender holding
/// `tickets` of `total` has won with probability at least `confidence`.
///
/// # Panics
///
/// Panics if `tickets` is zero, `tickets > total`, or `confidence` is
/// not in `(0, 1)`.
///
/// ```
/// use lotterybus::analysis::lotteries_for_confidence;
/// let n = lotteries_for_confidence(1, 10, 0.999);
/// assert_eq!(n, 66); // (1 - 0.1)^66 < 0.001
/// ```
pub fn lotteries_for_confidence(tickets: u32, total: u32, confidence: f64) -> u32 {
    assert!(tickets > 0, "a zero-ticket contender never wins");
    assert!(tickets <= total, "a contender cannot hold more than all tickets");
    assert!(confidence > 0.0 && confidence < 1.0, "confidence must be strictly between 0 and 1");
    if tickets == total {
        return 1;
    }
    let loss = 1.0 - f64::from(tickets) / f64::from(total);
    ((1.0 - confidence).ln() / loss.ln()).ceil() as u32
}

/// Hoeffding bound on bandwidth-share convergence: the probability that
/// a contender's empirical win fraction over `lotteries` drawings
/// deviates from its ticket fraction `t/T` by more than `epsilon` is at
/// most `2·exp(−2·n·ε²)`.
///
/// # Panics
///
/// Panics if `total` is zero, `tickets > total`, or `epsilon` is not
/// positive.
pub fn share_deviation_probability(tickets: u32, total: u32, lotteries: u32, epsilon: f64) -> f64 {
    assert!(total > 0, "total tickets must be nonzero");
    assert!(tickets <= total, "a contender cannot hold more than all tickets");
    assert!(epsilon > 0.0, "epsilon must be positive");
    (2.0 * (-2.0 * f64::from(lotteries) * epsilon * epsilon).exp()).min(1.0)
}

/// Smallest number of lotteries after which a contender's empirical
/// share is within `epsilon` of its ticket fraction with probability at
/// least `confidence` (by the Hoeffding bound — conservative).
///
/// # Panics
///
/// Panics if `epsilon` is not positive or `confidence` is not in
/// `(0, 1)`.
///
/// ```
/// use lotterybus::analysis::lotteries_for_share_accuracy;
/// // Within 2 points of the entitled share, 99% confident:
/// let n = lotteries_for_share_accuracy(0.02, 0.99);
/// assert!(n > 5_000 && n < 10_000);
/// ```
pub fn lotteries_for_share_accuracy(epsilon: f64, confidence: f64) -> u32 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!((0.0..1.0).contains(&confidence) && confidence > 0.0, "confidence must be in (0, 1)");
    let n = ((2.0 / (1.0 - confidence)).ln() / (2.0 * epsilon * epsilon)).ceil();
    n as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_is_monotone_in_drawings() {
        let mut last = 0.0;
        for n in 1..50 {
            let p = win_within_probability(2, 10, n);
            assert!(p > last, "p({n}) = {p} not increasing");
            last = p;
        }
        assert!(last > 0.99995);
    }

    #[test]
    fn full_ticket_holder_wins_immediately() {
        assert!((win_within_probability(7, 7, 1) - 1.0).abs() < 1e-12);
        assert_eq!(lotteries_for_confidence(7, 7, 0.999), 1);
        assert!((expected_lotteries_to_win(7, 7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_wait_is_inverse_share() {
        assert!((expected_lotteries_to_win(1, 10) - 10.0).abs() < 1e-12);
        assert!((expected_lotteries_to_win(4, 10) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn confidence_bound_is_tight() {
        let n = lotteries_for_confidence(1, 10, 0.99);
        assert!(win_within_probability(1, 10, n) >= 0.99);
        assert!(win_within_probability(1, 10, n - 1) < 0.99);
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        use crate::rng::{LfsrSource, RandomSource};
        // Empirical P(win within 5 draws) for a 3-of-10 ticket holder.
        let mut source = LfsrSource::new(24, 0x5EED);
        let trials = 20_000;
        let mut hits = 0u32;
        for _ in 0..trials {
            if (0..5).any(|_| source.draw(10) < 3) {
                hits += 1;
            }
        }
        let empirical = f64::from(hits) / f64::from(trials);
        let predicted = win_within_probability(3, 10, 5);
        assert!(
            (empirical - predicted).abs() < 0.01,
            "empirical {empirical:.4} vs predicted {predicted:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "never wins")]
    fn zero_ticket_expected_wait_panics() {
        let _ = expected_lotteries_to_win(0, 10);
    }

    #[test]
    fn share_bound_decays_with_lotteries() {
        let p_few = share_deviation_probability(3, 10, 100, 0.05);
        let p_many = share_deviation_probability(3, 10, 10_000, 0.05);
        assert!(p_many < p_few);
        assert!(p_many < 1e-20);
        assert_eq!(share_deviation_probability(3, 10, 1, 0.001), 1.0, "bound is capped at 1");
    }

    #[test]
    fn share_accuracy_bound_is_consistent() {
        let n = lotteries_for_share_accuracy(0.05, 0.95);
        assert!(share_deviation_probability(1, 10, n, 0.05) <= 0.05 + 1e-12);
        // Tighter epsilon needs quadratically more lotteries.
        let n_tight = lotteries_for_share_accuracy(0.025, 0.95);
        assert!(n_tight >= 3 * n, "{n_tight} vs {n}");
    }

    #[test]
    fn monte_carlo_share_respects_hoeffding() {
        use crate::rng::{LfsrSource, RandomSource};
        // 30% ticket holder, 10_000 lotteries: empirical share must fall
        // within the 99.9%-confidence epsilon.
        let epsilon = ((2.0f64 / 0.001).ln() / (2.0 * 10_000.0)).sqrt();
        let mut source = LfsrSource::new(28, 0xF00D);
        let wins = (0..10_000).filter(|_| source.draw(10) < 3).count();
        let share = wins as f64 / 10_000.0;
        assert!(
            (share - 0.3).abs() <= epsilon,
            "share {share:.4} deviates more than epsilon {epsilon:.4}"
        );
    }
}
