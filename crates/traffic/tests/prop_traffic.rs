//! Property-based tests for the traffic generators.

use proptest::prelude::*;
use socsim::{Cycle, TrafficSource};
use traffic_gen::{GeneratorSpec, ReplaySource, SizeDist, StochasticSource, TrafficClass};

fn drain(source: &mut dyn TrafficSource, cycles: u64) -> Vec<(u64, u64, u32)> {
    (0..cycles)
        .filter_map(|c| source.poll(Cycle::new(c)).map(|t| (c, t.issued_at().index(), t.words())))
        .collect()
}

fn size_strategy() -> impl Strategy<Value = SizeDist> {
    prop_oneof![
        (1u32..64).prop_map(SizeDist::fixed),
        (1u32..32, 0u32..32).prop_map(|(lo, extra)| SizeDist::uniform(lo, lo + extra)),
        (1u32..8, 9u32..64, 0.05f64..0.95).prop_map(|(s, l, p)| SizeDist::bimodal(s, l, p)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn empirical_load_tracks_the_spec_estimate(
        size in size_strategy(),
        rate in 0.001f64..0.05,
        seed in 0u64..1_000_000,
    ) {
        let spec = GeneratorSpec::poisson(rate, size);
        let mut source = StochasticSource::new(spec, seed);
        let cycles = 300_000u64;
        let words: u64 = drain(&mut source, cycles).iter().map(|&(_, _, w)| u64::from(w)).sum();
        let measured = words as f64 / cycles as f64;
        let predicted = spec.offered_load();
        prop_assert!(
            (measured - predicted).abs() < predicted * 0.2 + 0.002,
            "measured {:.4} vs predicted {:.4}", measured, predicted,
        );
    }

    #[test]
    fn stamps_never_postdate_emission(
        size in size_strategy(),
        burst in 1u32..6,
        gap in 0u64..5,
        off in 1u64..200,
        phase in 0u64..50,
        seed in 0u64..1_000_000,
    ) {
        let spec = GeneratorSpec::bursty(1, burst, gap, off, off * 2, phase, size);
        let mut source = StochasticSource::new(spec, seed);
        for (poll_cycle, stamp, words) in drain(&mut source, 5_000) {
            prop_assert!(stamp <= poll_cycle, "stamp {} after poll {}", stamp, poll_cycle);
            prop_assert!(words >= 1);
        }
    }

    #[test]
    fn periodic_arrival_count_is_exact(
        period in 1u64..100,
        phase in 0u64..100,
        seed in 0u64..1_000_000,
    ) {
        let spec = GeneratorSpec::periodic(period, phase, SizeDist::fixed(1));
        let mut source = StochasticSource::new(spec, seed);
        let horizon = 10_000u64;
        let got = drain(&mut source, horizon).len() as u64;
        let expected = if phase >= horizon { 0 } else { (horizon - 1 - phase) / period + 1 };
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn replay_round_trips_any_sorted_trace(
        mut trace in prop::collection::vec((0u64..5_000, 1u32..32), 0..50),
    ) {
        trace.sort_by_key(|&(c, _)| c);
        let mut source = ReplaySource::new(0, &trace);
        let emitted = drain(&mut source, 6_000);
        prop_assert_eq!(emitted.len(), trace.len());
        for (k, &(cycle, words)) in trace.iter().enumerate() {
            prop_assert_eq!(emitted[k].1, cycle, "stamp preserved");
            prop_assert_eq!(emitted[k].2, words, "size preserved");
        }
        prop_assert_eq!(source.remaining(), 0);
    }

    #[test]
    fn every_class_builds_for_any_weights(
        weights in prop::collection::vec(1u32..6, 1..6),
        block in 1u32..32,
    ) {
        for class in TrafficClass::all() {
            let specs = class.specs_with_frame(&weights, block);
            prop_assert_eq!(specs.len(), weights.len(), "{}", class);
            for spec in &specs {
                prop_assert!(spec.offered_load() > 0.0, "{}", class);
                prop_assert!(spec.offered_load() <= 1.0 + 1e-9, "{}", class);
            }
        }
    }
}
