//! Enum dispatch over the built-in traffic sources.

use crate::generator::StochasticSource;
use crate::replay::ReplaySource;
use crate::saturate::SaturateSource;
use socsim::{Cycle, TrafficSource, Transaction};
use std::fmt;

/// Enum dispatch over the built-in [`TrafficSource`] implementations.
///
/// The simulator polls every source once per (non-skipped) cycle; with
/// the sources stored as this enum the poll is a direct call the
/// compiler can inline, instead of a `Box<dyn TrafficSource>` vtable
/// hop per master per cycle. [`SourceKind::Custom`] keeps arbitrary
/// user sources pluggable at the old cost.
///
/// Every variant defers to the wrapped source for all trait methods, so
/// wrapping never changes the generated traffic.
pub enum SourceKind {
    /// Seeded stochastic generator ([`StochasticSource`]).
    Stochastic(StochasticSource),
    /// Explicit `(cycle, words)` trace playback ([`ReplaySource`]).
    Replay(ReplaySource),
    /// Always-requesting saturation probe ([`SaturateSource`]).
    Saturate(SaturateSource),
    /// Any other [`TrafficSource`], dispatched virtually.
    Custom(Box<dyn TrafficSource>),
}

impl fmt::Debug for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceKind::Stochastic(s) => f.debug_tuple("Stochastic").field(s).finish(),
            SourceKind::Replay(_) => f.debug_tuple("Replay").finish(),
            SourceKind::Saturate(s) => f.debug_tuple("Saturate").field(s).finish(),
            SourceKind::Custom(_) => f.debug_tuple("Custom").finish(),
        }
    }
}

macro_rules! for_each_source {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            SourceKind::Stochastic($inner) => $body,
            SourceKind::Replay($inner) => $body,
            SourceKind::Saturate($inner) => $body,
            SourceKind::Custom($inner) => $body,
        }
    };
}

impl TrafficSource for SourceKind {
    #[inline]
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        for_each_source!(self, inner => inner.poll(now))
    }

    #[inline]
    fn poll_with_backlog(&mut self, now: Cycle, backlog: usize) -> Option<Transaction> {
        for_each_source!(self, inner => inner.poll_with_backlog(now, backlog))
    }

    #[inline]
    fn next_event(&self, now: Cycle) -> Cycle {
        for_each_source!(self, inner => inner.next_event(now))
    }

    #[inline]
    fn pure_while_backlogged(&self) -> bool {
        for_each_source!(self, inner => inner.pure_while_backlogged())
    }
}

impl From<StochasticSource> for SourceKind {
    fn from(source: StochasticSource) -> Self {
        SourceKind::Stochastic(source)
    }
}

impl From<ReplaySource> for SourceKind {
    fn from(source: ReplaySource) -> Self {
        SourceKind::Replay(source)
    }
}

impl From<SaturateSource> for SourceKind {
    fn from(source: SaturateSource) -> Self {
        SourceKind::Saturate(source)
    }
}

impl From<Box<dyn TrafficSource>> for SourceKind {
    fn from(source: Box<dyn TrafficSource>) -> Self {
        SourceKind::Custom(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::SizeDist;
    use crate::spec::GeneratorSpec;

    #[test]
    fn enum_and_boxed_sources_emit_the_identical_stream() {
        let spec = GeneratorSpec::bursty(2, 5, 1, 40, 120, 3, SizeDist::uniform(1, 16));
        let mut direct = spec.build_kind(77);
        let mut boxed = SourceKind::Custom(spec.build_source(77));
        for c in 0..5_000u64 {
            let now = Cycle::new(c);
            assert_eq!(direct.next_event(now), boxed.next_event(now), "horizon at {c}");
            let a = direct.poll_with_backlog(now, 0);
            let b = boxed.poll_with_backlog(now, 0);
            assert_eq!(a, b, "emission at {c}");
        }
    }

    #[test]
    fn replay_and_saturate_variants_delegate() {
        let mut replay = SourceKind::from(ReplaySource::new(0, &[(3, 4)]));
        assert!(replay.poll(Cycle::new(2)).is_none());
        assert_eq!(replay.poll(Cycle::new(3)).expect("due").words(), 4);
        let mut saturate = SourceKind::from(SaturateSource::new(0, 8));
        assert!(saturate.poll_with_backlog(Cycle::ZERO, 0).is_some());
        assert!(saturate.poll_with_backlog(Cycle::new(1), 2).is_none());
    }
}
