//! Message-size distributions.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of message sizes in bus words.
///
/// ```
/// use traffic_gen::SizeDist;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let d = SizeDist::uniform(4, 8);
/// let w = d.sample(&mut rng);
/// assert!((4..=8).contains(&w));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Every message has exactly this many words.
    Fixed(u32),
    /// Sizes drawn uniformly from `lo..=hi`.
    Uniform {
        /// Smallest message size.
        lo: u32,
        /// Largest message size.
        hi: u32,
    },
    /// A mix of small control messages and large data messages.
    Bimodal {
        /// Size of the small (control) messages.
        small: u32,
        /// Size of the large (data) messages.
        large: u32,
        /// Probability of drawing a large message.
        large_prob: f64,
    },
}

impl SizeDist {
    /// A fixed size of `words`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn fixed(words: u32) -> Self {
        assert!(words > 0, "messages must have at least one word");
        SizeDist::Fixed(words)
    }

    /// Uniform sizes in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo` is zero or `lo > hi`.
    pub fn uniform(lo: u32, hi: u32) -> Self {
        assert!(lo > 0, "messages must have at least one word");
        assert!(lo <= hi, "size range reversed");
        SizeDist::Uniform { lo, hi }
    }

    /// A `small`/`large` mix with `large_prob` chance of a large message.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero or `large_prob` is outside `[0, 1]`.
    pub fn bimodal(small: u32, large: u32, large_prob: f64) -> Self {
        assert!(small > 0 && large > 0, "messages must have at least one word");
        assert!((0.0..=1.0).contains(&large_prob), "probability out of range");
        SizeDist::Bimodal { small, large, large_prob }
    }

    /// Draws one message size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match *self {
            SizeDist::Fixed(w) => w,
            SizeDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            SizeDist::Bimodal { small, large, large_prob } => {
                if rng.gen_bool(large_prob) {
                    large
                } else {
                    small
                }
            }
        }
    }

    /// Expected message size in words.
    pub fn mean(&self) -> f64 {
        self.expect(f64::from)
    }

    /// Expected squared message size `E[L²]` in words² — the second
    /// moment the analytic queueing predictors need for
    /// Pollaczek–Khinchine waiting times.
    ///
    /// ```
    /// use traffic_gen::SizeDist;
    /// assert_eq!(SizeDist::fixed(4).second_moment(), 16.0);
    /// ```
    pub fn second_moment(&self) -> f64 {
        self.expect(|w| f64::from(w) * f64::from(w))
    }

    /// Expectation of an arbitrary per-size function `f` under this
    /// distribution, computed exactly (every variant has finite
    /// support). This is how the analytic model derives tenure-duration
    /// moments: `f` maps a message size to its bus-tenure cost.
    pub fn expect(&self, mut f: impl FnMut(u32) -> f64) -> f64 {
        match *self {
            SizeDist::Fixed(w) => f(w),
            SizeDist::Uniform { lo, hi } => {
                let n = f64::from(hi - lo + 1);
                (lo..=hi).map(|w| f(w) / n).sum()
            }
            SizeDist::Bimodal { small, large, large_prob } => {
                f(small) * (1.0 - large_prob) + f(large) * large_prob
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_always_samples_itself() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = SizeDist::fixed(7);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7);
        }
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn uniform_stays_in_range_and_matches_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = SizeDist::uniform(4, 12);
        let mut sum = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let w = d.sample(&mut rng);
            assert!((4..=12).contains(&w));
            sum += u64::from(w);
        }
        let mean = sum as f64 / f64::from(n);
        assert!((mean - d.mean()).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn bimodal_mixes_at_requested_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SizeDist::bimodal(2, 32, 0.25);
        let mut large = 0u32;
        for _ in 0..10_000 {
            if d.sample(&mut rng) == 32 {
                large += 1;
            }
        }
        let p = f64::from(large) / 10_000.0;
        assert!((p - 0.25).abs() < 0.02, "large fraction {p}");
        assert!((d.mean() - 9.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_size_rejected() {
        let _ = SizeDist::fixed(0);
    }

    #[test]
    #[should_panic(expected = "range reversed")]
    fn reversed_range_rejected() {
        let _ = SizeDist::uniform(9, 4);
    }
}
