//! Trace replay: issue an explicit list of transactions.

use socsim::{Cycle, SlaveId, TrafficSource, Transaction};
use std::collections::VecDeque;

/// Replays a fixed `(cycle, words)` trace as a traffic source.
///
/// Used by the Figure 5 reproduction, where the paper compares two
/// hand-written request traces that differ only in phase, and by tests
/// that need exact request patterns.
///
/// ```
/// use traffic_gen::ReplaySource;
/// use socsim::{TrafficSource, Cycle};
///
/// let mut source = ReplaySource::new(0, &[(2, 4), (10, 1)]);
/// assert!(source.poll(Cycle::new(0)).is_none());
/// assert_eq!(source.poll(Cycle::new(2)).unwrap().words(), 4);
/// assert_eq!(source.poll(Cycle::new(10)).unwrap().words(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReplaySource {
    queue: VecDeque<Transaction>,
}

impl ReplaySource {
    /// Creates a replay of `trace`, a list of `(arrival_cycle, words)`
    /// pairs addressed to `slave`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival cycle or contains a
    /// zero-word entry.
    pub fn new(slave: usize, trace: &[(u64, u32)]) -> Self {
        let mut queue = VecDeque::with_capacity(trace.len());
        let mut last = 0u64;
        for &(cycle, words) in trace {
            assert!(cycle >= last, "replay trace must be sorted by cycle");
            last = cycle;
            queue.push_back(Transaction::new(SlaveId::new(slave), words, Cycle::new(cycle)));
        }
        ReplaySource { queue }
    }

    /// A periodic trace: `count` messages of `words` words every
    /// `period` cycles starting at `phase` — the building block of the
    /// paper's Figure 5 request traces.
    pub fn periodic(slave: usize, phase: u64, period: u64, words: u32, count: usize) -> Self {
        let trace: Vec<(u64, u32)> =
            (0..count as u64).map(|k| (phase + k * period, words)).collect();
        ReplaySource::new(slave, &trace)
    }

    /// Transactions not yet emitted.
    pub fn remaining(&self) -> usize {
        self.queue.len()
    }
}

impl TrafficSource for ReplaySource {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        if self.queue.front()?.issued_at() <= now {
            self.queue.pop_front()
        } else {
            None
        }
    }

    /// The next queued arrival stamp, or [`Cycle::NEVER`] once the
    /// trace is exhausted — a replay is pure data, so its horizon is
    /// exact and the fast-forward kernel can jump the gaps between
    /// entries.
    fn next_event(&self, now: Cycle) -> Cycle {
        self.queue.front().map_or(Cycle::NEVER, |t| t.issued_at().max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_in_order_at_stamped_cycles() {
        let mut source = ReplaySource::new(0, &[(0, 1), (0, 2), (5, 3)]);
        assert_eq!(source.poll(Cycle::new(0)).unwrap().words(), 1);
        assert_eq!(source.poll(Cycle::new(1)).unwrap().words(), 2);
        assert!(source.poll(Cycle::new(2)).is_none());
        assert_eq!(source.poll(Cycle::new(7)).unwrap().words(), 3);
        assert_eq!(source.remaining(), 0);
    }

    #[test]
    fn periodic_builder_matches_manual_trace() {
        let mut a = ReplaySource::periodic(0, 3, 10, 2, 3);
        let mut b = ReplaySource::new(0, &[(3, 2), (13, 2), (23, 2)]);
        for c in 0..30 {
            let (ta, tb) = (a.poll(Cycle::new(c)), b.poll(Cycle::new(c)));
            assert_eq!(ta, tb, "divergence at cycle {c}");
        }
    }

    #[test]
    fn horizon_tracks_the_queue_head() {
        let mut source = ReplaySource::new(0, &[(4, 1), (9, 2)]);
        assert_eq!(source.next_event(Cycle::new(0)), Cycle::new(4));
        assert!(source.poll(Cycle::new(4)).is_some());
        assert_eq!(source.next_event(Cycle::new(5)), Cycle::new(9));
        assert!(source.poll(Cycle::new(9)).is_some());
        assert_eq!(source.next_event(Cycle::new(10)), Cycle::NEVER, "trace exhausted");
        // A stale stamp (emission delayed by backlog) clamps to now.
        let late = ReplaySource::new(0, &[(3, 1)]);
        assert_eq!(late.next_event(Cycle::new(8)), Cycle::new(8));
    }

    #[test]
    #[should_panic(expected = "sorted by cycle")]
    fn unsorted_trace_rejected() {
        let _ = ReplaySource::new(0, &[(5, 1), (2, 1)]);
    }
}
