//! Recording stochastic generators into replayable traces.
//!
//! Useful for pinning a stochastic workload down: record it once, check
//! the trace into a test, and replay it with [`crate::ReplaySource`] —
//! any simulator change that alters behaviour then shows up as an exact
//! diff instead of a statistical drift.

use crate::spec::GeneratorSpec;
use socsim::{Cycle, TrafficSource};

/// Runs the generator described by `spec` for `cycles` cycles and
/// returns its transactions as a `(arrival_cycle, words)` trace suitable
/// for [`crate::ReplaySource::new`].
///
/// ```
/// use traffic_gen::{record_trace, GeneratorSpec, ReplaySource, SizeDist};
/// let spec = GeneratorSpec::periodic(10, 0, SizeDist::fixed(4));
/// let trace = record_trace(&spec, 1, 35);
/// assert_eq!(trace, vec![(0, 4), (10, 4), (20, 4), (30, 4)]);
/// let _replay = ReplaySource::new(0, &trace);
/// ```
pub fn record_trace(spec: &GeneratorSpec, seed: u64, cycles: u64) -> Vec<(u64, u32)> {
    let mut source = spec.build_source(seed);
    let mut trace = Vec::new();
    for c in 0..cycles {
        if let Some(txn) = source.poll(Cycle::new(c)) {
            trace.push((txn.issued_at().index(), txn.words()));
        }
    }
    // Bursty sources may emit a same-stamp backlog over several polls;
    // stamps are already non-decreasing, but sort defensively so the
    // result always satisfies ReplaySource's contract.
    trace.sort_by_key(|&(c, _)| c);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::ReplaySource;
    use crate::size::SizeDist;

    fn drain(source: &mut dyn TrafficSource, cycles: u64) -> Vec<(u64, u32)> {
        (0..cycles)
            .filter_map(|c| source.poll(Cycle::new(c)).map(|t| (t.issued_at().index(), t.words())))
            .collect()
    }

    #[test]
    fn replaying_a_recording_reproduces_the_stream() {
        let spec = GeneratorSpec::bursty(2, 5, 3, 40, 120, 7, SizeDist::uniform(2, 20));
        let trace = record_trace(&spec, 99, 5_000);
        assert!(!trace.is_empty());
        let mut replay = ReplaySource::new(0, &trace);
        let replayed = drain(&mut replay, 6_000);
        assert_eq!(replayed, trace);
    }

    #[test]
    fn recording_is_deterministic_per_seed() {
        let spec = GeneratorSpec::poisson(0.02, SizeDist::fixed(8));
        assert_eq!(record_trace(&spec, 5, 10_000), record_trace(&spec, 5, 10_000));
        assert_ne!(record_trace(&spec, 5, 10_000), record_trace(&spec, 6, 10_000));
    }

    #[test]
    fn recorded_load_matches_the_spec() {
        let spec = GeneratorSpec::poisson(0.03, SizeDist::fixed(16));
        let cycles = 100_000;
        let trace = record_trace(&spec, 3, cycles);
        let words: u64 = trace.iter().map(|&(_, w)| u64::from(w)).sum();
        let load = words as f64 / cycles as f64;
        assert!((load - spec.offered_load()).abs() < 0.05, "load {load:.3}");
    }
}
