//! An always-requesting source for saturated-bus measurements.

use socsim::{Cycle, SlaveId, TrafficSource, Transaction};

/// A source that keeps its master's request line permanently asserted.
///
/// Whenever the bus interface has drained its backlog, the source hands
/// it a fresh fixed-size message stamped at the current cycle — so from
/// the arbiter's point of view the master requests on *every* cycle, the
/// worst-case contention regime of the paper's evaluation (Figs. 4–6).
///
/// Unlike a Bernoulli process at rate 1.0 it draws no random numbers and
/// allocates nothing per cycle, which makes it the probe of choice for
/// the saturated hot-path benchmark: the measurement isolates the
/// arbitration + transfer machinery instead of the RNG.
///
/// The backlog gate keeps the master-port queue bounded (at most one
/// queued message plus the one in flight), so a steady-state window
/// performs no queue growth — a requirement of the zero-allocation
/// invariant checked by the debug alloc counter.
///
/// ```
/// use traffic_gen::SaturateSource;
/// use socsim::{Cycle, TrafficSource};
///
/// let mut source = SaturateSource::new(0, 16);
/// assert!(source.poll_with_backlog(Cycle::ZERO, 0).is_some());
/// // With work still queued at the port, nothing new is issued.
/// assert!(source.poll_with_backlog(Cycle::new(1), 1).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturateSource {
    slave: usize,
    words: u32,
}

impl SaturateSource {
    /// Creates a source issuing `words`-word messages to `slave`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn new(slave: usize, words: u32) -> Self {
        assert!(words > 0, "message size must be nonzero");
        SaturateSource { slave, words }
    }
}

impl TrafficSource for SaturateSource {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        Some(Transaction::new(SlaveId::new(self.slave), self.words, now))
    }

    fn poll_with_backlog(&mut self, now: Cycle, backlog: usize) -> Option<Transaction> {
        if backlog == 0 {
            self.poll(now)
        } else {
            None
        }
    }

    // `next_event` keeps the conservative default (`now`): the source
    // must be polled every cycle and is never fast-forwarded over.

    fn pure_while_backlogged(&self) -> bool {
        // With a backlog, `poll_with_backlog` returns `None` and touches
        // no state, and `next_event` keeps the identity default — exactly
        // the contract the fleet kernel's tenure batching requires.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issues_only_when_the_backlog_is_drained() {
        let mut source = SaturateSource::new(2, 8);
        let t = source.poll_with_backlog(Cycle::new(5), 0).expect("issues");
        assert_eq!(t.words(), 8);
        assert_eq!(t.issued_at(), Cycle::new(5));
        assert!(source.poll_with_backlog(Cycle::new(6), 1).is_none());
        assert!(source.poll_with_backlog(Cycle::new(7), 3).is_none());
        assert!(source.poll_with_backlog(Cycle::new(8), 0).is_some());
    }

    #[test]
    fn horizon_pins_every_cycle() {
        let source = SaturateSource::new(0, 4);
        assert_eq!(source.next_event(Cycle::new(9)), Cycle::new(9));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_words_rejected() {
        SaturateSource::new(0, 0);
    }
}
