//! Generator specifications: serializable descriptions of a component's
//! communication traffic.

use crate::generator::StochasticSource;
use crate::kind::SourceKind;
use crate::size::SizeDist;
use serde::{Deserialize, Serialize};
use socsim::TrafficSource;

/// The message *arrival process* of one component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// One message every `period` cycles, starting at `phase`, each
    /// arrival delayed by an independent uniform jitter in `0..=jitter`.
    ///
    /// Deterministic periodic traffic is how the paper's Example 2 /
    /// Figure 5 exposes the TDMA architecture's sensitivity to the
    /// time-alignment of requests and slot reservations.
    Periodic {
        /// Cycles between arrivals.
        period: u64,
        /// Cycle of the first arrival.
        phase: u64,
        /// Maximum uniform jitter added to each arrival.
        jitter: u64,
    },
    /// Memoryless arrivals: each cycle a message arrives with
    /// probability `rate` (a discrete-time Poisson process).
    Bernoulli {
        /// Expected messages per cycle (must be in `[0, 1]`).
        rate: f64,
    },
    /// Bursty on–off traffic: bursts of `burst_min..=burst_max` messages
    /// spaced `intra_gap` cycles apart, separated by off periods drawn
    /// uniformly from `off_min..=off_max` cycles.
    OnOff {
        /// Fewest messages per burst.
        burst_min: u32,
        /// Most messages per burst.
        burst_max: u32,
        /// Cycles between messages inside a burst.
        intra_gap: u64,
        /// Shortest off period between bursts.
        off_min: u64,
        /// Longest off period between bursts.
        off_max: u64,
        /// Cycle of the first burst.
        phase: u64,
    },
}

/// A complete traffic description for one master: arrival process,
/// message sizes, and the addressed slave.
///
/// ```
/// use traffic_gen::{GeneratorSpec, SizeDist};
/// let spec = GeneratorSpec::poisson(0.02, SizeDist::fixed(16));
/// assert!((spec.offered_load() - 0.32).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorSpec {
    /// When messages arrive.
    pub arrival: ArrivalSpec,
    /// How large messages are.
    pub size: SizeDist,
    /// Dense index of the slave all messages address.
    pub slave: usize,
}

impl GeneratorSpec {
    /// Periodic traffic: a `size`-distributed message every `period`
    /// cycles starting at `phase`, without jitter.
    pub fn periodic(period: u64, phase: u64, size: SizeDist) -> Self {
        GeneratorSpec {
            arrival: ArrivalSpec::Periodic { period, phase, jitter: 0 },
            size,
            slave: 0,
        }
    }

    /// Periodic traffic with uniform per-arrival jitter in `0..=jitter`.
    pub fn periodic_jittered(period: u64, phase: u64, jitter: u64, size: SizeDist) -> Self {
        GeneratorSpec { arrival: ArrivalSpec::Periodic { period, phase, jitter }, size, slave: 0 }
    }

    /// Memoryless traffic at `rate` messages per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn poisson(rate: f64, size: SizeDist) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a per-cycle probability");
        GeneratorSpec { arrival: ArrivalSpec::Bernoulli { rate }, size, slave: 0 }
    }

    /// Bursty on–off traffic.
    ///
    /// # Panics
    ///
    /// Panics if `burst_min` is zero or a range is reversed.
    pub fn bursty(
        burst_min: u32,
        burst_max: u32,
        intra_gap: u64,
        off_min: u64,
        off_max: u64,
        phase: u64,
        size: SizeDist,
    ) -> Self {
        assert!(burst_min > 0, "bursts must contain at least one message");
        assert!(burst_min <= burst_max, "burst range reversed");
        assert!(off_min <= off_max, "off-period range reversed");
        GeneratorSpec {
            arrival: ArrivalSpec::OnOff {
                burst_min,
                burst_max,
                intra_gap,
                off_min,
                off_max,
                phase,
            },
            size,
            slave: 0,
        }
    }

    /// Redirects all messages to slave `slave`.
    pub fn to_slave(mut self, slave: usize) -> Self {
        self.slave = slave;
        self
    }

    /// Long-run offered load in bus words per cycle (ignoring jitter).
    pub fn offered_load(&self) -> f64 {
        let msgs_per_cycle = match self.arrival {
            ArrivalSpec::Periodic { period, .. } => 1.0 / period as f64,
            ArrivalSpec::Bernoulli { rate } => rate,
            ArrivalSpec::OnOff { burst_min, burst_max, intra_gap, off_min, off_max, .. } => {
                let msgs = f64::from(burst_min + burst_max) / 2.0;
                let burst_span = (msgs - 1.0).max(0.0) * intra_gap as f64 + 1.0;
                let off = (off_min + off_max) as f64 / 2.0;
                msgs / (burst_span + off)
            }
        };
        msgs_per_cycle * self.size.mean()
    }

    /// Instantiates the deterministic traffic source described by this
    /// spec, seeded with `seed`.
    pub fn build_source(self, seed: u64) -> Box<dyn TrafficSource> {
        Box::new(StochasticSource::new(self, seed))
    }

    /// Like [`GeneratorSpec::build_source`], but returns the
    /// enum-dispatched [`SourceKind`] the simulator's devirtualized hot
    /// loop polls without a vtable hop. Same spec + seed produce the
    /// identical traffic stream on either path.
    pub fn build_kind(self, seed: u64) -> SourceKind {
        SourceKind::Stochastic(StochasticSource::new(self, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_load_periodic() {
        let spec = GeneratorSpec::periodic(40, 0, SizeDist::fixed(8));
        assert!((spec.offered_load() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn offered_load_bursty_accounts_for_off_periods() {
        // Bursts of exactly 4 messages of 10 words, back-to-back, with
        // 99-cycle off periods: 40 words per ~100 cycles.
        let spec = GeneratorSpec::bursty(4, 4, 0, 99, 99, 0, SizeDist::fixed(10));
        let load = spec.offered_load();
        assert!((load - 0.4).abs() < 0.01, "load {load}");
    }

    #[test]
    fn to_slave_changes_destination() {
        let spec = GeneratorSpec::poisson(0.1, SizeDist::fixed(1)).to_slave(3);
        assert_eq!(spec.slave, 3);
    }

    #[test]
    #[should_panic(expected = "per-cycle probability")]
    fn silly_rate_rejected() {
        let _ = GeneratorSpec::poisson(3.0, SizeDist::fixed(1));
    }
}
