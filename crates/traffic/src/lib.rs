//! # traffic-gen — parameterized stochastic on-chip traffic generators
//!
//! The LOTTERYBUS paper evaluates communication architectures on a
//! test-bed of "parameterized traffic generators" whose knobs span a wide
//! space of on-chip communication traffic (§5.1, and the companion
//! characterization paper, reference 19). This crate is that test-bed's generator
//! library:
//!
//! * [`GeneratorSpec`] — a serializable description of one component's
//!   traffic: an arrival process ([`ArrivalSpec`]: periodic with phase
//!   and jitter, Bernoulli/Poisson, or bursty on–off) combined with a
//!   message-size distribution ([`SizeDist`]).
//! * [`StochasticSource`] — the [`socsim::TrafficSource`] implementation
//!   produced by a spec, deterministic under a seed.
//! * [`ReplaySource`] — replays an explicit `(cycle, words)` trace
//!   (used for the paper's Figure 5 alignment experiment).
//! * [`classes`] — the nine named traffic classes T1–T9 used in the
//!   paper's Figure 12 experiments, plus the saturating class of
//!   Figures 4/6(a).
//! * [`SaturateSource`] — an always-requesting, RNG-free probe source
//!   for saturated hot-path benchmarks.
//! * [`SourceKind`] — enum dispatch over the built-in sources, so the
//!   simulator's per-cycle poll avoids `Box<dyn TrafficSource>`
//!   virtual calls.
//!
//! ```
//! use traffic_gen::{GeneratorSpec, SizeDist};
//! use socsim::TrafficSource;
//!
//! let spec = GeneratorSpec::periodic(50, 3, SizeDist::fixed(16));
//! let mut source = spec.build_source(42);
//! // First message arrives at the phase offset.
//! assert!(source.poll(socsim::Cycle::new(2)).is_none());
//! assert!(source.poll(socsim::Cycle::new(3)).is_some());
//! ```

pub mod classes;
pub mod generator;
pub mod kind;
pub mod record;
pub mod replay;
pub mod saturate;
pub mod size;
pub mod spec;

pub use classes::TrafficClass;
pub use generator::StochasticSource;
pub use kind::SourceKind;
pub use record::record_trace;
pub use replay::ReplaySource;
pub use saturate::SaturateSource;
pub use size::SizeDist;
pub use spec::{ArrivalSpec, GeneratorSpec};
