//! The stochastic traffic source driven by a [`GeneratorSpec`].

use crate::spec::{ArrivalSpec, GeneratorSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socsim::{Cycle, SlaveId, TrafficSource, Transaction};
use std::collections::VecDeque;

/// A deterministic (seeded) stochastic traffic source.
///
/// Internally the source keeps a small queue of generated-but-not-yet-due
/// messages so that bursty arrival processes can stamp several messages
/// with their true arrival cycles while the bus interface consumes them
/// one per cycle.
///
/// ```
/// use traffic_gen::{GeneratorSpec, SizeDist, StochasticSource};
/// use socsim::{TrafficSource, Cycle};
///
/// let spec = GeneratorSpec::periodic(10, 0, SizeDist::fixed(4));
/// let mut source = StochasticSource::new(spec, 1);
/// assert!(source.poll(Cycle::new(0)).is_some());
/// assert!(source.poll(Cycle::new(1)).is_none());
/// assert!(source.poll(Cycle::new(10)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct StochasticSource {
    spec: GeneratorSpec,
    rng: StdRng,
    /// Messages stamped with their arrival cycle, awaiting emission.
    pending: VecDeque<Transaction>,
    /// Next arrival event for the periodic / on–off processes.
    next_event: u64,
}

impl StochasticSource {
    /// Creates the source described by `spec`, seeded with `seed`.
    pub fn new(spec: GeneratorSpec, seed: u64) -> Self {
        let next_event = match spec.arrival {
            ArrivalSpec::Periodic { phase, .. } => phase,
            ArrivalSpec::Bernoulli { .. } => 0,
            ArrivalSpec::OnOff { phase, .. } => phase,
        };
        StochasticSource {
            spec,
            rng: StdRng::seed_from_u64(seed),
            pending: VecDeque::new(),
            next_event,
        }
    }

    /// The spec this source realizes.
    pub fn spec(&self) -> &GeneratorSpec {
        &self.spec
    }

    fn push_message(&mut self, arrival: u64) {
        let words = self.spec.size.sample(&mut self.rng);
        self.pending.push_back(Transaction::new(
            SlaveId::new(self.spec.slave),
            words,
            Cycle::new(arrival),
        ));
    }

    fn generate_arrivals(&mut self, now: u64) {
        match self.spec.arrival {
            ArrivalSpec::Periodic { period, jitter, .. } => {
                while self.next_event <= now {
                    let offset = if jitter == 0 { 0 } else { self.rng.gen_range(0..=jitter) };
                    self.push_message(self.next_event + offset);
                    self.next_event += period;
                }
            }
            ArrivalSpec::Bernoulli { rate } => {
                if rate > 0.0 && self.rng.gen_bool(rate.min(1.0)) {
                    self.push_message(now);
                }
            }
            ArrivalSpec::OnOff { burst_min, burst_max, intra_gap, off_min, off_max, .. } => {
                while self.next_event <= now {
                    let start = self.next_event;
                    let messages = self.rng.gen_range(burst_min..=burst_max);
                    for k in 0..u64::from(messages) {
                        self.push_message(start + k * intra_gap);
                    }
                    let burst_span = u64::from(messages.saturating_sub(1)) * intra_gap + 1;
                    let off = self.rng.gen_range(off_min..=off_max);
                    self.next_event = start + burst_span + off;
                }
            }
        }
    }
}

impl TrafficSource for StochasticSource {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        self.generate_arrivals(now.index());
        // Messages stamped in the future (jitter / intra-burst gaps) wait
        // in the queue until due. Arrival stamps within one process are
        // non-decreasing except for jitter; a linear scan of the short
        // queue finds the earliest due message.
        let due = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, t)| t.issued_at() <= now)
            .min_by_key(|(_, t)| t.issued_at())
            .map(|(i, _)| i)?;
        self.pending.remove(due)
    }

    /// The earliest cycle at which a poll could emit a message or draw
    /// from the RNG (see [`socsim::fastforward`]).
    ///
    /// * Bernoulli with a positive rate draws every single poll, so its
    ///   horizon is always `now`; a zero rate never draws nor emits.
    /// * Periodic and on–off processes mutate state only once
    ///   `next_event` comes due, so the horizon is the earlier of that
    ///   arrival event and the earliest already-generated message
    ///   waiting in the queue (jitter and intra-burst stamps can sit in
    ///   the future).
    fn next_event(&self, now: Cycle) -> Cycle {
        let pending = self.pending.iter().map(Transaction::issued_at).min();
        let horizon = match self.spec.arrival {
            ArrivalSpec::Bernoulli { rate } => {
                if rate > 0.0 {
                    return now;
                }
                pending.unwrap_or(Cycle::NEVER)
            }
            ArrivalSpec::Periodic { .. } | ArrivalSpec::OnOff { .. } => {
                let arrival = Cycle::new(self.next_event);
                pending.map_or(arrival, |p| p.min(arrival))
            }
        };
        horizon.max(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::SizeDist;

    fn drain(source: &mut StochasticSource, cycles: u64) -> Vec<(u64, u32)> {
        (0..cycles).filter_map(|c| source.poll(Cycle::new(c)).map(|t| (c, t.words()))).collect()
    }

    #[test]
    fn periodic_arrivals_hit_the_grid() {
        let spec = GeneratorSpec::periodic(25, 5, SizeDist::fixed(3));
        let mut source = StochasticSource::new(spec, 9);
        let got = drain(&mut source, 100);
        assert_eq!(got, vec![(5, 3), (30, 3), (55, 3), (80, 3)]);
    }

    #[test]
    fn jitter_delays_but_preserves_count() {
        let spec = GeneratorSpec::periodic_jittered(20, 0, 5, SizeDist::fixed(1));
        let mut source = StochasticSource::new(spec, 10);
        let got = drain(&mut source, 200);
        assert_eq!(got.len(), 10);
        for (k, &(cycle, _)) in got.iter().enumerate() {
            let grid = k as u64 * 20;
            assert!(
                (grid..=grid + 5).contains(&cycle),
                "arrival {k} at {cycle} outside jitter window"
            );
        }
    }

    #[test]
    fn bernoulli_rate_is_respected() {
        let spec = GeneratorSpec::poisson(0.1, SizeDist::fixed(1));
        let mut source = StochasticSource::new(spec, 11);
        let got = drain(&mut source, 50_000);
        let rate = got.len() as f64 / 50_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bursts_emit_every_message_with_true_stamps() {
        // Bursts of exactly 3 messages, 2 cycles apart, 50-cycle gaps.
        let spec = GeneratorSpec::bursty(3, 3, 2, 50, 50, 10, SizeDist::fixed(4));
        let mut source = StochasticSource::new(spec, 12);
        let mut stamps = Vec::new();
        for c in 0..120u64 {
            if let Some(t) = source.poll(Cycle::new(c)) {
                stamps.push(t.issued_at().index());
            }
        }
        assert_eq!(stamps, vec![10, 12, 14, 65, 67, 69]);
    }

    #[test]
    fn back_to_back_burst_messages_queue_up() {
        // intra_gap 0: all 4 messages arrive at once, drained 1/cycle.
        let spec = GeneratorSpec::bursty(4, 4, 0, 1000, 1000, 0, SizeDist::fixed(2));
        let mut source = StochasticSource::new(spec, 13);
        let got = drain(&mut source, 10);
        assert_eq!(got.iter().map(|&(c, _)| c).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // All four carry the burst-start stamp for latency accounting.
        let spec2 = GeneratorSpec::bursty(4, 4, 0, 1000, 1000, 0, SizeDist::fixed(2));
        let mut source2 = StochasticSource::new(spec2, 13);
        for c in 0..4u64 {
            let t = source2.poll(Cycle::new(c)).expect("queued message");
            assert_eq!(t.issued_at().index(), 0);
        }
    }

    #[test]
    fn horizon_is_exact_for_deterministic_processes() {
        // Whenever a poll emits, the horizon computed just before must
        // have been exactly that cycle — the fast-forward kernel's "time
        // never jumps past an event" invariant, checked per cycle.
        let specs = [
            GeneratorSpec::periodic(25, 5, SizeDist::fixed(3)),
            GeneratorSpec::periodic_jittered(20, 0, 5, SizeDist::fixed(1)),
            GeneratorSpec::bursty(2, 4, 3, 40, 80, 7, SizeDist::uniform(1, 8)),
        ];
        for (i, spec) in specs.into_iter().enumerate() {
            let mut source = StochasticSource::new(spec, 31 + i as u64);
            for c in 0..2_000u64 {
                let h = source.next_event(Cycle::new(c));
                let emitted = source.poll(Cycle::new(c)).is_some();
                assert!(h >= Cycle::new(c), "spec {i}: horizon in the past at {c}");
                if emitted {
                    assert_eq!(h, Cycle::new(c), "spec {i}: emission at {c} was skippable");
                }
            }
        }
    }

    #[test]
    fn bernoulli_horizon_pins_every_cycle() {
        let live = StochasticSource::new(GeneratorSpec::poisson(0.01, SizeDist::fixed(1)), 3);
        assert_eq!(live.next_event(Cycle::new(42)), Cycle::new(42));
        let dead = StochasticSource::new(GeneratorSpec::poisson(0.0, SizeDist::fixed(1)), 3);
        assert_eq!(dead.next_event(Cycle::new(42)), Cycle::NEVER);
    }

    #[test]
    fn seeded_sources_are_reproducible() {
        let spec = GeneratorSpec::poisson(0.05, SizeDist::uniform(1, 16));
        let a = drain(&mut StochasticSource::new(spec, 77), 10_000);
        let b = drain(&mut StochasticSource::new(spec, 77), 10_000);
        let c = drain(&mut StochasticSource::new(spec, 78), 10_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empirical_load_matches_spec_estimate() {
        let spec = GeneratorSpec::bursty(2, 6, 4, 100, 300, 0, SizeDist::uniform(8, 24));
        let mut source = StochasticSource::new(spec, 21);
        let cycles = 200_000u64;
        let words: u64 = drain(&mut source, cycles).iter().map(|&(_, w)| u64::from(w)).sum();
        let load = words as f64 / cycles as f64;
        let predicted = spec.offered_load();
        assert!(
            (load - predicted).abs() < predicted * 0.15,
            "load {load:.3} vs predicted {predicted:.3}"
        );
    }
}
