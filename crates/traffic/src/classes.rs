//! The named traffic classes of the paper's evaluation (§5.1).
//!
//! The paper sweeps "nine different classes of communication traffic"
//! (Figure 12a) and uses the first six for the latency comparison
//! (Figures 12b/12c). The exact generator settings are not published;
//! these definitions span the same qualitative space, varying:
//!
//! * *utilization* — most classes keep the bus near saturation, while T3
//!   and T6 leave it partly idle (the paper calls out T3/T6 as the
//!   under-utilized classes whose allocation no longer follows tickets);
//! * *burstiness* — memoryless, periodic and on–off arrival processes;
//! * *alignment* — periodic classes differ only in request phase, the
//!   knob that TDMA latency is so sensitive to (Example 2 / Figure 5);
//! * *message-size mix* — single-word control traffic up to multi-burst
//!   data messages.
//!
//! Per-master offered loads are split in proportion to a weight vector
//! (the same 1:2:3:4 ratio used for tickets and TDMA slots), modelling a
//! designer who provisions bandwidth according to demand.

use crate::size::SizeDist;
use crate::spec::GeneratorSpec;
use serde::{Deserialize, Serialize};

/// One of the paper's nine communication traffic classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Heavy memoryless traffic, 16-word messages.
    T1,
    /// Heavy bursty on–off traffic, 16-word messages.
    T2,
    /// Sparse memoryless traffic (under-utilized bus), 8-word messages.
    T3,
    /// Heavy periodic traffic, phases aligned.
    T4,
    /// Heavy periodic traffic, phases deliberately staggered.
    T5,
    /// Sparse bursty traffic with staggered phases (under-utilized bus,
    /// worst case for TDMA alignment).
    T6,
    /// Heavy traffic with a bimodal control/data size mix.
    T7,
    /// Heavy traffic of small (2-word) messages.
    T8,
    /// Heavy traffic of very large (64-word) messages.
    T9,
}

impl TrafficClass {
    /// All nine classes, in figure order.
    pub fn all() -> [TrafficClass; 9] {
        use TrafficClass::*;
        [T1, T2, T3, T4, T5, T6, T7, T8, T9]
    }

    /// The six classes used in the latency comparison (Figures 12b/12c).
    pub fn latency_set() -> [TrafficClass; 6] {
        use TrafficClass::*;
        [T1, T2, T3, T4, T5, T6]
    }

    /// The class name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::T1 => "T1",
            TrafficClass::T2 => "T2",
            TrafficClass::T3 => "T3",
            TrafficClass::T4 => "T4",
            TrafficClass::T5 => "T5",
            TrafficClass::T6 => "T6",
            TrafficClass::T7 => "T7",
            TrafficClass::T8 => "T8",
            TrafficClass::T9 => "T9",
        }
    }

    /// Total bus utilization the class targets (sum of offered loads as
    /// a fraction of bus capacity).
    pub fn target_utilization(self) -> f64 {
        match self {
            TrafficClass::T3 => 0.40,
            // Low enough that every master's arrival rate stays below
            // its reserved TDMA share (1:2:3:4 weights give the lightest
            // master a 10% share), so queues stay stable.
            TrafficClass::T6 => 1.0 / 3.0,
            TrafficClass::T1 | TrafficClass::T2 => 0.85,
            TrafficClass::T8 => 0.85,
            TrafficClass::T7 | TrafficClass::T9 => 0.90,
            // The frame-locked periodic classes occupy the bus exactly.
            TrafficClass::T4 | TrafficClass::T5 => 1.00,
        }
    }

    /// Builds one generator spec per master with the default TDM frame
    /// granularity of 6 slots per weight unit (see
    /// [`TrafficClass::specs_with_frame`]).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn specs(self, weights: &[u32]) -> Vec<GeneratorSpec> {
        self.specs_with_frame(weights, 6)
    }

    /// Builds one generator spec per master, splitting the class's
    /// target utilization across masters in proportion to `weights`
    /// (except for the equal-share sparse classes T3 and T6).
    ///
    /// The periodic classes T4/T5 are *frame-locked*: requests repeat
    /// with the period of a TDM frame of `block` slots per weight unit,
    /// so that alignment between requests and slot reservations stays
    /// fixed over the whole run — T4 aligns every master's request with
    /// the start of its reserved block, while T5 shifts the phases
    /// (low-weight masters arrive three slots early; the highest-weight
    /// master arrives one sub-block late). The bursty class T6 starts
    /// every master's trains on a common grid so trains collide.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, sums to zero, or `block` is zero.
    pub fn specs_with_frame(self, weights: &[u32], block: u32) -> Vec<GeneratorSpec> {
        assert!(!weights.is_empty(), "at least one master required");
        assert!(block > 0, "frame block must be nonzero");
        let total: u32 = weights.iter().sum();
        assert!(total > 0, "weights must not all be zero");
        let n = weights.len();
        let util = self.target_utilization();
        let wheel = u64::from(block) * u64::from(total);
        let prefix = |i: usize| -> u64 {
            u64::from(block) * weights[..i].iter().map(|&w| u64::from(w)).sum::<u64>()
        };
        let share = |i: usize| -> f64 {
            match self {
                // Sparse classes load every master equally.
                TrafficClass::T3 | TrafficClass::T6 => util / n as f64,
                _ => util * f64::from(weights[i]) / f64::from(total),
            }
        };
        (0..n)
            .map(|i| {
                let load = share(i);
                match self {
                    TrafficClass::T1 => GeneratorSpec::poisson(load / 16.0, SizeDist::fixed(16)),
                    TrafficClass::T2 => bursty_with_load(load, 2, 6, 16, 17 * i as u64),
                    TrafficClass::T3 => GeneratorSpec::poisson(load / 8.0, SizeDist::fixed(8)),
                    TrafficClass::T4 => GeneratorSpec::periodic(
                        wheel,
                        prefix(i),
                        SizeDist::fixed(block * weights[i]),
                    ),
                    TrafficClass::T5 => {
                        let phase = if i == n - 1 {
                            prefix(i) + u64::from(block)
                        } else {
                            (prefix(i) + wheel - 3) % wheel
                        };
                        GeneratorSpec::periodic(wheel, phase, SizeDist::fixed(block * weights[i]))
                    }
                    TrafficClass::T6 => {
                        // Synchronized sparse clusters with asymmetric
                        // trains: every cluster period the low-weight
                        // masters each emit a train of 2·wᵢ 16-word
                        // messages while the highest-weight master emits
                        // a single latency-critical 16-word message. The
                        // bus idles between clusters (under-utilized),
                        // but during a cluster the background trains keep
                        // every slot owner pending, so the TDMA second
                        // level cannot reclaim: the critical message
                        // waits for its own (possibly far) block while
                        // the lottery serves it within a couple of draws.
                        // The cluster period is kept coprime to the TDM
                        // frame so episodes sample every wheel phase.
                        // This is the class where the paper's TDMA
                        // latency explodes while the lottery's stays low.
                        let train = |j: usize| -> u32 {
                            if j == n - 1 {
                                1
                            } else {
                                (2 * weights[j]).max(1)
                            }
                        };
                        let total_words: u32 = (0..n).map(|j| train(j) * 16).sum();
                        let mut period = (f64::from(total_words) / util).round().max(2.0) as u64;
                        while gcd(period, wheel) != 1 {
                            period += 1;
                        }
                        if train(i) == 1 {
                            GeneratorSpec::periodic(period, 0, SizeDist::fixed(16))
                        } else {
                            GeneratorSpec::bursty(
                                train(i),
                                train(i),
                                0,
                                period - 1,
                                period - 1,
                                0,
                                SizeDist::fixed(16),
                            )
                        }
                    }
                    TrafficClass::T7 => {
                        let size = SizeDist::bimodal(2, 32, 0.4);
                        GeneratorSpec::poisson(load / size.mean(), size)
                    }
                    TrafficClass::T8 => {
                        GeneratorSpec::poisson((load / 2.0).min(1.0), SizeDist::fixed(2))
                    }
                    TrafficClass::T9 => bursty_with_load(load, 1, 2, 64, 31 * i as u64),
                }
            })
            .collect()
    }
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Saturating traffic for the bandwidth-sharing experiments of
/// Figures 4 and 6(a): every master offers far more than its fair share,
/// so the bus always has at least one pending request and the arbiter
/// alone decides the allocation.
pub fn saturating_specs(masters: usize) -> Vec<GeneratorSpec> {
    // Each master alone offers ~80% of the bus capacity, matching the
    // paper's Figure 4 where the top-priority component reaches ~78%.
    (0..masters).map(|_| GeneratorSpec::poisson(0.05, SizeDist::fixed(16))).collect()
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Builds a bursty on–off spec whose long-run offered load is `load`
/// words per cycle, with back-to-back bursts of `burst_min..=burst_max`
/// messages of `words` words and the given phase offset.
fn bursty_with_load(
    load: f64,
    burst_min: u32,
    burst_max: u32,
    words: u32,
    phase: u64,
) -> GeneratorSpec {
    let mean_msgs = f64::from(burst_min + burst_max) / 2.0;
    let words_per_burst = mean_msgs * f64::from(words);
    // offered_load = words_per_burst / (1 + off_mean)  for intra_gap = 0.
    let off_mean = (words_per_burst / load - 1.0).max(1.0);
    let off_min = (off_mean * 0.5).round() as u64;
    let off_max = (off_mean * 1.5).round() as u64;
    GeneratorSpec::bursty(
        burst_min,
        burst_max,
        0,
        off_min.max(1),
        off_max.max(2),
        phase,
        SizeDist::fixed(words),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_hits_its_target_utilization() {
        let weights = [1u32, 2, 3, 4];
        for class in TrafficClass::all() {
            let specs = class.specs(&weights);
            assert_eq!(specs.len(), 4);
            let load: f64 = specs.iter().map(GeneratorSpec::offered_load).sum();
            let target = class.target_utilization();
            assert!(
                (load - target).abs() < target * 0.1,
                "{class}: offered {load:.3}, target {target:.3}"
            );
        }
    }

    #[test]
    fn weighted_classes_split_load_by_weight() {
        let specs = TrafficClass::T1.specs(&[1, 2, 3, 4]);
        let loads: Vec<f64> = specs.iter().map(GeneratorSpec::offered_load).collect();
        for i in 1..4 {
            let ratio = loads[i] / loads[0];
            let expected = (i + 1) as f64;
            assert!((ratio - expected).abs() < 0.2, "ratio {ratio} vs {expected}");
        }
    }

    #[test]
    fn sparse_class_t3_splits_load_equally() {
        let specs = TrafficClass::T3.specs(&[1, 2, 3, 4]);
        let loads: Vec<f64> = specs.iter().map(GeneratorSpec::offered_load).collect();
        for i in 1..4 {
            assert!((loads[i] - loads[0]).abs() < loads[0] * 0.05, "loads {loads:?}");
        }
    }

    #[test]
    fn t6_gives_the_high_weight_master_the_lightest_load() {
        // The latency-critical component sends a single message per
        // cluster; the background masters send trains.
        let specs = TrafficClass::T6.specs(&[1, 2, 3, 4]);
        let loads: Vec<f64> = specs.iter().map(GeneratorSpec::offered_load).collect();
        assert!(loads[3] < loads[0], "loads {loads:?}");
        assert!(loads[2] > loads[1], "background trains scale with weight: {loads:?}");
    }

    #[test]
    fn staggered_classes_differ_from_aligned_only_in_phase() {
        let aligned = TrafficClass::T4.specs(&[1, 2, 3, 4]);
        let staggered = TrafficClass::T5.specs(&[1, 2, 3, 4]);
        for (a, s) in aligned.iter().zip(&staggered) {
            assert!((a.offered_load() - s.offered_load()).abs() < 1e-9);
        }
        assert_ne!(aligned, staggered);
    }

    #[test]
    fn saturating_specs_oversubscribe_the_bus() {
        let total: f64 = saturating_specs(4).iter().map(GeneratorSpec::offered_load).sum();
        assert!(total > 1.5, "total offered {total}");
    }

    #[test]
    fn latency_set_is_a_prefix_of_all() {
        let all = TrafficClass::all();
        let lat = TrafficClass::latency_set();
        assert_eq!(&all[..6], &lat[..]);
    }
}
