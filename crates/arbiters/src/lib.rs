//! # arbiters — conventional SoC bus arbitration protocols
//!
//! Baseline protocols the LOTTERYBUS paper compares against (§2, §3):
//!
//! * [`StaticPriorityArbiter`] — the static-priority shared bus (§2.1):
//!   the highest-priority pending master always wins, with burst-mode
//!   transfers. Provides low latency for the top priority but no control
//!   over bandwidth shares, starving low priorities under load.
//! * [`TdmaArbiter`] — the two-level time-division-multiple-access bus
//!   (§2.2): a timing wheel of statically reserved single-word slots plus
//!   a round-robin second level that reclaims idle slots. Provides
//!   bandwidth guarantees but latencies that are very sensitive to the
//!   alignment of requests with reservations.
//! * [`RoundRobinArbiter`] and [`TokenRingArbiter`] — additional
//!   conventional protocols mentioned in §2/§2.3.
//! * [`DeficitRoundRobinArbiter`] — a deterministic weighted baseline
//!   from the traffic-scheduling literature the paper cites.
//! * [`FailoverArbiter`] — a robustness wrapper around any of the
//!   above: it detects a wedged or contract-violating primary and
//!   permanently falls over to round-robin, keeping the bus serviced.
//! * [`InstrumentedArbiter`] — an observability wrapper around any of
//!   the above: counts decisions, idle cycles, contention and grants
//!   per master through a shared [`ArbiterCounters`] handle without
//!   changing the wrapped protocol's behaviour.
//! * [`ArbiterKind`] — enum dispatch over every built-in protocol
//!   (including both lottery managers), so the simulator's hot loop
//!   makes direct calls instead of `Box<dyn Arbiter>` virtual calls.
//!
//! All arbiters implement [`socsim::Arbiter`] and plug into a
//! [`socsim::SystemBuilder`].
//!
//! ```
//! use arbiters::StaticPriorityArbiter;
//! use socsim::{Arbiter, RequestMap, MasterId, Cycle};
//!
//! # fn main() -> Result<(), arbiters::ArbiterConfigError> {
//! // Master 2 has the highest priority (3), master 0 the lowest (1).
//! let mut arb = StaticPriorityArbiter::new(vec![1, 2, 3])?;
//! let mut map = RequestMap::new(3);
//! map.set_pending(MasterId::new(0), 4);
//! map.set_pending(MasterId::new(2), 4);
//! let grant = arb.arbitrate(&map, Cycle::ZERO).expect("someone pending");
//! assert_eq!(grant.master, MasterId::new(2));
//! # Ok(())
//! # }
//! ```

pub mod deficit_rr;
pub mod error;
pub mod failover;
pub mod instrument;
pub mod kind;
pub mod round_robin;
pub mod soa;
pub mod static_priority;
pub mod tdma;
pub mod token_ring;

pub use deficit_rr::DeficitRoundRobinArbiter;
pub use error::ArbiterConfigError;
pub use failover::FailoverArbiter;
pub use instrument::{ArbiterCounters, InstrumentedArbiter};
pub use kind::ArbiterKind;
pub use round_robin::RoundRobinArbiter;
pub use soa::{
    SoaDeficitRoundRobin, SoaDynamicLottery, SoaRoundRobin, SoaStaticLottery, SoaStaticPriority,
    SoaTdma,
};
pub use static_priority::StaticPriorityArbiter;
pub use tdma::{TdmaArbiter, WheelLayout};
pub use token_ring::TokenRingArbiter;
