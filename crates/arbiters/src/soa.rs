//! Structure-of-arrays decision kernels for fleet cross-lane lowering.
//!
//! When a [`socsim::fleet::Fleet`] detects a group of lanes running the
//! same protocol over the same master count, it lowers their scalar
//! arbiters into one of these kernels: per-lane mutable state becomes a
//! *slot* in flat vectors, and everything the lanes have in common —
//! largest-remainder lottery ticket tables, priority waterfalls, DRR
//! quanta, TDMA timing wheels — is stored **once** and shared by actual
//! equality. Per-slot decisions replicate the scalar protocol exactly:
//! same grants, same state evolution, same randomness consumption; the
//! `kernel_equivalence` fleet matrix and the `proptest` suite in this
//! module's tests pin that byte-for-byte.
//!
//! Each kernel also exposes the hooks the fleet's batched paths need:
//! round-robin uses a branchless two-mask rotation scan instead of the
//! scalar's candidate loop, static priority walks a precomputed
//! descending-priority waterfall over the request bitmask, and TDMA
//! publishes its wheel through [`WheelWalk`] so a saturated window can
//! be resolved arithmetically without arbitrating single cycles at all.

use crate::deficit_rr::DeficitRoundRobinArbiter;
use crate::round_robin::RoundRobinArbiter;
use crate::static_priority::StaticPriorityArbiter;
use crate::tdma::TdmaArbiter;
use lotterybus::{
    DynamicLotteryArbiter, RandomSourceKind, StaticLotteryArbiter, TicketAssignment,
};
use socsim::{Cycle, Grant, MasterId, RequestMap, SoaKernel, WheelWalk};

/// Index of `entry` in `tables`, appending it if absent — the shared-
/// table deduplication every kernel uses. Grouping is by protocol +
/// master count only, so identically-configured lanes share one table
/// while differently-configured lanes in the same group each get their
/// own; correctness never depends on the signature avoiding collisions.
fn dedup_table<T: PartialEq>(tables: &mut Vec<T>, entry: T) -> u32 {
    if let Some(i) = tables.iter().position(|t| *t == entry) {
        return i as u32;
    }
    tables.push(entry);
    (tables.len() - 1) as u32
}

/// Batched single-level round-robin: one rotation pointer per slot, the
/// decision itself a branchless two-mask scan.
pub struct SoaRoundRobin {
    masters: usize,
    /// Per-slot index of the most recently granted master.
    last: Vec<usize>,
}

impl SoaRoundRobin {
    pub(crate) fn lower(peers: &[&RoundRobinArbiter]) -> Self {
        SoaRoundRobin {
            masters: peers[0].masters(),
            last: peers.iter().map(|p| p.last()).collect(),
        }
    }

    pub(crate) fn slot_last(&self, slot: usize) -> usize {
        self.last[slot]
    }
}

impl SoaKernel for SoaRoundRobin {
    fn arbitrate_slot(&mut self, slot: usize, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        let bits = requests.bits();
        if bits == 0 {
            return None;
        }
        // The scalar scan visits start, start+1, …, n-1, 0, …, start-1
        // and grants the first pending master. Split the bitmask at
        // `start`: any pending master at index >= start wins before any
        // below it, and trailing_zeros picks the lowest in each half.
        // `start <= masters - 1 <= 31`, so the shift never overflows.
        let start = (self.last[slot] + 1) % self.masters;
        let above = bits & (!0u32 << start);
        let winner = if above != 0 { above.trailing_zeros() } else { bits.trailing_zeros() };
        let winner = winner as usize;
        self.last[slot] = winner;
        Some(Grant::whole_burst(MasterId::new(winner)))
    }

    /// Empty arbitrations never move `last`: same contract as the
    /// scalar protocol's [`Cycle::NEVER`] horizon.
    fn next_event_slot(&self, _slot: usize, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Batched static priority: stateless per slot; the shared table is the
/// waterfall (master ids in descending priority order), deduplicated
/// across identically-prioritised lanes.
pub struct SoaStaticPriority {
    /// Deduplicated waterfalls: masters in descending priority order.
    orders: Vec<Vec<MasterId>>,
    /// Per-slot index into `orders`.
    slot_order: Vec<u32>,
}

impl SoaStaticPriority {
    pub(crate) fn lower(peers: &[&StaticPriorityArbiter]) -> Self {
        let mut orders: Vec<Vec<MasterId>> = Vec::new();
        let slot_order = peers
            .iter()
            .map(|p| {
                let mut order: Vec<MasterId> = (0..p.masters()).map(MasterId::new).collect();
                // Priorities are unique by construction
                // (`ArbiterConfigError::DuplicatePriority`), so descending
                // order is total and the waterfall needs no tie-break.
                order.sort_by_key(|&m| std::cmp::Reverse(p.priority(m)));
                dedup_table(&mut orders, order)
            })
            .collect();
        SoaStaticPriority { orders, slot_order }
    }
}

impl SoaKernel for SoaStaticPriority {
    fn arbitrate_slot(&mut self, slot: usize, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        let bits = requests.bits();
        if bits == 0 {
            return None;
        }
        self.orders[self.slot_order[slot] as usize]
            .iter()
            .find(|m| bits & (1 << m.index()) != 0)
            .map(|&m| Grant::whole_burst(m))
    }

    /// Stateless protocol: idle spans change nothing.
    fn next_event_slot(&self, _slot: usize, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Batched deficit round-robin: shared quanta tables, per-slot deficit
/// counters and visit pointer.
pub struct SoaDeficitRoundRobin {
    /// Deduplicated per-visit quanta tables.
    quanta: Vec<Vec<u32>>,
    /// Per-slot index into `quanta`.
    slot_table: Vec<u32>,
    /// Per-slot deficit counters, flattened at a `masters` stride so
    /// one slot's counters are a single contiguous block instead of a
    /// heap-scattered vector per slot.
    deficit: Vec<u32>,
    /// Per-slot round-robin visit pointer.
    next: Vec<usize>,
    masters: usize,
}

impl SoaDeficitRoundRobin {
    pub(crate) fn lower(peers: &[&DeficitRoundRobinArbiter]) -> Self {
        let mut quanta: Vec<Vec<u32>> = Vec::new();
        let slot_table =
            peers.iter().map(|p| dedup_table(&mut quanta, p.quanta().to_vec())).collect();
        SoaDeficitRoundRobin {
            quanta,
            slot_table,
            deficit: peers.iter().flat_map(|p| p.deficit().iter().copied()).collect(),
            next: peers.iter().map(|p| p.next()).collect(),
            masters: peers[0].quanta().len(),
        }
    }

    pub(crate) fn slot_deficit(&self, slot: usize) -> &[u32] {
        &self.deficit[slot * self.masters..][..self.masters]
    }

    pub(crate) fn slot_next(&self, slot: usize) -> usize {
        self.next[slot]
    }
}

impl SoaKernel for SoaDeficitRoundRobin {
    fn arbitrate_slot(&mut self, slot: usize, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        if requests.is_empty() {
            return None;
        }
        let n = self.masters;
        let quanta = &self.quanta[self.slot_table[slot] as usize][..n];
        let deficit = &mut self.deficit[slot * n..][..n];
        let next = &mut self.next[slot];
        // Identical to the scalar loop: at most one round, the pointer
        // always advances, idle masters visited on the way forfeit
        // their deficit, the first pending master is served.
        for _ in 0..n {
            let m = *next;
            *next = (*next + 1) % n;
            if requests.is_pending(MasterId::new(m)) {
                deficit[m] = deficit[m].saturating_add(quanta[m]);
                let words = deficit[m].min(requests.pending_words(MasterId::new(m)));
                deficit[m] -= words;
                return Some(Grant { master: MasterId::new(m), max_words: words });
            }
            deficit[m] = 0;
        }
        None
    }

    /// Empty arbitrations return before touching any state.
    fn next_event_slot(&self, _slot: usize, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// One deduplicated TDMA timing wheel plus the per-master sorted slot
/// indices the fleet's arithmetic walk consumes.
#[derive(PartialEq)]
struct WheelTable {
    wheel: Vec<MasterId>,
    /// `positions[m]` = sorted wheel indices owned by master `m`.
    positions: Vec<Vec<u32>>,
}

impl WheelTable {
    fn new(wheel: &[MasterId], masters: usize) -> Self {
        let mut positions = vec![Vec::new(); masters];
        for (i, owner) in wheel.iter().enumerate() {
            positions[owner.index()].push(i as u32);
        }
        WheelTable { wheel: wheel.to_vec(), positions }
    }
}

/// Batched two-level TDMA: shared deduplicated wheels, per-slot wheel
/// position and reclaim pointer. Publishes [`WheelWalk`] so saturated
/// windows resolve arithmetically.
pub struct SoaTdma {
    tables: Vec<WheelTable>,
    /// Per-slot index into `tables`.
    slot_table: Vec<u32>,
    /// The deduplicated wheels flattened back to back: decisions index
    /// this flat storage through the per-slot offset/length pair below
    /// and never chase the `tables` structure (which serves the
    /// arithmetic walk instead).
    wheels: Vec<MasterId>,
    /// Per-slot offset of the slot's wheel inside `wheels`.
    wheel_off: Vec<u32>,
    /// Per-slot wheel length.
    wheel_len: Vec<u32>,
    /// Per-slot wheel position (next slot to be used).
    position: Vec<usize>,
    /// Per-slot second-level reclaim pointer.
    rr: Vec<usize>,
    masters: usize,
}

impl SoaTdma {
    pub(crate) fn lower(peers: &[&TdmaArbiter]) -> Self {
        let masters = peers[0].masters();
        let mut tables: Vec<WheelTable> = Vec::new();
        let slot_table: Vec<u32> = peers
            .iter()
            .map(|p| dedup_table(&mut tables, WheelTable::new(p.wheel(), masters)))
            .collect();
        let mut wheels = Vec::new();
        let table_off: Vec<u32> = tables
            .iter()
            .map(|t| {
                let off = wheels.len() as u32;
                wheels.extend_from_slice(&t.wheel);
                off
            })
            .collect();
        let wheel_off = slot_table.iter().map(|&t| table_off[t as usize]).collect();
        let wheel_len =
            slot_table.iter().map(|&t| tables[t as usize].wheel.len() as u32).collect();
        SoaTdma {
            tables,
            slot_table,
            wheels,
            wheel_off,
            wheel_len,
            position: peers.iter().map(|p| p.position()).collect(),
            rr: peers.iter().map(|p| p.rr()).collect(),
            masters,
        }
    }

    pub(crate) fn slot_position(&self, slot: usize) -> usize {
        self.position[slot]
    }

    pub(crate) fn slot_rr(&self, slot: usize) -> usize {
        self.rr[slot]
    }
}

impl SoaKernel for SoaTdma {
    fn arbitrate_slot(&mut self, slot: usize, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        let len = self.wheel_len[slot] as usize;
        // The wheel turns every bus cycle whether or not anyone uses
        // the slot — exactly like the scalar arbiter.
        let owner = self.wheels[self.wheel_off[slot] as usize + self.position[slot]];
        self.position[slot] = (self.position[slot] + 1) % len;
        if requests.is_pending(owner) {
            return Some(Grant::single_word(owner));
        }
        // Second level: round-robin reclaim of the unused slot.
        for k in 1..=self.masters {
            let candidate = MasterId::new((self.rr[slot] + k) % self.masters);
            if requests.is_pending(candidate) {
                self.rr[slot] = candidate.index();
                return Some(Grant::single_word(candidate));
            }
        }
        None
    }

    /// The wheel's idle rotation is a pure function of the skipped
    /// cycle count, replicated by [`SoaKernel::skip_idle_slot`].
    fn next_event_slot(&self, _slot: usize, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }

    fn skip_idle_slot(&mut self, slot: usize, delta: u64) {
        let len = self.wheel_len[slot] as usize;
        self.position[slot] = (self.position[slot] + (delta % len as u64) as usize) % len;
    }

    fn wheel_walk(&self, slot: usize) -> Option<WheelWalk<'_>> {
        let table = &self.tables[self.slot_table[slot] as usize];
        Some(WheelWalk::new(self.position[slot], table.wheel.len(), &table.positions))
    }

    fn advance_wheel(&mut self, slot: usize, cycles: u64) {
        // While every master stays pending the slot owner is always
        // served: each granted cycle turns the wheel once and the
        // reclaim pointer never moves.
        self.skip_idle_slot(slot, cycles);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Batched static lottery: one representative arbiter per unique ticket
/// assignment carries the shared largest-remainder LUT; each slot keeps
/// only its own draw-source register.
pub struct SoaStaticLottery {
    /// Deduplicated representatives; the LUT inside each is the shared
    /// ticket table for every slot pointing at it.
    reps: Vec<StaticLotteryArbiter>,
    /// Per-slot index into `reps`.
    slot_rep: Vec<u32>,
    /// Per-slot draw source, register state moved in from the lane.
    sources: Vec<RandomSourceKind>,
}

impl SoaStaticLottery {
    pub(crate) fn lower(peers: &[&StaticLotteryArbiter]) -> Option<Self> {
        let mut reps: Vec<StaticLotteryArbiter> = Vec::new();
        let mut slot_rep = Vec::with_capacity(peers.len());
        let mut sources = Vec::with_capacity(peers.len());
        for peer in peers {
            // Custom (dyn-boxed) draw sources cannot be duplicated into
            // a slot; the whole group stays scalar.
            sources.push(peer.random_source().clone_builtin()?);
            let rep = match reps.iter().position(|r| r.tickets() == peer.tickets()) {
                Some(i) => i as u32,
                None => {
                    // Rebuilding from the same assignment reproduces the
                    // same LUT; the representative's own source is never
                    // drawn from.
                    reps.push(StaticLotteryArbiter::new(peer.tickets().clone()).ok()?);
                    (reps.len() - 1) as u32
                }
            };
            slot_rep.push(rep);
        }
        Some(SoaStaticLottery { reps, slot_rep, sources })
    }

    pub(crate) fn slot_source(&self, slot: usize) -> &RandomSourceKind {
        &self.sources[slot]
    }
}

impl SoaKernel for SoaStaticLottery {
    fn arbitrate_slot(&mut self, slot: usize, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        self.reps[self.slot_rep[slot] as usize].decide_with(requests, &mut self.sources[slot])
    }

    /// The LFSR only draws once contenders exist: idle spans change
    /// nothing, same as the scalar manager.
    fn next_event_slot(&self, _slot: usize, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Batched *frozen* dynamic lottery (no policy, no compensation): the
/// effective holdings can never change, so slots sharing a ticket
/// assignment share one representative and differ only in draw state.
pub struct SoaDynamicLottery {
    reps: Vec<DynamicLotteryArbiter>,
    /// Per-slot index into `reps`.
    slot_rep: Vec<u32>,
    /// Per-slot draw source, register state moved in from the lane.
    sources: Vec<RandomSourceKind>,
}

impl SoaDynamicLottery {
    pub(crate) fn lower(peers: &[&DynamicLotteryArbiter]) -> Option<Self> {
        let mut reps: Vec<DynamicLotteryArbiter> = Vec::new();
        let mut slot_rep = Vec::with_capacity(peers.len());
        let mut sources = Vec::with_capacity(peers.len());
        for peer in peers {
            if !peer.is_frozen() {
                return None;
            }
            sources.push(peer.random_source().clone_builtin()?);
            let rep = match reps.iter().position(|r| r.tickets() == peer.tickets()) {
                Some(i) => i as u32,
                None => {
                    let tickets = TicketAssignment::new(peer.tickets().to_vec()).ok()?;
                    reps.push(DynamicLotteryArbiter::new(tickets));
                    (reps.len() - 1) as u32
                }
            };
            slot_rep.push(rep);
        }
        Some(SoaDynamicLottery { reps, slot_rep, sources })
    }

    pub(crate) fn slot_source(&self, slot: usize) -> &RandomSourceKind {
        &self.sources[slot]
    }
}

impl SoaKernel for SoaDynamicLottery {
    fn arbitrate_slot(&mut self, slot: usize, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        self.reps[self.slot_rep[slot] as usize].decide_frozen(requests, &mut self.sources[slot])
    }

    /// Frozen managers have no scheduled ticket updates.
    fn next_event_slot(&self, _slot: usize, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
