//! Graceful arbiter degradation: a failover wrapper around any primary.
//!
//! An arbiter is a single point of failure for the whole bus: if its
//! grant logic wedges or corrupts, every master starves. The
//! [`FailoverArbiter`] wraps a primary protocol and watches its
//! decisions; when the primary misbehaves it falls over to a plain
//! round-robin backup, trading the primary's performance properties
//! for continued service. By default the degradation is permanent;
//! [`FailoverArbiter::with_recovery`] additionally shadow-probes the
//! demoted primary and re-promotes it once it has produced a
//! configurable streak of healthy decisions (a fault window ending).
//!
//! Two classes of misbehaviour trip the failover:
//!
//! * **Invalid grants** — granting a master that is out of range or not
//!   requesting, or granting zero words. These are protocol-level
//!   contract violations (the bus would panic on them) and trip the
//!   failover immediately.
//! * **Wedging** — returning no grant for `patience` consecutive
//!   arbitration cycles despite pending requests. Legitimate protocols
//!   may idle a few cycles with requests pending (a TDMA wheel hops
//!   empty slots; a token ring passes the token), so the patience must
//!   exceed the primary's longest legitimate idle streak — the default
//!   of 64 cycles covers every baseline in this crate at its paper
//!   configuration.

use crate::error::ArbiterConfigError;
use crate::round_robin::RoundRobinArbiter;
use socsim::{Arbiter, Cycle, Grant, RequestMap};

/// Default number of consecutive grant-less cycles (with requests
/// pending) tolerated before the primary is declared wedged.
pub const DEFAULT_PATIENCE: u64 = 64;

/// Wraps a primary arbiter and falls over to round-robin when the
/// primary misbehaves. See the [module docs](self) for the failure
/// model.
///
/// ```
/// use arbiters::{FailoverArbiter, StaticPriorityArbiter};
/// use socsim::{Arbiter, Cycle, MasterId, RequestMap};
///
/// # fn main() -> Result<(), arbiters::ArbiterConfigError> {
/// let primary = Box::new(StaticPriorityArbiter::new(vec![1, 2])?);
/// let mut arb = FailoverArbiter::new(primary, 2)?;
/// let mut map = RequestMap::new(2);
/// map.set_pending(MasterId::new(0), 4);
/// assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(0));
/// assert_eq!(arb.failovers(), 0); // healthy primary stays in charge
/// # Ok(())
/// # }
/// ```
pub struct FailoverArbiter {
    primary: Box<dyn Arbiter>,
    fallback: RoundRobinArbiter,
    masters: usize,
    patience: u64,
    /// Consecutive arbitration cycles the primary returned no grant
    /// while at least one request was pending.
    starved: u64,
    failed_over: bool,
    failovers: u64,
    /// `Some(window)` enables recovery: while failed over, the primary
    /// is shadow-consulted every arbitration, and after `window`
    /// consecutive healthy decisions with requests pending it is
    /// re-promoted. `None` (the default) keeps degradation permanent.
    recovery_after: Option<u64>,
    /// Consecutive healthy shadow decisions (valid grant with requests
    /// pending) observed from the demoted primary.
    healthy_streak: u64,
    recoveries: u64,
    name: String,
}

impl std::fmt::Debug for FailoverArbiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverArbiter")
            .field("primary", &self.primary.name())
            .field("patience", &self.patience)
            .field("failed_over", &self.failed_over)
            .finish()
    }
}

impl FailoverArbiter {
    /// Wraps `primary` with the default patience.
    ///
    /// # Errors
    ///
    /// Returns an error if `masters` is zero or exceeds the bus width.
    pub fn new(primary: Box<dyn Arbiter>, masters: usize) -> Result<Self, ArbiterConfigError> {
        Self::with_patience(primary, masters, DEFAULT_PATIENCE)
    }

    /// Wraps `primary`, declaring it wedged after `patience` consecutive
    /// grant-less cycles with requests pending.
    ///
    /// # Errors
    ///
    /// Returns an error if `masters` is zero or exceeds the bus width,
    /// or `patience` is zero.
    pub fn with_patience(
        primary: Box<dyn Arbiter>,
        masters: usize,
        patience: u64,
    ) -> Result<Self, ArbiterConfigError> {
        if patience == 0 {
            return Err(ArbiterConfigError::ZeroPatience);
        }
        let fallback = RoundRobinArbiter::new(masters)?;
        let name = format!("failover({})", primary.name());
        Ok(FailoverArbiter {
            primary,
            fallback,
            masters,
            patience,
            starved: 0,
            failed_over: false,
            failovers: 0,
            recovery_after: None,
            healthy_streak: 0,
            recoveries: 0,
            name,
        })
    }

    /// Wraps `primary` with graceful recovery: while failed over, the
    /// demoted primary is shadow-consulted on every arbitration, and
    /// after `recovery_window` consecutive healthy decisions (a valid
    /// grant with requests pending) it is re-promoted to serve grants
    /// again. Shadow decisions on an idle bus neither extend nor reset
    /// the streak — health can only be judged against real demand.
    ///
    /// Re-promotion takes effect on the *next* arbitration; the cycle
    /// that completes the streak is still served by the backup, so a
    /// grant is never issued twice for one cycle.
    ///
    /// # Errors
    ///
    /// Returns an error if `masters` is zero or exceeds the bus width,
    /// or `patience` or `recovery_window` is zero.
    pub fn with_recovery(
        primary: Box<dyn Arbiter>,
        masters: usize,
        patience: u64,
        recovery_window: u64,
    ) -> Result<Self, ArbiterConfigError> {
        if recovery_window == 0 {
            return Err(ArbiterConfigError::ZeroRecoveryWindow);
        }
        let mut arb = Self::with_patience(primary, masters, patience)?;
        arb.recovery_after = Some(recovery_window);
        Ok(arb)
    }

    /// Whether the backup policy is in charge.
    pub fn is_failed_over(&self) -> bool {
        self.failed_over
    }

    /// Times the primary was re-promoted after a healthy streak (always
    /// zero without [`FailoverArbiter::with_recovery`]).
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    fn trip(&mut self) {
        self.failed_over = true;
        self.failovers += 1;
        self.starved = 0;
        self.healthy_streak = 0;
    }

    /// Shadow-consults the demoted primary (recovery mode only) and
    /// re-promotes it once the healthy streak reaches the window. The
    /// shadow grant is discarded — the backup still serves this cycle.
    fn probe_primary(&mut self, requests: &RequestMap, now: Cycle) {
        let Some(window) = self.recovery_after else { return };
        let any_pending = requests.iter_pending().next().is_some();
        let shadow = self.primary.arbitrate(requests, now);
        if !any_pending {
            // An idle bus says nothing about health either way.
            return;
        }
        match shadow {
            Some(grant) if !self.is_invalid(grant, requests) => self.healthy_streak += 1,
            _ => self.healthy_streak = 0,
        }
        if self.healthy_streak >= window {
            self.failed_over = false;
            self.starved = 0;
            self.healthy_streak = 0;
            self.recoveries += 1;
        }
    }

    /// Whether `grant` violates the arbitration contract for `requests`.
    fn is_invalid(&self, grant: Grant, requests: &RequestMap) -> bool {
        grant.master.index() >= self.masters
            || !requests.is_pending(grant.master)
            || grant.max_words == 0
    }
}

impl Arbiter for FailoverArbiter {
    fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
        if self.failed_over {
            self.probe_primary(requests, now);
            return self.fallback.arbitrate(requests, now);
        }
        let any_pending = requests.iter_pending().next().is_some();
        match self.primary.arbitrate(requests, now) {
            Some(grant) if self.is_invalid(grant, requests) => {
                // Contract violation: the bus would panic on this grant.
                self.trip();
                self.fallback.arbitrate(requests, now)
            }
            Some(grant) => {
                self.starved = 0;
                Some(grant)
            }
            None if any_pending => {
                self.starved += 1;
                if self.starved >= self.patience {
                    self.trip();
                    self.fallback.arbitrate(requests, now)
                } else {
                    None
                }
            }
            None => {
                self.starved = 0;
                None
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Delegates to whichever arbiter is in charge. A custom primary
    /// that does not implement `next_event` reports `now` (the
    /// conservative default), so a misbehaving primary — one that might
    /// grant on an empty map — is never skipped over. In recovery mode
    /// the demoted primary is still shadow-probed every arbitration, so
    /// while failed over its horizon constrains skipping too.
    fn next_event(&self, now: Cycle) -> Cycle {
        if self.failed_over {
            let fallback = self.fallback.next_event(now);
            if self.recovery_after.is_some() {
                fallback.min(self.primary.next_event(now))
            } else {
                fallback
            }
        } else {
            self.primary.next_event(now)
        }
    }

    /// Replays `delta` empty arbitrations: the delegate skips, and (pre
    /// failover) the starvation counter resets exactly as each empty
    /// call would have reset it. In recovery mode the demoted primary
    /// also skips — shadow probes on an empty map advance its state but
    /// never touch the healthy streak, so the replay is exact.
    fn skip_idle(&mut self, delta: u64) {
        if delta == 0 {
            return;
        }
        if self.failed_over {
            self.fallback.skip_idle(delta);
            if self.recovery_after.is_some() {
                self.primary.skip_idle(delta);
            }
        } else {
            self.primary.skip_idle(delta);
            self.starved = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_priority::StaticPriorityArbiter;
    use socsim::MasterId;

    /// A primary that wedges (never grants) after a set cycle.
    struct WedgingPrimary {
        wedge_at: u64,
        inner: StaticPriorityArbiter,
    }

    impl Arbiter for WedgingPrimary {
        fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
            if now.index() >= self.wedge_at {
                None
            } else {
                self.inner.arbitrate(requests, now)
            }
        }
        fn name(&self) -> &str {
            "wedging"
        }
    }

    /// A primary that grants a master that never requested.
    struct RogueGranter;

    impl Arbiter for RogueGranter {
        fn arbitrate(&mut self, _requests: &RequestMap, _now: Cycle) -> Option<Grant> {
            Some(Grant::whole_burst(MasterId::new(1)))
        }
        fn name(&self) -> &str {
            "rogue"
        }
    }

    fn pending(masters: usize, which: &[usize]) -> RequestMap {
        let mut map = RequestMap::new(masters);
        for &m in which {
            map.set_pending(MasterId::new(m), 4);
        }
        map
    }

    #[test]
    fn healthy_primary_is_transparent() {
        let primary = Box::new(StaticPriorityArbiter::new(vec![1, 2, 3]).expect("valid"));
        let mut arb = FailoverArbiter::new(primary, 3).expect("valid");
        let map = pending(3, &[0, 2]);
        for c in 0..200 {
            let grant = arb.arbitrate(&map, Cycle::new(c)).expect("grant");
            assert_eq!(grant.master, MasterId::new(2), "priority order preserved");
        }
        assert_eq!(arb.failovers(), 0);
        assert!(!arb.is_failed_over());
    }

    #[test]
    fn wedged_primary_trips_failover_after_patience() {
        let primary = Box::new(WedgingPrimary {
            wedge_at: 10,
            inner: StaticPriorityArbiter::new(vec![1, 2]).expect("valid"),
        });
        let mut arb = FailoverArbiter::with_patience(primary, 2, 5).expect("valid");
        let map = pending(2, &[0, 1]);
        let mut granted = 0u32;
        for c in 0..30 {
            if arb.arbitrate(&map, Cycle::new(c)).is_some() {
                granted += 1;
            }
        }
        assert!(arb.is_failed_over());
        assert_eq!(arb.failovers(), 1);
        // 10 healthy cycles + post-failover cycles all grant; only the
        // 4 starved cycles before the patience ran out are lost (the
        // 5th starved cycle trips and grants from the backup).
        assert_eq!(granted, 30 - 4);
        assert_eq!(arb.name(), "failover(wedging)");
    }

    #[test]
    fn invalid_grant_trips_immediately() {
        let mut arb = FailoverArbiter::new(Box::new(RogueGranter), 2).expect("valid");
        let map = pending(2, &[0]); // master 1 is NOT pending
        let grant = arb.arbitrate(&map, Cycle::ZERO).expect("backup grants");
        assert_eq!(grant.master, MasterId::new(0));
        assert!(arb.is_failed_over());
        assert_eq!(arb.failovers(), 1);
    }

    #[test]
    fn idle_bus_does_not_count_toward_patience() {
        let primary = Box::new(WedgingPrimary {
            wedge_at: 0,
            inner: StaticPriorityArbiter::new(vec![1, 2]).expect("valid"),
        });
        let mut arb = FailoverArbiter::with_patience(primary, 2, 5).expect("valid");
        let empty = RequestMap::new(2);
        for c in 0..100 {
            assert!(arb.arbitrate(&empty, Cycle::new(c)).is_none());
        }
        assert!(!arb.is_failed_over(), "no pending requests, no starvation");
    }

    #[test]
    fn starvation_counter_resets_on_grant() {
        // Grants every 4th cycle: never reaches a patience of 5.
        struct Sputtering(StaticPriorityArbiter);
        impl Arbiter for Sputtering {
            fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
                now.index().is_multiple_of(4).then(|| self.0.arbitrate(requests, now)).flatten()
            }
            fn name(&self) -> &str {
                "sputtering"
            }
        }
        let primary = Box::new(Sputtering(StaticPriorityArbiter::new(vec![1, 2]).expect("valid")));
        let mut arb = FailoverArbiter::with_patience(primary, 2, 5).expect("valid");
        let map = pending(2, &[0, 1]);
        for c in 0..100 {
            arb.arbitrate(&map, Cycle::new(c));
        }
        assert!(!arb.is_failed_over());
    }

    #[test]
    fn skip_idle_delegates_to_the_arbiter_in_charge() {
        use crate::tdma::{TdmaArbiter, WheelLayout};
        let make = || {
            let primary =
                Box::new(TdmaArbiter::new(&[1, 1, 1], WheelLayout::Contiguous).expect("valid"));
            FailoverArbiter::with_patience(primary, 3, 5).expect("valid")
        };
        let empty = RequestMap::new(3);
        let mut stepped = make();
        let mut skipped = make();
        for c in 0..7u64 {
            assert!(stepped.arbitrate(&empty, Cycle::new(c)).is_none());
        }
        skipped.skip_idle(7);
        // The primary TDMA wheel rotated identically: the next real
        // decision (slot owner after 7 rotations) agrees.
        let map = pending(3, &[0, 1, 2]);
        assert_eq!(stepped.arbitrate(&map, Cycle::new(7)), skipped.arbitrate(&map, Cycle::new(7)));
        assert!(!stepped.is_failed_over() && !skipped.is_failed_over());
    }

    #[test]
    fn default_primary_horizon_blocks_skipping() {
        // A custom primary without a `next_event` override must report
        // `now`: the kernel then never skips, so a rogue empty-map grant
        // can still trip the failover at its exact cycle.
        let mut arb = FailoverArbiter::new(Box::new(RogueGranter), 2).expect("valid");
        assert_eq!(arb.next_event(Cycle::new(9)), Cycle::new(9));
        // After failing over, the round-robin fallback frees the horizon.
        let _ = arb.arbitrate(&pending(2, &[0]), Cycle::ZERO);
        assert!(arb.is_failed_over());
        assert_eq!(arb.next_event(Cycle::new(9)), Cycle::NEVER);
    }

    #[test]
    fn zero_patience_rejected() {
        let primary = Box::new(StaticPriorityArbiter::new(vec![1]).expect("valid"));
        let err = FailoverArbiter::with_patience(primary, 1, 0).unwrap_err();
        assert_eq!(err, ArbiterConfigError::ZeroPatience);
    }

    /// A primary that wedges only inside `[from, until)` and is healthy
    /// on both sides — a bounded fault window.
    struct WedgeWindow {
        from: u64,
        until: u64,
        inner: StaticPriorityArbiter,
    }

    impl Arbiter for WedgeWindow {
        fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
            if (self.from..self.until).contains(&now.index()) {
                None
            } else {
                self.inner.arbitrate(requests, now)
            }
        }
        fn name(&self) -> &str {
            "wedge-window"
        }
    }

    fn wedge_window(from: u64, until: u64) -> Box<WedgeWindow> {
        Box::new(WedgeWindow {
            from,
            until,
            inner: StaticPriorityArbiter::new(vec![1, 2]).expect("valid"),
        })
    }

    #[test]
    fn recovery_re_promotes_primary_after_healthy_streak() {
        // Wedge during [10, 30); patience 5 trips the failover at cycle
        // 14. From cycle 30 the shadow probes see healthy grants again;
        // a window of 3 re-promotes after cycle 32, so cycle 33 onward
        // is served by the primary (strict priority: master 1 wins).
        let mut arb = FailoverArbiter::with_recovery(wedge_window(10, 30), 2, 5, 3).expect("valid");
        let map = pending(2, &[0, 1]);
        let mut post_recovery_grants = Vec::new();
        for c in 0..40u64 {
            let grant = arb.arbitrate(&map, Cycle::new(c));
            if c >= 33 {
                post_recovery_grants.push(grant.expect("primary grants").master);
            }
        }
        assert_eq!(arb.failovers(), 1);
        assert_eq!(arb.recoveries(), 1);
        assert!(!arb.is_failed_over(), "primary re-promoted after the fault window");
        // Round-robin alternates masters; the re-promoted priority
        // primary grants master 1 exclusively.
        assert!(post_recovery_grants.iter().all(|&m| m == MasterId::new(1)));
    }

    #[test]
    fn without_recovery_degradation_stays_permanent() {
        let mut arb = FailoverArbiter::with_patience(wedge_window(10, 30), 2, 5).expect("valid");
        let map = pending(2, &[0, 1]);
        for c in 0..200u64 {
            arb.arbitrate(&map, Cycle::new(c));
        }
        assert!(arb.is_failed_over(), "no recovery configured: one-way degradation");
        assert_eq!(arb.recoveries(), 0);
        assert_eq!(arb.failovers(), 1);
    }

    #[test]
    fn idle_probes_neither_advance_nor_reset_the_streak() {
        // Trip at 14, healthy from 30. Two healthy probes (30, 31),
        // then idle cycles, then one more healthy probe completes the
        // window of 3: idle must have preserved the streak.
        let mut arb = FailoverArbiter::with_recovery(wedge_window(10, 30), 2, 5, 3).expect("valid");
        let map = pending(2, &[0, 1]);
        let empty = RequestMap::new(2);
        for c in 0..32u64 {
            arb.arbitrate(&map, Cycle::new(c));
        }
        assert!(arb.is_failed_over());
        for c in 32..64u64 {
            arb.arbitrate(&empty, Cycle::new(c));
        }
        assert!(arb.is_failed_over(), "idle probes must not count as healthy");
        arb.arbitrate(&map, Cycle::new(64));
        assert!(!arb.is_failed_over(), "third healthy probe completes the streak");
        assert_eq!(arb.recoveries(), 1);
    }

    #[test]
    fn unhealthy_probe_resets_the_streak() {
        // Wedged in [10, 30), healthy at 30–31 (streak 2), wedged again
        // at exactly 32 (streak resets), healthy from 33: the window of
        // 3 only completes at cycle 35.
        struct Stutter {
            inner: StaticPriorityArbiter,
        }
        impl Arbiter for Stutter {
            fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
                let c = now.index();
                if (10..30).contains(&c) || c == 32 {
                    None
                } else {
                    self.inner.arbitrate(requests, now)
                }
            }
            fn name(&self) -> &str {
                "stutter"
            }
        }
        let primary =
            Box::new(Stutter { inner: StaticPriorityArbiter::new(vec![1, 2]).expect("valid") });
        let mut arb = FailoverArbiter::with_recovery(primary, 2, 5, 3).expect("valid");
        let map = pending(2, &[0, 1]);
        for c in 0..35u64 {
            arb.arbitrate(&map, Cycle::new(c));
            if c == 34 {
                break;
            }
        }
        assert!(
            arb.is_failed_over(),
            "a window of 3 straddling the cycle-32 relapse must not re-promote early"
        );
        arb.arbitrate(&map, Cycle::new(35));
        assert!(!arb.is_failed_over(), "streak restarted at 33 and completed at 35");
        assert_eq!(arb.recoveries(), 1);
    }

    #[test]
    fn recovered_primary_can_fail_over_again() {
        // Two separate fault windows: each trips a failover, each is
        // followed by a recovery.
        struct DoubleWedge {
            inner: StaticPriorityArbiter,
        }
        impl Arbiter for DoubleWedge {
            fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
                let c = now.index();
                if (10..30).contains(&c) || (50..70).contains(&c) {
                    None
                } else {
                    self.inner.arbitrate(requests, now)
                }
            }
            fn name(&self) -> &str {
                "double-wedge"
            }
        }
        let primary =
            Box::new(DoubleWedge { inner: StaticPriorityArbiter::new(vec![1, 2]).expect("valid") });
        let mut arb = FailoverArbiter::with_recovery(primary, 2, 5, 3).expect("valid");
        let map = pending(2, &[0, 1]);
        for c in 0..100u64 {
            arb.arbitrate(&map, Cycle::new(c));
        }
        assert_eq!(arb.failovers(), 2);
        assert_eq!(arb.recoveries(), 2);
        assert!(!arb.is_failed_over());
    }

    #[test]
    fn recovery_skip_idle_keeps_primary_in_lockstep() {
        use crate::tdma::{TdmaArbiter, WheelLayout};
        // A TDMA primary demoted by a rogue first decision: while failed
        // over with recovery, idle skipping must advance the shadowed
        // primary exactly as per-cycle empty probes would.
        struct RogueFirst {
            inner: TdmaArbiter,
        }
        impl Arbiter for RogueFirst {
            fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
                if now.index() == 0 {
                    Some(Grant::whole_burst(MasterId::new(1)))
                } else {
                    self.inner.arbitrate(requests, now)
                }
            }
            fn name(&self) -> &str {
                "rogue-first"
            }
            fn next_event(&self, now: Cycle) -> Cycle {
                self.inner.next_event(now)
            }
            fn skip_idle(&mut self, delta: u64) {
                self.inner.skip_idle(delta);
            }
        }
        let make = || {
            let primary = Box::new(RogueFirst {
                inner: TdmaArbiter::new(&[1, 1, 1], WheelLayout::Contiguous).expect("valid"),
            });
            let mut arb = FailoverArbiter::with_recovery(primary, 3, 5, 100).expect("valid");
            // Master 1 is not pending: the rogue grant trips the failover.
            let _ = arb.arbitrate(&pending(3, &[0]), Cycle::ZERO);
            assert!(arb.is_failed_over());
            arb
        };
        let empty = RequestMap::new(3);
        let mut stepped = make();
        let mut skipped = make();
        for c in 1..8u64 {
            assert!(stepped.arbitrate(&empty, Cycle::new(c)).is_none());
        }
        skipped.skip_idle(7);
        let map = pending(3, &[0, 1, 2]);
        assert_eq!(stepped.arbitrate(&map, Cycle::new(8)), skipped.arbitrate(&map, Cycle::new(8)));
        assert_eq!(stepped.healthy_streak, skipped.healthy_streak);
    }

    #[test]
    fn zero_recovery_window_rejected() {
        let primary = Box::new(StaticPriorityArbiter::new(vec![1]).expect("valid"));
        let err = FailoverArbiter::with_recovery(primary, 1, 4, 0).unwrap_err();
        assert_eq!(err, ArbiterConfigError::ZeroRecoveryWindow);
    }
}
