//! Deficit-weighted round-robin arbitration.
//!
//! The paper positions LOTTERYBUS against the traffic-scheduling
//! literature for high-speed switches (its refs \[13\]–\[15\]); deficit
//! round robin is the classic representative of that family, so it is
//! included as an additional weighted baseline. Each master has a
//! *quantum* proportional to its weight; masters are visited in cyclic
//! order and may transfer as long as their accumulated deficit counter
//! covers the words, earning deterministic (not probabilistic)
//! proportional bandwidth — at the cost of round-robin's positional
//! latency rather than the lottery's immediate probabilistic service.

use crate::error::ArbiterConfigError;
use socsim::{Arbiter, Cycle, Grant, MasterId, RequestMap, MAX_MASTERS};

/// Deficit-weighted round-robin bus arbiter.
///
/// On each visit a pending master's deficit grows by its quantum; it is
/// granted `min(deficit, pending)` words and its deficit shrinks by the
/// granted amount. Idle masters forfeit their deficit, keeping the
/// discipline work-conserving.
///
/// ```
/// use arbiters::DeficitRoundRobinArbiter;
/// use socsim::{Arbiter, RequestMap, MasterId, Cycle};
///
/// # fn main() -> Result<(), arbiters::ArbiterConfigError> {
/// let mut arb = DeficitRoundRobinArbiter::new(&[1, 3], 4)?;
/// let mut map = RequestMap::new(2);
/// map.set_pending(MasterId::new(0), 100);
/// map.set_pending(MasterId::new(1), 100);
/// // Over a full round, grants are proportional to the weights.
/// let grant = arb.arbitrate(&map, Cycle::ZERO).expect("someone pending");
/// assert!(grant.max_words >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DeficitRoundRobinArbiter {
    /// Words added to a master's deficit per visit.
    quanta: Vec<u32>,
    deficit: Vec<u32>,
    next: usize,
}

impl DeficitRoundRobinArbiter {
    /// Creates a DRR arbiter where master *i*'s quantum is
    /// `weights[i] * quantum_unit` words per round.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no masters, too many masters, or a
    /// master's weight is zero (it would never be served while others
    /// pend).
    pub fn new(weights: &[u32], quantum_unit: u32) -> Result<Self, ArbiterConfigError> {
        if weights.is_empty() {
            return Err(ArbiterConfigError::NoMasters);
        }
        if weights.len() > MAX_MASTERS {
            return Err(ArbiterConfigError::TooManyMasters {
                got: weights.len(),
                max: MAX_MASTERS,
            });
        }
        if let Some(idle) = weights.iter().position(|&w| w == 0) {
            return Err(ArbiterConfigError::UnservedMaster(idle));
        }
        let quanta: Vec<u32> = weights.iter().map(|&w| w * quantum_unit.max(1)).collect();
        Ok(DeficitRoundRobinArbiter { deficit: vec![0; quanta.len()], quanta, next: 0 })
    }

    /// The per-round quantum of `master` in words.
    pub fn quantum(&self, master: MasterId) -> u32 {
        self.quanta[master.index()]
    }

    /// All per-visit quanta in master order.
    pub(crate) fn quanta(&self) -> &[u32] {
        &self.quanta
    }

    /// The per-master deficit counters.
    pub(crate) fn deficit(&self) -> &[u32] {
        &self.deficit
    }

    /// The round-robin visit pointer.
    pub(crate) fn next(&self) -> usize {
        self.next
    }

    /// Overwrites the mutable state (SoA kernel writeback).
    pub(crate) fn set_state(&mut self, deficit: &[u32], next: usize) {
        self.deficit.copy_from_slice(deficit);
        self.next = next;
    }
}

impl Arbiter for DeficitRoundRobinArbiter {
    fn arbitrate(&mut self, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        if requests.is_empty() {
            return None;
        }
        let n = self.quanta.len();
        // At most one full round: the first pending master visited is
        // served; skipped idle masters forfeit their deficit.
        for _ in 0..n {
            let m = MasterId::new(self.next);
            // The pointer always advances: each master is visited once
            // per round and receives one quantum's worth of service
            // (plus any carried deficit from a partially-served head).
            self.next = (self.next + 1) % n;
            if requests.is_pending(m) {
                self.deficit[m.index()] =
                    self.deficit[m.index()].saturating_add(self.quanta[m.index()]);
                let words = self.deficit[m.index()].min(requests.pending_words(m));
                self.deficit[m.index()] -= words;
                return Some(Grant { master: m, max_words: words });
            }
            // Idle masters forfeit their accumulated deficit.
            self.deficit[m.index()] = 0;
        }
        None
    }

    fn name(&self) -> &str {
        "deficit-rr"
    }

    /// An empty arbitration returns before touching the pointer or any
    /// deficit, so idle spans change nothing: never pins the horizon.
    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saturated(n: usize) -> RequestMap {
        let mut map = RequestMap::new(n);
        for i in 0..n {
            map.set_pending(MasterId::new(i), 1000);
        }
        map
    }

    #[test]
    fn grants_are_weight_proportional_over_rounds() {
        let mut arb = DeficitRoundRobinArbiter::new(&[1, 2, 3], 8).expect("valid");
        let map = saturated(3);
        let mut words = [0u64; 3];
        for k in 0..600 {
            let g = arb.arbitrate(&map, Cycle::new(k)).expect("grant");
            words[g.master.index()] += u64::from(g.max_words);
        }
        let total: u64 = words.iter().sum();
        for (i, &w) in words.iter().enumerate() {
            let share = w as f64 / total as f64;
            let entitled = (i + 1) as f64 / 6.0;
            assert!((share - entitled).abs() < 0.02, "master {i}: {share:.3} vs {entitled:.3}");
        }
    }

    #[test]
    fn idle_masters_forfeit_deficit() {
        let mut arb = DeficitRoundRobinArbiter::new(&[1, 1], 4).expect("valid");
        // Master 1 alone for many rounds…
        let mut map = RequestMap::new(2);
        map.set_pending(MasterId::new(1), 1000);
        for k in 0..50 {
            assert_eq!(arb.arbitrate(&map, Cycle::new(k)).unwrap().master, MasterId::new(1));
        }
        // …then master 0 wakes up: it must not have hoarded deficit.
        map.set_pending(MasterId::new(0), 1000);
        let g = (0..2)
            .map(|k| arb.arbitrate(&map, Cycle::new(100 + k)).unwrap())
            .find(|g| g.master == MasterId::new(0))
            .expect("master 0 served within a round");
        assert!(g.max_words <= 8, "no hoarded deficit: {}", g.max_words);
    }

    #[test]
    fn small_transactions_do_not_leak_bandwidth() {
        // A master with tiny transactions still gets only its share.
        let mut arb = DeficitRoundRobinArbiter::new(&[1, 1], 2).expect("valid");
        let mut map = RequestMap::new(2);
        map.set_pending(MasterId::new(0), 1); // single-word messages
        map.set_pending(MasterId::new(1), 1000);
        let mut words = [0u64; 2];
        for k in 0..400 {
            let g = arb.arbitrate(&map, Cycle::new(k)).expect("grant");
            words[g.master.index()] += u64::from(g.max_words);
        }
        assert!(words[1] > words[0], "bulk master must not be penalized: {words:?}");
    }

    #[test]
    fn validation() {
        assert_eq!(
            DeficitRoundRobinArbiter::new(&[], 4).unwrap_err(),
            ArbiterConfigError::NoMasters
        );
        assert_eq!(
            DeficitRoundRobinArbiter::new(&[1, 0], 4).unwrap_err(),
            ArbiterConfigError::UnservedMaster(1)
        );
    }

    #[test]
    fn empty_map_grants_nothing() {
        let mut arb = DeficitRoundRobinArbiter::new(&[2, 2], 4).expect("valid");
        assert!(arb.arbitrate(&RequestMap::new(2), Cycle::ZERO).is_none());
    }
}
