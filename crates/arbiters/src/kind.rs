//! Enum dispatch over the built-in arbitration protocols.
//!
//! The bus consults its arbiter once per non-busy cycle — the hottest
//! virtual call in the simulator. [`ArbiterKind`] closes the protocol
//! set over the built-ins so `System::step` resolves `arbitrate`
//! statically (and can inline the round-robin scan or the lottery LUT
//! lookup), while [`ArbiterKind::Custom`] keeps arbitrary user
//! protocols pluggable at the old `Box<dyn Arbiter>` cost.
//!
//! Every variant defers to the wrapped protocol for *all* trait
//! methods, so wrapping never changes simulation results — the
//! `kernel_equivalence` differential tests pin this byte-for-byte.
//!
//! ```
//! use arbiters::{ArbiterKind, RoundRobinArbiter};
//! use socsim::{Arbiter, Cycle, MasterId, RequestMap};
//!
//! # fn main() -> Result<(), arbiters::ArbiterConfigError> {
//! let mut arb = ArbiterKind::from(RoundRobinArbiter::new(2)?);
//! let mut map = RequestMap::new(2);
//! map.set_pending(MasterId::new(1), 4);
//! assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(1));
//! assert_eq!(arb.name(), "round-robin");
//! # Ok(())
//! # }
//! ```

use crate::deficit_rr::DeficitRoundRobinArbiter;
use crate::failover::FailoverArbiter;
use crate::round_robin::RoundRobinArbiter;
use crate::static_priority::StaticPriorityArbiter;
use crate::tdma::TdmaArbiter;
use crate::token_ring::TokenRingArbiter;
use lotterybus::{DynamicLotteryArbiter, StaticLotteryArbiter};
use socsim::arbiter::FixedOrderArbiter;
use socsim::{Arbiter, Cycle, Grant, RequestMap};
use std::fmt;

/// A closed enum over every built-in protocol, plus an open escape
/// hatch. See the module docs for why.
//
// The dynamic-lottery variant carries its decision cache inline, which
// makes it much larger than the rest. A `System` holds exactly one
// `ArbiterKind` (never collections of them), so the footprint is
// irrelevant, while keeping the state inline spares the saturated
// arbitration loop a pointer chase.
#[allow(clippy::large_enum_variant)]
pub enum ArbiterKind {
    /// Lowest-index-wins placeholder ([`socsim::arbiter::FixedOrderArbiter`]).
    FixedOrder(FixedOrderArbiter),
    /// Fixed priority order ([`StaticPriorityArbiter`]).
    StaticPriority(StaticPriorityArbiter),
    /// Single-level round-robin ([`RoundRobinArbiter`]).
    RoundRobin(RoundRobinArbiter),
    /// Weighted deficit round-robin ([`DeficitRoundRobinArbiter`]).
    DeficitRoundRobin(DeficitRoundRobinArbiter),
    /// Two-level TDMA ([`TdmaArbiter`]).
    Tdma(TdmaArbiter),
    /// Token ring ([`TokenRingArbiter`]).
    TokenRing(TokenRingArbiter),
    /// Static lottery with a precomputed LUT ([`StaticLotteryArbiter`]).
    StaticLottery(StaticLotteryArbiter),
    /// Dynamic lottery with run-time tickets ([`DynamicLotteryArbiter`]).
    DynamicLottery(DynamicLotteryArbiter),
    /// Failover wrapper around any primary ([`FailoverArbiter`]).
    Failover(FailoverArbiter),
    /// Any other [`Arbiter`], dispatched virtually.
    Custom(Box<dyn Arbiter>),
}

impl fmt::Debug for ArbiterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ArbiterKind").field(&self.name()).finish()
    }
}

/// Expands one delegating match over every variant.
macro_rules! for_each_kind {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            ArbiterKind::FixedOrder($inner) => $body,
            ArbiterKind::StaticPriority($inner) => $body,
            ArbiterKind::RoundRobin($inner) => $body,
            ArbiterKind::DeficitRoundRobin($inner) => $body,
            ArbiterKind::Tdma($inner) => $body,
            ArbiterKind::TokenRing($inner) => $body,
            ArbiterKind::StaticLottery($inner) => $body,
            ArbiterKind::DynamicLottery($inner) => $body,
            ArbiterKind::Failover($inner) => $body,
            ArbiterKind::Custom($inner) => $body,
        }
    };
}

impl Arbiter for ArbiterKind {
    #[inline]
    fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
        for_each_kind!(self, inner => inner.arbitrate(requests, now))
    }

    fn name(&self) -> &str {
        for_each_kind!(self, inner => inner.name())
    }

    fn failovers(&self) -> u64 {
        for_each_kind!(self, inner => inner.failovers())
    }

    #[inline]
    fn next_event(&self, now: Cycle) -> Cycle {
        for_each_kind!(self, inner => inner.next_event(now))
    }

    #[inline]
    fn skip_idle(&mut self, delta: u64) {
        for_each_kind!(self, inner => inner.skip_idle(delta))
    }
}

macro_rules! kind_from {
    ($($ty:ty => $variant:ident),* $(,)?) => {
        $(impl From<$ty> for ArbiterKind {
            fn from(arbiter: $ty) -> Self {
                ArbiterKind::$variant(arbiter)
            }
        })*
    };
}

kind_from! {
    FixedOrderArbiter => FixedOrder,
    StaticPriorityArbiter => StaticPriority,
    RoundRobinArbiter => RoundRobin,
    DeficitRoundRobinArbiter => DeficitRoundRobin,
    TdmaArbiter => Tdma,
    TokenRingArbiter => TokenRing,
    StaticLotteryArbiter => StaticLottery,
    DynamicLotteryArbiter => DynamicLottery,
    FailoverArbiter => Failover,
    Box<dyn Arbiter> => Custom,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tdma::WheelLayout;
    use lotterybus::TicketAssignment;
    use socsim::MasterId;

    fn map_with(masters: usize, pending: &[usize]) -> RequestMap {
        let mut map = RequestMap::new(masters);
        for &m in pending {
            map.set_pending(MasterId::new(m), 8);
        }
        map
    }

    fn builtins(seed: u32) -> Vec<ArbiterKind> {
        let tickets = || TicketAssignment::new(vec![1, 2, 3, 4]).expect("valid");
        vec![
            ArbiterKind::from(FixedOrderArbiter::new(4)),
            ArbiterKind::from(StaticPriorityArbiter::new(vec![1, 2, 3, 4]).expect("valid")),
            ArbiterKind::from(RoundRobinArbiter::new(4).expect("valid")),
            ArbiterKind::from(DeficitRoundRobinArbiter::new(&[1, 2, 3, 4], 8).expect("valid")),
            ArbiterKind::from(
                TdmaArbiter::new(&[1, 2, 3, 4], WheelLayout::Contiguous).expect("valid"),
            ),
            ArbiterKind::from(TokenRingArbiter::new(4).expect("valid")),
            ArbiterKind::from(StaticLotteryArbiter::with_seed(tickets(), seed).expect("valid")),
            ArbiterKind::from(DynamicLotteryArbiter::with_seed(tickets(), seed).expect("valid")),
        ]
    }

    #[test]
    fn every_builtin_matches_its_boxed_copy_decision_for_decision() {
        // The enum wrapper and a `Custom(Box<dyn Arbiter>)` copy of the
        // same protocol must stay in lockstep over a busy schedule —
        // the devirtualized path cannot change a single grant.
        let seed = 0xACE1;
        for (enum_arb, boxed_src) in builtins(seed).into_iter().zip(builtins(seed)) {
            let mut direct = enum_arb;
            let mut boxed = ArbiterKind::Custom(Box::new(boxed_src));
            assert_eq!(direct.name(), boxed.name());
            for c in 0..2_000u64 {
                let pending: &[usize] = match c % 4 {
                    0 => &[0, 1, 2, 3],
                    1 => &[1, 3],
                    2 => &[2],
                    _ => &[],
                };
                let map = map_with(4, pending);
                assert_eq!(
                    direct.arbitrate(&map, Cycle::new(c)),
                    boxed.arbitrate(&map, Cycle::new(c)),
                    "{} diverged at cycle {c}",
                    direct.name()
                );
                assert_eq!(direct.next_event(Cycle::new(c)), boxed.next_event(Cycle::new(c)));
            }
        }
    }

    #[test]
    fn failover_variant_reports_failovers() {
        let primary: Box<dyn Arbiter> = Box::new(FixedOrderArbiter::new(2));
        let kind = ArbiterKind::from(FailoverArbiter::new(primary, 2).expect("valid"));
        assert_eq!(kind.failovers(), 0);
        assert!(kind.name().starts_with("failover("));
    }
}
