//! Enum dispatch over the built-in arbitration protocols.
//!
//! The bus consults its arbiter once per non-busy cycle — the hottest
//! virtual call in the simulator. [`ArbiterKind`] closes the protocol
//! set over the built-ins so `System::step` resolves `arbitrate`
//! statically (and can inline the round-robin scan or the lottery LUT
//! lookup), while [`ArbiterKind::Custom`] keeps arbitrary user
//! protocols pluggable at the old `Box<dyn Arbiter>` cost.
//!
//! Every variant defers to the wrapped protocol for *all* trait
//! methods, so wrapping never changes simulation results — the
//! `kernel_equivalence` differential tests pin this byte-for-byte.
//!
//! ```
//! use arbiters::{ArbiterKind, RoundRobinArbiter};
//! use socsim::{Arbiter, Cycle, MasterId, RequestMap};
//!
//! # fn main() -> Result<(), arbiters::ArbiterConfigError> {
//! let mut arb = ArbiterKind::from(RoundRobinArbiter::new(2)?);
//! let mut map = RequestMap::new(2);
//! map.set_pending(MasterId::new(1), 4);
//! assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(1));
//! assert_eq!(arb.name(), "round-robin");
//! # Ok(())
//! # }
//! ```

use crate::deficit_rr::DeficitRoundRobinArbiter;
use crate::failover::FailoverArbiter;
use crate::round_robin::RoundRobinArbiter;
use crate::soa::{
    SoaDeficitRoundRobin, SoaDynamicLottery, SoaRoundRobin, SoaStaticLottery, SoaStaticPriority,
    SoaTdma,
};
use crate::static_priority::StaticPriorityArbiter;
use crate::tdma::TdmaArbiter;
use crate::token_ring::TokenRingArbiter;
use lotterybus::{DynamicLotteryArbiter, StaticLotteryArbiter};
use socsim::arbiter::FixedOrderArbiter;
use socsim::{Arbiter, Cycle, Grant, RequestMap, SoaKernel};
use std::fmt;

/// A closed enum over every built-in protocol, plus an open escape
/// hatch. See the module docs for why.
//
// The dynamic-lottery variant carries its decision cache inline, which
// makes it much larger than the rest. A `System` holds exactly one
// `ArbiterKind` (never collections of them), so the footprint is
// irrelevant, while keeping the state inline spares the saturated
// arbitration loop a pointer chase.
#[allow(clippy::large_enum_variant)]
pub enum ArbiterKind {
    /// Lowest-index-wins placeholder ([`socsim::arbiter::FixedOrderArbiter`]).
    FixedOrder(FixedOrderArbiter),
    /// Fixed priority order ([`StaticPriorityArbiter`]).
    StaticPriority(StaticPriorityArbiter),
    /// Single-level round-robin ([`RoundRobinArbiter`]).
    RoundRobin(RoundRobinArbiter),
    /// Weighted deficit round-robin ([`DeficitRoundRobinArbiter`]).
    DeficitRoundRobin(DeficitRoundRobinArbiter),
    /// Two-level TDMA ([`TdmaArbiter`]).
    Tdma(TdmaArbiter),
    /// Token ring ([`TokenRingArbiter`]).
    TokenRing(TokenRingArbiter),
    /// Static lottery with a precomputed LUT ([`StaticLotteryArbiter`]).
    StaticLottery(StaticLotteryArbiter),
    /// Dynamic lottery with run-time tickets ([`DynamicLotteryArbiter`]).
    DynamicLottery(DynamicLotteryArbiter),
    /// Failover wrapper around any primary ([`FailoverArbiter`]).
    Failover(FailoverArbiter),
    /// Any other [`Arbiter`], dispatched virtually.
    Custom(Box<dyn Arbiter>),
}

impl fmt::Debug for ArbiterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ArbiterKind").field(&self.name()).finish()
    }
}

/// Expands one delegating match over every variant.
macro_rules! for_each_kind {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            ArbiterKind::FixedOrder($inner) => $body,
            ArbiterKind::StaticPriority($inner) => $body,
            ArbiterKind::RoundRobin($inner) => $body,
            ArbiterKind::DeficitRoundRobin($inner) => $body,
            ArbiterKind::Tdma($inner) => $body,
            ArbiterKind::TokenRing($inner) => $body,
            ArbiterKind::StaticLottery($inner) => $body,
            ArbiterKind::DynamicLottery($inner) => $body,
            ArbiterKind::Failover($inner) => $body,
            ArbiterKind::Custom($inner) => $body,
        }
    };
}

impl Arbiter for ArbiterKind {
    #[inline]
    fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
        for_each_kind!(self, inner => inner.arbitrate(requests, now))
    }

    fn name(&self) -> &str {
        for_each_kind!(self, inner => inner.name())
    }

    fn failovers(&self) -> u64 {
        for_each_kind!(self, inner => inner.failovers())
    }

    #[inline]
    fn next_event(&self, now: Cycle) -> Cycle {
        for_each_kind!(self, inner => inner.next_event(now))
    }

    #[inline]
    fn skip_idle(&mut self, delta: u64) {
        for_each_kind!(self, inner => inner.skip_idle(delta))
    }

    /// Grouping key for fleet SoA lowering: protocol variant plus master
    /// count. Protocols whose decision depends on hidden mutable inputs
    /// the kernel cannot replicate (attached ticket policies,
    /// compensation boosts, failover wrappers, arbitrary custom code)
    /// stay scalar by returning `None`.
    fn soa_signature(&self) -> Option<u64> {
        let (variant, masters) = match self {
            ArbiterKind::StaticPriority(a) => (1u64, a.masters()),
            ArbiterKind::RoundRobin(a) => (2, a.masters()),
            ArbiterKind::DeficitRoundRobin(a) => (3, a.quanta().len()),
            ArbiterKind::Tdma(a) => (4, a.masters()),
            ArbiterKind::StaticLottery(a) => (5, a.tickets().masters()),
            // Only frozen managers are pure functions of
            // (tickets, requests, draw state) — see
            // [`DynamicLotteryArbiter::is_frozen`].
            ArbiterKind::DynamicLottery(a) if a.is_frozen() => (6, a.tickets().len()),
            _ => return None,
        };
        Some((variant << 8) | masters as u64)
    }

    fn lower_group(peers: &[&Self]) -> Option<Box<dyn SoaKernel>> {
        /// Collects every peer's concrete arbiter, or `None` on any
        /// variant mismatch (unreachable for same-signature groups, but
        /// falling back to scalar is always safe).
        macro_rules! collect {
            ($variant:ident) => {{
                let peers: Option<Vec<_>> = peers
                    .iter()
                    .map(|p| match p {
                        ArbiterKind::$variant(a) => Some(a),
                        _ => None,
                    })
                    .collect();
                peers?
            }};
        }
        match peers.first()? {
            ArbiterKind::StaticPriority(_) => {
                Some(Box::new(SoaStaticPriority::lower(&collect!(StaticPriority))))
            }
            ArbiterKind::RoundRobin(_) => {
                Some(Box::new(SoaRoundRobin::lower(&collect!(RoundRobin))))
            }
            ArbiterKind::DeficitRoundRobin(_) => {
                Some(Box::new(SoaDeficitRoundRobin::lower(&collect!(DeficitRoundRobin))))
            }
            ArbiterKind::Tdma(_) => Some(Box::new(SoaTdma::lower(&collect!(Tdma)))),
            ArbiterKind::StaticLottery(_) => {
                SoaStaticLottery::lower(&collect!(StaticLottery))
                    .map(|k| Box::new(k) as Box<dyn SoaKernel>)
            }
            ArbiterKind::DynamicLottery(_) => {
                SoaDynamicLottery::lower(&collect!(DynamicLottery))
                    .map(|k| Box::new(k) as Box<dyn SoaKernel>)
            }
            _ => None,
        }
    }

    /// Copies slot `slot`'s lowered state back into the scalar arbiter
    /// so probes and runtime knobs observe exactly what scalar
    /// execution would have produced.
    fn writeback_from(&mut self, kernel: &dyn SoaKernel, slot: usize) {
        let any = kernel.as_any();
        match self {
            ArbiterKind::RoundRobin(a) => {
                if let Some(k) = any.downcast_ref::<SoaRoundRobin>() {
                    a.set_last(k.slot_last(slot));
                }
            }
            ArbiterKind::DeficitRoundRobin(a) => {
                if let Some(k) = any.downcast_ref::<SoaDeficitRoundRobin>() {
                    a.set_state(k.slot_deficit(slot), k.slot_next(slot));
                }
            }
            ArbiterKind::Tdma(a) => {
                if let Some(k) = any.downcast_ref::<SoaTdma>() {
                    a.set_position(k.slot_position(slot));
                    a.set_rr(k.slot_rr(slot));
                }
            }
            ArbiterKind::StaticLottery(a) => {
                if let Some(k) = any.downcast_ref::<SoaStaticLottery>() {
                    if let Some(source) = k.slot_source(slot).clone_builtin() {
                        a.set_random_source(source);
                    }
                }
            }
            ArbiterKind::DynamicLottery(a) => {
                if let Some(k) = any.downcast_ref::<SoaDynamicLottery>() {
                    if let Some(source) = k.slot_source(slot).clone_builtin() {
                        a.set_source_kind(source);
                    }
                }
            }
            // Static priority is stateless; the rest never lower.
            _ => {}
        }
    }
}

macro_rules! kind_from {
    ($($ty:ty => $variant:ident),* $(,)?) => {
        $(impl From<$ty> for ArbiterKind {
            fn from(arbiter: $ty) -> Self {
                ArbiterKind::$variant(arbiter)
            }
        })*
    };
}

kind_from! {
    FixedOrderArbiter => FixedOrder,
    StaticPriorityArbiter => StaticPriority,
    RoundRobinArbiter => RoundRobin,
    DeficitRoundRobinArbiter => DeficitRoundRobin,
    TdmaArbiter => Tdma,
    TokenRingArbiter => TokenRing,
    StaticLotteryArbiter => StaticLottery,
    DynamicLotteryArbiter => DynamicLottery,
    FailoverArbiter => Failover,
    Box<dyn Arbiter> => Custom,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tdma::WheelLayout;
    use lotterybus::TicketAssignment;
    use socsim::MasterId;

    fn map_with(masters: usize, pending: &[usize]) -> RequestMap {
        let mut map = RequestMap::new(masters);
        for &m in pending {
            map.set_pending(MasterId::new(m), 8);
        }
        map
    }

    fn builtins(seed: u32) -> Vec<ArbiterKind> {
        let tickets = || TicketAssignment::new(vec![1, 2, 3, 4]).expect("valid");
        vec![
            ArbiterKind::from(FixedOrderArbiter::new(4)),
            ArbiterKind::from(StaticPriorityArbiter::new(vec![1, 2, 3, 4]).expect("valid")),
            ArbiterKind::from(RoundRobinArbiter::new(4).expect("valid")),
            ArbiterKind::from(DeficitRoundRobinArbiter::new(&[1, 2, 3, 4], 8).expect("valid")),
            ArbiterKind::from(
                TdmaArbiter::new(&[1, 2, 3, 4], WheelLayout::Contiguous).expect("valid"),
            ),
            ArbiterKind::from(TokenRingArbiter::new(4).expect("valid")),
            ArbiterKind::from(StaticLotteryArbiter::with_seed(tickets(), seed).expect("valid")),
            ArbiterKind::from(DynamicLotteryArbiter::with_seed(tickets(), seed).expect("valid")),
        ]
    }

    #[test]
    fn every_builtin_matches_its_boxed_copy_decision_for_decision() {
        // The enum wrapper and a `Custom(Box<dyn Arbiter>)` copy of the
        // same protocol must stay in lockstep over a busy schedule —
        // the devirtualized path cannot change a single grant.
        let seed = 0xACE1;
        for (enum_arb, boxed_src) in builtins(seed).into_iter().zip(builtins(seed)) {
            let mut direct = enum_arb;
            let mut boxed = ArbiterKind::Custom(Box::new(boxed_src));
            assert_eq!(direct.name(), boxed.name());
            for c in 0..2_000u64 {
                let pending: &[usize] = match c % 4 {
                    0 => &[0, 1, 2, 3],
                    1 => &[1, 3],
                    2 => &[2],
                    _ => &[],
                };
                let map = map_with(4, pending);
                assert_eq!(
                    direct.arbitrate(&map, Cycle::new(c)),
                    boxed.arbitrate(&map, Cycle::new(c)),
                    "{} diverged at cycle {c}",
                    direct.name()
                );
                assert_eq!(direct.next_event(Cycle::new(c)), boxed.next_event(Cycle::new(c)));
            }
        }
    }

    #[test]
    fn failover_variant_reports_failovers() {
        let primary: Box<dyn Arbiter> = Box::new(FixedOrderArbiter::new(2));
        let kind = ArbiterKind::from(FailoverArbiter::new(primary, 2).expect("valid"));
        assert_eq!(kind.failovers(), 0);
        assert!(kind.name().starts_with("failover("));
    }
}
