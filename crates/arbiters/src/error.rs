//! Configuration errors shared by the baseline arbiters.

use std::error::Error;
use std::fmt;

/// Error returned when an arbiter is constructed with invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArbiterConfigError {
    /// The arbiter was configured for zero masters.
    NoMasters,
    /// More masters than the bus supports.
    TooManyMasters {
        /// Number of masters requested.
        got: usize,
        /// Maximum supported.
        max: usize,
    },
    /// Priority values must be unique (the paper's static-priority bus
    /// assigns each master a distinct priority level).
    DuplicatePriority(u32),
    /// A TDMA timing wheel must contain at least one slot.
    EmptyWheel,
    /// A TDMA slot references a master index outside the bus.
    SlotOutOfRange {
        /// The offending master index.
        master: usize,
        /// Number of masters on the bus.
        masters: usize,
    },
    /// Every master must own at least one slot / one token position.
    UnservedMaster(usize),
    /// A failover arbiter needs at least one cycle of patience before
    /// declaring its primary wedged.
    ZeroPatience,
    /// A recovering failover arbiter needs at least one healthy shadow
    /// decision before re-promoting its primary.
    ZeroRecoveryWindow,
}

impl fmt::Display for ArbiterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbiterConfigError::NoMasters => write!(f, "arbiter configured for zero masters"),
            ArbiterConfigError::TooManyMasters { got, max } => {
                write!(f, "arbiter configured for {got} masters but at most {max} supported")
            }
            ArbiterConfigError::DuplicatePriority(p) => {
                write!(f, "priority value {p} assigned to more than one master")
            }
            ArbiterConfigError::EmptyWheel => write!(f, "TDMA timing wheel has no slots"),
            ArbiterConfigError::SlotOutOfRange { master, masters } => {
                write!(f, "slot reserved for master {master} but bus has only {masters} masters")
            }
            ArbiterConfigError::UnservedMaster(m) => {
                write!(f, "master {m} owns no slot in the timing wheel")
            }
            ArbiterConfigError::ZeroPatience => {
                write!(f, "failover patience must be at least 1 cycle")
            }
            ArbiterConfigError::ZeroRecoveryWindow => {
                write!(f, "failover recovery window must be at least 1 healthy decision")
            }
        }
    }
}

impl Error for ArbiterConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offenders() {
        assert!(ArbiterConfigError::DuplicatePriority(3).to_string().contains('3'));
        assert!(ArbiterConfigError::UnservedMaster(2).to_string().contains('2'));
        let e = ArbiterConfigError::SlotOutOfRange { master: 5, masters: 4 };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync>() {}
        assert_error::<ArbiterConfigError>();
    }
}
