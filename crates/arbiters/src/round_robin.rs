//! Round-robin burst arbitration (paper §2, "round-robin access").

use crate::error::ArbiterConfigError;
use socsim::{Arbiter, Cycle, Grant, MasterId, RequestMap, MAX_MASTERS};

/// Round-robin bus arbiter: pending masters are granted whole bursts in
/// cyclic order starting after the most recently granted master.
///
/// Round-robin treats all masters equally — it can neither prioritize
/// latency-critical traffic nor allocate asymmetric bandwidth shares,
/// which is exactly the gap LOTTERYBUS fills; it is included as a
/// fairness baseline.
///
/// ```
/// use arbiters::RoundRobinArbiter;
/// use socsim::{Arbiter, RequestMap, MasterId, Cycle};
///
/// # fn main() -> Result<(), arbiters::ArbiterConfigError> {
/// let mut arb = RoundRobinArbiter::new(3)?;
/// let mut map = RequestMap::new(3);
/// map.set_pending(MasterId::new(0), 4);
/// map.set_pending(MasterId::new(2), 4);
/// assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(0));
/// assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(2));
/// assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    masters: usize,
    last: usize,
}

impl RoundRobinArbiter {
    /// Creates a round-robin arbiter for `masters` masters.
    ///
    /// # Errors
    ///
    /// Returns an error if `masters` is zero or exceeds [`MAX_MASTERS`].
    pub fn new(masters: usize) -> Result<Self, ArbiterConfigError> {
        if masters == 0 {
            return Err(ArbiterConfigError::NoMasters);
        }
        if masters > MAX_MASTERS {
            return Err(ArbiterConfigError::TooManyMasters { got: masters, max: MAX_MASTERS });
        }
        Ok(RoundRobinArbiter { masters, last: masters - 1 })
    }

    /// Number of masters this arbiter serves.
    /// The rotation pointer (index of the most recently granted master).
    pub(crate) fn last(&self) -> usize {
        self.last
    }

    /// Overwrites the rotation pointer (SoA kernel writeback).
    pub(crate) fn set_last(&mut self, last: usize) {
        self.last = last;
    }

    pub fn masters(&self) -> usize {
        self.masters
    }
}

impl Arbiter for RoundRobinArbiter {
    fn arbitrate(&mut self, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        for k in 1..=self.masters {
            let candidate = MasterId::new((self.last + k) % self.masters);
            if requests.is_pending(candidate) {
                self.last = candidate.index();
                return Some(Grant::whole_burst(candidate));
            }
        }
        None
    }

    fn name(&self) -> &str {
        "round-robin"
    }

    /// An empty arbitration scans without moving `last`, so idle spans
    /// change nothing: never pins the fast-forward horizon.
    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_through_pending_masters() {
        let mut arb = RoundRobinArbiter::new(4).expect("valid");
        let mut map = RequestMap::new(4);
        for m in [0, 1, 3] {
            map.set_pending(MasterId::new(m), 2);
        }
        let order: Vec<usize> = (0..6)
            .map(|_| arb.arbitrate(&map, Cycle::ZERO).expect("grant").master.index())
            .collect();
        assert_eq!(order, vec![0, 1, 3, 0, 1, 3]);
    }

    #[test]
    fn equal_shares_under_saturation() {
        let mut arb = RoundRobinArbiter::new(3).expect("valid");
        let mut map = RequestMap::new(3);
        for m in 0..3 {
            map.set_pending(MasterId::new(m), 1);
        }
        let mut wins = [0u32; 3];
        for _ in 0..300 {
            wins[arb.arbitrate(&map, Cycle::ZERO).expect("grant").master.index()] += 1;
        }
        assert_eq!(wins, [100, 100, 100]);
    }

    #[test]
    fn idle_when_no_requests() {
        let mut arb = RoundRobinArbiter::new(2).expect("valid");
        assert!(arb.arbitrate(&RequestMap::new(2), Cycle::ZERO).is_none());
    }

    #[test]
    fn zero_masters_rejected() {
        assert_eq!(RoundRobinArbiter::new(0).unwrap_err(), ArbiterConfigError::NoMasters);
    }
}
