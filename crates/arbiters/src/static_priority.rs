//! The static-priority shared bus (paper §2.1).

use crate::error::ArbiterConfigError;
use socsim::{Arbiter, Cycle, Grant, MasterId, RequestMap, MAX_MASTERS};

/// Static-priority bus arbiter: of all masters with pending requests, the
/// one with the *highest* priority value wins and transfers a whole burst.
///
/// This models the commercial shared-bus protocols of the paper's §2.1
/// (e.g. Peripheral Interconnect Bus style): priorities are fixed at
/// design time, so the architecture gives the designer no control over
/// bandwidth shares — under heavy traffic, low-priority masters starve
/// (the paper's Example 1 / Figure 4).
///
/// ```
/// use arbiters::StaticPriorityArbiter;
/// use socsim::{Arbiter, RequestMap, MasterId, Cycle};
///
/// # fn main() -> Result<(), arbiters::ArbiterConfigError> {
/// let mut arb = StaticPriorityArbiter::new(vec![3, 1, 2])?;
/// let mut map = RequestMap::new(3);
/// map.set_pending(MasterId::new(1), 8);
/// map.set_pending(MasterId::new(2), 8);
/// // Master 2 (priority 2) beats master 1 (priority 1).
/// assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StaticPriorityArbiter {
    /// Priority value per master; larger wins.
    priorities: Vec<u32>,
}

impl StaticPriorityArbiter {
    /// Creates an arbiter assigning `priorities[i]` to master *i*.
    /// Larger values denote higher priority.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty, longer than
    /// [`MAX_MASTERS`], or contains duplicate values — the paper's bus
    /// requires unique priorities so arbitration is deterministic.
    pub fn new(priorities: Vec<u32>) -> Result<Self, ArbiterConfigError> {
        if priorities.is_empty() {
            return Err(ArbiterConfigError::NoMasters);
        }
        if priorities.len() > MAX_MASTERS {
            return Err(ArbiterConfigError::TooManyMasters {
                got: priorities.len(),
                max: MAX_MASTERS,
            });
        }
        let mut sorted = priorities.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            if pair[0] == pair[1] {
                return Err(ArbiterConfigError::DuplicatePriority(pair[0]));
            }
        }
        Ok(StaticPriorityArbiter { priorities })
    }

    /// Creates an arbiter from a ranking: `ranking[k]` is the master id
    /// holding the *k*-th highest priority.
    ///
    /// # Errors
    ///
    /// Returns an error if the ranking is not a permutation of
    /// `0..ranking.len()`.
    pub fn from_ranking(ranking: &[usize]) -> Result<Self, ArbiterConfigError> {
        let n = ranking.len();
        let mut priorities = vec![u32::MAX; n];
        for (rank, &master) in ranking.iter().enumerate() {
            if master >= n {
                return Err(ArbiterConfigError::SlotOutOfRange { master, masters: n });
            }
            if priorities[master] != u32::MAX {
                return Err(ArbiterConfigError::DuplicatePriority(master as u32));
            }
            priorities[master] = (n - rank) as u32;
        }
        StaticPriorityArbiter::new(priorities)
    }

    /// The priority value of `master` (larger wins).
    pub fn priority(&self, master: MasterId) -> u32 {
        self.priorities[master.index()]
    }

    /// Number of masters this arbiter serves.
    pub fn masters(&self) -> usize {
        self.priorities.len()
    }
}

impl Arbiter for StaticPriorityArbiter {
    fn arbitrate(&mut self, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        requests.iter_pending().max_by_key(|m| self.priorities[m.index()]).map(Grant::whole_burst)
    }

    fn name(&self) -> &str {
        "static-priority"
    }

    /// Stateless decision function: idle spans change nothing, never
    /// pins the fast-forward horizon.
    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highest_priority_pending_wins() {
        let mut arb = StaticPriorityArbiter::new(vec![1, 4, 2, 3]).expect("valid");
        let mut map = RequestMap::new(4);
        map.set_pending(MasterId::new(0), 1);
        map.set_pending(MasterId::new(2), 1);
        map.set_pending(MasterId::new(3), 1);
        // Master 1 (priority 4) is idle, so master 3 (priority 3) wins.
        let grant = arb.arbitrate(&map, Cycle::ZERO).expect("grant");
        assert_eq!(grant.master, MasterId::new(3));
        assert_eq!(grant.max_words, u32::MAX);
    }

    #[test]
    fn idle_bus_when_nobody_requests() {
        let mut arb = StaticPriorityArbiter::new(vec![1, 2]).expect("valid");
        assert!(arb.arbitrate(&RequestMap::new(2), Cycle::ZERO).is_none());
    }

    #[test]
    fn duplicate_priorities_rejected() {
        let err = StaticPriorityArbiter::new(vec![1, 2, 2]).unwrap_err();
        assert_eq!(err, ArbiterConfigError::DuplicatePriority(2));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(StaticPriorityArbiter::new(vec![]).unwrap_err(), ArbiterConfigError::NoMasters);
    }

    #[test]
    fn from_ranking_orders_masters() {
        // Ranking: master 2 highest, then 0, then 1.
        let arb = StaticPriorityArbiter::from_ranking(&[2, 0, 1]).expect("valid");
        assert!(arb.priority(MasterId::new(2)) > arb.priority(MasterId::new(0)));
        assert!(arb.priority(MasterId::new(0)) > arb.priority(MasterId::new(1)));
    }

    #[test]
    fn from_ranking_rejects_non_permutation() {
        assert!(StaticPriorityArbiter::from_ranking(&[0, 0, 1]).is_err());
        assert!(StaticPriorityArbiter::from_ranking(&[0, 3, 1]).is_err());
    }
}
