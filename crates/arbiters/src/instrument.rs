//! A transparent instrumentation wrapper around any arbiter.
//!
//! [`InstrumentedArbiter`] counts arbitration decisions as they happen
//! — how often the arbiter was consulted, how often it left the bus
//! idle, how often the decision was contended, and how many grants each
//! master won — and publishes them through a shared
//! [`ArbiterCounters`] handle. The wrapper is *transparent*: it
//! forwards `arbitrate`, `name` and `failovers` unchanged, so wrapping
//! an arbiter never changes simulation results, only what you can see.
//!
//! The counters are atomics behind an [`Arc`], so the caller keeps a
//! handle while the system (which owns the boxed arbiter) runs — even
//! when whole simulations are fanned out to worker threads by
//! `socsim::pool`.
//!
//! ```
//! use arbiters::{InstrumentedArbiter, RoundRobinArbiter};
//! use socsim::{Arbiter, Cycle, MasterId, RequestMap};
//!
//! # fn main() -> Result<(), arbiters::ArbiterConfigError> {
//! let inner = RoundRobinArbiter::new(2)?;
//! let (mut arb, counters) = InstrumentedArbiter::new(inner, 2);
//! let mut map = RequestMap::new(2);
//! map.set_pending(MasterId::new(1), 4);
//! arb.arbitrate(&map, Cycle::ZERO);
//! assert_eq!(counters.decisions(), 1);
//! assert_eq!(counters.grants(1), 1);
//! # Ok(())
//! # }
//! ```

use socsim::{Arbiter, Cycle, Grant, RequestMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Grant-decision counters published by an [`InstrumentedArbiter`].
///
/// All reads use relaxed ordering: the counters are monotone event
/// counts, not synchronization points, and are normally read after the
/// simulation has finished.
#[derive(Debug)]
pub struct ArbiterCounters {
    decisions: AtomicU64,
    idle: AtomicU64,
    contended: AtomicU64,
    grants: Vec<AtomicU64>,
}

impl ArbiterCounters {
    fn new(masters: usize) -> Self {
        ArbiterCounters {
            decisions: AtomicU64::new(0),
            idle: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            grants: (0..masters).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Times the wrapped arbiter was asked to decide.
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Decisions that left the bus idle (the arbiter returned no grant).
    pub fn idle(&self) -> u64 {
        self.idle.load(Ordering::Relaxed)
    }

    /// Decisions taken while two or more masters were pending.
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Grants won by `master` (0 for masters outside the counted range).
    pub fn grants(&self, master: usize) -> u64 {
        self.grants.get(master).map_or(0, |g| g.load(Ordering::Relaxed))
    }

    /// Grants won per master, in master order.
    pub fn grants_per_master(&self) -> Vec<u64> {
        self.grants.iter().map(|g| g.load(Ordering::Relaxed)).collect()
    }
}

/// Wraps any [`Arbiter`] and counts its decisions without changing them.
#[derive(Debug)]
pub struct InstrumentedArbiter<A> {
    inner: A,
    counters: Arc<ArbiterCounters>,
}

impl<A: Arbiter> InstrumentedArbiter<A> {
    /// Wraps `inner` (serving `masters` masters) and returns the
    /// wrapper together with the shared counter handle.
    pub fn new(inner: A, masters: usize) -> (Self, Arc<ArbiterCounters>) {
        let counters = Arc::new(ArbiterCounters::new(masters));
        (InstrumentedArbiter { inner, counters: Arc::clone(&counters) }, counters)
    }

    /// The wrapped arbiter.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: Arbiter> Arbiter for InstrumentedArbiter<A> {
    fn arbitrate(&mut self, requests: &RequestMap, now: Cycle) -> Option<Grant> {
        let decision = self.inner.arbitrate(requests, now);
        self.counters.decisions.fetch_add(1, Ordering::Relaxed);
        if requests.pending_count() >= 2 {
            self.counters.contended.fetch_add(1, Ordering::Relaxed);
        }
        match decision {
            Some(grant) => {
                if let Some(g) = self.counters.grants.get(grant.master.index()) {
                    g.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.counters.idle.fetch_add(1, Ordering::Relaxed);
            }
        }
        decision
    }

    fn name(&self) -> &str {
        // Transparent: reports show the wrapped protocol's name.
        self.inner.name()
    }

    fn failovers(&self) -> u64 {
        self.inner.failovers()
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        self.inner.next_event(now)
    }

    /// Batches what `delta` empty arbitrations would have counted —
    /// `delta` decisions, all idle, none contended, no grants — and
    /// forwards the skip to the wrapped arbiter.
    fn skip_idle(&mut self, delta: u64) {
        self.counters.decisions.fetch_add(delta, Ordering::Relaxed);
        self.counters.idle.fetch_add(delta, Ordering::Relaxed);
        self.inner.skip_idle(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundRobinArbiter;
    use socsim::MasterId;

    fn map_with(pending: &[usize]) -> RequestMap {
        let mut map = RequestMap::new(4);
        for &m in pending {
            map.set_pending(MasterId::new(m), 4);
        }
        map
    }

    #[test]
    fn wrapping_never_changes_decisions() {
        let mut plain = RoundRobinArbiter::new(4).expect("valid");
        let (mut wrapped, _) =
            InstrumentedArbiter::new(RoundRobinArbiter::new(4).expect("valid"), 4);
        for cycle in 0..64u64 {
            let map = map_with(&[(cycle % 4) as usize, ((cycle / 2) % 4) as usize]);
            let now = Cycle::new(cycle);
            assert_eq!(plain.arbitrate(&map, now), wrapped.arbitrate(&map, now));
        }
        assert_eq!(wrapped.name(), "round-robin");
        assert_eq!(wrapped.failovers(), 0);
    }

    #[test]
    fn counters_classify_decisions() {
        let (mut arb, counters) =
            InstrumentedArbiter::new(RoundRobinArbiter::new(4).expect("valid"), 4);
        arb.arbitrate(&map_with(&[]), Cycle::ZERO); // idle
        arb.arbitrate(&map_with(&[2]), Cycle::new(1)); // uncontended grant
        arb.arbitrate(&map_with(&[0, 3]), Cycle::new(2)); // contended grant
        assert_eq!(counters.decisions(), 3);
        assert_eq!(counters.idle(), 1);
        assert_eq!(counters.contended(), 1);
        assert_eq!(counters.grants_per_master().iter().sum::<u64>(), 2);
        assert_eq!(counters.grants(2), 1);
        assert_eq!(counters.grants(17), 0, "out-of-range master reads zero");
    }

    #[test]
    fn skip_idle_batches_the_counters() {
        let (mut stepped, c1) =
            InstrumentedArbiter::new(RoundRobinArbiter::new(4).expect("valid"), 4);
        let (mut skipped, c2) =
            InstrumentedArbiter::new(RoundRobinArbiter::new(4).expect("valid"), 4);
        let empty = map_with(&[]);
        for cycle in 0..250u64 {
            stepped.arbitrate(&empty, Cycle::new(cycle));
        }
        skipped.skip_idle(250);
        assert_eq!(c1.decisions(), c2.decisions());
        assert_eq!(c1.idle(), c2.idle());
        assert_eq!(c1.contended(), c2.contended());
        assert_eq!(c1.grants_per_master(), c2.grants_per_master());
    }

    #[test]
    fn counters_survive_the_system_owning_the_arbiter() {
        use socsim::{BusConfig, SystemBuilder, TrafficSource, Transaction};

        struct Always;
        impl TrafficSource for Always {
            fn poll(&mut self, now: Cycle) -> Option<Transaction> {
                now.index()
                    .is_multiple_of(8)
                    .then(|| Transaction::new(socsim::SlaveId::new(0), 4, now))
            }
        }

        let (arb, counters) =
            InstrumentedArbiter::new(RoundRobinArbiter::new(2).expect("valid"), 2);
        let mut system = SystemBuilder::new(BusConfig::default())
            .master("a", Always)
            .master("b", Always)
            .arbiter(arb)
            .build()
            .expect("valid");
        let stats = system.run(1_000).clone();
        assert_eq!(
            counters.grants_per_master().iter().sum::<u64>(),
            stats.grants,
            "instrumented grant count agrees with kernel statistics"
        );
        assert!(counters.decisions() >= stats.grants);
    }
}
