//! Token-ring bus arbitration (paper §2.3).

use crate::error::ArbiterConfigError;
use socsim::{Arbiter, Cycle, Grant, MasterId, RequestMap, MAX_MASTERS};

/// Token-ring arbiter: a token circulates among the masters; only the
/// token holder may use the bus, and passing the token to the next
/// master costs one bus cycle.
///
/// The paper's §2.3 mentions token rings as a high-clock-rate alternative
/// used in ATM switches. The distributed token pass avoids a centralized
/// arbiter but wastes a cycle per hop, so sparse traffic pays a latency
/// penalty proportional to the ring size.
///
/// ```
/// use arbiters::TokenRingArbiter;
/// use socsim::{Arbiter, RequestMap, MasterId, Cycle};
///
/// # fn main() -> Result<(), arbiters::ArbiterConfigError> {
/// let mut arb = TokenRingArbiter::new(3)?;
/// let mut map = RequestMap::new(3);
/// map.set_pending(MasterId::new(1), 4);
/// // The token starts at master 0, which is idle: one hop cycle…
/// assert!(arb.arbitrate(&map, Cycle::ZERO).is_none());
/// // …then master 1 holds the token and wins.
/// assert_eq!(arb.arbitrate(&map, Cycle::new(1)).unwrap().master, MasterId::new(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TokenRingArbiter {
    masters: usize,
    holder: usize,
    /// Set after a grant so the token moves on before the holder can win
    /// again (release-after-transmission).
    must_pass: bool,
}

impl TokenRingArbiter {
    /// Creates a token-ring arbiter for `masters` masters; the token
    /// starts at master 0.
    ///
    /// # Errors
    ///
    /// Returns an error if `masters` is zero or exceeds [`MAX_MASTERS`].
    pub fn new(masters: usize) -> Result<Self, ArbiterConfigError> {
        if masters == 0 {
            return Err(ArbiterConfigError::NoMasters);
        }
        if masters > MAX_MASTERS {
            return Err(ArbiterConfigError::TooManyMasters { got: masters, max: MAX_MASTERS });
        }
        Ok(TokenRingArbiter { masters, holder: 0, must_pass: false })
    }

    /// The master currently holding the token.
    pub fn holder(&self) -> MasterId {
        MasterId::new(self.holder)
    }
}

impl Arbiter for TokenRingArbiter {
    fn arbitrate(&mut self, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        if self.must_pass {
            self.holder = (self.holder + 1) % self.masters;
            self.must_pass = false;
        }
        let holder = MasterId::new(self.holder);
        if requests.is_pending(holder) {
            self.must_pass = true;
            Some(Grant::whole_burst(holder))
        } else {
            // Idle holder: the token hops to the next master, consuming
            // this bus cycle.
            self.holder = (self.holder + 1) % self.masters;
            None
        }
    }

    fn name(&self) -> &str {
        "token-ring"
    }

    /// The token has no timed schedule — it hops per *arbitration*, so
    /// idle spans are skippable once [`TokenRingArbiter::skip_idle`]
    /// replays the hops.
    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }

    /// Replays `delta` empty arbitrations: a pending release resolves
    /// first (its hop and the idle-holder hop share the first call), then
    /// the token hops once per remaining call.
    fn skip_idle(&mut self, delta: u64) {
        if delta == 0 {
            return;
        }
        if self.must_pass {
            self.holder = (self.holder + 1) % self.masters;
            self.must_pass = false;
        }
        self.holder = (self.holder + (delta % self.masters as u64) as usize) % self.masters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_hops_cost_cycles() {
        let mut arb = TokenRingArbiter::new(4).expect("valid");
        let mut map = RequestMap::new(4);
        map.set_pending(MasterId::new(3), 2);
        // Hops through masters 0, 1, 2 (three idle cycles)…
        for c in 0..3 {
            assert!(arb.arbitrate(&map, Cycle::new(c)).is_none());
        }
        // …then master 3 wins.
        assert_eq!(arb.arbitrate(&map, Cycle::new(3)).unwrap().master, MasterId::new(3));
    }

    #[test]
    fn holder_must_release_after_grant() {
        let mut arb = TokenRingArbiter::new(2).expect("valid");
        let mut map = RequestMap::new(2);
        map.set_pending(MasterId::new(0), 8);
        map.set_pending(MasterId::new(1), 8);
        let first = arb.arbitrate(&map, Cycle::ZERO).unwrap().master;
        let second = arb.arbitrate(&map, Cycle::new(1)).unwrap().master;
        assert_ne!(first, second, "token must pass between grants");
    }

    #[test]
    fn saturated_ring_alternates_fairly() {
        let mut arb = TokenRingArbiter::new(3).expect("valid");
        let mut map = RequestMap::new(3);
        for m in 0..3 {
            map.set_pending(MasterId::new(m), 1);
        }
        let mut wins = [0u32; 3];
        for c in 0..300 {
            if let Some(g) = arb.arbitrate(&map, Cycle::new(c)) {
                wins[g.master.index()] += 1;
            }
        }
        assert_eq!(wins, [100, 100, 100]);
    }

    #[test]
    fn skip_idle_matches_empty_arbitrations() {
        let empty = RequestMap::new(4);
        for released in [false, true] {
            for delta in [0u64, 1, 3, 4, 5, 97] {
                let mut stepped = TokenRingArbiter::new(4).expect("valid");
                let mut map = RequestMap::new(4);
                if released {
                    // Grant master 0 so the token owes a release pass.
                    map.set_pending(MasterId::new(0), 2);
                    assert!(stepped.arbitrate(&map, Cycle::ZERO).is_some());
                }
                let mut skipped = stepped.clone();
                for c in 0..delta {
                    assert!(stepped.arbitrate(&empty, Cycle::new(c)).is_none());
                }
                skipped.skip_idle(delta);
                assert_eq!(
                    stepped.holder(),
                    skipped.holder(),
                    "released {released}, delta {delta}"
                );
                assert_eq!(stepped.must_pass, skipped.must_pass);
            }
        }
    }

    #[test]
    fn zero_masters_rejected() {
        assert_eq!(TokenRingArbiter::new(0).unwrap_err(), ArbiterConfigError::NoMasters);
    }
}
