//! The two-level TDMA shared bus (paper §2.2, Figure 2).

use crate::error::ArbiterConfigError;
use socsim::{Arbiter, Cycle, Grant, MasterId, RequestMap, MAX_MASTERS};

/// How reserved slots for each master are arranged around the timing
/// wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WheelLayout {
    /// All of a master's slots are adjacent (the paper's Figure 5 shows
    /// contiguous reservations defining burst-sized slot blocks).
    Contiguous,
    /// Slots are spread around the wheel as evenly as possible, which
    /// reduces worst-case waiting for single-word transfers.
    Interleaved,
}

/// Two-level TDMA bus arbiter.
///
/// Level one is a timing wheel in which every slot is statically reserved
/// for one master; a slot grants a **single word**. Level two reclaims
/// slots whose owner is idle: a round-robin pointer scans for the next
/// requesting master and grants the slot to it (paper Figure 2). The
/// wheel rotates by one slot per arbitration, whether or not a grant was
/// issued.
///
/// Bandwidth guarantees follow from the slot counts, but latency is very
/// sensitive to the *phase alignment* of requests with reservations — the
/// paper's Example 2 / Figure 5, reproduced in experiment `fig5`.
///
/// ```
/// use arbiters::{TdmaArbiter, WheelLayout};
/// use socsim::{Arbiter, RequestMap, MasterId, Cycle};
///
/// # fn main() -> Result<(), arbiters::ArbiterConfigError> {
/// // Masters 0..2 reserve 1, 2 and 3 slots of a 6-slot wheel.
/// let mut arb = TdmaArbiter::new(&[1, 2, 3], WheelLayout::Contiguous)?;
/// let mut map = RequestMap::new(3);
/// map.set_pending(MasterId::new(1), 4);
/// // Slot 0 belongs to master 0, which is idle; the second level
/// // reclaims the slot for requesting master 1.
/// assert_eq!(arb.arbitrate(&map, Cycle::ZERO).unwrap().master, MasterId::new(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TdmaArbiter {
    wheel: Vec<MasterId>,
    masters: usize,
    position: usize,
    rr: usize,
}

impl TdmaArbiter {
    /// Creates a TDMA arbiter in which master *i* reserves
    /// `slots_per_master[i]` slots, arranged per `layout`.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no masters, too many masters, or a
    /// master reserves zero slots (it could then never be guaranteed
    /// bandwidth).
    pub fn new(slots_per_master: &[u32], layout: WheelLayout) -> Result<Self, ArbiterConfigError> {
        if slots_per_master.is_empty() {
            return Err(ArbiterConfigError::NoMasters);
        }
        if slots_per_master.len() > MAX_MASTERS {
            return Err(ArbiterConfigError::TooManyMasters {
                got: slots_per_master.len(),
                max: MAX_MASTERS,
            });
        }
        if let Some(idle) = slots_per_master.iter().position(|&s| s == 0) {
            return Err(ArbiterConfigError::UnservedMaster(idle));
        }
        let wheel = match layout {
            WheelLayout::Contiguous => contiguous_wheel(slots_per_master),
            WheelLayout::Interleaved => interleaved_wheel(slots_per_master),
        };
        Self::from_wheel(wheel, slots_per_master.len())
    }

    /// Creates a TDMA arbiter from an explicit wheel: `wheel[k]` is the
    /// master owning slot *k*.
    ///
    /// # Errors
    ///
    /// Returns an error if the wheel is empty, references a master `>=
    /// masters`, or leaves some master with no slot.
    pub fn from_wheel(wheel: Vec<MasterId>, masters: usize) -> Result<Self, ArbiterConfigError> {
        if wheel.is_empty() {
            return Err(ArbiterConfigError::EmptyWheel);
        }
        let mut served = vec![false; masters];
        for slot in &wheel {
            if slot.index() >= masters {
                return Err(ArbiterConfigError::SlotOutOfRange { master: slot.index(), masters });
            }
            served[slot.index()] = true;
        }
        if let Some(idle) = served.iter().position(|&s| !s) {
            return Err(ArbiterConfigError::UnservedMaster(idle));
        }
        Ok(TdmaArbiter { wheel, masters, position: 0, rr: masters - 1 })
    }

    /// The timing wheel (slot owners in rotation order).
    pub fn wheel(&self) -> &[MasterId] {
        &self.wheel
    }

    /// The current wheel position (next slot to be used).
    pub fn position(&self) -> usize {
        self.position
    }

    /// Rotates the wheel so that slot `position` is next; lets
    /// experiments control the phase between reservations and traffic.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn set_position(&mut self, position: usize) {
        assert!(position < self.wheel.len(), "wheel position out of range");
        self.position = position;
    }

    /// The number of masters the wheel serves.
    pub(crate) fn masters(&self) -> usize {
        self.masters
    }

    /// The slot-reclaim round-robin pointer.
    pub(crate) fn rr(&self) -> usize {
        self.rr
    }

    /// Overwrites the reclaim pointer (SoA kernel writeback).
    pub(crate) fn set_rr(&mut self, rr: usize) {
        self.rr = rr;
    }
}

fn contiguous_wheel(slots: &[u32]) -> Vec<MasterId> {
    let mut wheel = Vec::with_capacity(slots.iter().map(|&s| s as usize).sum());
    for (master, &count) in slots.iter().enumerate() {
        wheel.extend(std::iter::repeat_n(MasterId::new(master), count as usize));
    }
    wheel
}

fn interleaved_wheel(slots: &[u32]) -> Vec<MasterId> {
    // Earliest-virtual-deadline spreading: repeatedly pick the master
    // whose (k+1)-th slot is "due" soonest at rate slots[m]/total, i.e.
    // the one minimizing (placed[m]+1)/slots[m].
    let total: u32 = slots.iter().sum();
    let mut placed = vec![0u32; slots.len()];
    let mut wheel = Vec::with_capacity(total as usize);
    for _ in 0..total {
        let next = (0..slots.len())
            .filter(|&m| placed[m] < slots[m])
            .min_by(|&a, &b| {
                let deadline_a = u64::from(placed[a] + 1) * u64::from(slots[b]);
                let deadline_b = u64::from(placed[b] + 1) * u64::from(slots[a]);
                deadline_a.cmp(&deadline_b).then(a.cmp(&b))
            })
            .expect("total matches quotas");
        placed[next] += 1;
        wheel.push(MasterId::new(next));
    }
    wheel
}

impl Arbiter for TdmaArbiter {
    fn arbitrate(&mut self, requests: &RequestMap, _now: Cycle) -> Option<Grant> {
        let owner = self.wheel[self.position];
        self.position = (self.position + 1) % self.wheel.len();
        if requests.is_pending(owner) {
            return Some(Grant::single_word(owner));
        }
        // Second level: hand the wasted slot to the next requesting
        // master after the round-robin pointer.
        for k in 1..=self.masters {
            let candidate = MasterId::new((self.rr + k) % self.masters);
            if requests.is_pending(candidate) {
                self.rr = candidate.index();
                return Some(Grant::single_word(candidate));
            }
        }
        None
    }

    fn name(&self) -> &str {
        "tdma-2level"
    }

    /// The wheel has no timed events of its own — it rotates per
    /// *arbitration*, not per absolute cycle, so idle spans are freely
    /// skippable as long as [`TdmaArbiter::skip_idle`] replays the
    /// rotations.
    fn next_event(&self, _now: Cycle) -> Cycle {
        Cycle::NEVER
    }

    /// Replays `delta` empty arbitrations: the wheel rotates once per
    /// call regardless of requests, while the second-level round-robin
    /// pointer only moves on a reclaimed grant and therefore stays put.
    fn skip_idle(&mut self, delta: u64) {
        self.position =
            (self.position + (delta % self.wheel.len() as u64) as usize) % self.wheel.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(map: &mut RequestMap, masters: &[usize]) {
        map.clear();
        for &m in masters {
            map.set_pending(MasterId::new(m), 8);
        }
    }

    #[test]
    fn contiguous_wheel_shape() {
        let arb = TdmaArbiter::new(&[2, 1, 3], WheelLayout::Contiguous).expect("valid");
        let owners: Vec<usize> = arb.wheel().iter().map(|m| m.index()).collect();
        assert_eq!(owners, vec![0, 0, 1, 2, 2, 2]);
    }

    #[test]
    fn interleaved_wheel_spreads_slots() {
        let arb = TdmaArbiter::new(&[1, 1, 2], WheelLayout::Interleaved).expect("valid");
        let owners: Vec<usize> = arb.wheel().iter().map(|m| m.index()).collect();
        // Master 2's two slots must not be adjacent in a 4-slot wheel.
        let positions: Vec<usize> =
            owners.iter().enumerate().filter(|(_, &m)| m == 2).map(|(i, _)| i).collect();
        assert_eq!(owners.len(), 4);
        assert!(positions[1] - positions[0] >= 2, "wheel {owners:?} not spread");
    }

    #[test]
    fn owner_with_pending_request_gets_slot() {
        let mut arb = TdmaArbiter::new(&[1, 1], WheelLayout::Contiguous).expect("valid");
        let mut map = RequestMap::new(2);
        pending(&mut map, &[0, 1]);
        let g = arb.arbitrate(&map, Cycle::ZERO).expect("grant");
        assert_eq!(g.master, MasterId::new(0));
        assert_eq!(g.max_words, 1);
        // Wheel rotated: next slot belongs to master 1.
        let g = arb.arbitrate(&map, Cycle::ZERO).expect("grant");
        assert_eq!(g.master, MasterId::new(1));
    }

    #[test]
    fn second_level_reclaims_idle_slot_round_robin() {
        // Paper Figure 2: slot owner M4 idle; rr was M1, moves to the
        // next pending request M2.
        let mut arb = TdmaArbiter::new(&[1, 1, 1, 1], WheelLayout::Contiguous).expect("valid");
        arb.set_position(3); // current slot reserved for master 3 (paper's M4)
        arb.rr = 0; // paper's "old rr" at M1
        let mut map = RequestMap::new(4);
        pending(&mut map, &[1, 2]); // M2 and M3 pending, M4 idle
        let g = arb.arbitrate(&map, Cycle::ZERO).expect("grant");
        assert_eq!(g.master, MasterId::new(1), "rr advances to next pending");
        assert_eq!(arb.rr, 1, "new rr parked at granted master");
    }

    #[test]
    fn empty_requests_waste_the_slot() {
        let mut arb = TdmaArbiter::new(&[2, 2], WheelLayout::Contiguous).expect("valid");
        let map = RequestMap::new(2);
        assert!(arb.arbitrate(&map, Cycle::ZERO).is_none());
        assert_eq!(arb.position(), 1, "wheel still rotates");
    }

    #[test]
    fn skip_idle_matches_empty_arbitrations() {
        let empty = RequestMap::new(3);
        for delta in [0u64, 1, 5, 6, 7, 100, 12_345] {
            let mut stepped = TdmaArbiter::new(&[1, 2, 3], WheelLayout::Interleaved).expect("ok");
            stepped.rr = 1;
            let mut skipped = stepped.clone();
            for c in 0..delta {
                assert!(stepped.arbitrate(&empty, Cycle::new(c)).is_none());
            }
            skipped.skip_idle(delta);
            assert_eq!(stepped.position(), skipped.position(), "delta {delta}");
            assert_eq!(stepped.rr, skipped.rr, "delta {delta}");
            // And the next real decision agrees.
            let mut map = RequestMap::new(3);
            pending(&mut map, &[2]);
            assert_eq!(
                stepped.arbitrate(&map, Cycle::new(delta)),
                skipped.arbitrate(&map, Cycle::new(delta))
            );
        }
    }

    #[test]
    fn zero_slot_master_rejected() {
        let err = TdmaArbiter::new(&[2, 0], WheelLayout::Contiguous).unwrap_err();
        assert_eq!(err, ArbiterConfigError::UnservedMaster(1));
    }

    #[test]
    fn explicit_wheel_validated() {
        let err = TdmaArbiter::from_wheel(vec![MasterId::new(0), MasterId::new(5)], 2).unwrap_err();
        assert_eq!(err, ArbiterConfigError::SlotOutOfRange { master: 5, masters: 2 });
        let err = TdmaArbiter::from_wheel(vec![MasterId::new(0)], 2).unwrap_err();
        assert_eq!(err, ArbiterConfigError::UnservedMaster(1));
        assert_eq!(TdmaArbiter::from_wheel(vec![], 1).unwrap_err(), ArbiterConfigError::EmptyWheel);
    }

    #[test]
    fn bandwidth_follows_slot_counts_under_saturation() {
        let mut arb = TdmaArbiter::new(&[1, 3], WheelLayout::Contiguous).expect("valid");
        let mut map = RequestMap::new(2);
        pending(&mut map, &[0, 1]);
        let mut wins = [0u32; 2];
        for _ in 0..4000 {
            let g = arb.arbitrate(&map, Cycle::ZERO).expect("grant");
            wins[g.master.index()] += 1;
        }
        assert_eq!(wins, [1000, 3000]);
    }
}
