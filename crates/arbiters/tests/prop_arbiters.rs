//! Property-based tests for the baseline arbiters.

use arbiters::{
    RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter, TokenRingArbiter, WheelLayout,
};
use proptest::prelude::*;
use socsim::{Arbiter, Cycle, MasterId, RequestMap};

fn map_from_mask(n: usize, mask: u32) -> RequestMap {
    let mut map = RequestMap::new(n);
    for i in 0..n {
        if (mask >> i) & 1 == 1 {
            map.set_pending(MasterId::new(i), 4);
        }
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn priority_arbiter_is_deterministic_and_maximal(
        priorities in prop::collection::vec(0u32..1000, 2..8)
            .prop_filter("unique", |p| {
                let mut s = p.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            }),
        mask in 1u32..256,
    ) {
        let n = priorities.len();
        let mask = mask & ((1 << n) - 1);
        prop_assume!(mask != 0);
        let mut arbiter = StaticPriorityArbiter::new(priorities.clone()).unwrap();
        let map = map_from_mask(n, mask);
        let first = arbiter.arbitrate(&map, Cycle::ZERO).unwrap().master;
        let second = arbiter.arbitrate(&map, Cycle::new(1)).unwrap().master;
        prop_assert_eq!(first, second, "static priority has no state");
        for i in 0..n {
            if map.is_pending(MasterId::new(i)) {
                prop_assert!(priorities[first.index()] >= priorities[i]);
            }
        }
    }

    #[test]
    fn tdma_wheel_layouts_preserve_slot_counts(
        slots in prop::collection::vec(1u32..8, 2..8),
    ) {
        for layout in [WheelLayout::Contiguous, WheelLayout::Interleaved] {
            let arbiter = TdmaArbiter::new(&slots, layout).unwrap();
            let mut counts = vec![0u32; slots.len()];
            for owner in arbiter.wheel() {
                counts[owner.index()] += 1;
            }
            prop_assert_eq!(&counts, &slots, "{:?}", layout);
        }
    }

    #[test]
    fn tdma_never_grants_idle_masters_and_never_stalls_with_demand(
        slots in prop::collection::vec(1u32..5, 2..6),
        masks in prop::collection::vec(1u32..64, 10..60),
    ) {
        let n = slots.len();
        let mut arbiter = TdmaArbiter::new(&slots, WheelLayout::Contiguous).unwrap();
        for (k, mask) in masks.into_iter().enumerate() {
            let mask = mask & ((1 << n) - 1);
            let map = map_from_mask(n, mask);
            match arbiter.arbitrate(&map, Cycle::new(k as u64)) {
                Some(grant) => prop_assert!(map.is_pending(grant.master)),
                // The two-level protocol is work-conserving: a slot is
                // only wasted when nobody requests.
                None => prop_assert!(map.is_empty()),
            }
        }
    }

    #[test]
    fn round_robin_never_serves_anyone_twice_before_everyone_pending(
        n in 2usize..8,
        start_mask in 1u32..255,
    ) {
        let mask = (start_mask & ((1 << n) - 1)).max(1);
        let map = map_from_mask(n, mask);
        let pending = map.pending_count();
        let mut arbiter = RoundRobinArbiter::new(n).unwrap();
        let mut seen = Vec::new();
        for k in 0..pending {
            let winner = arbiter.arbitrate(&map, Cycle::new(k as u64)).unwrap().master;
            prop_assert!(!seen.contains(&winner), "repeat before full round");
            seen.push(winner);
        }
    }

    #[test]
    fn token_ring_serves_within_one_lap(
        n in 2usize..10,
        target in 0usize..10,
    ) {
        let target = target % n;
        let mut arbiter = TokenRingArbiter::new(n).unwrap();
        let map = map_from_mask(n, 1 << target);
        let mut served = false;
        for k in 0..n as u64 {
            if let Some(grant) = arbiter.arbitrate(&map, Cycle::new(k)) {
                prop_assert_eq!(grant.master, MasterId::new(target));
                served = true;
                break;
            }
        }
        prop_assert!(served, "token must reach the sole requester within one lap");
    }
}
