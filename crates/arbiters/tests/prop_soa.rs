//! Property tests pinning the SoA decision kernels to their scalar
//! protocols: random request-bit streams (with random per-master
//! backlogs and interleaved idle skips) must produce byte-identical
//! grant sequences from a lowered kernel slot and its scalar twin —
//! through a mid-stream writeback / re-lower cycle, and for the dynamic
//! lottery through a ticket-epoch change applied between the two
//! lowered phases.

use arbiters::{
    ArbiterKind, DeficitRoundRobinArbiter, RoundRobinArbiter, StaticPriorityArbiter, TdmaArbiter,
    WheelLayout,
};
use lotterybus::{DynamicLotteryArbiter, StaticLotteryArbiter, TicketAssignment};
use proptest::prelude::*;
use socsim::{Arbiter, Cycle, MasterId, RequestMap};

/// One step of the request stream: a pending bitmask, a seed the step
/// expands into per-master backlogs, and an idle-skip length replayed
/// through both `skip_idle` paths before the arbitration.
type Step = (u32, u8, u8);

fn map_for(masters: usize, step: &Step) -> RequestMap {
    let mut map = RequestMap::new(masters);
    for i in 0..masters {
        if (step.0 >> i) & 1 == 1 {
            let words = 1 + (u32::from(step.1).wrapping_mul(i as u32 + 7) % 64);
            map.set_pending(MasterId::new(i), words);
        }
    }
    map
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec((0u32..=u32::MAX, 0u8..=u8::MAX, 0u8..5), 20..80)
}

/// Drives `scalars` (the reference) and `twins` (identically
/// constructed) through `stream`: the first half with the twins lowered
/// into an SoA kernel, then a writeback plus optional `mutate` (applied
/// to scalars and twins alike — the ticket-epoch change), a re-lower,
/// the second half under the fresh kernel, and a final writeback
/// followed by scalar-only steps proving the written-back state is the
/// scalar state.
fn assert_lockstep(
    mut scalars: Vec<ArbiterKind>,
    mut twins: Vec<ArbiterKind>,
    masters: usize,
    stream: &[Step],
    mutate: impl Fn(&mut ArbiterKind),
) -> Result<(), TestCaseError> {
    let mid = stream.len() / 2;
    let tail = mid + (stream.len() - mid) / 2;
    let slots = scalars.len();

    let mut kernel = {
        let peers: Vec<&ArbiterKind> = twins.iter().collect();
        <ArbiterKind as Arbiter>::lower_group(&peers).expect("protocol lowers")
    };
    for (t, step) in stream[..mid].iter().enumerate() {
        let map = map_for(masters, step);
        let now = Cycle::new(t as u64);
        for slot in 0..slots {
            if step.2 > 0 {
                scalars[slot].skip_idle(u64::from(step.2));
                kernel.skip_idle_slot(slot, u64::from(step.2));
            }
            prop_assert_eq!(
                scalars[slot].arbitrate(&map, now),
                kernel.arbitrate_slot(slot, &map, now),
                "slot {} diverged lowered at step {}",
                slot,
                t
            );
        }
    }

    // Writeback, epoch change, re-lower: the fleet's dissolve/rebuild
    // path in miniature.
    for (slot, twin) in twins.iter_mut().enumerate() {
        twin.writeback_from(kernel.as_ref(), slot);
        mutate(twin);
    }
    for scalar in scalars.iter_mut() {
        mutate(scalar);
    }
    let mut kernel = {
        let peers: Vec<&ArbiterKind> = twins.iter().collect();
        <ArbiterKind as Arbiter>::lower_group(&peers).expect("protocol re-lowers")
    };
    for (t, step) in stream[mid..tail].iter().enumerate() {
        let map = map_for(masters, step);
        let now = Cycle::new((mid + t) as u64);
        for slot in 0..slots {
            prop_assert_eq!(
                scalars[slot].arbitrate(&map, now),
                kernel.arbitrate_slot(slot, &map, now),
                "slot {} diverged after re-lower at step {}",
                slot,
                mid + t
            );
        }
    }

    // Final writeback; from here both sides run scalar, so any state
    // the writeback failed to restore shows up as a divergence.
    for (slot, twin) in twins.iter_mut().enumerate() {
        twin.writeback_from(kernel.as_ref(), slot);
    }
    for (t, step) in stream[tail..].iter().enumerate() {
        let map = map_for(masters, step);
        let now = Cycle::new((tail + t) as u64);
        for slot in 0..slots {
            prop_assert_eq!(
                scalars[slot].arbitrate(&map, now),
                twins[slot].arbitrate(&map, now),
                "slot {} writeback state diverged at step {}",
                slot,
                tail + t
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_robin_slots_match_scalar(masters in 2usize..8, stream in steps()) {
        let build = || {
            (0..3)
                .map(|_| ArbiterKind::from(RoundRobinArbiter::new(masters).unwrap()))
                .collect::<Vec<_>>()
        };
        assert_lockstep(build(), build(), masters, &stream, |_| {})?;
    }

    #[test]
    fn static_priority_slots_match_scalar(
        priorities in prop::collection::vec(0u32..1000, 2..8)
            .prop_filter("unique", |p| {
                let mut s = p.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            }),
        stream in steps(),
    ) {
        let masters = priorities.len();
        let build = || {
            (0..3)
                .map(|_| {
                    ArbiterKind::from(StaticPriorityArbiter::new(priorities.clone()).unwrap())
                })
                .collect::<Vec<_>>()
        };
        assert_lockstep(build(), build(), masters, &stream, |_| {})?;
    }

    #[test]
    fn deficit_rr_slots_match_scalar(
        weights in prop::collection::vec(1u32..6, 2..8),
        unit in 1u32..16,
        stream in steps(),
    ) {
        let masters = weights.len();
        let build = || {
            (0..3)
                .map(|_| {
                    ArbiterKind::from(DeficitRoundRobinArbiter::new(&weights, unit).unwrap())
                })
                .collect::<Vec<_>>()
        };
        assert_lockstep(build(), build(), masters, &stream, |_| {})?;
    }

    #[test]
    fn tdma_slots_match_scalar(
        slots in prop::collection::vec(1u32..5, 2..6),
        stream in steps(),
    ) {
        let masters = slots.len();
        // Two wheel layouts in one group: the kernel must keep separate
        // shared tables for differently-configured lanes.
        let build = || {
            vec![
                ArbiterKind::from(TdmaArbiter::new(&slots, WheelLayout::Contiguous).unwrap()),
                ArbiterKind::from(TdmaArbiter::new(&slots, WheelLayout::Interleaved).unwrap()),
                ArbiterKind::from(TdmaArbiter::new(&slots, WheelLayout::Contiguous).unwrap()),
            ]
        };
        assert_lockstep(build(), build(), masters, &stream, |_| {})?;
    }

    #[test]
    fn static_lottery_slots_match_scalar(
        tickets in prop::collection::vec(1u32..16, 2..6),
        seeds in prop::collection::vec(1u32..0xFFFF, 3),
        stream in steps(),
    ) {
        let masters = tickets.len();
        let build = || {
            seeds
                .iter()
                .map(|&seed| {
                    let assignment = TicketAssignment::new(tickets.clone()).unwrap();
                    ArbiterKind::from(StaticLotteryArbiter::with_seed(assignment, seed).unwrap())
                })
                .collect::<Vec<_>>()
        };
        assert_lockstep(build(), build(), masters, &stream, |_| {})?;
    }

    #[test]
    fn frozen_dynamic_lottery_slots_match_scalar_through_ticket_epochs(
        tickets in prop::collection::vec(1u32..16, 2..6),
        retickets in prop::collection::vec(1u32..16, 2..6),
        seeds in prop::collection::vec(1u32..0xFFFF, 3),
        stream in steps(),
    ) {
        let masters = tickets.len();
        // The mid-stream mutation reassigns every holding (same master
        // count), bumping the ticket epoch on scalars and twins alike;
        // the re-lowered kernel must follow the new holdings exactly.
        let retickets: Vec<u32> =
            (0..masters).map(|i| retickets[i % retickets.len()]).collect();
        let build = || {
            seeds
                .iter()
                .map(|&seed| {
                    let assignment = TicketAssignment::new(tickets.clone()).unwrap();
                    ArbiterKind::from(
                        DynamicLotteryArbiter::with_seed(assignment, seed).unwrap(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_lockstep(build(), build(), masters, &stream, move |arb| {
            if let ArbiterKind::DynamicLottery(a) = arb {
                a.set_tickets(retickets.clone()).expect("same master count");
            }
        })?;
    }
}

/// The arithmetic wheel walk must agree with cycle-by-cycle stepping:
/// under an all-pending map, `count_in` / `occurrence_offset` predict
/// exactly the grants `arbitrate_slot` produces, and `advance_wheel`
/// leaves the kernel in the same state stepping would.
#[test]
fn tdma_wheel_walk_predicts_stepping_exactly() {
    for slots in [&[1u32, 2, 3][..], &[2, 2][..], &[3, 1, 1, 2][..]] {
        let masters = slots.len();
        let build = || {
            vec![
                ArbiterKind::from(TdmaArbiter::new(slots, WheelLayout::Contiguous).unwrap()),
                ArbiterKind::from(TdmaArbiter::new(slots, WheelLayout::Interleaved).unwrap()),
            ]
        };
        let lower = |arbs: &Vec<ArbiterKind>| {
            let peers: Vec<&ArbiterKind> = arbs.iter().collect();
            <ArbiterKind as Arbiter>::lower_group(&peers).expect("tdma lowers")
        };
        let arbs = build();
        let mut stepped = lower(&arbs);
        let mut advanced = lower(&arbs);
        let mut map = RequestMap::new(masters);
        for m in 0..masters {
            map.set_pending(MasterId::new(m), u32::MAX);
        }
        let window = 2 * slots.iter().sum::<u32>() as u64 + 3;
        for slot in 0..2 {
            let (counts, offsets): (Vec<u64>, Vec<Vec<u64>>) = {
                let walk = stepped.wheel_walk(slot).expect("tdma publishes a walk");
                let counts: Vec<u64> = (0..masters).map(|m| walk.count_in(m, window)).collect();
                let offsets = (0..masters)
                    .map(|m| {
                        (1..=counts[m])
                            .map(|k| walk.occurrence_offset(m, k).expect("has slots"))
                            .collect()
                    })
                    .collect();
                (counts, offsets)
            };
            let mut observed = vec![Vec::new(); masters];
            for c in 0..window {
                let grant = stepped
                    .arbitrate_slot(slot, &map, Cycle::new(c))
                    .expect("all pending: every cycle grants");
                observed[grant.master.index()].push(c);
            }
            for m in 0..masters {
                assert_eq!(counts[m], observed[m].len() as u64, "count_in, master {m}");
                assert_eq!(offsets[m], observed[m], "occurrence offsets, master {m}");
            }
            advanced.advance_wheel(slot, window);
        }
        // Both kernels decide identically from here on.
        for c in 0..20u64 {
            for slot in 0..2 {
                assert_eq!(
                    stepped.arbitrate_slot(slot, &map, Cycle::new(window + c)),
                    advanced.arbitrate_slot(slot, &map, Cycle::new(window + c)),
                    "advance_wheel left different state (slot {slot}, cycle {c})"
                );
            }
        }
    }
}
