//! Integration tests for the fault-injection subsystem: bit-for-bit
//! reproducibility of faulty runs and exact inertness of zero-rate
//! configurations.

use socsim::arbiter::FixedOrderArbiter;
use socsim::{
    BusConfig, Cycle, FaultConfig, RetryPolicy, SlaveId, System, SystemBuilder, TrafficSource,
    Transaction,
};
use std::collections::VecDeque;

/// Replays a fixed schedule of transactions.
struct Replay(VecDeque<Transaction>);

impl TrafficSource for Replay {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        if self.0.front()?.issued_at() <= now {
            self.0.pop_front()
        } else {
            None
        }
    }
}

/// A periodic workload: `count` messages of `words` words, one every
/// `period` cycles starting at `phase`.
fn periodic(period: u64, phase: u64, words: u32, count: u64) -> Box<dyn TrafficSource> {
    Box::new(Replay(
        (0..count)
            .map(|k| Transaction::new(SlaveId::new(0), words, Cycle::new(phase + k * period)))
            .collect(),
    ))
}

fn faulty_config(seed: u64) -> FaultConfig {
    FaultConfig {
        slave_error_rate: 0.08,
        slave_outage_rate: 0.01,
        slave_outage_duration: 16,
        grant_drop_rate: 0.05,
        grant_corrupt_rate: 0.03,
        master_stall_rate: 0.02,
        master_stall_max: 6,
        ..FaultConfig::with_seed(seed)
    }
}

fn build(masters: usize, faults: Option<FaultConfig>) -> System {
    let mut builder: SystemBuilder = SystemBuilder::new(BusConfig::default());
    for i in 0..masters {
        builder = builder.master(format!("m{i}"), periodic(37 + 11 * i as u64, i as u64, 8, 50));
    }
    if let Some(config) = faults {
        builder = builder.faults(config).retry_policy(RetryPolicy::exponential(3, 2)).timeout(512);
    }
    builder.arbiter(Box::new(FixedOrderArbiter::new(masters))).build().expect("valid system")
}

/// Acceptance criterion: the same `(spec, seed)` produces identical
/// stats and an identical fault-event trace across two separate runs.
#[test]
fn faulty_runs_are_bit_for_bit_reproducible() {
    let run = |seed| {
        let mut system = build(3, Some(faulty_config(seed)));
        system.run(10_000);
        (system.stats().clone(), system.fault_events().to_vec())
    };
    let (stats_a, events_a) = run(41);
    let (stats_b, events_b) = run(41);
    assert!(!events_a.is_empty(), "these rates inject faults in 10k cycles");
    assert_eq!(stats_a, stats_b, "stats identical across runs");
    assert_eq!(events_a, events_b, "fault traces identical across runs");

    // And the seed actually matters: a different plan yields different
    // injections.
    let (_, events_c) = run(42);
    assert_ne!(events_a, events_c, "different seed, different plan");
}

/// Acceptance criterion: with every rate at zero (and no retry/timeout
/// machinery beyond the inert defaults) the fault layer changes nothing.
#[test]
fn zero_rate_fault_layer_is_inert() {
    let mut plain = build(3, None);
    plain.run(10_000);

    let mut zeroed = SystemBuilder::new(BusConfig::default());
    for i in 0..3 {
        zeroed = zeroed.master(format!("m{i}"), periodic(37 + 11 * i as u64, i as u64, 8, 50));
    }
    let mut zeroed = zeroed
        .faults(FaultConfig::with_seed(99))
        .arbiter(FixedOrderArbiter::new(3))
        .build()
        .expect("valid system");
    zeroed.run(10_000);

    assert_eq!(plain.stats(), zeroed.stats(), "stats match the fault-free bus exactly");
    assert_eq!(plain.trace(), zeroed.trace(), "bus trace matches exactly");
    assert!(zeroed.fault_events().is_empty(), "nothing injected at rate zero");
}

/// The recovery counters tie out: every abort is either a retry
/// exhaustion or a watchdog timeout, and every timed-out transaction is
/// also counted per master.
#[test]
fn recovery_counters_are_consistent() {
    let mut system = build(3, Some(faulty_config(7)));
    system.run(20_000);
    let stats = system.stats();
    let per_master_aborts: u64 =
        (0..3).map(|i| stats.master(socsim::MasterId::new(i)).aborted).sum();
    assert_eq!(stats.aborted_transactions, per_master_aborts);
    assert!(stats.timeouts <= stats.aborted_transactions, "timeouts are a kind of abort");
    assert!(stats.slave_errors >= stats.retries, "every retry was provoked by an error response");
}
