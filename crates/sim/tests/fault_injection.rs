//! Integration tests for the fault-injection subsystem: bit-for-bit
//! reproducibility of faulty runs and exact inertness of zero-rate
//! configurations.

use socsim::arbiter::FixedOrderArbiter;
use socsim::{
    BusConfig, Cycle, FaultConfig, RetryPolicy, SlaveId, System, SystemBuilder, TrafficSource,
    Transaction,
};
use std::collections::VecDeque;

/// Replays a fixed schedule of transactions.
struct Replay(VecDeque<Transaction>);

impl TrafficSource for Replay {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        if self.0.front()?.issued_at() <= now {
            self.0.pop_front()
        } else {
            None
        }
    }
}

/// A periodic workload: `count` messages of `words` words, one every
/// `period` cycles starting at `phase`.
fn periodic(period: u64, phase: u64, words: u32, count: u64) -> Box<dyn TrafficSource> {
    Box::new(Replay(
        (0..count)
            .map(|k| Transaction::new(SlaveId::new(0), words, Cycle::new(phase + k * period)))
            .collect(),
    ))
}

fn faulty_config(seed: u64) -> FaultConfig {
    FaultConfig {
        slave_error_rate: 0.08,
        slave_outage_rate: 0.01,
        slave_outage_duration: 16,
        grant_drop_rate: 0.05,
        grant_corrupt_rate: 0.03,
        master_stall_rate: 0.02,
        master_stall_max: 6,
        ..FaultConfig::with_seed(seed)
    }
}

fn build(masters: usize, faults: Option<FaultConfig>) -> System {
    let mut builder: SystemBuilder = SystemBuilder::new(BusConfig::default());
    for i in 0..masters {
        builder = builder.master(format!("m{i}"), periodic(37 + 11 * i as u64, i as u64, 8, 50));
    }
    if let Some(config) = faults {
        builder = builder.faults(config).retry_policy(RetryPolicy::exponential(3, 2)).timeout(512);
    }
    builder.arbiter(Box::new(FixedOrderArbiter::new(masters))).build().expect("valid system")
}

/// Acceptance criterion: the same `(spec, seed)` produces identical
/// stats and an identical fault-event trace across two separate runs.
#[test]
fn faulty_runs_are_bit_for_bit_reproducible() {
    let run = |seed| {
        let mut system = build(3, Some(faulty_config(seed)));
        system.run(10_000);
        (system.stats().clone(), system.fault_events().to_vec())
    };
    let (stats_a, events_a) = run(41);
    let (stats_b, events_b) = run(41);
    assert!(!events_a.is_empty(), "these rates inject faults in 10k cycles");
    assert_eq!(stats_a, stats_b, "stats identical across runs");
    assert_eq!(events_a, events_b, "fault traces identical across runs");

    // And the seed actually matters: a different plan yields different
    // injections.
    let (_, events_c) = run(42);
    assert_ne!(events_a, events_c, "different seed, different plan");
}

/// Acceptance criterion: with every rate at zero (and no retry/timeout
/// machinery beyond the inert defaults) the fault layer changes nothing.
#[test]
fn zero_rate_fault_layer_is_inert() {
    let mut plain = build(3, None);
    plain.run(10_000);

    let mut zeroed = SystemBuilder::new(BusConfig::default());
    for i in 0..3 {
        zeroed = zeroed.master(format!("m{i}"), periodic(37 + 11 * i as u64, i as u64, 8, 50));
    }
    let mut zeroed = zeroed
        .faults(FaultConfig::with_seed(99))
        .arbiter(FixedOrderArbiter::new(3))
        .build()
        .expect("valid system");
    zeroed.run(10_000);

    assert_eq!(plain.stats(), zeroed.stats(), "stats match the fault-free bus exactly");
    assert_eq!(plain.trace(), zeroed.trace(), "bus trace matches exactly");
    assert!(zeroed.fault_events().is_empty(), "nothing injected at rate zero");
}

/// Watchdog × outage edge case: during a full slave outage a
/// retry-less hog burns its grants (every tenure forfeits on the dead
/// slave), so a lower-priority victim is never granted at all. Its
/// abort must come from the WATCHDOG — a `Timeout` fault event inside
/// the outage — not from retry exhaustion, which needs a grant to
/// happen first.
#[test]
fn watchdog_fires_during_slave_outage_for_the_never_granted_master() {
    use socsim::{FaultKind, MasterId, RetryPolicy};
    let outage_everywhere = FaultConfig {
        slave_outage_rate: 1.0,
        slave_outage_duration: 16,
        ..FaultConfig::with_seed(17)
    };
    let hog: Vec<Transaction> =
        (0..600).map(|c| Transaction::new(SlaveId::new(0), 1, Cycle::new(c))).collect();
    let victim = vec![Transaction::new(SlaveId::new(0), 4, Cycle::new(0))];
    let mut system = SystemBuilder::new(BusConfig::default())
        .master("hog", Replay(hog.into_iter().collect()))
        .master("victim", Replay(victim.into_iter().collect()))
        .faults(outage_everywhere)
        .retry_policy(RetryPolicy::none())
        .timeout(100)
        .arbiter(FixedOrderArbiter::new(2))
        .build()
        .expect("valid system");
    system.run(600);

    let stats = system.stats();
    let victim_stats = stats.master(MasterId::new(1));
    assert_eq!(victim_stats.transactions, 0, "the dead slave completes nothing");
    assert_eq!(victim_stats.aborted, 1, "the victim's transaction is resolved, not wedged");
    assert_eq!(victim_stats.timeouts, 1, "and resolved by the watchdog specifically");
    assert_eq!(victim_stats.retries, 0, "a never-granted master cannot have retried");

    let hog_stats = stats.master(MasterId::new(0));
    assert_eq!(hog_stats.timeouts, 0, "the hog is granted every time; it exhausts instead");
    assert!(hog_stats.aborted > 0, "retry-less grant faults abort immediately");

    // The timeout event lands at exactly issue + timeout, which sits
    // inside an outage block by construction (every block is out).
    let timeout_cycle = system
        .fault_events()
        .iter()
        .find_map(|e| match e.kind {
            FaultKind::Timeout { master, .. } if master == MasterId::new(1) => {
                Some(e.cycle.index())
            }
            _ => None,
        })
        .expect("the victim's watchdog abort is logged");
    assert_eq!(timeout_cycle, 100, "armed at issue, fired after exactly `timeout` cycles");
}

/// Retry × outage edge case: a retry budget whose backoff schedule
/// outlives the outage must carry the transaction across the outage
/// boundary — attempts inside the dead block fail and back off, the
/// attempt after the block ends completes. No aborts, real retries.
#[test]
fn backoff_schedule_rides_out_an_outage_and_completes_after_it_ends() {
    use socsim::{FaultPlan, MasterId, RetryPolicy};
    let duration = 64u32;
    // Pick a plan whose outage pattern covers the first block but
    // frees the slave by the third: the plan is pure, so the test can
    // inspect it up front instead of trusting a magic seed.
    let seed = (0..1_000u64)
        .find(|&s| {
            let cfg = FaultConfig {
                slave_outage_rate: 0.5,
                slave_outage_duration: duration,
                ..FaultConfig::with_seed(s)
            };
            let plan = FaultPlan::new(cfg);
            let out = |c: u64| plan.slave_out_at(Cycle::new(c), SlaveId::new(0));
            out(0) && out(64) && !out(128) && !out(192)
        })
        .expect("some seed produces out-out-healthy-healthy");
    let cfg = FaultConfig {
        slave_outage_rate: 0.5,
        slave_outage_duration: duration,
        ..FaultConfig::with_seed(seed)
    };
    let one_shot = vec![Transaction::new(SlaveId::new(0), 8, Cycle::new(0))];
    let mut system = SystemBuilder::new(BusConfig::default())
        .master("cpu", Replay(one_shot.into_iter().collect()))
        .faults(cfg)
        // Backoffs 32, 64, 128, ...: attempts at 0 and ~33 land in the
        // dead blocks, a later attempt lands past cycle 128.
        .retry_policy(RetryPolicy { max_retries: 5, backoff_base: 32, backoff_factor: 2 })
        .arbiter(FixedOrderArbiter::new(1))
        .build()
        .expect("valid system");
    system.run(1_000);

    let stats = system.stats();
    let m = stats.master(MasterId::new(0));
    assert_eq!(m.transactions, 1, "the transaction completes once the outage lifts");
    assert_eq!(m.aborted, 0, "the budget was sized to survive");
    assert!(m.retries >= 2, "the dead blocks must have cost real retries, saw {}", m.retries);
    assert_eq!(stats.slave_errors, m.retries, "every retry was provoked by the outage");
}

/// The recovery counters tie out: every abort is either a retry
/// exhaustion or a watchdog timeout, and every timed-out transaction is
/// also counted per master.
#[test]
fn recovery_counters_are_consistent() {
    let mut system = build(3, Some(faulty_config(7)));
    system.run(20_000);
    let stats = system.stats();
    let per_master_aborts: u64 =
        (0..3).map(|i| stats.master(socsim::MasterId::new(i)).aborted).sum();
    assert_eq!(stats.aborted_transactions, per_master_aborts);
    assert!(stats.timeouts <= stats.aborted_transactions, "timeouts are a kind of abort");
    assert!(stats.slave_errors >= stats.retries, "every retry was provoked by an error response");
}
