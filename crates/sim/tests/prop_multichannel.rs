//! Property-based tests for multi-channel topologies: conservation and
//! routing invariants over randomized chains.

use proptest::prelude::*;
use socsim::arbiter::FixedOrderArbiter;
use socsim::multichannel::{ChannelId, MultiChannelBuilder};
use socsim::{BusConfig, Cycle, Slave, SlaveId, TrafficSource, Transaction};
use std::collections::VecDeque;

struct Script(VecDeque<Transaction>);
impl TrafficSource for Script {
    fn poll(&mut self, now: Cycle) -> Option<Transaction> {
        if self.0.front()?.issued_at() <= now {
            self.0.pop_front()
        } else {
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn chains_deliver_every_word(
        hops in 1usize..4,
        capacity in 1usize..4,
        arrivals in prop::collection::vec((0u64..500, 1u32..24), 1..20),
    ) {
        // A chain of `hops + 1` channels; the master sits on channel 0,
        // the slave at the far end, bridges in between.
        let channels = hops + 1;
        let total_words: u64 = arrivals.iter().map(|&(_, w)| u64::from(w)).sum();
        let mut sorted = arrivals.clone();
        sorted.sort_by_key(|&(c, _)| c);
        let script = Script(
            sorted
                .iter()
                .map(|&(c, w)| Transaction::new(SlaveId::new(0), w, Cycle::new(c)))
                .collect(),
        );
        let mut builder = MultiChannelBuilder::new();
        for _ in 0..channels {
            // Each channel hosts at most one actor (master or bridge).
            builder = builder.channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)));
        }
        builder = builder
            .master("src", ChannelId::new(0), Box::new(script))
            .slave(Slave::new(SlaveId::new(0), "sink"), ChannelId::new(channels - 1));
        for hop in 0..hops {
            builder = builder.bridge(ChannelId::new(hop), ChannelId::new(hop + 1), capacity);
        }
        let mut system = builder.build().expect("valid chain");
        // Generous horizon: every word crosses every hop serially, plus
        // per-transaction forwarding cycles.
        let horizon = 500
            + total_words * (hops as u64 + 1)
            + 4 * (arrivals.len() as u64) * (hops as u64 + 1)
            + 16;
        system.run(horizon);

        let stats = system.master_stats(0);
        prop_assert_eq!(stats.transactions, arrivals.len() as u64, "all delivered");
        prop_assert_eq!(stats.completed_words, total_words);
        // Every channel moved every word exactly once.
        for c in 0..channels {
            prop_assert_eq!(
                system.channel_stats(ChannelId::new(c)).busy_cycles,
                total_words,
                "channel {} busy cycles", c
            );
        }
        // All bridges drained.
        for b in 0..hops {
            prop_assert_eq!(system.bridge_occupancy(b), 0, "bridge {}", b);
        }
        // End-to-end latency of each transaction is at least one cycle
        // per word per hop.
        prop_assert!(stats.total_latency >= total_words * (hops as u64 + 1));
    }

    #[test]
    fn local_and_remote_traffic_do_not_interfere_in_counts(
        local_words in 1u32..40,
        remote_words in 1u32..40,
    ) {
        let local = Script(VecDeque::from([
            Transaction::new(SlaveId::new(0), local_words, Cycle::ZERO),
        ]));
        let remote = Script(VecDeque::from([
            Transaction::new(SlaveId::new(1), remote_words, Cycle::ZERO),
        ]));
        let mut system = MultiChannelBuilder::new()
            .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(2)))
            .channel(BusConfig::default(), Box::new(FixedOrderArbiter::new(1)))
            .master("local", ChannelId::new(0), Box::new(local))
            .master("remote", ChannelId::new(0), Box::new(remote))
            .slave(Slave::new(SlaveId::new(0), "near"), ChannelId::new(0))
            .slave(Slave::new(SlaveId::new(1), "far"), ChannelId::new(1))
            .bridge(ChannelId::new(0), ChannelId::new(1), 2)
            .build()
            .expect("valid");
        system.run(u64::from(local_words + remote_words) * 3 + 32);
        prop_assert_eq!(system.master_stats(0).completed_words, u64::from(local_words));
        prop_assert_eq!(system.master_stats(1).completed_words, u64::from(remote_words));
        // Channel 1 carried only the remote payload.
        prop_assert_eq!(
            system.channel_stats(ChannelId::new(1)).busy_cycles,
            u64::from(remote_words)
        );
    }
}
