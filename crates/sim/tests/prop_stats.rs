//! Property-based tests for the latency-histogram CDF.

use proptest::prelude::*;
use socsim::stats::LatencyHistogram;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `fraction_at_most` is a CDF: monotone nondecreasing in the
    /// latency argument and exactly 1.0 once every bucket is covered —
    /// including when zero-latency transactions were recorded.
    #[test]
    fn fraction_at_most_is_monotone_and_reaches_one(
        latencies in prop::collection::vec(
            prop_oneof![0u64..4, 0u64..200, 1u64..1_000_000],
            1..80,
        ),
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &latencies {
            h.record(v);
        }
        let max = *latencies.iter().max().expect("nonempty");
        let mut probes: Vec<u64> = (0..=16)
            .map(|i| i * (max / 16).max(1))
            .chain([max, max.saturating_add(1), max.saturating_mul(2), u64::MAX])
            .collect();
        probes.sort_unstable();
        let mut previous = 0.0f64;
        for probe in probes {
            let f = h.fraction_at_most(probe).expect("recorded");
            prop_assert!((0.0..=1.0).contains(&f), "CDF out of range at {probe}: {f}");
            prop_assert!(
                f >= previous - 1e-12,
                "CDF not monotone at {probe}: {f} < {previous}"
            );
            previous = f;
        }
        // The CDF saturates at 1.0 at (or before) the top of the bucket
        // holding the largest recorded latency.
        prop_assert_eq!(h.fraction_at_most(u64::MAX), Some(1.0));
    }

    /// Records never disappear: any recorded latency is visible in the
    /// CDF at its own value with positive mass.
    #[test]
    fn every_recorded_latency_has_mass_at_itself(
        latencies in prop::collection::vec(0u64..100_000, 1..40),
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &latencies {
            h.record(v);
        }
        for &v in &latencies {
            let f = h.fraction_at_most(v).expect("recorded");
            prop_assert!(f > 0.0, "latency {v} recorded but invisible in the CDF");
        }
    }
}
